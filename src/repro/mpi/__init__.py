"""mpi4py-flavoured facade over the simulated postal machine.

:class:`~repro.mpi.comm.SimComm` exposes the familiar collective names
(``bcast``, ``reduce``, ``scatter``, ``allgather``, ``barrier``) and runs
each call as a full discrete-event simulation of the corresponding
postal-model algorithm, returning both the data outcome and the exact
simulated cost.
"""

from repro.mpi.comm import CollectiveOutcome, SimComm

__all__ = ["SimComm", "CollectiveOutcome"]
