"""An MPI-style communicator for the postal model.

The HPC guides this library follows use mpi4py's lower-case collective
verbs for generic-object communication; :class:`SimComm` mirrors that
surface, but instead of moving real bytes it *simulates* each collective
on ``MPS(n, lambda)`` and reports the exact postal-model cost alongside
the data result:

>>> comm = SimComm(14, "5/2")
>>> out = comm.bcast("payload")
>>> out.values[13], out.time
('payload', Fraction(15, 2))

Every call spins up a fresh discrete-event simulation (collectives do not
overlap), which keeps the facade simple and the costs exactly the paper's
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.algorithms import (
    BcastProtocol,
    DTreeProtocol,
    PackProtocol,
    PipelineProtocol,
    RepeatProtocol,
)
from repro.collectives.allgather import AllgatherProtocol
from repro.collectives.allreduce import AllreduceProtocol
from repro.collectives.alltoall import AllToAllProtocol
from repro.collectives.barrier import BarrierProtocol
from repro.collectives.gather import GatherProtocol
from repro.collectives.reduce import ReduceProtocol
from repro.collectives.scatter import ScatterProtocol
from repro.errors import InvalidParameterError
from repro.postal import run_protocol
from repro.types import Time, TimeLike, as_time

__all__ = ["SimComm", "CollectiveOutcome"]


@dataclass(frozen=True)
class CollectiveOutcome:
    """Result of one simulated collective.

    Attributes:
        values: per-rank outcome (meaning depends on the collective).
        time: exact completion time in postal units.
        sends: total messages transmitted.
        algorithm: which algorithm executed.
    """

    values: Any
    time: Time
    sends: int
    algorithm: str


class SimComm:
    """A simulated communicator over ``MPS(n, lambda)``.

    Args:
        n: number of ranks.
        lam: communication latency ``lambda >= 1``.
    """

    def __init__(self, n: int, lam: TimeLike):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 ranks, got {n}")
        self.n = n
        self.lam = as_time(lam)

    def Get_size(self) -> int:
        """mpi4py-style size accessor."""
        return self.n

    # ---------------------------------------------------------- broadcast

    def bcast(self, value: Any, *, algorithm: str = "bcast") -> CollectiveOutcome:
        """Broadcast one value from rank 0 with the optimal Algorithm
        BCAST (or a named alternative: ``"dtree-<d>"``, ``"star"``)."""
        algorithm = algorithm.lower()
        if algorithm == "bcast":
            proto = BcastProtocol(self.n, self.lam)
        elif algorithm.startswith("dtree-"):
            proto = DTreeProtocol(self.n, 1, self.lam, int(algorithm[6:]))
        elif algorithm == "star":
            proto = DTreeProtocol(self.n, 1, self.lam, max(1, self.n - 1))
        else:
            raise InvalidParameterError(f"unknown broadcast algorithm {algorithm!r}")
        res = run_protocol(proto)
        return CollectiveOutcome(
            values=[value] * self.n,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def bcast_many(
        self, values: Sequence[Any], *, algorithm: str = "pipeline"
    ) -> CollectiveOutcome:
        """Broadcast ``m = len(values)`` messages from rank 0 using
        ``"repeat"``, ``"pack"``, ``"pipeline"``, or ``"dtree-<d>"``."""
        m = len(values)
        if m < 1:
            raise InvalidParameterError("need at least one value")
        algorithm = algorithm.lower()
        if algorithm == "repeat":
            proto = RepeatProtocol(self.n, m, self.lam)
        elif algorithm == "pack":
            proto = PackProtocol(self.n, m, self.lam)
        elif algorithm == "pipeline":
            proto = PipelineProtocol(self.n, m, self.lam)
        elif algorithm.startswith("dtree-"):
            proto = DTreeProtocol(self.n, m, self.lam, int(algorithm[6:]))
        else:
            raise InvalidParameterError(
                f"unknown multi-message algorithm {algorithm!r}"
            )
        res = run_protocol(proto)
        return CollectiveOutcome(
            values=[list(values)] * self.n,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    # --------------------------------------------------------- reductions

    def reduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
    ) -> CollectiveOutcome:
        """Combine one value per rank at rank 0 (optimal reversed
        generalized Fibonacci tree)."""
        if len(values) != self.n:
            raise InvalidParameterError(f"need exactly {self.n} values")
        proto = ReduceProtocol(self.n, self.lam, op=op, values=list(values))
        res = run_protocol(proto)
        return CollectiveOutcome(
            values=proto.result,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def scatter(self, values: Sequence[Any]) -> CollectiveOutcome:
        """Deliver ``values[i]`` to rank ``i`` (optimal direct star)."""
        if len(values) != self.n:
            raise InvalidParameterError(f"need exactly {self.n} values")
        proto = ScatterProtocol(self.n, self.lam, values=list(values))
        res = run_protocol(proto)
        out = [proto.received[p] for p in range(self.n)]
        return CollectiveOutcome(
            values=out,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def gather(self, values: Sequence[Any]) -> CollectiveOutcome:
        """Collect ``values[i]`` from rank ``i`` at rank 0 (optimal direct
        schedule)."""
        if len(values) != self.n:
            raise InvalidParameterError(f"need exactly {self.n} values")
        proto = GatherProtocol(self.n, self.lam, values=list(values))
        res = run_protocol(proto)
        out = [proto.collected[p] for p in range(self.n)]
        return CollectiveOutcome(
            values=out,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> CollectiveOutcome:
        """Personalized exchange: rank ``i`` sends ``matrix[i][j]`` to rank
        ``j`` (optimal rotation schedule).  Returns the transpose."""
        proto = AllToAllProtocol(
            self.n, self.lam, values=[list(row) for row in matrix]
        )
        res = run_protocol(proto)
        out = [
            [proto.received[j][i] for i in range(self.n)]
            for j in range(self.n)
        ]
        return CollectiveOutcome(
            values=out,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def allreduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
    ) -> CollectiveOutcome:
        """Combine one value per rank and deliver the result to every rank
        (combine + broadcast, ``2 * f_lambda(n)``)."""
        if len(values) != self.n:
            raise InvalidParameterError(f"need exactly {self.n} values")
        proto = AllreduceProtocol(self.n, self.lam, op=op, values=list(values))
        res = run_protocol(proto)
        out = [proto.results[p] for p in range(self.n)]
        return CollectiveOutcome(
            values=out,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def allgather(self, values: Sequence[Any]) -> CollectiveOutcome:
        """Every rank contributes ``values[rank]``; every rank ends with
        the full list (gather + pipelined broadcast)."""
        if len(values) != self.n:
            raise InvalidParameterError(f"need exactly {self.n} values")
        proto = AllgatherProtocol(self.n, self.lam, rumors=list(values))
        res = run_protocol(proto)
        out = [
            [proto.known[p][k] for k in range(self.n)] for p in range(self.n)
        ]
        return CollectiveOutcome(
            values=out,
            time=res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )

    def barrier(
        self, arrivals: Sequence[TimeLike] | None = None
    ) -> CollectiveOutcome:
        """Synchronize all ranks (combine + release); ``values`` holds each
        rank's release time."""
        proto = BarrierProtocol(
            self.n, self.lam, arrivals=list(arrivals) if arrivals else None
        )
        res = run_protocol(proto)
        out = [proto.released[p] for p in range(self.n)]
        return CollectiveOutcome(
            values=out,
            time=max(out) if out else res.completion_time,
            sends=res.sends,
            algorithm=proto.name,
        )
