"""Scatter (personalized one-to-all) in the postal model.

The root holds ``n - 1`` *distinct* atomic messages, one per other
processor.  Unlike broadcast, relaying cannot help: the root must transmit
each of the ``n - 1`` messages itself at least once (they are distinct and
atomic), which alone costs ``n - 1`` send units, and the last one still
needs ``lambda`` to arrive — so ``T >= (n - 2) + lambda``, and the direct
*star* achieves it.  Scatter is thus a problem where the postal model's
answer is the naive algorithm, a nice contrast with broadcast.

(A tree-relayed scatter, provided for comparison, is strictly worse: an
intermediate node must receive all of its subtree's messages before or
while re-sending them, adding latency without saving the root any work.)

Provenance: personalized one-to-all is part of the Section-5 agenda of
Bar-Noy & Kipnis; the ``(n - 2) + lambda`` bound is the paper's own
send-port counting argument applied to distinct atomic messages.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = ["scatter_time", "scatter_schedule", "ScatterProtocol"]


def scatter_time(n: int, lam: TimeLike) -> Time:
    """Optimal scatter time: ``(n - 2) + lambda`` for ``n >= 2``, else 0."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return Time(n - 2) + lam_t


def scatter_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """The optimal (direct star) scatter: the root sends processor ``i``'s
    private message at time ``i - 1``.  Message index ``i - 1`` is the
    message *for* ``p_i``."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    return [SendEvent(Time(i - 1), 0, i - 1, i) for i in range(1, n)]


class ScatterProtocol(Protocol):
    """Event-driven optimal scatter.

    ``values[i]`` is the private datum destined for ``p_i`` (``values[0]``
    stays at the root).  After the run, :attr:`received` maps each
    processor to the datum it got.
    """

    name = "SCATTER"
    semantics = "scatter"

    def __init__(self, n: int, lam: TimeLike, *, values: list[Any] | None = None):
        super().__init__(n, 1, lam)
        self._values = list(values) if values is not None else list(range(n))
        if len(self._values) != n:
            raise ValueError(f"need exactly {n} values")
        self.received: dict[ProcId, Any] = {0: self._values[0]}

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            return self._root_program(system)
        return self._leaf_program(proc, system)

    def _root_program(self, system: PostalSystem):
        for dst in range(1, self.n):
            yield system.send(self.root, dst, dst - 1, payload=self._values[dst])

    def _leaf_program(self, proc: ProcId, system: PostalSystem):
        message = yield system.recv(proc)
        self.received[proc] = message.payload
