"""Gossiping (all-to-all rumor spreading) in the postal model.

The paper leaves gossiping open (Section 5).  We provide the natural
pipelined-ring algorithm as a correct, simple baseline:

Every processor ``p_i`` starts with rumor ``i`` and, every ``lambda`` time
units, forwards to ``p_{(i+1) mod n}`` the newest rumor it holds that its
successor has not seen: at step ``k`` (time ``k * lambda``) it sends rumor
``(i - k) mod n``, which arrived exactly at ``k * lambda`` (for ``k >= 1``).
Ports never collide: sends are spaced ``lambda >= 1`` apart and each
processor receives one rumor every ``lambda`` units.

Completion: rumor ``i`` reaches its last processor (``p_{(i-1) mod n}``)
after ``n - 1`` hops of ``lambda`` each, i.e. at ``(n - 1) * lambda``.

For ``lambda`` noticeably above 1 this is far from the trivial lower bound
``max(n - 1, f_lambda(n))`` (each processor must *receive* ``n - 1``
rumors, and any single rumor needs ``f_lambda(n)`` to spread) — finding
the postal-optimal gossip is exactly the open problem; the gap is measured
in the collectives bench.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.fibfunc import postal_f
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = [
    "gossip_ring_time",
    "gossip_ring_schedule",
    "gossip_lower_bound",
    "GossipRingProtocol",
]


def gossip_ring_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """Static event list of the pipelined ring gossip: at step ``k``
    (time ``k * lambda``), ``p_i`` sends rumor ``(i - k) mod n`` — the
    message index — to ``p_{(i+1) mod n}``.  Sorted; empty for
    ``n == 1``.
    """
    lam_t = as_time(lam)
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    events = [
        SendEvent(k * lam_t, i, (i - k) % n, (i + 1) % n)
        for k in range(n - 1)
        for i in range(n)
    ]
    events.sort()
    return events


def gossip_ring_time(n: int, lam: TimeLike) -> Time:
    """Completion time of the pipelined ring gossip: ``(n-1) * lambda``
    (0 when ``n == 1``)."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return (n - 1) * lam_t


def gossip_lower_bound(n: int, lam: TimeLike) -> Time:
    """A trivial gossip lower bound: every processor must serially receive
    ``n - 1`` rumors (time ``n - 2 + lambda``) and any one rumor needs
    ``f_lambda(n)`` to spread."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return max(Time(n - 2) + lam_t, postal_f(lam_t, n))


class GossipRingProtocol(Protocol):
    """Event-driven pipelined ring gossip.

    After the run, :attr:`known` maps each processor to the set of rumors
    it holds — the tests assert every set is complete.
    """

    name = "GOSSIP-RING"
    semantics = "gossip"

    def __init__(self, n: int, lam: TimeLike):
        super().__init__(n, 1, lam)
        self.known: dict[ProcId, set[int]] = {p: {p} for p in range(n)}

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if self.n == 1:
            return None
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        succ = (proc + 1) % self.n
        rumor = proc
        for _ in range(self.n - 1):
            yield system.send(proc, succ, 0, payload=rumor)
            if len(self.known[proc]) < self.n:
                message = yield system.recv(proc)
                rumor = message.payload
                self.known[proc].add(rumor)
            # next departure is one lambda after the previous one; the
            # arrival we just consumed landed exactly on that boundary
