"""Allgather (gather + pipelined broadcast) in the postal model.

Every processor contributes one atomic rumor; afterwards every processor
holds all ``n``.  Composition:

1. **Gather (optimal)**: processor ``p_i`` sends its rumor directly to the
   root at time ``i - 1``.  The root's receive port serializes perfectly
   (windows ``(i-2+lambda, i-1+lambda]``), and since the root must receive
   ``n - 1`` atomic rumors through one port, ``(n-2) + lambda`` is a lower
   bound this phase meets exactly.
2. **Broadcast**: the root streams all ``n`` rumors down the PIPELINE tree
   (Section 4.2).  The stream may start at ``T0 = max(n-1, lambda-1)``:
   by then every non-root send port is free again (last gather send ends
   at ``n - 1``), and rumor ``k`` (arriving at ``k-1+lambda``) always lands
   by its stream slot ``T0 + k``.  The root receives gather rumors *while*
   streaming — legal simultaneous I/O.

Total time: ``max(n-1, lambda-1) + pipeline_time(n, n, lambda)`` — an upper
bound on the (open) optimal gossip; the bench compares it against the
pipelined ring and the trivial lower bound.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.analysis import pipeline_time
from repro.core.fibfunc import GeneralizedFibonacci
from repro.core.multi import pipeline_schedule
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = [
    "allgather_time",
    "allgather_time_estimate",
    "allgather_schedule",
    "AllgatherProtocol",
]


def allgather_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """Static event list of the gather+pipeline allgather.

    Message index = rumor index (``0 .. n-1``): the gather phase sends
    rumor ``i`` from ``p_i`` to the root at ``t = i - 1``; the broadcast
    phase is ``pipeline_schedule(n, n, lam)`` shifted to start at
    ``T0 = max(n-1, lambda-1)``.  Sorted by ``(time, sender, msg,
    receiver)``; empty for ``n == 1``.
    """
    lam_t = as_time(lam)
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if n == 1:
        return []
    events = [SendEvent(Time(i - 1), i, i, 0) for i in range(1, n)]
    t0 = max(Time(n - 1), lam_t - 1)
    stream = pipeline_schedule(n, n, lam_t, validate=False).shifted(t0)
    events.extend(stream.events)
    events.sort()
    return events


def allgather_time(n: int, lam: TimeLike) -> Time:
    """Exact completion time of the gather+pipeline allgather:
    ``max(n-1, lambda-1) + pipeline_time(n, n, lambda)`` for ``n >= 2``."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return max(Time(n - 1), lam_t - 1) + pipeline_time(n, n, lam_t)


#: Backwards-compatible alias (the time is exact, not an estimate).
allgather_time_estimate = allgather_time


class AllgatherProtocol(Protocol):
    """Event-driven gather-then-pipeline allgather.

    After the run, :attr:`known` maps each processor to its rumor set (the
    tests assert completeness) and rumor *values* survive end to end.
    """

    name = "ALLGATHER"
    semantics = "allgather"

    def __init__(self, n: int, lam: TimeLike, *, rumors: list[Any] | None = None):
        super().__init__(n, 1, lam)
        self._rumors = list(rumors) if rumors is not None else list(range(n))
        if len(self._rumors) != n:
            raise ValueError(f"need exactly {n} rumors")
        m = n  # the broadcast phase streams all n rumors
        self._sender_first = m <= self.lam
        lam_p = (self.lam / m) if self._sender_first else (Time(m) / self.lam)
        self._fib = GeneralizedFibonacci(lam_p)
        self.known: dict[ProcId, dict[int, Any]] = {
            p: {p: self._rumors[p]} for p in range(n)
        }

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if self.n == 1:
            return None
        if proc == self.root:
            return self._root_program(system)
        return self._other_program(proc, system)

    # ------------------------------------------------------------- root

    def _root_program(self, system: PostalSystem):
        # receive gather rumors concurrently with the pipeline stream
        arrived: dict[int, Event] = {
            k: system.env.event() for k in range(1, self.n)
        }
        system.env.process(self._root_gather(system, arrived))

        t0 = max(Time(self.n - 1), self.lam - 1)
        gap = t0 - system.env.now
        if gap > 0:
            yield system.env.timeout(gap)
        known = self.known[self.root]
        size = self.n
        me = self.root
        while size > 1:
            j = self._fib.value_at(self._fib.index(size) - 1)
            keep, give = (j, size - j) if self._sender_first else (size - j, j)
            target = me + keep
            for k in range(self.n):
                if k not in known:
                    yield arrived[k]
                yield system.send(
                    me, target, 0, payload=(target, give, k, known[k])
                )
            size = keep

    def _root_gather(self, system: PostalSystem, arrived: dict[int, Event]):
        known = self.known[self.root]
        for _ in range(self.n - 1):
            message = yield system.recv(self.root)
            k, value = message.payload
            known[k] = value
            arrived[k].succeed()

    # ---------------------------------------------------------- non-root

    def _other_program(self, proc: ProcId, system: PostalSystem):
        # gather phase: my rumor departs at exactly t = proc - 1
        gap = Time(proc - 1) - system.env.now
        if gap > 0:
            yield system.env.timeout(gap)
        yield system.send(
            proc, self.root, 0, payload=(proc, self._rumors[proc])
        )

        # broadcast phase: receive the stream, forwarding as it arrives
        known = self.known[proc]
        first = yield system.recv(proc)
        me, size, k0, v0 = first.payload
        assert me == proc
        known[k0] = v0
        while size > 1:
            j = self._fib.value_at(self._fib.index(size) - 1)
            keep, give = (j, size - j) if self._sender_first else (size - j, j)
            target = me + keep
            for k in range(self.n):
                while k not in known:
                    nxt = yield system.recv(proc)
                    _me, _size, ki, vi = nxt.payload
                    known[ki] = vi
                yield system.send(
                    proc, target, 0, payload=(target, give, k, known[k])
                )
            size = keep
        while len(known) < self.n:
            nxt = yield system.recv(proc)
            _me, _size, ki, vi = nxt.payload
            known[ki] = vi
