"""Barrier synchronization in the postal model.

A barrier is a combine followed by a broadcast: partial "I arrived"
tokens flow up the time-reversed generalized Fibonacci tree (optimal
combining, ``f_lambda(n)``), and the root's release message flows back
down via Algorithm BCAST (optimal broadcast, ``f_lambda(n)``) — so a full
barrier completes in exactly ``2 * f_lambda(n)``.

Processors may arrive at the barrier at different times; the combine
phase paces itself relative to the *latest* arrival that actually gates
each subtree, so the ``2*f_lambda(n)`` figure holds when everyone arrives
at ``t = 0`` (the benchmarked case) and degrades gracefully otherwise.

Provenance: the combine half is the problem of the paper's reference
[6] (Cidon-Gopal-Kutten); composing it with Algorithm BCAST (Theorem 6)
follows the combining-plus-broadcast recipe noted in Section 5.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.bcast import BroadcastTree, bcast_schedule
from repro.core.fibfunc import postal_f
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = ["barrier_time", "barrier_schedule", "BarrierProtocol"]


def barrier_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """Static event list of the all-arrive-at-zero barrier: the
    time-reversed BCAST schedule (arrival tokens up) followed by BCAST
    shifted by ``f_lambda(n)`` (the release down).  Identical in shape to
    :func:`repro.collectives.allreduce.allreduce_schedule` — a barrier is
    an allreduce whose payload carries no information.  Empty for
    ``n == 1``.
    """
    lam_t = as_time(lam)
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if n == 1:
        return []
    fwd = bcast_schedule(n, lam_t, validate=False)
    total = postal_f(lam_t, n)
    events = [
        SendEvent(total - ev.send_time - lam_t, ev.receiver, 0, ev.sender)
        for ev in fwd.events
    ]
    events.extend(
        SendEvent(ev.send_time + total, ev.sender, 0, ev.receiver)
        for ev in fwd.events
    )
    events.sort()
    return events


def barrier_time(n: int, lam: TimeLike) -> Time:
    """Barrier completion when all processors arrive at ``t = 0``:
    ``2 * f_lambda(n)``."""
    lam_t = as_time(lam)
    return 2 * postal_f(lam_t, n)


class BarrierProtocol(Protocol):
    """Event-driven combine-then-release barrier.

    *arrivals* optionally delays each processor's arrival at the barrier
    (default: everyone at ``t = 0``).  After the run, :attr:`released`
    maps each processor to the time it left the barrier.
    """

    name = "BARRIER"
    semantics = "barrier"

    def __init__(
        self, n: int, lam: TimeLike, *, arrivals: list[TimeLike] | None = None
    ):
        super().__init__(n, 1, lam)
        if arrivals is None:
            self._arrivals = [Time(0)] * n
        else:
            if len(arrivals) != n:
                raise ValueError(f"need exactly {n} arrival times")
            self._arrivals = [as_time(a) for a in arrivals]
        self._tree = BroadcastTree.of(bcast_schedule(n, lam, validate=False))
        self._total = postal_f(self.lam, n)
        self.released: dict[ProcId, Time] = {}

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        env = system.env
        # arrive at the barrier
        if self._arrivals[proc] > 0:
            yield env.timeout(self._arrivals[proc])

        # ---- combine phase: tokens up the reversed tree
        children = self._tree.children_of(proc)
        for _ in children:
            yield system.recv(proc)
        parent = self._tree.parent_of(proc)
        if parent is not None:
            # paced at the reversed slot, but never before we are ready
            depart = self._total - self._tree.node(proc).informed_at
            gap = depart - env.now
            if gap > 0:
                yield env.timeout(gap)
            yield system.send(proc, parent, 0, payload="token")
            # wait for the release and relay it down (BCAST shape)
            yield system.recv(proc)
        # root falls through once all tokens are in
        for child in children:
            yield system.send(proc, child, 0, payload="release")
        self.released[proc] = env.now
