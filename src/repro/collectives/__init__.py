"""Collective operations in the postal model beyond broadcast.

Section 5 of the paper lists gossiping, combining, permuting, and sorting
as open directions; reference [6] (Cidon-Gopal-Kutten) solves *combining*
with the same generalized-Fibonacci machinery.  This package provides:

* :mod:`repro.collectives.reduce` — combining/reduction to the root via the
  time-reversed generalized Fibonacci tree; optimal at ``f_lambda(n)``.
* :mod:`repro.collectives.gossip` — all-to-all rumor spreading: a pipelined
  ring (time ``(n-1)*lambda``) and gather-then-pipeline-broadcast.
* :mod:`repro.collectives.scatter` — personalized one-to-all: the direct
  star is optimal for atomic messages (``n - 2 + lambda``).
* :mod:`repro.collectives.gather` — personalized all-to-one: the direct
  schedule is optimal (``n - 2 + lambda``), mirroring scatter.
* :mod:`repro.collectives.alltoall` — personalized exchange: the rotation
  schedule is optimal (``n - 2 + lambda``).
* :mod:`repro.collectives.allgather` — gather + multi-message broadcast.
* :mod:`repro.collectives.allreduce` — combine + broadcast,
  ``2*f_lambda(n)``.
* :mod:`repro.collectives.barrier` — combine-then-notify, ``2*f_lambda(n)``.
"""

from repro.collectives.reduce import ReduceProtocol, reduce_schedule, reduce_time
from repro.collectives.gossip import (
    GossipRingProtocol,
    gossip_ring_schedule,
    gossip_ring_time,
)
from repro.collectives.scatter import ScatterProtocol, scatter_schedule, scatter_time
from repro.collectives.gather import GatherProtocol, gather_schedule, gather_time
from repro.collectives.alltoall import (
    AllToAllProtocol,
    alltoall_schedule,
    alltoall_time,
)
from repro.collectives.allgather import (
    AllgatherProtocol,
    allgather_schedule,
    allgather_time,
    allgather_time_estimate,
)
from repro.collectives.allreduce import (
    AllreduceProtocol,
    allreduce_schedule,
    allreduce_time,
)
from repro.collectives.bruck import (
    BruckAllgatherProtocol,
    bruck_schedule,
    bruck_time,
)
from repro.collectives.barrier import BarrierProtocol, barrier_schedule, barrier_time

__all__ = [
    "ReduceProtocol",
    "reduce_schedule",
    "reduce_time",
    "GossipRingProtocol",
    "gossip_ring_schedule",
    "gossip_ring_time",
    "ScatterProtocol",
    "scatter_schedule",
    "scatter_time",
    "GatherProtocol",
    "gather_schedule",
    "gather_time",
    "AllToAllProtocol",
    "alltoall_schedule",
    "alltoall_time",
    "AllgatherProtocol",
    "allgather_schedule",
    "allgather_time",
    "allgather_time_estimate",
    "AllreduceProtocol",
    "allreduce_schedule",
    "allreduce_time",
    "BruckAllgatherProtocol",
    "bruck_schedule",
    "bruck_time",
    "BarrierProtocol",
    "barrier_schedule",
    "barrier_time",
]
