"""Combining (reduction) in the postal model — the problem of reference [6].

Reduction is broadcast run backwards: reversing every send of an optimal
one-message broadcast schedule (send at ``s`` arriving ``s + lambda``
becomes a send at ``T - s - lambda`` arriving at ``T - s``, with sender and
receiver swapped) turns a valid broadcast schedule into a valid reduction
schedule of the *same* length, because the postal model's constraints are
symmetric under time reversal with send/receive exchange.  Hence the
optimal combining time is exactly ``f_lambda(n)``, achieved on the
time-reversed generalized Fibonacci tree.

An important subtlety the tests demonstrate: the *eager* strategy ("send
to your parent as soon as your subtree is combined") is **not** always
valid — when a node owns two leaf children (which happens whenever
``F_lambda`` has plateaus, e.g. ``lambda = 2.5, n = 3``) both would fire at
``t = 0`` and collide at the parent's receive port.  The correct protocol
paces each processor's single send at its reversed-schedule time
``T - informed_at(proc)``, which every processor computes locally from
``(n, lambda, proc)``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.algorithms.base import Protocol
from repro.core.bcast import BroadcastTree, bcast_schedule
from repro.core.fibfunc import postal_f
from repro.core.schedule import SendEvent, check_intervals_disjoint
from repro.errors import ScheduleError, SimultaneousIOError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ONE, ProcId, Time, TimeLike, as_time, time_repr

__all__ = ["reduce_time", "ReductionSchedule", "reduce_schedule", "ReduceProtocol"]


def reduce_time(n: int, lam: TimeLike) -> Time:
    """Optimal combining time in ``MPS(n, lambda)``: ``f_lambda(n)``."""
    return postal_f(as_time(lam), n)


class ReductionSchedule:
    """A combining schedule: every processor except the root sends exactly
    one partial value; values flow root-ward.

    Shares :class:`~repro.core.schedule.SendEvent` with broadcast schedules
    but has its own (reduction-specific) validation: ports disjoint, one
    send per non-root processor, and every send departs no earlier than all
    of the sender's incoming arrivals (you cannot forward a partial value
    you have not finished combining).
    """

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        events: Iterable[SendEvent],
        *,
        root: ProcId = 0,
        validate: bool = True,
    ):
        self.n = n
        self.lam = as_time(lam)
        self.root = root
        self.events: tuple[SendEvent, ...] = tuple(sorted(events))
        if validate:
            self.validate()

    def completion_time(self) -> Time:
        """Arrival of the last partial value at the root side."""
        return max(
            (ev.arrival_time(self.lam) for ev in self.events),
            default=Time(0),
        )

    def validate(self) -> None:
        senders: set[ProcId] = set()
        incoming_last: dict[ProcId, Time] = {}
        for ev in self.events:
            if ev.sender in senders:
                raise ScheduleError(
                    f"p{ev.sender} sends twice in a reduction"
                )
            senders.add(ev.sender)
        if senders != set(range(self.n)) - {self.root}:
            raise ScheduleError(
                "a reduction needs exactly one send per non-root processor"
            )
        for ev in self.events:
            incoming_last[ev.receiver] = max(
                incoming_last.get(ev.receiver, Time(0)),
                ev.arrival_time(self.lam),
            )
        for ev in self.events:
            last_in = incoming_last.get(ev.sender)
            if last_in is not None and ev.send_time < last_in:
                raise ScheduleError(
                    f"{ev}: departs before p{ev.sender}'s last incoming "
                    f"partial value at t={time_repr(last_in)}"
                )
        for proc in range(self.n):
            recv_windows = [
                (ev.arrival_time(self.lam) - ONE, ev.arrival_time(self.lam))
                for ev in self.events
                if ev.receiver == proc
            ]
            clash = check_intervals_disjoint(recv_windows)
            if clash is not None:
                raise SimultaneousIOError(
                    f"p{proc} receives two partial values at once"
                )


def reduce_schedule(n: int, lam: TimeLike, *, validate: bool = True) -> ReductionSchedule:
    """The time-reversed BCAST schedule: all ``n`` values combine at
    ``p_0`` in exactly ``f_lambda(n)`` time."""
    fwd = bcast_schedule(n, lam, validate=False)
    total = fwd.completion_time()
    lam_t = fwd.lam
    events = [
        SendEvent(total - ev.send_time - lam_t, ev.receiver, ev.msg, ev.sender)
        for ev in fwd.events
    ]
    return ReductionSchedule(n, lam, events, validate=validate)


class ReduceProtocol(Protocol):
    """Event-driven combining of one value per processor at ``p_0``.

    Every processor derives the deterministic BCAST tree from
    ``(n, lambda)`` locally, collects a partial value from each of its tree
    children, folds them with *op*, and sends the result to its parent:

    * **paced** (default): the send departs at the reversed-schedule time
      ``T - informed_at(proc)`` — provably collision-free and optimal.
    * **eager** (``eager=True``): the send departs as soon as the subtree
      is combined.  Collides in strict mode whenever a node has two
      same-shape children (plateaus of ``F_lambda``); useful only under the
      queued contention policy, where it may finish *later* than paced.

    After :func:`repro.postal.run_protocol` completes, :attr:`result` holds
    the combined value.
    """

    name = "REDUCE"
    semantics = "reduction"

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        *,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        values: list[Any] | None = None,
        eager: bool = False,
    ):
        super().__init__(n, 1, lam)
        self._op = op
        self._values = list(values) if values is not None else list(range(n))
        if len(self._values) != n:
            raise ValueError(f"need exactly {n} initial values")
        self._tree = BroadcastTree.of(bcast_schedule(n, lam, validate=False))
        self._total = postal_f(self.lam, n)
        self._eager = eager
        self.result: Any = None

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        children = self._tree.children_of(proc)
        acc = self._values[proc]
        for _ in children:
            message = yield system.recv(proc)
            acc = self._op(acc, message.payload)
        parent = self._tree.parent_of(proc)
        if parent is None:
            self.result = acc
            return
        if not self._eager:
            depart = self._total - self._tree.node(proc).informed_at
            gap = depart - system.env.now
            if gap > 0:
                yield system.env.timeout(gap)
        yield system.send(proc, parent, 0, payload=acc)
