"""Gather (personalized all-to-one) in the postal model.

The mirror image of scatter: every processor owns one *distinct* atomic
message that must reach the root.  The root must receive all ``n - 1``
messages through its single receive port, one unit each, so
``T >= (n - 2) + lambda``; the direct schedule — processor ``p_i`` sends at
time ``i - 1``, arrivals land back to back — achieves it, making gather a
second collective (after scatter) whose postal-optimal algorithm is the
naive one.

(That direct schedule is also exactly the gather phase of
:class:`repro.collectives.allgather.AllgatherProtocol`.)

Provenance: permuting/collecting beyond broadcast is a Section-5 open
direction of Bar-Noy & Kipnis; the matching lower bound is the same
single-port counting argument the paper uses for Lemma 8.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = ["gather_time", "gather_schedule", "GatherProtocol"]


def gather_time(n: int, lam: TimeLike) -> Time:
    """Optimal gather time: ``(n - 2) + lambda`` for ``n >= 2``, else 0."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return Time(n - 2) + lam_t


def gather_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """The optimal direct gather: ``p_i`` sends its private message (index
    ``i - 1``) to the root at time ``i - 1``; the root's receive windows
    abut perfectly."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    as_time(lam)  # validate
    return [SendEvent(Time(i - 1), i, i - 1, 0) for i in range(1, n)]


class GatherProtocol(Protocol):
    """Event-driven optimal gather.

    ``values[i]`` is ``p_i``'s contribution.  After the run,
    :attr:`collected` holds the root's view: ``collected[i] == values[i]``
    for every rank.
    """

    name = "GATHER"
    semantics = "gather"

    def __init__(self, n: int, lam: TimeLike, *, values: list[Any] | None = None):
        super().__init__(n, 1, lam)
        self._values = list(values) if values is not None else list(range(n))
        if len(self._values) != n:
            raise ValueError(f"need exactly {n} values")
        self.collected: dict[ProcId, Any] = {0: self._values[0]}

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            if self.n == 1:
                return None
            return self._root_program(system)
        return self._leaf_program(proc, system)

    def _root_program(self, system: PostalSystem):
        for _ in range(self.n - 1):
            message = yield system.recv(self.root)
            rank, value = message.payload
            self.collected[rank] = value

    def _leaf_program(self, proc: ProcId, system: PostalSystem):
        # pace my departure so the root's receive windows abut
        gap = Time(proc - 1) - system.env.now
        if gap > 0:
            yield system.env.timeout(gap)
        yield system.send(proc, self.root, 0, payload=(proc, self._values[proc]))
