"""All-to-all personalized exchange (transpose) in the postal model.

Every processor holds ``n - 1`` distinct atomic messages, one for every
other processor.  Each processor must *send* ``n - 1`` units and *receive*
``n - 1`` units through its unit-rate ports, so ``T >= (n - 2) + lambda``.

The classic rotation schedule achieves this bound exactly: in round
``r = 0 .. n-2`` (at time ``r``), every processor ``i`` sends its message
for ``i + r + 1 (mod n)``.  Each round is a permutation with no fixed
points (a cyclic shift), so in every time unit each processor starts one
send and — ``lambda`` later — finishes one receive; ports never collide
and the last messages land at ``(n - 2) + lambda``.

So all three *personalized* collectives (scatter, gather, alltoall) are
optimally solved by direct/rotation schedules — in sharp contrast to
broadcast, where the generalized Fibonacci tree beats the naive star by a
``Theta(log(lambda+1))`` factor.  The bench quantifies this contrast.

Provenance: permuting is one of the open directions Bar-Noy & Kipnis
list in Section 5; the rotation schedule is the classical folklore
transpose, shown here to be postal-optimal by the port-counting bound.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = ["alltoall_time", "alltoall_schedule", "AllToAllProtocol"]


def alltoall_time(n: int, lam: TimeLike) -> Time:
    """Optimal all-to-all exchange time: ``(n - 2) + lambda`` for
    ``n >= 2``, else 0."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return Time(n - 2) + lam_t


def alltoall_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """The rotation schedule: at time ``r``, ``p_i`` sends to
    ``p_{(i+r+1) mod n}``.  Message index encodes the round."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    as_time(lam)  # validate
    return [
        SendEvent(Time(r), i, r, (i + r + 1) % n)
        for r in range(n - 1)
        for i in range(n)
    ]


class AllToAllProtocol(Protocol):
    """Event-driven optimal all-to-all exchange.

    ``values[i][j]`` is the datum ``p_i`` owes ``p_j`` (the ``i == j``
    diagonal stays local).  After the run, ``received[j][i] ==
    values[i][j]`` — the transpose.
    """

    name = "ALLTOALL"
    semantics = "alltoall"

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        *,
        values: list[list[Any]] | None = None,
    ):
        super().__init__(n, 1, lam)
        if values is None:
            values = [[f"{i}->{j}" for j in range(n)] for i in range(n)]
        if len(values) != n or any(len(row) != n for row in values):
            raise ValueError(f"need an {n} x {n} value matrix")
        self._values = values
        self.received: dict[ProcId, dict[ProcId, Any]] = {
            p: {p: values[p][p]} for p in range(n)
        }

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if self.n == 1:
            return None
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        n = self.n
        # interleave: one send per round, harvesting arrivals as they come
        for r in range(n - 1):
            dst = (proc + r + 1) % n
            yield system.send(
                proc, dst, r, payload=(proc, self._values[proc][dst])
            )
            # by the time send r completes, arrivals for rounds <= r - lam
            # are in; drain the inbox without blocking the send cadence
            while system.inbox_size(proc) > 0:
                message = yield system.recv(proc)
                src, value = message.payload
                self.received[proc][src] = value
        while len(self.received[proc]) < n:
            message = yield system.recv(proc)
            src, value = message.payload
            self.received[proc][src] = value
