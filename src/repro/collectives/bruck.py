"""Bruck-style recursive-doubling allgather in the postal model.

A third answer to the paper's open gossiping problem, alongside the
pipelined ring and gather+pipeline: in round ``r = 0 .. ceil(lg n) - 1``,
every processor ``i`` sends the block of rumors ``{i, i+1, ...,
i + s_r - 1 (mod n)}`` — everything it currently holds, one atomic message
per rumor — to processor ``i - 2^r (mod n)``, where ``s_r = min(2^r,
n - 2^r)``; symmetrically it receives the matching block from
``i + 2^r``.  After the last round everyone holds all ``n`` rumors.

Every round is a cyclic-shift permutation, so each processor drives one
send and one receive stream per round and the ports never collide; round
``r+1`` starts the instant round ``r``'s last rumor lands.  Completion::

    T_Bruck(n, lambda) = (n - 1) + ceil(lg n) * (lambda - 1)

which dominates the ring ``(n-1)*lambda`` for all ``lambda > 1`` and beats
gather+pipeline whenever latency is the bottleneck (see the collectives
bench).  Against the trivial lower bound ``max(n - 2 + lambda,
f_lambda(n))`` the additive gap is ``O(log n * lambda)`` — the open
problem's remaining slack.
"""

from __future__ import annotations

import math
from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = [
    "bruck_rounds",
    "bruck_time",
    "bruck_schedule",
    "BruckAllgatherProtocol",
]


def bruck_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """Static event list of the Bruck allgather.

    Round ``r`` starts at ``T_r`` (``T_0 = 0``, ``T_{r+1} = T_r + s_r - 1
    + lambda``: the next round begins the instant the previous block's
    last rumor lands); within it, ``p_i`` sends rumors ``(i + o) mod n``
    — the message index — for ``o = 0 .. s_r - 1`` back-to-back to
    ``p_{(i - 2^r) mod n}``.  Sorted; empty for ``n == 1``.
    """
    lam_t = as_time(lam)
    events: list[SendEvent] = []
    t = Time(0)
    step = 1
    for size in bruck_rounds(n):
        for i in range(n):
            dst = (i - step) % n
            events.extend(
                SendEvent(t + offset, i, (i + offset) % n, dst)
                for offset in range(size)
            )
        t += (size - 1) + lam_t
        step *= 2
    events.sort()
    return events


def bruck_rounds(n: int) -> list[int]:
    """Block sizes ``s_r = min(2^r, n - 2^r)`` per round; their sum is
    ``n - 1``."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    sizes = []
    step = 1
    while step < n:
        sizes.append(min(step, n - step))
        step *= 2
    return sizes


def bruck_time(n: int, lam: TimeLike) -> Time:
    """Completion time ``(n - 1) + ceil(lg n)*(lambda - 1)`` (0 for
    ``n == 1``)."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    rounds = math.ceil(math.log2(n))
    return Time(n - 1) + rounds * (lam_t - 1)


class BruckAllgatherProtocol(Protocol):
    """Event-driven Bruck allgather for arbitrary ``n``.

    After the run, :attr:`known` maps every processor to its full
    ``{index: rumor}`` view.
    """

    name = "BRUCK-ALLGATHER"
    semantics = "allgather"

    def __init__(self, n: int, lam: TimeLike, *, rumors: list[Any] | None = None):
        super().__init__(n, 1, lam)
        self._rumors = list(rumors) if rumors is not None else list(range(n))
        if len(self._rumors) != n:
            raise ValueError(f"need exactly {n} rumors")
        self.known: dict[ProcId, dict[int, Any]] = {
            p: {p: self._rumors[p]} for p in range(n)
        }

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if self.n == 1:
            return None
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        n = self.n
        known = self.known[proc]
        step = 1
        for size in bruck_rounds(n):
            dst = (proc - step) % n
            # send my leading block {proc .. proc+size-1}; every rumor in
            # it arrived in earlier rounds, so no waiting is ever needed
            for offset in range(size):
                idx = (proc + offset) % n
                yield system.send(proc, dst, 0, payload=(idx, known[idx]))
            # receive the matching block from proc + step
            for _ in range(size):
                message = yield system.recv(proc)
                idx, value = message.payload
                known[idx] = value
            step *= 2
