"""Allreduce (combine + redistribute) in the postal model.

Every processor contributes a value; afterwards every processor holds the
combined result.  The natural composition is combine-then-broadcast —
partial values flow up the time-reversed generalized Fibonacci tree
(``f_lambda(n)``, optimal combining) and the result flows back down via
Algorithm BCAST (``f_lambda(n)``, optimal broadcast) — for a total of
exactly ``2 * f_lambda(n)``.

Lower bound context: any allreduce needs at least ``f_lambda(n)`` (some
processor must learn a function of all ``n`` inputs, which is combining)
plus at least ``lambda`` more to ship that result to anyone else, so the
composition is within a factor of 2 of optimal and asymptotically tight in
``n``.  Whether ``2 f_lambda(n)`` can be beaten in the postal model is
open, alongside gossiping (Section 5).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.algorithms.base import Protocol
from repro.core.bcast import BroadcastTree, bcast_schedule
from repro.core.fibfunc import postal_f
from repro.core.schedule import SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = [
    "allreduce_time",
    "allreduce_lower_bound",
    "allreduce_schedule",
    "AllreduceProtocol",
]


def allreduce_schedule(n: int, lam: TimeLike) -> list[SendEvent]:
    """Static event list of combine-then-broadcast allreduce.

    The combine half is the time-reversed BCAST schedule (partial value
    from ``receiver`` back to ``sender`` at ``f_lambda(n) - t - lambda``);
    the broadcast half is BCAST itself shifted by ``f_lambda(n)``.  All
    messages carry index 0 (one logical value travels).  Sorted; empty
    for ``n == 1``.
    """
    lam_t = as_time(lam)
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if n == 1:
        return []
    fwd = bcast_schedule(n, lam_t, validate=False)
    half = postal_f(lam_t, n)
    events = [
        SendEvent(half - ev.send_time - lam_t, ev.receiver, 0, ev.sender)
        for ev in fwd.events
    ]
    events.extend(
        SendEvent(ev.send_time + half, ev.sender, 0, ev.receiver)
        for ev in fwd.events
    )
    events.sort()
    return events


def allreduce_time(n: int, lam: TimeLike) -> Time:
    """Completion time of combine-then-broadcast: ``2 * f_lambda(n)``."""
    return 2 * postal_f(as_time(lam), n)


def allreduce_lower_bound(n: int, lam: TimeLike) -> Time:
    """``f_lambda(n) + lambda`` for ``n >= 2`` (combining is necessary;
    shipping the result somewhere costs at least ``lambda`` more)."""
    lam_t = as_time(lam)
    if n <= 1:
        return Time(0)
    return postal_f(lam_t, n) + lam_t


class AllreduceProtocol(Protocol):
    """Event-driven combine-then-broadcast allreduce.

    Structurally a :class:`~repro.collectives.reduce.ReduceProtocol`
    followed by a :class:`~repro.algorithms.bcast_protocol.BcastProtocol`
    fused into one per-processor program (the root pivots from combining
    to broadcasting the result with no idle time).  After the run,
    :attr:`results` maps every processor to the combined value.
    """

    name = "ALLREDUCE"
    semantics = "allreduce"

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        *,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        values: list[Any] | None = None,
    ):
        super().__init__(n, 1, lam)
        self._op = op
        self._values = list(values) if values is not None else list(range(n))
        if len(self._values) != n:
            raise ValueError(f"need exactly {n} initial values")
        self._tree = BroadcastTree.of(bcast_schedule(n, lam, validate=False))
        self._half = postal_f(self.lam, n)
        self.results: dict[ProcId, Any] = {}

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        env = system.env
        children = self._tree.children_of(proc)
        parent = self._tree.parent_of(proc)

        # ---- combine phase (time-reversed tree, paced like REDUCE)
        acc = self._values[proc]
        for _ in children:
            message = yield system.recv(proc)
            acc = self._op(acc, message.payload)
        if parent is not None:
            depart = self._half - self._tree.node(proc).informed_at
            gap = depart - env.now
            if gap > 0:
                yield env.timeout(gap)
            yield system.send(proc, parent, 0, payload=acc)
            # ---- broadcast phase (as recipient): the result comes back
            message = yield system.recv(proc)
            result = message.payload
        else:
            result = acc
        self.results[proc] = result
        # relay the result down the BCAST tree, children in send order
        for child in children:
            yield system.send(proc, child, 0, payload=result)
