"""The perf regression harness behind ``python -m repro bench``.

Measures end-to-end wall time of :func:`repro.postal.runner.run_protocol`
(``validate=False, collect=False`` — pure engine cost) for a fixed case
grid on **all three** execution backends (``exact``, ``turbo``, and
since ``/5`` the vectorized ``replay`` tier) and reports the
turbo-vs-exact and replay-vs-exact speedups per case.  The broadcast families cover the three structural
regimes — BCAST (single message, Fibonacci tree fan-out), PIPELINE-2
(multi-message pipelining, long per-processor send chains),
DTREE-BINARY (degree-bounded tree, mixed fan-out) — and since ``/3``
the grid also covers every :mod:`repro.collectives` workload: the
Theta(n^2)-delivery exchanges (ALLGATHER, BRUCK-ALLGATHER, ALLTOALL,
GOSSIP-RING) and the tree-shaped combines (REDUCE, ALLREDUCE, BARRIER).

Two grids:

* ``smoke`` — the CI gate: ``n`` up to ``10^4`` (BCAST and the tree
  collectives) / ``10^3`` (multi-message) / ``10^2`` (the quadratic
  exchanges); finishes in well under a minute.
* ``full``  — the nightly trajectory: broadcast families to
  ``n = 10^5``, tree collectives to ``10^4``, quadratic exchanges to
  ``3*10^2``.

Results serialize to the committed ``BENCH_turbo.json`` (schema
``repro-bench-turbo/6``; see ``docs/performance.md``).  Since ``/2`` the
document also records the runner (``cpu_count``, ``platform``), the
``jobs`` the sweep ran with, and a ``plan`` section benchmarking the
columnar plan layer (:mod:`repro.plan`) against classic event-object
schedule construction at BCAST ``n = 10^5``; ``/3`` adds the collective
cases and a second speedup gate; ``/4`` adds the ``resilience`` section
(:func:`bench_resilience`); ``/5`` adds a ``replay_s`` wall time per
case, the standalone ``replay`` gate section (:func:`bench_replay`),
and records ``effective_jobs`` next to the requested ``jobs``; ``/6``
adds the installed NumPy version (or ``null``) to the header and the
``bench_batch`` section (:func:`bench_batch`) gating the
:mod:`repro.batch` tier.  Seven checks gate CI:

* **speedup gate** — turbo must be at least :data:`GATE_MIN_SPEEDUP`
  times faster than exact for BCAST at ``n = 10^4`` (uniform integer
  latency), per the acceptance criterion of the turbo lane;
* **collective gate** — same bar for ALLGATHER at the 10^4-**send**
  scale, i.e. :data:`COLLECTIVE_GATE_CASE` ``n = 100`` (9,999 sends —
  the same event count as the BCAST gate).  The gate is deliberately
  stated in sends, not processors: allgather delivers Theta(n^2)
  messages, so ``n = 10^4`` *processors* would mean ~10^8 sends and
  hours of exact-engine wall time per measurement — not a CI gate.
  What CI must pin is the turbo lane's per-event advantage on the
  collective code path, which the 10^4-send point measures exactly as
  the BCAST gate does for broadcast;
* **replay gate** — the vectorized plan-replay tier
  (``backend="replay"``) must be at least
  :data:`REPLAY_GATE_MIN_SPEEDUP` times faster than exact for BCAST at
  ``n =`` :data:`REPLAY_GATE_N`.  The bar is an order of magnitude
  above the turbo gates because the tier skips the event loop entirely:
  a compiled plan replays as a handful of batched column passes, so
  anything *near* event-loop speed means the vectorization regressed;
* **batch gate** (``repro bench --batch``) — the :mod:`repro.batch`
  tier must beat a per-point ``run_protocol(backend="replay")`` sweep
  by :data:`BATCH_GATE_MIN_SPEEDUP` on the 64-point
  :func:`batch_grid`, and (NumPy installed) one strict replay at BCAST
  ``n = 10^5`` must run :data:`BATCH_KERNEL_GATE_MIN_SPEEDUP` faster
  under the kernels than under the pure-Python passes;
* **plan gate** — columnar construction must be at least
  :data:`PLAN_GATE_MIN_SPEEDUP` times faster and hold its events in at
  least :data:`PLAN_GATE_MIN_MEM_RATIO` times less storage than the
  event-object builder at BCAST ``n = 10^5``;
* **resilience gate** — every fault-injected recovery case at
  ``n =`` :data:`RESILIENCE_GATE_N` must (a) replay bit-identically
  when run twice with the same seed (trace + metrics digests equal),
  (b) come back certificate-clean (survivor lower bound, coverage,
  order preservation, exact fault accounting — see
  :mod:`repro.resilience.certify`), and (c) in the fault-free case
  honor the documented ``loss = 0`` ceiling ``f_lambda(n) + depth``.
  Deliberately *not* a wall-clock gate: fault realizations are exact,
  so the gate can be sharp where speedup gates must be loose — wall
  times are recorded informationally per case;
* **baseline comparison** — optionally, each measured wall time must not
  exceed the committed baseline's by more than a relative tolerance
  (default ±30%; wall clocks on shared CI runners are noisy, so the
  tolerance is deliberately loose and only *slower* is a failure).
  ``/1`` and ``/2`` baselines remain readable — the per-case layout is
  unchanged; cases they predate are simply skipped.

The grid itself can run sharded over worker processes (``run_bench(...,
jobs=N)``, ``repro bench --jobs N``): cases are independent and merge in
grid order, so the document is identical for any ``jobs`` — only the
wall clock changes.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Sequence

from repro.parallel import effective_jobs, parallel_map, warn_if_oversubscribed
from repro.types import Time, as_time, time_repr

__all__ = [
    "BATCH_GATE_MIN_SPEEDUP",
    "BATCH_KERNEL_GATE_N",
    "BATCH_KERNEL_GATE_MIN_SPEEDUP",
    "BenchCase",
    "BenchResult",
    "BASELINE_SCHEMAS",
    "COLLECTIVE_GATE_CASE",
    "COLLECTIVE_GATE_MIN_SPEEDUP",
    "GATE_CASE",
    "GATE_MIN_SPEEDUP",
    "PLAN_GATE_N",
    "PLAN_GATE_MIN_SPEEDUP",
    "PLAN_GATE_MIN_MEM_RATIO",
    "REPLAY_GATE_N",
    "REPLAY_GATE_MIN_SPEEDUP",
    "RESILIENCE_CASES",
    "RESILIENCE_GATE_N",
    "SCHEMA",
    "TUNE_GATE_POINTS",
    "TUNE_GATE_TOLERANCE",
    "batch_grid",
    "bench_batch",
    "bench_grid",
    "bench_plan_layer",
    "bench_replay",
    "bench_resilience",
    "bench_tune",
    "collective_gate_result",
    "compare_to_baseline",
    "format_results",
    "gate_result",
    "profile_case",
    "run_bench",
    "run_case",
    "to_json",
]

#: Schema tag written into every ``BENCH_turbo.json``.
SCHEMA = "repro-bench-turbo/7"

#: Schemas :func:`compare_to_baseline` accepts (the per-case layout has
#: been stable since ``/1``; ``/2`` added runner metadata and the plan
#: section, ``/3`` the collective cases and gate, ``/4`` the resilience
#: section, ``/5`` the per-case ``replay_s`` and the replay gate, ``/6``
#: the ``numpy`` header field and the ``bench_batch`` section, ``/7``
#: the ``bench_tune`` section — extra top-level keys and case fields
#: older readers simply ignore).
BASELINE_SCHEMAS = (
    "repro-bench-turbo/1",
    "repro-bench-turbo/2",
    "repro-bench-turbo/3",
    "repro-bench-turbo/4",
    "repro-bench-turbo/5",
    "repro-bench-turbo/6",
    "repro-bench-turbo/7",
)

#: The acceptance gate: ``(family, n)`` that must clear the speedup bar.
GATE_CASE = ("BCAST", 10_000)

#: Minimum turbo-vs-exact speedup required at :data:`GATE_CASE`.
GATE_MIN_SPEEDUP = 3.0

#: The collective acceptance gate: allgather at the 10^4-send scale
#: (``n = 100`` is 9,999 sends — the same event count as the BCAST gate;
#: see the module docstring for why the gate is stated in sends).
COLLECTIVE_GATE_CASE = ("ALLGATHER", 100)

#: Minimum turbo-vs-exact speedup at :data:`COLLECTIVE_GATE_CASE`.
COLLECTIVE_GATE_MIN_SPEEDUP = 3.0

#: The plan-layer gate case: BCAST at this ``n`` (single message).
PLAN_GATE_N = 100_000

#: Minimum columnar-vs-event construction speedup at the plan gate case.
PLAN_GATE_MIN_SPEEDUP = 3.0

#: Minimum event-storage ratio (event objects over plan columns).
PLAN_GATE_MIN_MEM_RATIO = 5.0

#: The replay gate case: BCAST at this ``n`` (single message) — the same
#: point as the plan gate, so the two sections describe the same plan.
REPLAY_GATE_N = 100_000

#: Minimum replay-vs-exact speedup at the replay gate case.  Deliberately
#: an order of magnitude above :data:`GATE_MIN_SPEEDUP`: the replay tier
#: has no event loop to pay for, so "only" event-loop-fast is a
#: regression of the vectorization itself.
REPLAY_GATE_MIN_SPEEDUP = 20.0

#: Minimum end-to-end batch-vs-per-point speedup on the 64-point grid
#: (see :func:`batch_grid`): the batch tier must beat a per-point
#: ``run_protocol(backend="replay")`` sweep at least this much.
BATCH_GATE_MIN_SPEEDUP = 3.0

#: Single-case NumPy-kernel gate point: BCAST at this ``n`` (the same
#: plan the replay and plan gates describe).
BATCH_KERNEL_GATE_N = 100_000

#: Minimum kernel-vs-pure-Python speedup of one strict replay at
#: :data:`BATCH_KERNEL_GATE_N` — enforced only when NumPy is installed
#: (the section records ``numpy: null`` and passes vacuously otherwise).
BATCH_KERNEL_GATE_MIN_SPEEDUP = 2.0

#: Auto-selection gate points: ``(n, m, lam)`` broadcast queries the
#: tuner must answer at least as well as the *worst* applicable fixed
#: family, and within :data:`TUNE_GATE_TOLERANCE` of the *best* one.
#: Completion times are exact rationals, so this gate is deterministic —
#: it measures decision quality, never wall clocks.
TUNE_GATE_POINTS = (
    (64, 1, "2"),
    (64, 4, "2"),
    (256, 1, "5/2"),
    (256, 4, "5/2"),
    (1024, 1, "2"),
    (1024, 2, "4"),
)

#: Relative slack over the best fixed family's exact completion time the
#: auto-selected family is allowed (the tuner ranks upper-bound families
#: by their bounds when calibration is capped, so "within 25% of
#: optimal" is the contract, "never worse than the worst" the floor).
TUNE_GATE_TOLERANCE = 0.25

#: Machine size for the resilience gate cases (recovery at n = 10^3 is
#: thousands of fault draws per case — enough to make a determinism or
#: accounting slip visible — while the doubled runs stay CI-cheap).
RESILIENCE_GATE_N = 1_000

#: Resilience gate cases as ``(loss, crash)`` pairs: the fault-free
#: ceiling check, a loss-only point, and a combined loss + crash point.
RESILIENCE_CASES = ((0.0, 0.0), (0.05, 0.0), (0.2, 0.05))

#: Per-family message counts used by the grid (``m`` scales work for the
#: multi-message families without drowning the run in parameters; the
#: collectives are all single-message protocols).
_FAMILY_M = {
    "BCAST": 1,
    "PIPELINE-2": 4,
    "DTREE-BINARY": 2,
    "ALLGATHER": 1,
    "BRUCK-ALLGATHER": 1,
    "ALLTOALL": 1,
    "GOSSIP-RING": 1,
    "REDUCE": 1,
    "ALLREDUCE": 1,
    "BARRIER": 1,
}

#: Uniform latency for every grid case — integer, so the gate measures
#: the common case (tick scale 1, no rescaling advantage for turbo).
_LAM = as_time(2)


@dataclass(frozen=True)
class BenchCase:
    """One grid point: a protocol family at machine size ``n``."""

    family: str
    n: int
    m: int
    lam: Time

    def protocol(self):
        """A *fresh* protocol instance (protocols hold run state)."""
        from repro.conformance.oracles import get_oracle

        return get_oracle(self.family).protocol(
            n=self.n, m=self.m, lam=self.lam
        )


@dataclass(frozen=True)
class BenchResult:
    """Measured wall times for one :class:`BenchCase`."""

    case: BenchCase
    exact_s: float
    turbo_s: float
    sends: int
    replay_s: float = 0.0

    @property
    def speedup(self) -> float:
        """Exact wall time over turbo wall time (higher is better)."""
        return self.exact_s / self.turbo_s if self.turbo_s > 0 else float("inf")

    @property
    def replay_speedup(self) -> float:
        """Exact wall time over replay wall time (higher is better)."""
        return (
            self.exact_s / self.replay_s if self.replay_s > 0 else float("inf")
        )


def bench_grid(mode: str = "smoke") -> list[BenchCase]:
    """The case grid for *mode* (``"smoke"`` or ``"full"``).

    Smoke keeps the multi-message families at ``n <= 10^3`` so the CI
    job stays fast while still exercising every family; BCAST goes to
    ``10^4`` because the acceptance gate is measured there, and the
    quadratic-delivery exchanges (ALLGATHER and friends: Theta(n^2)
    sends) stop at ``10^2`` — the collective gate's 10^4-send point.
    Full extends the broadcast families to ``10^5``, the tree-shaped
    collectives to ``10^4``, and the quadratic exchanges to ``3*10^2``
    (~9*10^4 sends each).
    """
    if mode not in ("smoke", "full"):
        raise ValueError(f"unknown bench mode {mode!r}")
    sizes: dict[str, Sequence[int]] = {
        "BCAST": (100, 1_000, 10_000),
        "PIPELINE-2": (100, 1_000),
        "DTREE-BINARY": (100, 1_000),
        "ALLGATHER": (100,),
        "BRUCK-ALLGATHER": (100,),
        "ALLTOALL": (100,),
        "GOSSIP-RING": (100,),
        "REDUCE": (1_000,),
        "ALLREDUCE": (1_000,),
        "BARRIER": (1_000,),
    }
    if mode == "full":
        sizes = {
            "BCAST": (100, 1_000, 10_000, 100_000),
            "PIPELINE-2": (100, 1_000, 10_000, 100_000),
            "DTREE-BINARY": (100, 1_000, 10_000, 100_000),
            "ALLGATHER": (100, 300),
            "BRUCK-ALLGATHER": (100, 300),
            "ALLTOALL": (100, 300),
            "GOSSIP-RING": (100, 300),
            "REDUCE": (1_000, 10_000),
            "ALLREDUCE": (1_000, 10_000),
            "BARRIER": (1_000, 10_000),
        }
    return [
        BenchCase(family, n, _FAMILY_M[family], _LAM)
        for family, ns in sizes.items()
        for n in ns
    ]


def _time_backend(case: BenchCase, backend: str) -> tuple[float, int]:
    """Best-of-repeats wall time of one backend on *case*.

    A fresh protocol is built per repetition (protocols are stateful).
    Small cases repeat until ~0.2 s of total measurement (max 5 reps)
    and report the minimum; anything slower than half a second runs
    once — repeating a 30 s exact run buys nothing.
    """
    from repro.postal.runner import run_protocol

    best = float("inf")
    total = 0.0
    sends = 0
    for _ in range(5):
        proto = case.protocol()
        t0 = time.perf_counter()
        result = run_protocol(
            proto, validate=False, collect=False, backend=backend
        )
        elapsed = time.perf_counter() - t0
        sends = result.sends
        best = min(best, elapsed)
        total += elapsed
        if elapsed >= 0.5 or total >= 0.2:
            break
    return best, sends


def run_case(case: BenchCase) -> BenchResult:
    """Measure *case* on all three backends.

    Every grid family has a registered plan compiler, so the replay tier
    runs for each case; its first repetition pays the (cached) plan
    compile, later repetitions measure pure replay — best-of keeps the
    warm number, which is what the tier costs in steady state.
    """
    exact_s, sends = _time_backend(case, "exact")
    turbo_s, turbo_sends = _time_backend(case, "turbo")
    replay_s, replay_sends = _time_backend(case, "replay")
    if turbo_sends != sends:  # pragma: no cover - equivalence suite's job
        raise AssertionError(
            f"{case.family} n={case.n}: backends disagree on send count "
            f"(exact {sends}, turbo {turbo_sends})"
        )
    if replay_sends != sends:  # pragma: no cover - equivalence suite's job
        raise AssertionError(
            f"{case.family} n={case.n}: backends disagree on send count "
            f"(exact {sends}, replay {replay_sends})"
        )
    return BenchResult(case, exact_s, turbo_s, sends, replay_s)


def run_bench(
    mode: str = "smoke",
    *,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
) -> list[BenchResult]:
    """Run the whole *mode* grid; *progress* gets one line per case.

    With ``jobs > 1`` the cases run across worker processes and merge
    back in grid order — measurements are per-case wall times either
    way, so the resulting document layout is identical (though parallel
    timings share cores and are noisier; the committed baseline is
    recorded serially).
    """
    grid = bench_grid(mode)
    warn_if_oversubscribed(jobs, what="bench")
    if jobs > 1:
        if progress is not None:
            progress(f"  {len(grid)} cases across {jobs} workers ...")
        return parallel_map(run_case, grid, jobs=jobs, chunksize=1)
    results = []
    for case in grid:
        if progress is not None:
            progress(
                f"  {case.family:<14} n={case.n:>7,} m={case.m} "
                f"lam={time_repr(case.lam)} ..."
            )
        results.append(run_case(case))
    return results


# ------------------------------------------------------------ plan layer


def _best_of(fn: Callable[[], object], *, budget_s: float = 0.5, reps: int = 3) -> float:
    """Minimum wall time of *fn* over up to *reps* calls (stop early once
    *budget_s* of total measurement is spent)."""
    best = float("inf")
    total = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        total += elapsed
        if total >= budget_s:
            break
    return best


def bench_plan_layer(*, n: int = PLAN_GATE_N, lam: Time = _LAM) -> dict:
    """Benchmark columnar plan construction against the event-object
    builder at BCAST size *n* (the ``"plan"`` section of the document).

    Times and memory are measured in separate passes (``tracemalloc``
    slows allocation-heavy code several-fold, so timing under it would
    flatter the allocation-light plan path).  ``storage`` is the memory
    holding the finished events: the materialized ``Schedule`` event
    tuple for the classic path (tracemalloc-retained bytes), the four
    integer columns (:attr:`~repro.plan.columns.SchedulePlan.nbytes`)
    for the plan.  The warm-cache row is the point of the cache: with
    the plan already resident, "construction" is one LRU lookup.
    """
    import tracemalloc

    from repro.core.bcast import bcast_schedule
    from repro.plan import PlanCache, build_plan, compile_plan

    lam = as_time(lam)

    # -- timing passes (no tracemalloc)
    events_build_s = _best_of(lambda: bcast_schedule(n, lam, validate=False))
    plan_build_s = _best_of(lambda: compile_plan("BCAST", n, 1, lam))
    cache = PlanCache(mode="mem")
    build_plan("BCAST", n, 1, lam, cache=cache)  # warm it
    plan_cached_s = _best_of(
        lambda: build_plan("BCAST", n, 1, lam, cache=cache), reps=5
    )

    # -- memory passes
    tracemalloc.start()
    schedule = bcast_schedule(n, lam, validate=False)
    events_storage, events_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del schedule
    tracemalloc.start()
    plan = compile_plan("BCAST", n, 1, lam)
    _, plan_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    construction_speedup = (
        events_build_s / plan_build_s if plan_build_s > 0 else float("inf")
    )
    storage_ratio = (
        events_storage / plan.nbytes if plan.nbytes > 0 else float("inf")
    )
    return {
        "family": "BCAST",
        "n": n,
        "m": 1,
        "lam": time_repr(lam),
        "events": len(plan),
        "events_build_s": round(events_build_s, 6),
        "plan_build_s": round(plan_build_s, 6),
        "plan_cached_s": round(plan_cached_s, 6),
        "events_storage_bytes": events_storage,
        "events_peak_bytes": events_peak,
        "plan_storage_bytes": plan.nbytes,
        "plan_peak_bytes": plan_peak,
        "construction_speedup": round(construction_speedup, 3),
        "storage_ratio": round(storage_ratio, 3),
        "gate": {
            "min_construction_speedup": PLAN_GATE_MIN_SPEEDUP,
            "min_storage_ratio": PLAN_GATE_MIN_MEM_RATIO,
            "ok": (
                construction_speedup >= PLAN_GATE_MIN_SPEEDUP
                and storage_ratio >= PLAN_GATE_MIN_MEM_RATIO
            ),
        },
    }


# ------------------------------------------------------------ replay tier


def bench_replay(*, n: int = REPLAY_GATE_N, lam: Time = _LAM) -> dict:
    """Benchmark the vectorized replay tier against both event-loop
    backends at BCAST size *n* (the ``"replay"`` section of the
    document).

    Three wall times for the same protocol run: the exact engine, the
    turbo event loop, and ``backend="replay"`` executing the compiled
    plan as batched column passes.  ``compile_s`` records the one-time
    plan compilation separately (steady-state replays hit the plan
    cache, so the per-run numbers are measured warm — same convention
    as :func:`bench_plan_layer`'s ``plan_cached_s`` row).  The gate is
    replay-vs-exact at :data:`REPLAY_GATE_MIN_SPEEDUP`.
    """
    from repro.plan import compile_plan

    lam = as_time(lam)
    case = BenchCase("BCAST", n, 1, lam)
    compile_s = _best_of(lambda: compile_plan("BCAST", n, 1, lam), reps=1)
    exact_s, sends = _time_backend(case, "exact")
    turbo_s, _ = _time_backend(case, "turbo")
    replay_s, replay_sends = _time_backend(case, "replay")
    if replay_sends != sends:  # pragma: no cover - equivalence suite's job
        raise AssertionError(
            f"BCAST n={n}: backends disagree on send count "
            f"(exact {sends}, replay {replay_sends})"
        )
    speedup = exact_s / replay_s if replay_s > 0 else float("inf")
    turbo_ratio = turbo_s / replay_s if replay_s > 0 else float("inf")
    return {
        "family": "BCAST",
        "n": n,
        "m": 1,
        "lam": time_repr(lam),
        "sends": sends,
        "exact_s": round(exact_s, 6),
        "turbo_s": round(turbo_s, 6),
        "replay_s": round(replay_s, 6),
        "compile_s": round(compile_s, 6),
        "speedup": round(speedup, 3),
        "turbo_ratio": round(turbo_ratio, 3),
        "gate": {
            "min_speedup": REPLAY_GATE_MIN_SPEEDUP,
            "ok": speedup >= REPLAY_GATE_MIN_SPEEDUP,
        },
    }


# ------------------------------------------------------------ batch tier


def batch_grid():
    """The 64-point batch gate grid: a BCAST size sweep and a
    PIPELINE-2 ``(n, m)`` grid, all at the integer gate latency — the
    same two broadcast regimes the case grid leans on (tree fan-out vs
    long per-processor send chains)."""
    from repro.batch import BatchPoint

    points = [
        BatchPoint("BCAST", n, 1, "2")
        for n in range(500, 16_500, 500)  # 32 sizes
    ]
    points.extend(
        BatchPoint("PIPELINE-2", n, m, "2")
        for n in (250, 500, 750, 1_000, 1_250, 1_500, 1_750, 2_000)
        for m in (2, 3, 4, 5)  # 8 x 4 = 32 points
    )
    return points


def _per_point_sweep(points) -> None:
    """The baseline the batch gate measures against: one full
    ``run_protocol(backend="replay")`` per point, exactly what the
    sweep drivers did before the batch tier."""
    from repro.conformance.oracles import get_oracle
    from repro.postal.runner import run_protocol

    for point in points:
        proto = get_oracle(point.family).protocol(
            n=point.n, m=point.m, lam=as_time(point.lam)
        )
        run_protocol(proto, validate=False, collect=False, backend="replay")


def bench_batch(*, jobs: int = 1, kernel_n: int = BATCH_KERNEL_GATE_N) -> dict:
    """The ``"bench_batch"`` section (schema ``/6``): two measurements,
    two gates.

    * **sweep gate** — wall time of the 64-point :func:`batch_grid`
      through :func:`repro.batch.run_batch` vs the per-point
      ``run_protocol(backend="replay")`` sweep it replaces, both with
      every plan already cached (the gate measures execution, not
      compilation).  Must clear :data:`BATCH_GATE_MIN_SPEEDUP`.
    * **kernel gate** — one strict BCAST replay at *kernel_n* with the
      NumPy kernels vs the pure-Python passes (forced via
      ``REPRO_NUMPY=off``).  Must clear
      :data:`BATCH_KERNEL_GATE_MIN_SPEEDUP` when NumPy is installed;
      records ``numpy: null`` and passes vacuously otherwise.
    """
    from repro.batch import run_batch
    from repro.batch.kernels import kernels_enabled, numpy_version
    from repro.plan import build_plan
    from repro.turbo.replay import replay_plan

    points = batch_grid()
    # warm the plan cache so neither side pays compilation
    for point in points:
        build_plan(point.family, point.n, point.m, as_time(point.lam))

    per_point_s = _best_of(lambda: _per_point_sweep(points), budget_s=2.0)
    batch_s = _best_of(lambda: run_batch(points, jobs=jobs), budget_s=2.0)
    speedup = per_point_s / batch_s if batch_s > 0 else float("inf")
    sweep_ok = speedup >= BATCH_GATE_MIN_SPEEDUP

    plan = build_plan("BCAST", kernel_n, 1, _LAM)
    kernel = {
        "family": "BCAST",
        "n": kernel_n,
        "m": 1,
        "lam": time_repr(_LAM),
        "numpy": numpy_version(),
    }
    saved = os.environ.get("REPRO_NUMPY")
    try:
        os.environ["REPRO_NUMPY"] = "off"
        python_s = _best_of(lambda: replay_plan(plan), budget_s=1.0, reps=5)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NUMPY", None)
        else:
            os.environ["REPRO_NUMPY"] = saved
    kernel["python_s"] = round(python_s, 6)
    if kernels_enabled():
        numpy_s = _best_of(lambda: replay_plan(plan), budget_s=1.0, reps=5)
        kernel_speedup = python_s / numpy_s if numpy_s > 0 else float("inf")
        kernel["numpy_s"] = round(numpy_s, 6)
        kernel["speedup"] = round(kernel_speedup, 3)
        kernel_ok = kernel_speedup >= BATCH_KERNEL_GATE_MIN_SPEEDUP
    else:
        kernel["numpy_s"] = None
        kernel["speedup"] = None
        kernel_ok = True  # no NumPy: the fallback *is* the implementation
    kernel["gate"] = {
        "min_speedup": BATCH_KERNEL_GATE_MIN_SPEEDUP,
        "ok": kernel_ok,
    }

    return {
        "points": len(points),
        "families": sorted({p.family for p in points}),
        "lam": time_repr(_LAM),
        "jobs": jobs,
        "per_point_s": round(per_point_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(speedup, 3),
        "kernel": kernel,
        "gate": {
            "min_speedup": BATCH_GATE_MIN_SPEEDUP,
            "sweep_ok": sweep_ok,
            "kernel_ok": kernel_ok,
            "ok": sweep_ok and kernel_ok,
        },
    }


# ------------------------------------------------------------- profiling


def profile_case(
    case: BenchCase, *, backend: str = "turbo", out: "str | None" = None
) -> str:
    """Run *case* once under :mod:`cProfile`; return a top-20 cumulative
    table and (optionally) dump the raw stats for ``snakeviz``/``pstats``.

    Follows the :mod:`repro.obs` exporter conventions: the artifact is
    written next to the results document under a self-describing name
    (``repro bench --profile`` passes ``<out>.profile.pstats``), and the
    human-readable view is returned as text for the caller to print —
    the function never writes to stdout itself.
    """
    import cProfile
    import io
    import pstats

    from repro.postal.runner import run_protocol

    proto = case.protocol()
    profiler = cProfile.Profile()
    profiler.enable()
    run_protocol(proto, validate=False, collect=False, backend=backend)
    profiler.disable()
    if out is not None:
        profiler.dump_stats(out)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(20)
    header = (
        f"profile: {case.family} n={case.n:,} m={case.m} "
        f"lam={time_repr(case.lam)} backend={backend}\n"
    )
    return header + buf.getvalue()


def bench_tune(points=TUNE_GATE_POINTS) -> dict:
    """The auto-selection gate: the ``bench_tune`` section.

    For every pinned broadcast point, measure the **exact** completion
    time of each applicable fixed family on the turbo lane, ask the
    tuner for its pick, and require the pick to be (a) no slower than
    the worst fixed family and (b) within :data:`TUNE_GATE_TOLERANCE`
    of the best.  Everything here is exact rational arithmetic — the
    gate is deterministic and machine-independent.
    """
    from repro.conformance.oracles import REGISTRY
    from repro.tune import measure, select_protocol

    rows = []
    all_ok = True
    for n, m, lam in points:
        lam_t = as_time(lam)
        completions = {
            fam: measure(fam, n, m, lam_t)[0]
            for fam, oracle in sorted(REGISTRY.items())
            if oracle.semantics == "broadcast"
            and oracle.applicable(n, m, lam_t)
        }
        auto = select_protocol("broadcast", n, m=m, lam=lam_t)
        auto_completion = completions[auto]
        best_family = min(completions, key=lambda f: (completions[f], f))
        worst_family = max(completions, key=lambda f: (completions[f], f))
        best = completions[best_family]
        worst = completions[worst_family]
        bar = best * (1 + Fraction(TUNE_GATE_TOLERANCE).limit_denominator())
        ok = auto_completion <= worst and auto_completion <= bar
        all_ok = all_ok and ok
        rows.append(
            {
                "n": n,
                "m": m,
                "lam": time_repr(lam_t),
                "auto": auto,
                "auto_completion": time_repr(auto_completion),
                "best_family": best_family,
                "best_completion": time_repr(best),
                "worst_family": worst_family,
                "worst_completion": time_repr(worst),
                "families": len(completions),
                "ok": ok,
            }
        )
    return {
        "points": rows,
        "gate": {
            "ok": all_ok,
            "tolerance": TUNE_GATE_TOLERANCE,
            "points": len(rows),
        },
    }


# ------------------------------------------------------------- reporting


def bench_resilience(
    *, n: int = RESILIENCE_GATE_N, lam: Time = _LAM, seed: int = 0
) -> dict:
    """The ``"resilience"`` section: fault-injected recovery runs over
    :data:`RESILIENCE_CASES`, each executed **twice** with the same seed.

    The gate is correctness-shaped, not wall-clock-shaped (fault
    realizations are exact, so it can be sharp on a noisy runner):

    * ``deterministic`` — both executions of every case produced equal
      results, trace/metrics digest included;
    * ``certified`` — every case passed the full inequality certificate
      (:func:`repro.resilience.certify.certify_resilient`);
    * ``within_depth`` — the fault-free case honored the documented
      ``loss = 0`` ceiling ``f_lambda(n) + depth``.

    Wall time of the first execution is recorded per case for the
    trajectory, but never gated.
    """
    from repro.resilience import run_resilient

    lam = as_time(lam)
    cases = []
    deterministic = True
    certified = True
    within_depth = True
    for loss, crash in RESILIENCE_CASES:
        keep: list = []
        t0 = time.perf_counter()
        first = run_resilient(
            n, lam, loss=loss, crash=crash, seed=seed, keep=keep
        )
        wall_s = time.perf_counter() - t0
        again = run_resilient(n, lam, loss=loss, crash=crash, seed=seed)
        deterministic = deterministic and first == again
        certified = certified and first.certified
        if loss == 0.0 and crash == 0.0:
            _, protocol, _ = keep[0]
            ceiling = first.fault_free + protocol.tree_depth
            within_depth = within_depth and first.completion <= ceiling
        row = first.row()
        row["wall_s"] = round(wall_s, 6)
        cases.append(row)
    return {
        "n": n,
        "lam": time_repr(lam),
        "seed": seed,
        "cases": cases,
        "gate": {
            "deterministic": deterministic,
            "certified": certified,
            "within_depth": within_depth,
            "ok": deterministic and certified and within_depth,
        },
    }


def gate_result(results: Iterable[BenchResult]) -> dict:
    """The acceptance-gate verdict over *results*.

    Returns a JSON-ready dict: the gate case, the bar, the measured
    speedup, and ``ok``.  Raises :class:`LookupError` if the grid did
    not include the gate case.
    """
    family, n = GATE_CASE
    for res in results:
        if res.case.family == family and res.case.n == n:
            return {
                "family": family,
                "n": n,
                "min_speedup": GATE_MIN_SPEEDUP,
                "speedup": round(res.speedup, 3),
                "ok": res.speedup >= GATE_MIN_SPEEDUP,
            }
    raise LookupError(f"bench grid did not include the gate case {GATE_CASE}")


def collective_gate_result(results: Iterable[BenchResult]) -> dict:
    """The collective acceptance-gate verdict over *results* — ALLGATHER
    at the 10^4-send point (:data:`COLLECTIVE_GATE_CASE`).  Same shape as
    :func:`gate_result`; raises :class:`LookupError` if the grid did not
    include the case."""
    family, n = COLLECTIVE_GATE_CASE
    for res in results:
        if res.case.family == family and res.case.n == n:
            return {
                "family": family,
                "n": n,
                "sends": res.sends,
                "min_speedup": COLLECTIVE_GATE_MIN_SPEEDUP,
                "speedup": round(res.speedup, 3),
                "ok": res.speedup >= COLLECTIVE_GATE_MIN_SPEEDUP,
            }
    raise LookupError(
        f"bench grid did not include the collective gate case "
        f"{COLLECTIVE_GATE_CASE}"
    )


def to_json(
    results: Sequence[BenchResult],
    *,
    mode: str,
    jobs: int = 1,
    plan: "dict | None" = None,
    resilience: "dict | None" = None,
    replay: "dict | None" = None,
    batch: "dict | None" = None,
    tune: "dict | None" = None,
) -> str:
    """Serialize *results* to the ``BENCH_turbo.json`` document.

    *plan* is the :func:`bench_plan_layer` section (measured separately
    because it benchmarks construction, not simulation); *resilience*
    the :func:`bench_resilience` section (correctness-gated, so its
    rows never enter the baseline wall-time diff); *replay* the
    :func:`bench_replay` section carrying the replay gate; *batch* the
    :func:`bench_batch` section carrying the batch-tier gates; *tune*
    the :func:`bench_tune` section carrying the (deterministic,
    exact-arithmetic) auto-selection gate; *jobs*
    records how the sweep was *requested* — the resolved worker count
    lands in ``effective_jobs`` (``jobs=0`` means one per CPU, so the
    two differ exactly when the request was left to the machine).
    Parallel timings share cores, so a baseline diff across different
    ``effective_jobs`` values deserves suspicion.  Since ``/6`` the
    header also records the installed NumPy version (or ``null``) —
    the replay wall times depend on whether the kernels ran, so a
    baseline diff should compare like with like.
    """
    from repro.batch.kernels import numpy_version

    doc = {
        "schema": SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy_version(),
        "jobs": jobs,
        "effective_jobs": effective_jobs(jobs),
        "cases": [
            {
                "family": r.case.family,
                "n": r.case.n,
                "m": r.case.m,
                "lam": time_repr(r.case.lam),
                "sends": r.sends,
                "exact_s": round(r.exact_s, 6),
                "turbo_s": round(r.turbo_s, 6),
                "replay_s": round(r.replay_s, 6),
                "speedup": round(r.speedup, 3),
                "replay_speedup": round(r.replay_speedup, 3),
            }
            for r in results
        ],
        "gate": gate_result(results),
        "collective_gate": collective_gate_result(results),
    }
    if plan is not None:
        doc["plan"] = plan
    if resilience is not None:
        doc["resilience"] = resilience
    if replay is not None:
        doc["replay"] = replay
    if batch is not None:
        doc["bench_batch"] = batch
    if tune is not None:
        doc["bench_tune"] = tune
    return json.dumps(doc, indent=2) + "\n"


def compare_to_baseline(
    results: Sequence[BenchResult],
    baseline: dict,
    *,
    tolerance: float = 0.30,
) -> list[str]:
    """Regressions of *results* against a committed *baseline* document.

    A case regresses when its fresh wall time exceeds the baseline's by
    more than *tolerance* (relative), on any backend.  Cases missing
    from the baseline are skipped (the grid may grow); being *faster*
    is never a failure.  Returns human-readable regression lines.

    Baselines in any of :data:`BASELINE_SCHEMAS` are accepted — ``/1``
    files predate the runner metadata and plan section but share the
    per-case layout; pre-``/5`` files have no ``replay_s``, so the
    replay column is only diffed when the baseline recorded it.
    """
    if baseline.get("schema") not in BASELINE_SCHEMAS:
        raise ValueError(
            f"baseline schema {baseline.get('schema')!r} not in "
            f"{BASELINE_SCHEMAS!r}"
        )
    base = {
        (c["family"], c["n"], c["m"], c["lam"]): c
        for c in baseline.get("cases", [])
    }
    regressions: list[str] = []
    for r in results:
        key = (r.case.family, r.case.n, r.case.m, time_repr(r.case.lam))
        ref = base.get(key)
        if ref is None:
            continue
        for label, fresh, committed in (
            ("exact", r.exact_s, ref["exact_s"]),
            ("turbo", r.turbo_s, ref["turbo_s"]),
            ("replay", r.replay_s, ref.get("replay_s", 0.0)),
        ):
            if committed > 0 and fresh > committed * (1.0 + tolerance):
                regressions.append(
                    f"{r.case.family} n={r.case.n} [{label}]: "
                    f"{fresh:.4f}s vs baseline {committed:.4f}s "
                    f"(+{(fresh / committed - 1.0):.0%} > "
                    f"{tolerance:.0%} tolerance)"
                )
    return regressions


def format_results(results: Sequence[BenchResult]) -> str:
    """Fixed-width table of the measured grid."""
    from repro.report.tables import format_table

    rows = [
        [
            r.case.family,
            f"{r.case.n:,}",
            str(r.case.m),
            f"{r.sends:,}",
            f"{r.exact_s:.4f}",
            f"{r.turbo_s:.4f}",
            f"{r.replay_s:.4f}",
            f"{r.speedup:.2f}x",
            f"{r.replay_speedup:.2f}x",
        ]
        for r in results
    ]
    return format_table(
        [
            "family",
            "n",
            "m",
            "sends",
            "exact (s)",
            "turbo (s)",
            "replay (s)",
            "turbo x",
            "replay x",
        ],
        rows,
    )
