"""Exact time arithmetic and shared type aliases for the postal model.

The postal model is defined over *real* time: the latency ``lambda`` may be
any real number ``>= 1`` (the paper's running example uses ``lambda = 2.5``),
and the generalized Fibonacci function ``F_lambda`` is a step function over
the nonnegative reals.  Floating-point time would make "does the simulated
completion time equal ``f_lambda(n)``" a tolerance question; with
:class:`fractions.Fraction` it is exact equality.  Every module in this
library therefore represents time as a ``Fraction``.

Public helpers:

* :func:`as_time` — canonical conversion of user input (int/float/str/
  Fraction/Decimal) to an exact ``Fraction``.
* :data:`TimeLike` — what :func:`as_time` accepts.
* :func:`time_repr` — compact human-readable rendering (``5/2`` -> ``2.5``).
"""

from __future__ import annotations

import numbers
from decimal import Decimal
from fractions import Fraction
from typing import Union

__all__ = [
    "Time",
    "TimeLike",
    "ProcId",
    "ZERO",
    "ONE",
    "as_time",
    "time_repr",
    "is_integral",
]

#: Exact simulation / model time.
Time = Fraction

#: Values accepted anywhere a time or latency is expected.
TimeLike = Union[int, float, str, Fraction, Decimal]

#: Processor identifier: processors are numbered ``0 .. n-1`` as in the paper.
ProcId = int

ZERO: Time = Fraction(0)
ONE: Time = Fraction(1)


def as_time(value: TimeLike) -> Time:
    """Convert *value* to an exact :class:`~fractions.Fraction` time.

    Floats convert exactly (every binary float is a dyadic rational), so
    ``as_time(2.5) == Fraction(5, 2)``.  Strings are parsed by ``Fraction``
    itself and may be of the form ``"5/2"`` or ``"2.5"``.

    Raises:
        TypeError: if *value* is not a real number or string.
        ValueError: if *value* is NaN or infinite.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid time value")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"time must be finite, got {value!r}")
        return Fraction(value)
    if isinstance(value, Decimal):
        if not value.is_finite():
            raise ValueError(f"time must be finite, got {value!r}")
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, numbers.Real):
        return Fraction(float(value))
    raise TypeError(f"cannot interpret {value!r} as a time value")


def is_integral(t: Time) -> bool:
    """True if *t* is an integer-valued time."""
    return t.denominator == 1


def time_repr(t: Time) -> str:
    """Render *t* compactly: integers as ``7``, halves/quarters as decimals
    when the decimal form is short, otherwise as ``p/q``."""
    if t.denominator == 1:
        return str(t.numerator)
    # powers of 2 and 5 have a finite decimal expansion
    den = t.denominator
    while den % 2 == 0:
        den //= 2
    while den % 5 == 0:
        den //= 5
    if den == 1:
        text = f"{float(t):g}"
        # guard against float rounding for very large numerators
        if Fraction(text) == t:
            return text
    return f"{t.numerator}/{t.denominator}"
