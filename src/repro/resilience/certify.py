"""Inequality certificates for fault-injected runs.

Under faults the paper's *exact* oracles weaken to *inequalities*.  A
fault-free BCAST run must finish at exactly ``f_lambda(n)``
(Theorem 6); a faulted recovery run is instead certified against:

* **survivor lower bound** — with ``s >= 2`` survivors and ``m``
  messages, completion ``T >= (m - 1) + f_lambda(s)``: the survivors
  operate under the same port and latency constraints as an
  ``MPS(s, lambda)`` (crashed processors perform nothing and carry
  nothing), so Lemma 8's bound over the *live* machine applies.  With
  no crashes this is exactly the issue's fault-free floor
  ``T >= (m - 1) + f_lambda(n)``.
* **survivor coverage** — every survivor holds all ``m`` messages.
* **order preservation** — every non-root survivor's first arrivals
  are strictly increasing in message index (stop-and-wait per edge
  forwards ``k + 1`` only after ``k`` is acknowledged).
* **silence of the dead** — no logged send has a crashed source, no
  delivery a crashed destination.
* **exact fault accounting** — the plan's self-accounting matches the
  system's realized counters draw for draw (the chaos-mutation
  discipline from :mod:`repro.conformance.chaos`).
* **fault-free ceiling** — when no fault fired and ``m = 1``, the
  documented ``loss = 0`` claim of :mod:`repro.extensions.faulty`
  must hold: ``T <= f_lambda(n) + depth``.

Violations come back as strings (never raised), the
:func:`repro.conformance.certify.certify_config` convention.
"""

from __future__ import annotations

from repro.core.fibfunc import postal_f
from repro.resilience.recovery import ResilientBcastProtocol
from repro.resilience.turbofault import FaultyTurboSystem
from repro.types import Time, time_repr

__all__ = ["certify_resilient", "survivor_bound"]


def survivor_bound(lam, s: int, m: int = 1) -> Time:
    """The faulted lower bound ``(m - 1) + f_lambda(s)`` (``0`` when
    fewer than two survivors — Lemma 8 needs someone to inform)."""
    if s < 2:
        return Time(0)
    return (m - 1) + Time(postal_f(lam, s))


def certify_resilient(
    protocol: ResilientBcastProtocol,
    system: FaultyTurboSystem,
) -> tuple[str, ...]:
    """Check every resilience invariant; return violations (empty = ok)."""
    plan = system.plan
    m = protocol.m
    violations: list[str] = []

    # -- survivor coverage + order preservation
    completion = Time(0)
    for proc in plan.survivors:
        arrivals = protocol.arrivals.get(proc)
        if arrivals is None or len(arrivals) < m:
            got = sorted(arrivals) if arrivals else []
            violations.append(
                f"survivor p{proc} missing messages: has {got}, needs 0..{m - 1}"
            )
            continue
        times = [arrivals[k] for k in range(m)]
        if proc != protocol.root and any(
            b <= a for a, b in zip(times, times[1:])
        ):
            violations.append(
                f"order violated at survivor p{proc}: first arrivals "
                f"{[time_repr(t) for t in times]} not strictly increasing"
            )
        last = max(times)
        if last > completion:
            completion = last

    # -- lower bound over the live machine
    bound = survivor_bound(plan.lam, plan.survivor_count, m)
    if not violations and completion < bound:
        violations.append(
            f"completion {time_repr(completion)} beats the survivor lower "
            f"bound {time_repr(bound)} = (m-1) + f_lambda({plan.survivor_count})"
        )

    # -- silence of the dead (scan the columnar log's packed rows directly)
    from repro.turbo.runlog import DELIVER, SEND, SEND_RETRANSMIT

    for code, _tick, a, b, _c in system._log.rows():
        if (code == SEND or code == SEND_RETRANSMIT) and (
            plan.crashed_at(a) is not None
        ):
            violations.append(f"crashed p{a} performed a send")
            break
        if code == DELIVER and plan.crashed_at(b) is not None:
            violations.append(f"crashed p{b} received a delivery")
            break

    # -- exact fault accounting
    if system.send_count != plan.draws:
        violations.append(
            f"fault accounting: {system.send_count} sends logged but "
            f"{plan.draws} draws consumed"
        )
    if system.dropped != plan.drops_drawn:
        violations.append(
            f"fault accounting: {system.dropped} losses applied but "
            f"{plan.drops_drawn} drawn"
        )
    expected_deliveries = (
        system.send_count - system.dropped - system.crash_suppressed_deliveries
    )
    if system.delivery_count != expected_deliveries:
        violations.append(
            f"fault accounting: {system.delivery_count} deliveries != "
            f"{system.send_count} sends - {system.dropped} losses - "
            f"{system.crash_suppressed_deliveries} crash-suppressed"
        )

    # -- fault-free ceiling (the extensions/faulty loss=0 claim)
    if not plan.active and m == 1 and not violations:
        ceiling = Time(postal_f(plan.lam, plan.n)) + protocol.tree_depth
        if completion > ceiling:
            violations.append(
                f"fault-free completion {time_repr(completion)} exceeds "
                f"f_lambda(n) + depth = {time_repr(ceiling)}"
            )

    return tuple(violations)
