"""Degradation curves: completion time vs loss / crash rate.

The sweep follows the conformance fuzzer's sharding discipline: every
``(loss, crash)`` point derives its own seed with
:func:`repro.parallel.derive_seed` from the master seed and the point's
identity, so the realized faults of one point are independent of which
worker runs it and of how the grid is chunked — ``--jobs 1`` and
``--jobs 4`` produce byte-identical rows (digests included), which
``tests/test_resilience_determinism.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.parallel import derive_seed, parallel_map, warn_if_oversubscribed
from repro.resilience.runner import ResilienceResult, run_resilient
from repro.types import TimeLike, as_time, time_repr

__all__ = [
    "DEFAULT_LOSS_RATES",
    "DEFAULT_CRASH_RATES",
    "degradation_curve",
    "format_curve",
]

DEFAULT_LOSS_RATES = (0.0, 0.05, 0.1, 0.2)
DEFAULT_CRASH_RATES = (0.0, 0.05)


@dataclass(frozen=True)
class _PointSpec:
    """One sweep point, primitive-typed so workers unpickle it cheaply."""

    n: int
    lam: str
    m: int
    loss: float
    crash: float
    jitter: str
    seed: int  # already derived for this point
    detector: str
    max_retries: int


def _run_point(spec: _PointSpec) -> ResilienceResult:
    return run_resilient(
        spec.n,
        spec.lam,
        m=spec.m,
        loss=spec.loss,
        crash=spec.crash,
        jitter=spec.jitter,
        seed=spec.seed,
        detector=spec.detector,
        max_retries=spec.max_retries,
    )


def degradation_curve(
    n: int,
    lam: TimeLike,
    *,
    m: int = 1,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    crash_rates: Sequence[float] = DEFAULT_CRASH_RATES,
    jitter: TimeLike = 0,
    seed: int = 0,
    detector: str = "timeout",
    max_retries: int = 8,
    jobs: int = 1,
) -> list[ResilienceResult]:
    """Sweep the ``crash_rates x loss_rates`` grid (crash-major order).

    Each point runs with ``derive_seed(seed, "resilience", n, lam,
    loss, crash)`` — the same point always replays the same faults, in
    any grid and on any worker.
    """
    lam_str = time_repr(as_time(lam))
    jitter_str = time_repr(as_time(jitter))
    specs = [
        _PointSpec(
            n=n,
            lam=lam_str,
            m=m,
            loss=loss,
            crash=crash,
            jitter=jitter_str,
            seed=derive_seed(seed, "resilience", n, lam_str, repr(loss), repr(crash)),
            detector=detector,
            max_retries=max_retries,
        )
        for crash in crash_rates
        for loss in loss_rates
    ]
    warn_if_oversubscribed(jobs, what="resilience curve")
    return parallel_map(_run_point, specs, jobs=jobs, chunksize=1)


def format_curve(results: Sequence[ResilienceResult]) -> str:
    """The degradation table the CLI prints.

    >>> rows = degradation_curve(14, 2, loss_rates=(0.0,), crash_rates=(0.0,))
    >>> print(format_curve(rows).splitlines()[0])
     loss  crash  survivors  completion   ratio  drops  retrans  adopted  cert
    """
    header = (
        f"{'loss':>5}  {'crash':>5}  {'survivors':>9}  {'completion':>10}  "
        f"{'ratio':>6}  {'drops':>5}  {'retrans':>7}  {'adopted':>7}  cert"
    )
    lines = [header]
    for r in results:
        lines.append(
            f"{r.loss:>5.2f}  {r.crash:>5.2f}  "
            f"{f'{r.survivors}/{r.n}':>9}  "
            f"{time_repr(r.completion):>10}  "
            f"{r.ratio:>5.2f}x  "
            f"{r.loss_drops + r.crash_drops:>5}  "
            f"{r.retransmissions:>7}  "
            f"{len(r.adoptions):>7}  "
            f"{'ok' if r.certified else 'FAIL'}"
        )
    return "\n".join(lines)
