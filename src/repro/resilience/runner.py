"""Drive one resilient broadcast over a faulted turbo machine.

:func:`run_resilient` compiles a :class:`~repro.resilience.faultplan
.FaultPlan`, runs :class:`~repro.resilience.recovery
.ResilientBcastProtocol` on a :class:`~repro.resilience.turbofault
.FaultyTurboSystem` under the queued contention policy (retransmissions
make receive collisions inevitable, as on a real NIC), certifies the
result, and folds everything into a picklable
:class:`ResilienceResult` — the unit the degradation-curve sweep, the
bench section, and the CLI all share.

Bit-reproducibility contract: the result embeds a SHA-256
:attr:`~ResilienceResult.digest` over the *entire* materialized trace
(sends with retransmit tags, deliveries, consumes, drops with reasons)
plus the run metrics.  Two runs agree on faults, timing, and
observability output iff their digests agree — the strongest practical
form of "byte-identical traces and metrics" and what the determinism
regression suite compares.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Iterable

from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.obs.metrics import MetricsCollector
from repro.postal.machine import ContentionPolicy
from repro.postal.message import Message
from repro.resilience.certify import certify_resilient, survivor_bound
from repro.resilience.faultplan import FaultPlan
from repro.resilience.recovery import ResilientBcastProtocol
from repro.resilience.turbofault import FaultyTurboSystem, build_faulty_turbo
from repro.types import ProcId, Time, TimeLike, ZERO, as_time, time_repr

__all__ = ["ResilienceResult", "run_resilient", "trace_digest"]


def _canon(data: Any) -> Any:
    """A stable, hashable projection of one trace payload."""
    if isinstance(data, Message):
        return (
            "msg",
            data.msg,
            data.src,
            data.dst,
            time_repr(data.sent_at),
            time_repr(data.arrived_at),
            repr(data.payload),
        )
    if isinstance(data, dict):
        return tuple(
            (key, _canon(value)) for key, value in sorted(data.items())
        )
    if isinstance(data, Time):
        return time_repr(data)
    return data


def trace_digest(system: FaultyTurboSystem) -> str:
    """SHA-256 over the run's full trace and metrics (flushes the log)."""
    collector = MetricsCollector()
    tracer = system.flush_trace()
    collector.attach(tracer)  # replay=True folds the flushed records in
    metrics = collector.finalize(n=system.n, lam=system.lam)
    collector.detach()
    h = hashlib.sha256()
    for rec in tracer.records():
        h.update(repr((time_repr(rec.time), rec.kind, _canon(rec.data))).encode())
    h.update(repr(sorted(metrics.to_dict().items(), key=lambda kv: kv[0])).encode())
    return h.hexdigest()


@lru_cache(maxsize=256)
def _replayed_fault_free(n: int, lam: Time) -> Time:
    """Completion of the compiled BCAST plan at ``(n, lam)``, executed by
    the vectorized replay tier (:mod:`repro.turbo.replay`).

    This is the *empirical* side of the fault-free optimum: Theorem 6
    says the optimal single-message broadcast finishes at exactly
    ``f_lambda(n)``, and the replayed plan realizes that schedule, so
    the two must agree.  Cached per ``(n, lam)`` — a degradation-curve
    sweep calls :func:`run_resilient` many times at one machine size.
    """
    from repro.plan import build_plan
    from repro.turbo.replay import replay_plan

    return replay_plan(build_plan("BCAST", n, 1, lam)).completion_time


@dataclass(frozen=True)
class ResilienceResult:
    """One certified resilient run, fully picklable (curve workers ship
    these across processes)."""

    n: int
    m: int
    lam: Time
    loss: float
    crash: float
    jitter: Time
    seed: int
    detector: str
    crashed: tuple[ProcId, ...]
    survivors: int
    completion: Time
    fault_free: Time  #: (m-1) + f_lambda(n): the no-fault optimum
    bound: Time  #: (m-1) + f_lambda(survivors): the faulted floor
    sends: int
    deliveries: int
    loss_drops: int
    crash_drops: int
    suppressed_sends: int
    retransmissions: int  #: system-level: repeated (src, dst, msg) triples
    data_retransmissions: int  #: protocol-level: extra data sends only
    adoptions: tuple[tuple[ProcId, ProcId], ...]  #: (orphan, adopter)
    declared_dead: tuple[ProcId, ...]
    violations: tuple[str, ...]
    digest: str = field(default="")

    @property
    def certified(self) -> bool:
        """All resilience invariants held."""
        return not self.violations

    @property
    def ratio(self) -> float:
        """Degradation: completion over the fault-free optimum."""
        if self.fault_free <= 0:
            return 1.0
        return float(self.completion / self.fault_free)

    def row(self) -> dict:
        """A JSON-ready projection (the bench / curve table row)."""
        return {
            "n": self.n,
            "m": self.m,
            "lam": time_repr(self.lam),
            "loss": self.loss,
            "crash": self.crash,
            "jitter": time_repr(self.jitter),
            "seed": self.seed,
            "detector": self.detector,
            "survivors": self.survivors,
            "completion": time_repr(self.completion),
            "fault_free": time_repr(self.fault_free),
            "bound": time_repr(self.bound),
            "ratio": round(self.ratio, 4),
            "sends": self.sends,
            "deliveries": self.deliveries,
            "loss_drops": self.loss_drops,
            "crash_drops": self.crash_drops,
            "retransmissions": self.retransmissions,
            "adoptions": len(self.adoptions),
            "certified": self.certified,
            "digest": self.digest,
        }


def run_resilient(
    n: int,
    lam: TimeLike,
    *,
    m: int = 1,
    loss: float = 0.0,
    crash: float = 0.0,
    jitter: TimeLike = 0,
    crashed: Iterable[ProcId] | None = None,
    seed: int = 0,
    detector: str = "timeout",
    rto: TimeLike | None = None,
    backoff: int = 2,
    max_backoff: int = 8,
    max_retries: int = 8,
    plan: FaultPlan | None = None,
    keep: list | None = None,
) -> ResilienceResult:
    """Run, certify, and summarize one resilient broadcast.

    Pass a pre-compiled *plan* to reuse a sampled crash set; otherwise
    one is compiled from the fault arguments.  *keep*, when given an
    empty list, receives ``(system, protocol, plan)`` for callers that
    need the live objects (the CLI's trace export, tests) — the result
    itself stays picklable.

    Raises:
        InvalidParameterError: invalid rates, a crashed root, a plan
            with mid-run crash ticks (the recovery guarantee is stated
            for initially-dead processors only).
        TickDomainError: *jitter* off the run's tick grid.
    """
    if plan is None:
        plan = FaultPlan.compile(
            n, lam, loss=loss, crash=crash, jitter=jitter,
            crashed=crashed, seed=seed,
        )
    lam = as_time(lam)
    for proc in plan.crashed:
        if plan.crashed_at(proc) != 0:
            raise InvalidParameterError(
                f"p{proc} crashes at tick {plan.crashed_at(proc)}: the "
                "recovery guarantee covers initially dead processors "
                "(crash tick 0) only"
            )
    protocol = ResilientBcastProtocol(
        n, lam, m=m, rto=rto, backoff=backoff,
        max_backoff=max_backoff, max_retries=max_retries, detector=detector,
    )
    system = build_faulty_turbo(plan, policy=ContentionPolicy.QUEUED)
    env = system.env
    for proc in range(n):
        gen = protocol.program(proc, system)
        if gen is not None:
            env.process(gen)
    env.run()

    violations = certify_resilient(protocol, system)
    fault_free = (m - 1) + Time(postal_f(lam, n))
    if m == 1 and n >= 2:
        # cross-check the closed form against the replayed BCAST plan —
        # the faulted run is certified *relative to* this optimum, so a
        # drifting f_lambda would silently skew every ratio and bound
        replayed = _replayed_fault_free(n, lam)
        if replayed != fault_free:
            violations = violations + (
                f"fault-free cross-check: replayed BCAST plan completes "
                f"at {time_repr(replayed)} but f_lambda({n}) = "
                f"{time_repr(fault_free)}",
            )
    completion = ZERO
    for proc in plan.survivors:
        arrivals = protocol.arrivals.get(proc)
        if arrivals:
            last = max(arrivals.values())
            if last > completion:
                completion = last
    result = ResilienceResult(
        n=n,
        m=m,
        lam=lam,
        loss=plan.loss,
        crash=plan.crash,
        jitter=plan.jitter,
        seed=plan.seed,
        detector=detector,
        crashed=plan.crashed,
        survivors=plan.survivor_count,
        completion=completion,
        fault_free=fault_free,
        bound=survivor_bound(lam, plan.survivor_count, m),
        sends=system.send_count,
        deliveries=system.delivery_count,
        loss_drops=system.dropped,
        crash_drops=system.crash_suppressed_deliveries,
        suppressed_sends=system.crash_suppressed_sends,
        retransmissions=system.retransmissions,
        data_retransmissions=protocol.data_retransmissions,
        adoptions=tuple(sorted(protocol.adoptions.items())),
        declared_dead=tuple(sorted(protocol.declared_dead)),
        violations=violations,
        digest=trace_digest(system),
    )
    if keep is not None:
        keep.append((system, protocol, plan))
    return result
