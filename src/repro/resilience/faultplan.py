"""Seeded, replayable fault plans for the turbo lane.

A :class:`FaultPlan` is the fault-injection twin of a columnar
:class:`~repro.plan.columns.SchedulePlan`: it is *compiled* next to the
run (same ``n``, same :class:`~repro.turbo.ticks.TickDomain`) and then
consumed inside the flat tick/seq event loop, one draw per attempted
transmission.  Three fault classes compose:

* **crash-stop processors** — a seeded subset of non-root processors is
  dead from tick 0 ("initially dead" in the classical fault taxonomy):
  they send nothing and receive nothing.  The broadcast root is never
  crashed — with a dead originator there is no broadcast to measure.
* **per-edge message drops** — each transmission on edge ``(src, dst)``
  is lost independently with probability ``loss``, drawn from a stream
  owned by that edge.
* **latency jitter** — each delivered transmission is delayed by an
  extra ``0..jitter`` of latency, quantized to the run's tick grid
  (an off-grid ``jitter`` raises
  :class:`~repro.errors.TickDomainError`, the same exact-or-loud
  contract the turbo lane applies to latencies and timeouts).

Determinism is structural, not accidental: every stream is derived from
the master seed with :func:`repro.parallel.derive_seed` — the crash set
from ``(seed, "crash")``, edge ``(src, dst)`` from
``(seed, "edge", src, dst)`` — and each edge stream is consumed in send
order inside the single-threaded turbo loop.  Two runs with the same
seed replay the same faults byte for byte, independent of worker count
or host; see ``tests/test_resilience_determinism.py``.

The plan keeps *self-accounting* counters (``draws``, ``drops_drawn``,
``jitter_ticks_drawn``) in the style of the conformance chaos
mutations: the certificate in :mod:`repro.resilience.certify`
cross-checks them against the system's realized counters, so a fault
that is drawn but not applied (or applied but not drawn) can never pass
silently.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.errors import InvalidParameterError
from repro.parallel import derive_seed
from repro.types import ProcId, Time, TimeLike, ZERO, as_time, time_repr
from repro.turbo.ticks import TickDomain

__all__ = ["FaultPlan"]


class FaultPlan:
    """A compiled, seeded fault schedule for one turbo run.

    Build one with :meth:`compile`; the direct constructor is the
    low-level entry for callers that already hold a tick domain and an
    explicit crash map (ticks, not times).

    >>> plan = FaultPlan.compile(8, "5/2", loss=0.25, crash=0.3, seed=7)
    >>> plan.crashed
    (1, 2, 4)
    >>> plan.survivor_count
    5
    >>> plan.crashed_at(0) is None   # the root never crashes
    True
    """

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        domain: TickDomain,
        *,
        loss: float = 0.0,
        crash: float = 0.0,
        jitter_ticks: int = 0,
        crash_ticks: Mapping[ProcId, int] | None = None,
        seed: int = 0,
        root: ProcId = 0,
    ):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 processors, got {n}")
        if not 0 <= root < n:
            raise InvalidParameterError(f"root p{root} outside 0..{n - 1}")
        if not 0.0 <= loss < 1.0:
            raise InvalidParameterError(
                f"loss must be a probability in [0, 1), got {loss!r}"
            )
        if not 0.0 <= crash < 1.0:
            raise InvalidParameterError(
                f"crash must be a probability in [0, 1), got {crash!r}"
            )
        if jitter_ticks < 0:
            raise InvalidParameterError(
                f"jitter must be nonnegative, got {jitter_ticks} ticks"
            )
        self.n = n
        self.lam = as_time(lam)
        self.domain = domain
        self.loss = loss
        self.crash = crash
        self.jitter_ticks = jitter_ticks
        self.seed = seed
        self.root = root
        self._crash_ticks: dict[ProcId, int] = {}
        if crash_ticks:
            for proc, tick in crash_ticks.items():
                if not 0 <= proc < n:
                    raise InvalidParameterError(
                        f"crashed processor p{proc} outside 0..{n - 1}"
                    )
                if proc == root:
                    raise InvalidParameterError(
                        f"the broadcast root p{root} cannot crash — a dead "
                        "originator leaves nothing to broadcast or measure"
                    )
                if tick < 0:
                    raise InvalidParameterError(
                        f"crash tick for p{proc} must be >= 0, got {tick}"
                    )
                self._crash_ticks[int(proc)] = int(tick)
        # self-accounting (cross-checked by the resilience certificate)
        self.draws = 0
        self.drops_drawn = 0
        self.jitter_ticks_drawn = 0
        self._edge_rngs: dict[tuple[ProcId, ProcId], random.Random] = {}

    # ------------------------------------------------------------ compile

    @classmethod
    def compile(
        cls,
        n: int,
        lam: TimeLike,
        *,
        loss: float = 0.0,
        crash: float = 0.0,
        jitter: TimeLike = 0,
        crashed: Iterable[ProcId] | None = None,
        seed: int = 0,
        root: ProcId = 0,
        domain: TickDomain | None = None,
    ) -> "FaultPlan":
        """Compile a fault plan next to a turbo run.

        Args:
            loss: per-transmission drop probability in ``[0, 1)``.
            crash: per-processor crash-stop probability in ``[0, 1)``;
                the crash set is sampled once at compile time from the
                stream ``derive_seed(seed, "crash")`` (the root is drawn
                for stream stability but never crashed).
            jitter: maximum extra latency per delivered transmission;
                must sit on the run's tick grid (for the default domain
                that is the grid ``lam`` induces — ``jitter="1/3"``
                with ``lam=2`` is off-grid and loud, the turbo lane's
                exact-or-loud contract).
            crashed: explicit crash-stop processors (crashed at tick 0),
                composable with the sampled set.
            domain: the run's tick domain; derived from ``lam`` when
                omitted (the same derivation
                :func:`~repro.turbo.fastsim.build_turbo` applies).

        Raises:
            InvalidParameterError: a rate outside ``[0, 1)``, a crashed
                root, or a processor outside ``0..n-1``.
            TickDomainError: *jitter* is off the run's tick grid.
        """
        lam = as_time(lam)
        jitter = as_time(jitter)
        if jitter < 0:
            raise InvalidParameterError(
                f"jitter must be nonnegative, got {time_repr(jitter)}"
            )
        if domain is None:
            domain = TickDomain.for_values([lam])
        # may raise TickDomainError: jitter off the run's grid
        jitter_ticks = domain.to_ticks(jitter)
        crash_ticks: dict[ProcId, int] = {}
        if crashed is not None:
            for proc in crashed:
                crash_ticks[int(proc)] = 0
        if crash > 0.0 and n >= 1:
            rng = random.Random(derive_seed(seed, "crash"))
            for proc in range(n):
                draw = rng.random()  # drawn for every proc: stream stability
                if proc != root and draw < crash:
                    crash_ticks.setdefault(proc, 0)
        return cls(
            n,
            lam,
            domain,
            loss=loss,
            crash=crash,
            jitter_ticks=jitter_ticks,
            crash_ticks=crash_ticks,
            seed=seed,
            root=root,
        )

    # ------------------------------------------------------------ queries

    @property
    def jitter(self) -> Time:
        """Maximum per-transmission jitter as exact time."""
        return self.domain.to_time(self.jitter_ticks)

    @property
    def active(self) -> bool:
        """Whether any fault can fire (loss, jitter, or a crash set)."""
        return bool(self.loss or self.jitter_ticks or self._crash_ticks)

    @property
    def crashed(self) -> tuple[ProcId, ...]:
        """Crashed processors, ascending."""
        return tuple(sorted(self._crash_ticks))

    @property
    def survivors(self) -> tuple[ProcId, ...]:
        """Live processors, ascending (always includes the root)."""
        return tuple(
            p for p in range(self.n) if p not in self._crash_ticks
        )

    @property
    def survivor_count(self) -> int:
        return self.n - len(self._crash_ticks)

    def crashed_at(self, proc: ProcId) -> int | None:
        """Crash tick of *proc* (``None`` if it never crashes)."""
        return self._crash_ticks.get(proc)

    def crashed_at_time(self, proc: ProcId) -> Time | None:
        """Crash instant of *proc* as exact time (``None`` if live)."""
        tick = self._crash_ticks.get(proc)
        return None if tick is None else self.domain.to_time(tick)

    # -------------------------------------------------------------- draws

    def draw(self, src: ProcId, dst: ProcId) -> tuple[bool, int]:
        """One fault draw for a transmission on edge ``(src, dst)``.

        Returns ``(dropped, jitter_ticks)``.  Every call consumes a
        fixed number of variates from the edge's own stream, so the
        realization of one edge is independent of traffic on every
        other edge — the property that makes sharded sweeps replay
        byte-identically.
        """
        key = (src, dst)
        rng = self._edge_rngs.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, "edge", src, dst))
            self._edge_rngs[key] = rng
        self.draws += 1
        dropped = rng.random() < self.loss
        jitter = rng.randrange(self.jitter_ticks + 1) if self.jitter_ticks else 0
        if dropped:
            self.drops_drawn += 1
        self.jitter_ticks_drawn += jitter
        return dropped, jitter

    # ------------------------------------------------------------- misc

    def fresh(self) -> "FaultPlan":
        """A pristine copy: same parameters and crash set, untouched
        draw streams and zeroed accounting — for replaying the run."""
        return FaultPlan(
            self.n,
            self.lam,
            self.domain,
            loss=self.loss,
            crash=self.crash,
            jitter_ticks=self.jitter_ticks,
            crash_ticks=dict(self._crash_ticks),
            seed=self.seed,
            root=self.root,
        )

    def describe(self) -> str:
        """One-line human summary (the CLI's ``faults`` field)."""
        jitter = self.jitter
        parts = [
            f"loss={self.loss:g}",
            f"crash={self.crash:g} ({len(self._crash_ticks)} crashed)",
            f"jitter<={time_repr(jitter) if jitter > ZERO else '0'}",
            f"seed={self.seed}",
        ]
        return " ".join(parts)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(n={self.n}, lam={time_repr(self.lam)}, "
            f"{self.describe()})"
        )
