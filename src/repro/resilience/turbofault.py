"""Fault injection inside the flat turbo event loop.

:class:`FaultyTurboSystem` is a :class:`~repro.turbo.fastsim.TurboSystem`
that consults a compiled :class:`~repro.resilience.faultplan.FaultPlan`
at the two mechanical choke points every transmission passes through:

* **send time** — a send from a crashed processor is suppressed (its
  port is never driven; the sender's completion event still fires so
  protocol generators drain normally — a dead processor's phantom
  program makes no observable moves).  A live send occupies the port,
  is logged, and consumes one fault draw: a *loss* draw drops it on the
  floor (the sender does not know — same contract as
  :class:`~repro.extensions.faulty.LossyPostalSystem`) and a *jitter*
  draw stretches its latency by whole ticks.
* **window time** — a delivery whose receiver is dead when the receive
  window opens is suppressed and logged as a crash drop; the receive
  port of a dead processor is never claimed.

The columnar run log extends the base lane's: retransmissions (a send
of an already-sent ``(src, dst, msg)`` triple — the obs tagging the
issue asks for) are logged under their own
:data:`~repro.turbo.runlog.SEND_RETRANSMIT` code, and every lost or
crash-suppressed delivery lands as a
:data:`~repro.turbo.runlog.DROP_LOSS` /
:data:`~repro.turbo.runlog.DROP_CRASH` row.  :meth:`flush_trace`
materializes these as ``"send"`` records
carrying ``retransmit: True`` and ``"drop"`` records carrying
``reason: "loss" | "crash"`` — a superset of the exact lane's payloads,
so :class:`~repro.obs.metrics.MetricsCollector` folds them unchanged.

Schedule reconstruction is refused (:class:`~repro.errors.ModelError`):
a faulted run has no single realized broadcast schedule — it is audited
through port views, delivery records, and the inequality certificate in
:mod:`repro.resilience.certify` instead.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import InvalidParameterError, ModelError
from repro.postal.machine import ContentionPolicy
from repro.resilience.faultplan import FaultPlan
from repro.sim.trace import Tracer
from repro.turbo.fastsim import (
    TurboEnvironment,
    TurboEvent,
    TurboSystem,
)
from repro.turbo.runlog import (
    DELIVER as _DELIVER,
    DROP_CRASH,
    DROP_LOSS,
    SEND as _SEND,
    SEND_RETRANSMIT as _SEND_RT,
)
from repro.types import ProcId, Time, TimeLike

__all__ = ["FaultyTurboSystem", "build_faulty_turbo", "_DROP"]

#: Backward-compatible alias: the fault lane's original single drop code
#: (reasons now live in the code itself — see :mod:`repro.turbo.runlog`).
_DROP = DROP_LOSS


class FaultyTurboSystem(TurboSystem):
    """``MPS(n, lambda)`` on the turbo loop with plan-driven faults.

    Counters (all cross-checked by the resilience certificate):

    * :attr:`dropped` — transmissions lost to the network (reason
      ``"loss"``), mirroring ``LossyPostalSystem.dropped``;
    * :attr:`crash_suppressed_sends` — sends a dead processor never made;
    * :attr:`crash_suppressed_deliveries` — deliveries that found the
      receiver dead (reason ``"crash"``);
    * :attr:`retransmissions` — sends of an already-sent
      ``(src, dst, msg)`` triple (ACKs included: a re-ACK is a
      retransmission of the ACK).
    """

    __slots__ = (
        "plan",
        "_crash_ticks",
        "_sent_keys",
        "dropped",
        "crash_suppressed_sends",
        "crash_suppressed_deliveries",
        "retransmissions",
    )

    def __init__(
        self,
        env: TurboEnvironment,
        n: int,
        lam: TimeLike,
        plan: FaultPlan,
        *,
        policy: ContentionPolicy = ContentionPolicy.QUEUED,
        tracer: Tracer | None = None,
        latency: "Callable[[ProcId, ProcId], TimeLike] | None" = None,
    ):
        super().__init__(
            env, n, lam, policy=policy, tracer=tracer, latency=latency
        )
        if plan.n != n:
            raise ModelError(
                f"fault plan compiled for n={plan.n}, system has n={n}"
            )
        if plan.domain.scale != env.domain.scale:
            raise ModelError(
                f"fault plan on tick scale {plan.domain.scale}, "
                f"run on scale {env.domain.scale} — compile them together"
            )
        self.plan = plan
        self._crash_ticks = {
            p: t for p in range(n)
            if (t := plan.crashed_at(p)) is not None
        }
        self._sent_keys: set[tuple[ProcId, ProcId, int]] = set()
        self.dropped = 0
        self.crash_suppressed_sends = 0
        self.crash_suppressed_deliveries = 0
        self.retransmissions = 0

    # ------------------------------------------------------------ queries

    def crashed_at(self, proc: ProcId) -> Time | None:
        """Crash instant of *proc* as exact time, ``None`` if live.

        This is the *perfect failure detector* surface: recovery
        protocols running with ``detector="perfect"`` may consult it,
        ones with ``detector="timeout"`` must not.
        """
        self._check_proc(proc)
        return self.plan.crashed_at_time(proc)

    @property
    def delivery_count(self) -> int:
        """Number of completed deliveries (no trace materialization)."""
        return self._log.count(_DELIVER)

    @property
    def drop_count(self) -> int:
        """Number of logged drops, loss and crash reasons combined."""
        return self._log.count(DROP_LOSS, DROP_CRASH)

    # ---------------------------------------------------------- primitives

    def send(
        self, src: ProcId, dst: ProcId, msg: int, payload: Any = None
    ) -> TurboEvent:
        """Like :meth:`TurboSystem.send`, filtered through the plan."""
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            raise InvalidParameterError(f"p{src} cannot send to itself")
        env = self.env
        one = self._one
        now = env._tick
        start = self._send_free[src]
        if start < now:
            start = now
        crash = self._crash_ticks.get(src)
        if crash is not None and start >= crash:
            # crash-stop: the port is never driven and nothing is logged;
            # the completion event still fires so the (phantom) program
            # of a processor crashed mid-run drains instead of deadlocking
            self.crash_suppressed_sends += 1
            done = TurboEvent(env)
            done._ok = True
            done._value = self.domain.to_time(start)
            env._push(start + one, done._fire)
            return done
        self._send_free[src] = start + one
        key = (src, dst, msg)
        retransmit = key in self._sent_keys
        if retransmit:
            self.retransmissions += 1
        else:
            self._sent_keys.add(key)
        self._lg_code(_SEND_RT if retransmit else _SEND)
        self._lg_tick(start)
        self._lg_a(src)
        self._lg_b(dst)
        self._lg_c(msg)
        done = TurboEvent(env)
        done._ok = True
        done._value = self.domain.to_time(start)
        env._push(start + one, done._fire)
        dropped, jitter = self.plan.draw(src, dst)
        if dropped:
            self.dropped += 1
            self._lg_code(DROP_LOSS)
            self._lg_tick(start)
            self._lg_a(src)
            self._lg_b(dst)
            self._lg_c(msg)
            return done
        lat = self._latency_ticks(src, dst) + jitter
        book = self._book_strict if self._strict else self._book_queued
        env._push(start + lat - one, self._window, book, start, src, dst, msg, payload)
        return done

    def _window(
        self,
        book: Callable,
        start: int,
        src: ProcId,
        dst: ProcId,
        msg: int,
        payload: Any,
    ) -> None:
        """The receive-window hop, with the dead-receiver filter."""
        crash = self._crash_ticks.get(dst)
        if crash is not None and self.env._tick >= crash:
            self.crash_suppressed_deliveries += 1
            self._lg_code(DROP_CRASH)
            self._lg_tick(self.env._tick)
            self._lg_a(src)
            self._lg_b(dst)
            self._lg_c(msg)
            return
        book(start, src, dst, msg, payload)

    # ------------------------------------------------------ validator views

    def realized_schedule(self, *, m: int = 1, root: int = 0, validate: bool = False):
        raise ModelError(
            "a fault-injected run has no realized broadcast schedule; "
            "audit it via port views, delivery records, and "
            "repro.resilience.certify instead"
        )

    def flush_trace(self) -> Tracer:
        """Materialize the fault-extended compact log (idempotent).

        ``send`` records carry ``retransmit: True`` when the triple was
        already sent; ``drop`` records carry ``reason: "loss"|"crash"``.
        """
        if self._flushed:
            return self.tracer
        self._flushed = True
        emit = self.tracer.emit
        to_time = self.domain.to_time
        log = self._log
        codes, ticks = log.codes, log.ticks
        col_a, col_b, col_c = log.a, log.b, log.c
        objs = log.objs
        for i in log.order_by_tick():
            code = codes[i]
            if code == _SEND or code == _SEND_RT:
                data = {"src": col_a[i], "dst": col_b[i], "msg": col_c[i]}
                if code == _SEND_RT:
                    data["retransmit"] = True
                emit(to_time(ticks[i]), "send", data)
            elif code == _DELIVER:
                record = objs[col_a[i]]
                emit(record.arrived_at, "deliver", record)
            elif code == DROP_LOSS or code == DROP_CRASH:
                reason = "loss" if code == DROP_LOSS else "crash"
                emit(
                    to_time(ticks[i]),
                    "drop",
                    {
                        "src": col_a[i],
                        "dst": col_b[i],
                        "msg": col_c[i],
                        "reason": reason,
                    },
                )
            else:  # _CONSUME
                record = objs[col_a[i]]
                now = to_time(ticks[i])
                emit(
                    now,
                    "consume",
                    {
                        "proc": col_b[i],
                        "msg": record.msg,
                        "src": record.src,
                        "waited": now - record.arrived_at,
                    },
                )
        return self.tracer


def build_faulty_turbo(
    plan: FaultPlan,
    *,
    policy: ContentionPolicy = ContentionPolicy.QUEUED,
    tracer: Tracer | None = None,
    latency: "Callable[[ProcId, ProcId], TimeLike] | None" = None,
) -> FaultyTurboSystem:
    """A :class:`FaultyTurboSystem` on a fresh loop sharing *plan*'s tick
    domain — the faulty twin of :func:`~repro.turbo.fastsim.build_turbo`.

    >>> from repro.resilience.faultplan import FaultPlan
    >>> system = build_faulty_turbo(FaultPlan.compile(4, "5/2", loss=0.5))
    >>> system.env.domain.scale
    2
    """
    env = TurboEnvironment(plan.domain)
    return FaultyTurboSystem(
        env, plan.n, plan.lam, plan, policy=policy, tracer=tracer, latency=latency
    )
