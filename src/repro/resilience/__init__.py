"""Deterministic fault injection and recovery on the turbo lane.

The paper's optimality results assume a perfectly reliable
``MPS(n, lambda)``; this package measures what the optimal broadcast
structure costs when the network misbehaves — at turbo scale and with
bit-reproducible faults:

* :mod:`~repro.resilience.faultplan` — :class:`FaultPlan`, a seeded,
  self-accounting fault schedule (crash-stop processors, per-edge
  drops, on-grid latency jitter) compiled next to the run;
* :mod:`~repro.resilience.turbofault` — :class:`FaultyTurboSystem`,
  the flat event loop with the plan applied at send and window time,
  tagging dropped and retransmitted sends in the trace;
* :mod:`~repro.resilience.recovery` —
  :class:`ResilientBcastProtocol`, per-edge RTO/backoff retransmission
  plus post-crash subtree re-rooting over survivors;
* :mod:`~repro.resilience.certify` — the inequality certificates exact
  oracles weaken to under faults (survivor lower bound, coverage,
  order preservation, exact fault accounting);
* :mod:`~repro.resilience.runner` / :mod:`~repro.resilience.curve` —
  one certified run, and the sharded degradation sweep.

See ``docs/resilience.md`` for the guided tour.
"""

from repro.resilience.certify import certify_resilient, survivor_bound
from repro.resilience.curve import (
    DEFAULT_CRASH_RATES,
    DEFAULT_LOSS_RATES,
    degradation_curve,
    format_curve,
)
from repro.resilience.faultplan import FaultPlan
from repro.resilience.recovery import ResilientBcastProtocol, first_of
from repro.resilience.runner import (
    ResilienceResult,
    run_resilient,
    trace_digest,
)
from repro.resilience.turbofault import FaultyTurboSystem, build_faulty_turbo

__all__ = [
    "DEFAULT_CRASH_RATES",
    "DEFAULT_LOSS_RATES",
    "FaultPlan",
    "FaultyTurboSystem",
    "ResilienceResult",
    "ResilientBcastProtocol",
    "build_faulty_turbo",
    "certify_resilient",
    "degradation_curve",
    "first_of",
    "format_curve",
    "run_resilient",
    "survivor_bound",
    "trace_digest",
]
