"""Recovery strategies over a faulted postal machine.

:class:`ResilientBcastProtocol` hardens Algorithm BCAST against the two
fault classes a :class:`~repro.resilience.faultplan.FaultPlan` injects:

* **message loss** — per-edge *stop-and-wait* retransmission with
  RTO/backoff, mirroring
  :class:`~repro.extensions.faulty.ReliableBcastProtocol` semantics: an
  edge manager re-sends message ``k`` every
  ``min(rto * backoff**attempt, rto * max_backoff)`` until the child's
  ACK arrives, and only then moves to ``k + 1`` (so each survivor's
  first arrivals are strictly ordered by message index — the order-
  preservation half of the resilience certificate).
* **crash-stop processors** — *subtree re-rooting over survivors*: when
  a manager declares its child dead, the manager's own processor adopts
  the dead child's BCAST-tree children and spawns a fresh edge manager
  per orphan, so the dead subtree is re-rooted at the closest live
  ancestor and every survivor is still reached.

Failure detection is pluggable:

* ``detector="timeout"`` — a child that stays silent for
  ``max_retries`` consecutive RTOs is declared dead.  Purely local and
  realistic, but *probabilistic*: on a very lossy live edge it can
  false-positive (the orphans are then adopted redundantly — duplicate
  data is re-ACKed, first arrivals are unaffected).
* ``detector="perfect"`` — consults the system's
  :meth:`~repro.resilience.turbofault.FaultyTurboSystem.crashed_at`
  surface (a *perfect failure detector* in the Chandra–Toueg sense:
  strong accuracy, strong completeness).  Under it the recovery
  guarantee is absolute: every survivor receives every message, which
  is the property the hypothesis suite pins.

The recovery guarantee is stated for **crash-at-t=0** plans (classical
"initially dead processors"): a processor that crashed *after*
ACKing message ``k`` to its parent but before its own children ACKed
would otherwise orphan its subtree with no survivor aware of the debt.
:func:`~repro.resilience.runner.run_resilient` enforces this shape.

Both engines can drive the protocol: the race between an ACK and an RTO
timer uses :func:`first_of`, which duck-types events the way
:class:`~repro.turbo.fastsim.TurboProcess` does (``callbacks`` list +
``succeed``), because :func:`repro.sim.events.any_of` is exact-engine
only.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.bcast import BroadcastTree, bcast_schedule
from repro.errors import InvalidParameterError
from repro.extensions.faulty import default_rto
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = ["ResilientBcastProtocol", "first_of"]


def first_of(env, events) -> Any:
    """An event firing when the first of *events* does (value = that
    event).  Engine-agnostic: only uses ``callbacks`` / ``processed`` /
    ``succeed``, which both event classes expose."""
    race = env.event()

    def _wake(ev, _race=race):
        if not _race.triggered:
            _race.succeed(ev)

    for ev in events:
        if ev.callbacks is None:  # already processed: win immediately
            if not race.triggered:
                race.succeed(ev)
        else:
            ev.callbacks.append(_wake)
    return race


class ResilientBcastProtocol(Protocol):
    """BCAST with per-edge retransmission and subtree re-rooting.

    Per processor (the root included — it simply starts with all ``m``
    messages in hand):

    * a *dispatcher* loop owns the inbox: data is recorded on first
      arrival and ACKed on **every** arrival (a duplicate is a lost-ACK
      symptom); ACKs complete their edge manager's wait;
    * one *edge manager* per BCAST-tree child walks ``k = 0..m-1``:
      wait until message ``k`` is held, then retransmit with RTO/backoff
      until the child ACKs ``k``.  A child declared dead hands its own
      tree children to this processor (*adoption*) — a fresh manager per
      orphan re-roots the subtree here.

    After the run: :attr:`arrivals` (first arrival per survivor per
    message), :attr:`data_retransmissions`, :attr:`declared_dead`,
    :attr:`adoptions` (orphan → adopter).
    """

    name = "RESILIENT-BCAST"
    semantics = "resilient-broadcast"

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        *,
        m: int = 1,
        rto: TimeLike | None = None,
        backoff: int = 2,
        max_backoff: int = 8,
        max_retries: int = 8,
        detector: str = "timeout",
    ):
        super().__init__(n, m, lam)
        if detector not in ("timeout", "perfect"):
            raise InvalidParameterError(
                f"detector must be 'timeout' or 'perfect', got {detector!r}"
            )
        if backoff < 1:
            raise InvalidParameterError(f"backoff must be >= 1, got {backoff}")
        if max_backoff < 1:
            raise InvalidParameterError(
                f"max_backoff must be >= 1, got {max_backoff}"
            )
        if max_retries < 1:
            raise InvalidParameterError(
                f"max_retries must be >= 1, got {max_retries}"
            )
        self._tree = BroadcastTree.of(bcast_schedule(n, lam, validate=False))
        self._rto = as_time(rto) if rto is not None else default_rto(self.lam)
        if self._rto <= self.lam:
            raise InvalidParameterError(
                f"rto must exceed lambda (got rto={self._rto} <= {self.lam})"
            )
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._max_retries = max_retries
        self.detector = detector
        self.arrivals: dict[ProcId, dict[int, Time]] = {}
        self.data_retransmissions = 0
        self.declared_dead: set[ProcId] = set()
        self.adoptions: dict[ProcId, ProcId] = {}

    @property
    def tree(self) -> BroadcastTree:
        """The fault-free BCAST tree recovery re-roots over."""
        return self._tree

    @property
    def tree_depth(self) -> int:
        """Height of the BCAST tree (the ``+ depth`` in the loss=0
        completion bound ``f_lambda(n) + depth``)."""
        return self._tree.height()

    # ------------------------------------------------------------ programs

    def program(self, proc: ProcId, system) -> Generator | None:
        crashed_at = getattr(system, "crashed_at", None)
        if crashed_at is not None:
            crash = crashed_at(proc)
            if crash is not None and crash <= 0:
                return None  # crash-stop from t=0: a dead processor runs nothing
        return self._node(proc, system)

    def _node(self, proc: ProcId, system):
        env = system.env
        m = self.m
        have = [env.event() for _ in range(m)]
        acked: dict[tuple[ProcId, int], Any] = {}
        arrivals = self.arrivals.setdefault(proc, {})

        for child in self._tree.children_of(proc):
            env.process(
                self._edge_manager(system, proc, child, have, acked)
            )

        if proc == self.root:
            # the originator holds all m messages from the start
            now = env.now
            for k in range(m):
                arrivals.setdefault(k, now)
                have[k].succeed(None)

        # dispatcher: record + ACK data, route ACKs, forever (the pending
        # recv is garbage-collected when the simulation drains)
        while True:
            message = yield system.recv(proc)
            kind, k = message.payload
            if kind == "ack":
                ev = acked.get((message.src, k))
                if ev is not None and not ev.triggered:
                    ev.succeed(message.arrived_at)
                # stale duplicate ACKs are dropped
            else:  # data
                if k not in arrivals:
                    arrivals[k] = message.arrived_at
                # ACK every arrival — a duplicate means our ACK was lost
                yield system.send(proc, message.src, k, payload=("ack", k))
                if not have[k].triggered:
                    have[k].succeed(message)

    def _edge_manager(self, system, proc: ProcId, child: ProcId, have, acked):
        env = system.env
        perfect = self.detector == "perfect"
        crashed_at = getattr(system, "crashed_at", None)

        for k in range(self.m):
            hv = have[k]
            if not hv.processed:
                yield hv
            if perfect and crashed_at is not None and crashed_at(child) is not None:
                self._declare_dead(system, proc, child, have, acked)
                return
            ack = acked.setdefault((child, k), env.event())
            attempt = 0
            while not ack.triggered:
                if attempt > 0:
                    self.data_retransmissions += 1
                yield system.send(proc, child, k, payload=("data", k))
                if ack.triggered:
                    break
                factor = min(
                    self._backoff ** min(attempt, 20), self._max_backoff
                )
                delay = self._rto * factor
                yield first_of(env, (ack, env.timeout(delay)))
                if ack.triggered:
                    break
                attempt += 1
                if not perfect and attempt >= self._max_retries:
                    self._declare_dead(system, proc, child, have, acked)
                    return
        # every message acknowledged by this child: edge done

    def _declare_dead(self, system, proc: ProcId, child: ProcId, have, acked):
        """Adopt *child*'s tree children: re-root its subtree at *proc*."""
        self.declared_dead.add(child)
        for orphan in self._tree.children_of(child):
            self.adoptions[orphan] = proc
            system.env.process(
                self._edge_manager(system, proc, orphan, have, acked)
            )
