"""Algorithm BCAST as a distributed event-driven program (Section 3).

Each processor's knowledge is exactly what the paper grants it: the root
knows ``(n, lambda)``; every other processor learns *its own subrange* from
the payload of the message that informs it, and then behaves as the
originator of that subrange.  No processor reads the global clock or any
other processor's state.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.fibfunc import GeneralizedFibonacci
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, TimeLike

__all__ = ["BcastProtocol", "originate"]


def originate(
    protocol_fib: GeneralizedFibonacci,
    system: PostalSystem,
    me: ProcId,
    size: int,
    msg: int,
) -> Generator[Event, Any, None]:
    """Run item (a) of Algorithm BCAST: broadcast message *msg* to the
    range ``me .. me + size - 1`` (of which *me* is the originator).

    Every loop iteration sends one copy; ``yield system.send`` paces the
    loop at one message per time unit through the send port.
    """
    fib = protocol_fib
    while size > 1:
        j = fib.value_at(fib.index(size) - 1)  # 1 <= j <= size-1 (Lemma 3)
        target = me + j
        # the recipient will originate for the upper part of the range
        yield system.send(me, target, msg, payload=(target, size - j))
        size = j


class BcastProtocol(Protocol):
    """Event-driven Algorithm BCAST for one message."""

    name = "BCAST"

    def __init__(self, n: int, lam: TimeLike):
        super().__init__(n, 1, lam)
        self._fib = GeneralizedFibonacci(self.lam)

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            return self._root_program(system)
        return self._other_program(proc, system)

    def _root_program(self, system: PostalSystem):
        yield from originate(self._fib, system, self.root, self.n, 0)

    def _other_program(self, proc: ProcId, system: PostalSystem):
        message = yield system.recv(proc)
        me, size = message.payload
        assert me == proc, "range payload addressed to the wrong processor"
        yield from originate(self._fib, system, me, size, message.msg)
