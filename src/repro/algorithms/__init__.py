"""Event-driven distributed implementations of the paper's algorithms.

Every algorithm exists twice in this library: as a *static schedule
builder* (:mod:`repro.core`) and as a *distributed event-driven protocol*
here — per-processor generator programs that run on a live
:class:`~repro.postal.machine.PostalSystem` and only learn their role from
the messages they receive, exactly as the paper describes.  The two paths
share no scheduling code, and the integration tests assert they realize
identical schedules.

* :class:`~repro.algorithms.bcast_protocol.BcastProtocol` — Algorithm BCAST.
* :class:`~repro.algorithms.repeat_protocol.RepeatProtocol` — REPEAT.
* :class:`~repro.algorithms.pack_protocol.PackProtocol` — PACK.
* :class:`~repro.algorithms.pipeline_protocol.PipelineProtocol` — PIPELINE.
* :class:`~repro.algorithms.dtree_protocol.DTreeProtocol` — DTREE.
* :mod:`repro.algorithms.baselines` — star/sequential and telephone-model
  binomial-tree baselines.
"""

from repro.algorithms.base import Protocol
from repro.algorithms.bcast_protocol import BcastProtocol
from repro.algorithms.repeat_protocol import RepeatProtocol
from repro.algorithms.pack_protocol import PackProtocol
from repro.algorithms.pipeline_protocol import PipelineProtocol
from repro.algorithms.dtree_protocol import DTreeProtocol
from repro.algorithms.baselines import (
    BinomialProtocol,
    StarProtocol,
    binomial_schedule,
    binomial_time,
    star_time,
)

__all__ = [
    "Protocol",
    "BcastProtocol",
    "RepeatProtocol",
    "PackProtocol",
    "PipelineProtocol",
    "DTreeProtocol",
    "BinomialProtocol",
    "StarProtocol",
    "binomial_schedule",
    "binomial_time",
    "star_time",
]
