"""The distributed-protocol interface.

A :class:`Protocol` describes what each processor *does*: ``program(proc,
system)`` returns the generator that processor ``proc`` runs on the postal
machine (or ``None`` if the processor is passive).  Programs communicate
only through ``system.send`` / ``system.recv`` — there is no global clock
access and no shared state, so a protocol here is a faithful rendition of
the paper's "practical event-driven algorithms".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator

from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.postal.message import Message
from repro.sim.engine import Event
from repro.types import ProcId, TimeLike, as_time

__all__ = ["Protocol", "InboxBuffer"]


class Protocol(ABC):
    """A distributed algorithm over ``MPS(n, lambda)`` broadcasting ``m``
    messages from processor ``root`` (always ``p_0`` in the paper)."""

    #: Human-readable algorithm name (class attribute).
    name: str = "?"

    #: What the runner should validate the trace as: ``"broadcast"``
    #: (root-to-all delivery of all m messages — the default) or a custom
    #: label (e.g. ``"reduction"``), for which only the port audit applies.
    semantics: str = "broadcast"

    def __init__(self, n: int, m: int, lam: TimeLike):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 processors, got {n}")
        if m < 1:
            raise InvalidParameterError(f"need m >= 1 messages, got {m}")
        lam = as_time(lam)
        if lam < 1:
            raise InvalidParameterError(
                f"the postal model requires lambda >= 1, got {lam}"
            )
        self.n = n
        self.m = m
        self.lam = lam
        self.root: ProcId = 0

    @abstractmethod
    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        """The generator processor *proc* runs, or ``None`` if passive."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, m={self.m}, "
            f"lambda={self.lam})"
        )


class InboxBuffer:
    """Helper for programs that need message *k* specifically: pulls from
    the system inbox on demand and buffers out-of-order arrivals.

    (The paper's algorithms all deliver in order, so the buffer rarely
    holds more than the message being waited for — but the helper keeps
    protocol code honest rather than assuming order.)
    """

    def __init__(self, system: PostalSystem, proc: ProcId):
        self._system = system
        self._proc = proc
        self._have: dict[int, Message] = {}

    def __contains__(self, msg: int) -> bool:
        return msg in self._have

    def get(self, msg: int) -> Generator[Event, Any, Message]:
        """Generator: wait until message index *msg* has arrived."""
        while msg not in self._have:
            received = yield self._system.recv(self._proc)
            self._have[received.msg] = received
        return self._have[msg]

    def next(self) -> Generator[Event, Any, Message]:
        """Generator: wait for the next (any-index) arrival."""
        received = yield self._system.recv(self._proc)
        self._have[received.msg] = received
        return received
