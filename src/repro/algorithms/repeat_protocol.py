"""Algorithm REPEAT as a distributed event-driven program (Section 4.2).

``m`` iterations of BCAST, one per message.  The paper's root rule —
"start iteration ``i+1`` immediately after sending the last copy of
``M_i``" — is realized in two flavours:

* **paced** (default): the root spaces iteration starts exactly
  ``f_lambda(n) - (lambda - 1)`` apart, the overlap Lemma 10 analyzes; the
  realized schedule and its completion time match
  :func:`repro.core.multi.repeat_schedule` and Lemma 10's formula exactly.
* **greedy** (``greedy=True``): the root literally starts the moment its
  send port goes idle.  Whenever the root's last send of an iteration
  starts *before* ``f_lambda(n) - lambda`` (which happens for some
  ``(n, lambda)``), greedy REPEAT finishes **sooner** than Lemma 10's
  formula — a small sharpening the strict-mode simulator certifies is
  still collision-free case by case.  The ablation bench quantifies the
  gap.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.algorithms.bcast_protocol import originate
from repro.core.fibfunc import GeneralizedFibonacci
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, TimeLike

__all__ = ["RepeatProtocol"]


class RepeatProtocol(Protocol):
    """Event-driven Algorithm REPEAT for ``m`` messages."""

    name = "REPEAT"

    def __init__(self, n: int, m: int, lam: TimeLike, *, greedy: bool = False):
        super().__init__(n, m, lam)
        self._fib = GeneralizedFibonacci(self.lam)
        self._greedy = greedy

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            return self._root_program(system)
        return self._other_program(proc, system)

    def _root_program(self, system: PostalSystem):
        if self.n == 1:
            return
        stride = self._fib.index(self.n) - (self.lam - 1)
        for i in range(self.m):
            if not self._greedy:
                # Lemma 10 pacing: iteration i begins at exactly i * stride
                gap = i * stride - system.env.now
                if gap > 0:
                    yield system.env.timeout(gap)
            yield from originate(self._fib, system, self.root, self.n, i)

    def _other_program(self, proc: ProcId, system: PostalSystem):
        for _ in range(self.m):
            message = yield system.recv(proc)
            me, size = message.payload
            yield from originate(self._fib, system, me, size, message.msg)
