"""Baseline broadcast algorithms the paper's approach is measured against.

* :class:`StarProtocol` / :func:`star_schedule` — the naive sequential
  broadcast: the originator sends to every processor itself.  Time
  ``(n - 2) + lambda`` for one message; the DTREE ``d = n-1`` case.
* :class:`BinomialProtocol` / :func:`binomial_schedule` — the classic
  binomial tree, which is *optimal in the telephone model* (``lambda = 1``,
  where BCAST degenerates to it) but latency-oblivious: run under
  ``lambda > 1`` it demonstrates exactly the gap the postal model exposes
  and generalized Fibonacci trees close.

Both compile to the standard :class:`~repro.core.schedule.Schedule` IR and
exist as event-driven protocols.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.schedule import Schedule, SendEvent
from repro.errors import InvalidParameterError
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike, ZERO, as_time

__all__ = [
    "star_time",
    "binomial_time",
    "star_schedule",
    "binomial_schedule",
    "StarProtocol",
    "BinomialProtocol",
]


def star_time(n: int, m: int, lam: TimeLike) -> Time:
    """Exact completion time of the ``m``-message star broadcast: the root
    emits ``m * (n - 1)`` back-to-back sends, the last starting at
    ``m(n-1) - 1``, so ``T_STAR = m(n-1) - 1 + lambda`` (0 for ``n == 1``).
    Degenerates to the ``(n-2) + lambda`` of :func:`star_schedule` at
    ``m == 1``."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if m < 1:
        raise InvalidParameterError(f"need m >= 1, got {m}")
    lam_t = as_time(lam)
    if n == 1:
        return ZERO
    return Time(m * (n - 1) - 1) + lam_t


def binomial_time(n: int, lam: TimeLike) -> Time:
    """Exact completion time of :func:`binomial_schedule` — the recursion
    the builder realizes: a range of ``size`` processors splits into a kept
    range of ``j = size - half`` (the sender continues one unit later) and a
    transferred range of ``half`` (the largest power of two below ``size``,
    reachable after ``lambda``), so::

        T(1)    = 0
        T(size) = max(1 + T(j), lambda + T(half))

    At ``lambda = 1`` this is the telephone-model optimum
    ``ceil(log2 n)``; for larger ``lambda`` it quantifies exactly how much
    the latency-oblivious tree loses to BCAST."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    lam_t = as_time(lam)

    def rec(size: int) -> Time:
        if size == 1:
            return ZERO
        half = 1
        while half * 2 < size:
            half *= 2
        j = size - half
        sender = Time(1) + rec(j)
        recipient = lam_t + rec(half)
        return sender if sender > recipient else recipient

    return rec(n)


def star_schedule(n: int, lam: TimeLike, *, validate: bool = True) -> Schedule:
    """One-message star broadcast: ``p_0`` sends to ``p_1 .. p_{n-1}`` in
    order.  Completion time ``(n - 2) + lambda`` for ``n >= 2``."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    events = [SendEvent(Time(i - 1), 0, 0, i) for i in range(1, n)]
    return Schedule(n, lam, events, m=1, validate=validate)


def binomial_schedule(n: int, lam: TimeLike, *, validate: bool = True) -> Schedule:
    """One-message binomial-tree broadcast run in ``MPS(n, lambda)``.

    The tree is the ``lambda = 1`` optimum; under larger ``lambda`` each of
    its ``ceil(log2 n)`` rounds still pays the full latency, so its time is
    roughly ``log2(n) * lambda`` versus BCAST's
    ``lambda*log(n)/log(lambda+1)``.

    Note the recipient may start forwarding only after arrival; the builder
    therefore stamps each child range's sends at ``parent_send + max(1,
    lambda)`` — with ``lambda >= 1`` this is arrival time, the earliest
    legal moment.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    lam_t = as_time(lam)
    events: list[SendEvent] = []
    stack: list[tuple[ProcId, int, Time]] = [(0, n, ZERO)]
    while stack:
        base, size, t = stack.pop()
        if size == 1:
            continue
        half = 1
        while half * 2 < size:
            half *= 2
        j = size - half
        events.append(SendEvent(t, base, 0, base + j))
        stack.append((base, j, t + 1))
        stack.append((base + j, half, t + lam_t))
    return Schedule(n, lam, events, m=1, validate=validate)


class StarProtocol(Protocol):
    """Event-driven star broadcast of ``m`` messages (root does all work)."""

    name = "STAR"

    def __init__(self, n: int, m: int, lam: TimeLike):
        super().__init__(n, m, lam)

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc != self.root:
            return None
        return self._root_program(system)

    def _root_program(self, system: PostalSystem):
        for k in range(self.m):
            for dst in range(1, self.n):
                yield system.send(self.root, dst, k)


class BinomialProtocol(Protocol):
    """Event-driven binomial-tree broadcast of one message."""

    name = "BINOMIAL"

    def __init__(self, n: int, lam: TimeLike):
        super().__init__(n, 1, lam)

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            return self._originate(system, self.root, self.n)
        return self._other_program(proc, system)

    def _other_program(self, proc: ProcId, system: PostalSystem):
        message = yield system.recv(proc)
        me, size = message.payload
        yield from self._originate(system, me, size)

    def _originate(self, system: PostalSystem, me: ProcId, size: int):
        while size > 1:
            half = 1
            while half * 2 < size:
                half *= 2
            j = size - half
            yield system.send(me, me + j, 0, payload=(me + j, half))
            size = j
