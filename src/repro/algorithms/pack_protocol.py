"""Algorithm PACK as a distributed event-driven program (Section 4.2).

The ``m`` messages travel as one "long message": a processor first receives
all ``m`` in sequence, then forwards the whole pack along the BCAST tree
for the normalized latency ``lambda' = 1 + (lambda - 1)/m`` (Lemma 12).
Subrange splits therefore use ``F_{lambda'}``, but all actual transmissions
are ordinary unit messages of the real ``MPS(n, lambda)``.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import InboxBuffer, Protocol
from repro.core.fibfunc import GeneralizedFibonacci
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, TimeLike

__all__ = ["PackProtocol"]


class PackProtocol(Protocol):
    """Event-driven Algorithm PACK for ``m`` messages."""

    name = "PACK"

    def __init__(self, n: int, m: int, lam: TimeLike):
        super().__init__(n, m, lam)
        # the split sequence lives in the normalized model
        self._fib = GeneralizedFibonacci(1 + (self.lam - 1) / m)

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            return self._forward_pack(system, self.root, self.n)
        return self._other_program(proc, system)

    def _other_program(self, proc: ProcId, system: PostalSystem):
        inbox = InboxBuffer(system, proc)
        # receive the entire pack before forwarding anything (PACK's rule)
        me = size = None
        for k in range(self.m):
            message = yield from inbox.get(k)
            if message.payload is not None:
                me, size = message.payload
        assert me == proc and size is not None
        yield from self._forward_pack(system, me, size)

    def _forward_pack(self, system: PostalSystem, me: ProcId, size: int):
        fib = self._fib
        while size > 1:
            j = fib.value_at(fib.index(size) - 1)
            target = me + j
            for k in range(self.m):
                yield system.send(
                    me, target, k, payload=(target, size - j)
                )
            size = j
