"""Algorithm DTREE as a distributed event-driven program (Section 4.3).

The degree-``d`` left-to-right almost-full tree is a fixed, globally known
structure (node ``v``'s children are ``d*v+1 .. d*v+d``), so no payload is
needed: the root pumps each message to its children left-to-right; every
other node forwards each arriving message to its children left-to-right,
naturally queueing behind its own earlier sends at the send port.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.dtree import DTreeShape, dtree_children, resolve_degree
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, TimeLike

__all__ = ["DTreeProtocol"]


class DTreeProtocol(Protocol):
    """Event-driven Algorithm DTREE for ``m`` messages over a degree-``d``
    tree (accepts an explicit degree or a :class:`DTreeShape` preset)."""

    name = "DTREE"

    def __init__(
        self, n: int, m: int, lam: TimeLike, shape: "DTreeShape | int"
    ):
        super().__init__(n, m, lam)
        self.d = resolve_degree(shape, n, lam)

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        children = dtree_children(proc, self.d, self.n)
        if proc == self.root:
            return self._root_program(system, children)
        if not children:
            return self._leaf_program(proc, system)
        return self._inner_program(proc, system, children)

    def _root_program(self, system: PostalSystem, children: list[ProcId]):
        for k in range(self.m):
            for child in children:
                yield system.send(self.root, child, k)

    def _inner_program(
        self, proc: ProcId, system: PostalSystem, children: list[ProcId]
    ):
        for _ in range(self.m):
            message = yield system.recv(proc)
            for child in children:
                yield system.send(proc, child, message.msg)

    def _leaf_program(self, proc: ProcId, system: PostalSystem):
        for _ in range(self.m):
            yield system.recv(proc)
