"""Algorithm PIPELINE as a distributed event-driven program (Section 4.2).

The ``m`` messages travel as a stream and are forwarded *as they arrive*.
A holder of (a prefix of) the stream repeatedly transmits all ``m``
messages to one new processor, then recurses on its remaining subrange.
The subrange split follows BCAST under the normalized latency

* ``lambda' = lambda / m`` when ``m <= lambda`` (PIPELINE-1): the sender
  finishes its stream before the recipient can forward, so the **sender**
  keeps the larger side;
* ``lambda' = m / lambda`` when ``m >= lambda`` (PIPELINE-2): the recipient
  can forward before the sender finishes, so the **recipient** takes the
  larger side — the paper's role swap.

A processor's first outgoing stream interleaves with its incoming one: it
waits for each message and forwards it the instant it lands (the send port
is always free at that instant — the simulator's strict mode proves it).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.algorithms.base import InboxBuffer, Protocol
from repro.core.fibfunc import GeneralizedFibonacci
from repro.core.multi import pipeline_variant
from repro.postal.machine import PostalSystem
from repro.sim.engine import Event
from repro.types import ProcId, Time, TimeLike

__all__ = ["PipelineProtocol"]


class PipelineProtocol(Protocol):
    """Event-driven Algorithm PIPELINE for ``m`` messages."""

    name = "PIPELINE"

    def __init__(self, n: int, m: int, lam: TimeLike):
        super().__init__(n, m, lam)
        self._sender_first = m <= self.lam
        lam_p = (self.lam / m) if self._sender_first else (Time(m) / self.lam)
        self._fib = GeneralizedFibonacci(lam_p)

    @property
    def variant(self) -> str:
        """``"PIPELINE-1"`` or ``"PIPELINE-2"`` (Section 4.2)."""
        return pipeline_variant(self.m, self.lam)

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        if proc == self.root:
            return self._holder(system, None, self.root, self.n)
        return self._other_program(proc, system)

    def _other_program(self, proc: ProcId, system: PostalSystem):
        inbox = InboxBuffer(system, proc)
        first = yield from inbox.get(0)
        me, size = first.payload
        assert me == proc
        yield from self._holder(system, inbox, me, size)

    def _holder(
        self,
        system: PostalSystem,
        inbox: InboxBuffer | None,
        me: ProcId,
        size: int,
    ):
        """Stream the ``m`` messages through the subrange ``me .. me+size-1``.

        *inbox* is ``None`` at the root (all messages local from t = 0);
        elsewhere the first stream pulls each message as it arrives.
        """
        fib = self._fib
        while size > 1:
            j = fib.value_at(fib.index(size) - 1)  # larger side
            if self._sender_first:
                keep, give = j, size - j
            else:
                keep, give = size - j, j
            target = me + keep
            for k in range(self.m):
                if inbox is not None and k not in inbox:
                    yield from inbox.get(k)
                yield system.send(me, target, k, payload=(target, give))
            size = keep
