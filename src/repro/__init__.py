"""repro — Postal-model broadcasting (Bar-Noy & Kipnis, SPAA 1992).

A complete reproduction of *"Designing Broadcasting Algorithms in the
Postal Model for Message-Passing Systems"*: the generalized Fibonacci
machinery (``F_lambda`` / ``f_lambda``), the optimal single-message
Algorithm BCAST, the multi-message Algorithms REPEAT / PACK / PIPELINE /
DTREE with their exact running-time formulas, a ``Fraction``-exact
discrete-event simulator of ``MPS(n, lambda)`` the event-driven protocol
versions run on, plus collectives and Section-5 extensions (adaptive
latency, hierarchies, LogP).  Performance lanes: the integer-tick turbo
backend (:mod:`repro.turbo`), the columnar plan layer with its plan
cache (:mod:`repro.plan`), and deterministic multi-core sweeps
(:mod:`repro.parallel`).

Quick start::

    from repro import postal_f, bcast_schedule, SimComm

    postal_f("5/2", 14)          # Fraction(15, 2) — Theorem 6
    bcast_schedule(14, "5/2")    # the Figure 1 schedule
    SimComm(14, "5/2").bcast(x)  # simulate it end to end

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the paper-reproduction index.
"""

from repro.types import Time, as_time, time_repr
from repro.errors import (
    InvalidParameterError,
    ModelError,
    OrderViolationError,
    ReproError,
    ScheduleError,
    SimulationError,
    SimultaneousIOError,
    TuningError,
)
from repro.core.fibfunc import GeneralizedFibonacci, postal_F, postal_f
from repro.core.schedule import Schedule, SendEvent
from repro.core.bcast import BroadcastTree, bcast_schedule, bcast_tree
from repro.core.multi import pack_schedule, pipeline_schedule, repeat_schedule
from repro.core.dtree import DTreeShape, dtree_schedule
from repro.core import analysis
from repro.core.analysis import (
    algorithm_times,
    bcast_time,
    best_algorithm,
    multi_lower_bound,
    pack_time,
    pipeline_time,
    repeat_time,
)
from repro.postal import ContentionPolicy, PostalSystem, run_protocol
from repro.algorithms import (
    BcastProtocol,
    BinomialProtocol,
    DTreeProtocol,
    PackProtocol,
    PipelineProtocol,
    RepeatProtocol,
    StarProtocol,
)
from repro.mpi import SimComm
from repro.parallel import derive_seed, parallel_map
from repro.plan import PlanCache, SchedulePlan, build_plan, compile_plan
from repro.tune import (
    TuneCache,
    TuningTable,
    derive_table,
    rank,
    select_protocol,
    verify_table,
)
from repro.obs import (
    CriticalPath,
    EngineProfile,
    EngineProfiler,
    MetricsCollector,
    RunMetrics,
    chrome_trace,
    collect_metrics,
    critical_path,
    event_slacks,
    schedule_to_chrome,
    write_chrome_trace,
)
from repro.report import render_gantt, render_tree, utilization_table

__version__ = "1.0.0"

__all__ = [
    "Time",
    "as_time",
    "time_repr",
    "ReproError",
    "InvalidParameterError",
    "ModelError",
    "ScheduleError",
    "SimultaneousIOError",
    "OrderViolationError",
    "SimulationError",
    "GeneralizedFibonacci",
    "postal_F",
    "postal_f",
    "Schedule",
    "SendEvent",
    "BroadcastTree",
    "bcast_schedule",
    "bcast_tree",
    "repeat_schedule",
    "pack_schedule",
    "pipeline_schedule",
    "dtree_schedule",
    "DTreeShape",
    "analysis",
    "bcast_time",
    "repeat_time",
    "pack_time",
    "pipeline_time",
    "multi_lower_bound",
    "algorithm_times",
    "best_algorithm",
    "PostalSystem",
    "ContentionPolicy",
    "run_protocol",
    "BcastProtocol",
    "RepeatProtocol",
    "PackProtocol",
    "PipelineProtocol",
    "DTreeProtocol",
    "StarProtocol",
    "BinomialProtocol",
    "SimComm",
    "SchedulePlan",
    "compile_plan",
    "build_plan",
    "PlanCache",
    "TuningError",
    "TuneCache",
    "TuningTable",
    "select_protocol",
    "rank",
    "derive_table",
    "verify_table",
    "derive_seed",
    "parallel_map",
    "render_tree",
    "render_gantt",
    "utilization_table",
    "MetricsCollector",
    "RunMetrics",
    "collect_metrics",
    "CriticalPath",
    "critical_path",
    "event_slacks",
    "chrome_trace",
    "schedule_to_chrome",
    "write_chrome_trace",
    "EngineProfile",
    "EngineProfiler",
    "__version__",
]
