"""Extensions along the paper's "Further Research" directions (Section 5).

* :mod:`repro.extensions.adaptive` — time-varying latency ``lambda(t)``:
  a latency-profile model and the eager adaptive broadcast, compared
  against statically-planned trees.
* :mod:`repro.extensions.hierarchical` — two-level latency hierarchies
  (clusters with ``lambda_local`` inside and ``lambda_global`` between),
  with an overlapped two-phase broadcast.
* :mod:`repro.extensions.logp` — the LogP model (mentioned in Section 1 as
  the postal model's contemporary): optimal greedy LogP broadcast and the
  exact correspondence with ``f_lambda`` when ``g = o``.
* :mod:`repro.extensions.faulty` — message loss and a pipelined-ACK
  reliable BCAST (stress-testing the model's reliability assumption).
"""

from repro.extensions.adaptive import (
    LatencyProfile,
    adaptive_bcast_time,
    static_tree_under_profile,
)
from repro.extensions.hierarchical import (
    HierarchicalBcastProtocol,
    HierarchicalSystem,
    flat_bcast_time,
    hierarchical_bcast_time,
)
from repro.extensions.logp import LogPParams, logp_bcast_time, postal_lambda_of
from repro.extensions.faulty import (
    LossyPostalSystem,
    ReliableBcastProtocol,
    run_reliable_bcast,
)

__all__ = [
    "LossyPostalSystem",
    "ReliableBcastProtocol",
    "run_reliable_bcast",
    "LatencyProfile",
    "adaptive_bcast_time",
    "static_tree_under_profile",
    "HierarchicalSystem",
    "HierarchicalBcastProtocol",
    "hierarchical_bcast_time",
    "flat_bcast_time",
    "LogPParams",
    "logp_bcast_time",
    "postal_lambda_of",
]
