"""The LogP model and its correspondence with the postal model.

Section 1 notes that LogP (Culler et al., 1993) "bears some similarities to
our postal model".  LogP charges:

* ``o`` — processor overhead to send or to receive one message,
* ``L`` — network latency between the end of the send overhead and the
  start of the receive overhead,
* ``g`` — minimum gap between consecutive sends (or receives) at one
  processor,
* ``P`` — number of processors.

A message sent (send overhead starting) at ``u`` is fully received at
``u + o + L + o``.  With ``g = o`` and times measured in units of ``o``,
this is *exactly* the postal model with::

    lambda = (L + 2o) / o

so optimal LogP broadcast times coincide with ``o * f_lambda(P)`` — an
identity the tests verify against the independent greedy computation here.

:func:`logp_bcast_time` computes the optimal LogP broadcast time by the
standard greedy argument (Karp et al.): repeatedly give the earliest
available send slot to a new processor; every assignment is exchangeable,
so earliest-slot-first is optimal.  ``g > o`` generalizes beyond the postal
model (the postal model cannot express a gap larger than the overhead).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = [
    "LogPParams",
    "postal_lambda_of",
    "logp_bcast_time",
    "logp_arrival_times",
]


@dataclass(frozen=True)
class LogPParams:
    """LogP machine parameters (all times exact; ``g >= o > 0``,
    ``L >= 0``, ``P >= 1``)."""

    L: Time
    o: Time
    g: Time
    P: int

    @classmethod
    def of(cls, L: TimeLike, o: TimeLike, g: TimeLike, P: int) -> "LogPParams":
        L_, o_, g_ = as_time(L), as_time(o), as_time(g)
        if o_ <= 0:
            raise InvalidParameterError(f"need o > 0, got {o_}")
        if g_ < o_:
            raise InvalidParameterError(f"need g >= o, got g={g_} < o={o_}")
        if L_ < 0:
            raise InvalidParameterError(f"need L >= 0, got {L_}")
        if P < 1:
            raise InvalidParameterError(f"need P >= 1, got {P}")
        return cls(L_, o_, g_, P)


def postal_lambda_of(params: LogPParams) -> Fraction:
    """The postal latency equivalent to *params* (meaningful when
    ``g == o``): ``lambda = (L + 2o) / o``."""
    return (params.L + 2 * params.o) / params.o


def logp_arrival_times(params: LogPParams) -> list[Time]:
    """Optimal-broadcast arrival times of the ``P - 1`` non-root
    processors, sorted ascending (greedy earliest-slot-first assignment).

    A processor whose receive overhead ends at ``r`` can start send
    overheads at ``r, r+g, r+2g, ...``; a send overhead starting at ``u``
    informs its target at ``u + o + L + o``.
    """
    L, o, g, P = params.L, params.o, params.g, params.P
    if P == 1:
        return []
    full = o + L + o  # send start -> fully received
    # heap of candidate send-start times; popping the earliest assigns that
    # slot to the next uninformed processor
    slots: list[Time] = [ZERO]  # root's first slot
    arrivals: list[Time] = []
    heapq.heapify(slots)
    for _ in range(P - 1):
        u = heapq.heappop(slots)
        arrive = u + full
        arrivals.append(arrive)
        heapq.heappush(slots, u + g)  # the sender's next slot
        heapq.heappush(slots, arrive)  # the new processor's first slot
    return arrivals


def logp_bcast_time(params: LogPParams) -> Time:
    """Optimal LogP single-message broadcast time (0 for ``P == 1``).

    For ``g == o`` this equals ``o * f_{(L+2o)/o}(P)`` exactly.
    """
    arrivals = logp_arrival_times(params)
    return arrivals[-1] if arrivals else ZERO


def matches_postal(params: LogPParams) -> bool:
    """Check the LogP/postal identity for *params* (requires ``g == o``)."""
    if params.g != params.o:
        raise InvalidParameterError(
            "the postal correspondence requires g == o"
        )
    lam = postal_lambda_of(params)
    return logp_bcast_time(params) == params.o * postal_f(lam, params.P)
