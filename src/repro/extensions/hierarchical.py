"""Hierarchical latency (Section 5, second direction).

Real systems often have two latency scales: fast links inside a cluster
(``lambda_local``) and slow links between clusters (``lambda_global >=
lambda_local``).  A :class:`HierarchicalSystem` models ``k`` clusters of
``c`` processors; the natural two-phase broadcast runs Algorithm BCAST
among the cluster *leaders* at the global latency, then inside every
cluster at the local latency.

Two variants:

* **sequential** — every leader waits for the global phase to end before
  starting its cluster; completion is exactly
  ``f_{lambda_global}(k) + f_{lambda_local}(c)``.
* **overlapped** (default) — each leader starts its cluster broadcast as
  soon as its *own* global sends are done (its send port is the only
  shared constraint).  Never slower than sequential; often much faster for
  late-informed leaders, whose global duty is empty.

A flat BCAST at ``lambda_global`` everywhere is the baseline the bench
compares against (the hierarchy-aware algorithm wins whenever
``lambda_local < lambda_global``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bcast import bcast_schedule
from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = ["HierarchicalSystem", "hierarchical_bcast_time", "flat_bcast_time"]


@dataclass(frozen=True)
class HierarchicalSystem:
    """``k`` clusters of ``c`` processors; processor ``i`` lives in cluster
    ``i // c``; the leader of cluster ``q`` is ``q * c``."""

    clusters: int
    cluster_size: int
    lam_local: Time
    lam_global: Time

    @classmethod
    def of(
        cls,
        clusters: int,
        cluster_size: int,
        lam_local: TimeLike,
        lam_global: TimeLike,
    ) -> "HierarchicalSystem":
        ll, lg = as_time(lam_local), as_time(lam_global)
        if clusters < 1 or cluster_size < 1:
            raise InvalidParameterError("need >= 1 cluster of >= 1 processor")
        if ll < 1 or lg < ll:
            raise InvalidParameterError(
                "latencies must satisfy 1 <= lambda_local <= lambda_global"
            )
        return cls(clusters, cluster_size, ll, lg)

    @property
    def n(self) -> int:
        return self.clusters * self.cluster_size

    def latency(self, src: int, dst: int) -> Time:
        """Pairwise latency: local within a cluster, global across."""
        return (
            self.lam_local
            if src // self.cluster_size == dst // self.cluster_size
            else self.lam_global
        )


def hierarchical_bcast_time(
    system: HierarchicalSystem, *, overlap: bool = True
) -> Time:
    """Completion time of the two-phase hierarchy-aware broadcast.

    Sequential: ``f_{lg}(k) + f_{ll}(c)``.  Overlapped: per leader,
    ``max(informed_at, last_global_send_end) + f_{ll}(c)``; the maximum
    over leaders (and the bare global phase for ``c == 1``).
    """
    k, c = system.clusters, system.cluster_size
    lg, ll = system.lam_global, system.lam_local
    if k == 1:
        return postal_f(ll, c)
    global_time = postal_f(lg, k)
    local_time = postal_f(ll, c)
    if not overlap:
        return global_time + local_time
    # per-leader availability from the global-phase BCAST schedule
    sched = bcast_schedule(k, lg, validate=False)
    informed = {0: ZERO}
    last_send_end: dict[int, Time] = {}
    for ev in sched.events:
        informed[ev.receiver] = ev.arrival_time(lg)
        last_send_end[ev.sender] = max(
            last_send_end.get(ev.sender, ZERO), ev.send_time + 1
        )
    worst = ZERO
    for leader in range(k):
        start = max(informed.get(leader, ZERO), last_send_end.get(leader, ZERO))
        worst = max(worst, start + local_time)
    return worst


def flat_bcast_time(system: HierarchicalSystem) -> Time:
    """Baseline: pretend every link has the global latency and run plain
    BCAST over all ``n`` processors."""
    return postal_f(system.lam_global, system.n)


class HierarchicalBcastProtocol:
    """Event-driven two-phase broadcast on a pair-latency postal machine.

    Runs on a :class:`~repro.postal.machine.PostalSystem` whose latency
    function is the hierarchy's (:attr:`latency_fn` is picked up by
    :func:`repro.postal.run_protocol`):

    * phase 1 — BCAST among the cluster *leaders* (processors ``q * c``)
      with splits from ``F_{lambda_global}``;
    * phase 2 — each leader, immediately after its last global send (the
      overlapped variant), runs BCAST inside its cluster with splits from
      ``F_{lambda_local}``.

    The realized completion time equals
    :func:`hierarchical_bcast_time(system, overlap=True)
    <hierarchical_bcast_time>` exactly (asserted in the tests): a leader's
    program naturally pivots from global to local sends the instant its
    send port frees, which *is* the formula's
    ``max(informed_at, last_global_send_end)``.
    """

    name = "HIER-BCAST"
    semantics = "hierarchical-broadcast"

    def __init__(self, hierarchy: HierarchicalSystem):
        from repro.core.fibfunc import GeneralizedFibonacci

        self.hierarchy = hierarchy
        self.n = hierarchy.n
        self.m = 1
        self.lam = hierarchy.lam_global  # nominal latency for the machine
        self.root = 0
        self.latency_fn = hierarchy.latency
        self._fib_global = GeneralizedFibonacci(hierarchy.lam_global)
        self._fib_local = GeneralizedFibonacci(hierarchy.lam_local)
        #: first data arrival per processor, filled during the run
        self.informed_at: dict[int, Time] = {}

    def program(self, proc: int, system):
        c = self.hierarchy.cluster_size
        is_leader = proc % c == 0
        if proc == self.root:
            return self._leader_program(system, proc, informed=True)
        if is_leader:
            return self._leader_program(system, proc, informed=False)
        return self._member_program(system, proc)

    def _leader_program(self, system, proc: int, *, informed: bool):
        k = self.hierarchy.clusters
        c = self.hierarchy.cluster_size
        if informed:
            self.informed_at[proc] = system.env.now
            lo, size = 0, k
        else:
            message = yield system.recv(proc)
            self.informed_at[proc] = message.arrived_at
            lo, size = message.payload  # leader-index range
        # phase 1: BCAST over leader indices [lo, lo+size) scaled by c
        me = proc // c
        fib = self._fib_global
        while size > 1:
            j = fib.value_at(fib.index(size) - 1)
            target_leader = me + j
            yield system.send(
                proc, target_leader * c, 0, payload=(target_leader, size - j)
            )
            size = j
        # phase 2: local BCAST inside my cluster, starting right now
        yield from self._local_originate(system, proc, c)

    def _member_program(self, system, proc: int):
        message = yield system.recv(proc)
        self.informed_at[proc] = message.arrived_at
        _, size = message.payload
        yield from self._local_originate(system, proc, size)

    def _local_originate(self, system, me: int, size: int):
        fib = self._fib_local
        while size > 1:
            j = fib.value_at(fib.index(size) - 1)
            yield system.send(me, me + j, 0, payload=(None, size - j))
            size = j
