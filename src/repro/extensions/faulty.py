"""Message loss and reliable broadcast — stress-testing the postal model.

The paper assumes a perfectly reliable network.  This extension asks what
its optimal broadcast tree costs when messages can vanish:

* :class:`LossyPostalSystem` — a postal machine whose network drops each
  transmission independently with probability ``loss``, decided by a
  seeded PRNG at send time (deterministic and replayable).  A dropped
  message occupies the sender's unit (it does not know) but never reaches
  the receiver's port.
* :class:`ReliableBcastProtocol` — Algorithm BCAST hardened with
  *pipelined* per-edge acknowledgements: a parent transmits to its
  BCAST-tree children back to back (one per unit, as the optimal
  algorithm does), while an independent retransmission manager per edge
  re-sends every ``rto`` until that child's ACK arrives; a dispatcher
  routes incoming ACKs to their edge managers and re-ACKs duplicate data.
  Runs under the **queued** contention policy (retransmissions make
  receive collisions possible, as on a real NIC).

With ``loss = 0`` the data wave follows the BCAST schedule shifted by one
unit per tree level (each informed processor spends one send unit
acknowledging its parent before it starts forwarding), so the completion
time is at most ``f_lambda(n) + depth`` — the measured price of
reliability bookkeeping (``tests/test_faulty.py`` pins this claim across
the rational-lambda grid).  The bench records the degradation curve as
``loss`` grows.

This extension runs on the *exact* engine and tops out around ``n`` in
the hundreds.  Its turbo-scale successor is :mod:`repro.resilience`:
the same RTO/ACK semantics (its recovery protocol reuses
:func:`default_rto`) plus crash-stop processors, latency jitter,
subtree re-rooting, and bit-reproducible seeded fault plans up to
``n = 10^4`` — see ``docs/resilience.md``.
"""

from __future__ import annotations

import math
import random
from typing import Any, Generator

from repro.algorithms.base import Protocol
from repro.core.bcast import BroadcastTree, bcast_schedule
from repro.errors import InvalidParameterError
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.sim.engine import Environment, Event
from repro.sim.events import any_of
from repro.sim.trace import Tracer
from repro.types import ProcId, Time, TimeLike, as_time

__all__ = [
    "LossyPostalSystem",
    "ReliableBcastProtocol",
    "run_reliable_bcast",
    "default_rto",
]


class LossyPostalSystem(PostalSystem):
    """A postal machine with i.i.d. message loss.

    Args:
        loss: per-transmission drop probability in ``[0, 1)``.
        seed: PRNG seed — identical seeds replay identical runs.
        rng: an externally owned :class:`random.Random` to draw from
            instead of constructing one from *seed* — lets a harness (the
            conformance fuzzer) thread **one** seeded stream through every
            sampling path so whole campaigns replay byte-identically.

    Dropped transmissions are traced as ``"drop"`` records.
    """

    def __init__(
        self,
        env: Environment,
        n: int,
        lam: TimeLike,
        *,
        loss: float,
        seed: int = 0,
        rng: random.Random | None = None,
        policy: ContentionPolicy = ContentionPolicy.QUEUED,
        tracer: Tracer | None = None,
    ):
        if not 0 <= loss < 1:
            raise InvalidParameterError(f"loss must be in [0, 1), got {loss}")
        super().__init__(env, n, lam, policy=policy, tracer=tracer)
        self._loss = loss
        self._rng = rng if rng is not None else random.Random(seed)
        self.dropped = 0

    @property
    def loss(self) -> float:
        return self._loss

    def _deliver_proc(self, start, src, dst, msg, payload):
        if self._rng.random() < self._loss:
            self.dropped += 1
            self.tracer.emit(start, "drop", {"src": src, "dst": dst, "msg": msg})
            return
            yield  # pragma: no cover - keeps this a generator
        yield from super()._deliver_proc(start, src, dst, msg, payload)


def default_rto(lam: Time) -> Time:
    """A safe per-edge retransmission timeout: data leg + the child's
    one-unit ACK send + ACK leg + slack: ``2*ceil(lambda) + 2``."""
    return Time(2 * math.ceil(lam) + 2)


class ReliableBcastProtocol(Protocol):
    """Pipelined-ACK reliable BCAST over a lossy postal machine.

    Per processor:

    * on first data arrival: record it, ACK the parent (one send unit),
      then start forwarding;
    * one *edge manager* process per BCAST-tree child: transmit, arm an
      ``rto`` timer, retransmit until the child's ACK is dispatched to it.
      Managers share the send port, so their first transmissions go out
      back to back in BCAST child order — the optimal pipelining survives;
    * a *dispatcher* loop owns the inbox: ACKs complete their edge
      manager; duplicate data (a lost-ACK symptom) is re-ACKed.

    After the run:

    * :attr:`informed_at` — first data arrival per processor;
    * :attr:`retransmissions` — total extra data sends.
    """

    name = "RELIABLE-BCAST"
    semantics = "reliable-broadcast"

    def __init__(self, n: int, lam: TimeLike, *, rto: TimeLike | None = None):
        super().__init__(n, 1, lam)
        self._tree = BroadcastTree.of(bcast_schedule(n, lam, validate=False))
        self._rto = as_time(rto) if rto is not None else default_rto(self.lam)
        if self._rto <= self.lam:
            raise InvalidParameterError(
                f"rto must exceed lambda (got rto={self._rto} <= {self.lam})"
            )
        self.informed_at: dict[ProcId, Time] = {}
        self.retransmissions = 0

    def program(
        self, proc: ProcId, system: PostalSystem
    ) -> Generator[Event, Any, None] | None:
        return self._node_program(proc, system)

    def _node_program(self, proc: ProcId, system: PostalSystem):
        env = system.env
        children = list(self._tree.children_of(proc))
        parent: ProcId | None = None

        if proc != self.root:
            # first data delivery (the parent retries until our ACK lands)
            while True:
                message = yield system.recv(proc)
                if message.payload == "data":
                    break
            self.informed_at[proc] = message.arrived_at
            parent = message.src
            yield system.send(proc, parent, 0, payload="ack")
        else:
            self.informed_at[proc] = env.now

        # one retransmission manager per edge; ACK routing via events
        acked: dict[ProcId, Event] = {c: env.event() for c in children}
        for child in children:
            env.process(self._edge_manager(system, proc, child, acked[child]))

        # dispatcher: route ACKs, re-ACK duplicate data, forever (the
        # pending recv is garbage-collected when the simulation drains)
        while True:
            message = yield system.recv(proc)
            if message.payload == "ack":
                ev = acked.get(message.src)
                if ev is not None and not ev.triggered:
                    ev.succeed(message.arrived_at)
                # stale duplicate ACKs are dropped
            elif message.payload == "data" and parent is not None:
                yield system.send(proc, parent, 0, payload="ack")

    def _edge_manager(
        self, system: PostalSystem, proc: ProcId, child: ProcId, acked: Event
    ):
        env = system.env
        first = True
        while not acked.processed:
            if not first:
                self.retransmissions += 1
            first = False
            yield system.send(proc, child, 0, payload="data")
            timer = env.timeout(self._rto)
            yield any_of(env, [acked, timer])


def run_reliable_bcast(
    n: int,
    lam: TimeLike,
    *,
    loss: float,
    seed: int = 0,
    rng: random.Random | None = None,
    rto: TimeLike | None = None,
) -> tuple[Time, int, int]:
    """Run :class:`ReliableBcastProtocol` on a :class:`LossyPostalSystem`.

    Returns ``(data_completion_time, retransmissions, drops)`` where the
    completion time is when the last processor first receives the data.
    Termination is guaranteed: every edge retries until acknowledged and
    ``loss < 1``.  Pass *rng* to draw losses from an externally owned
    seeded stream (campaign-level determinism); otherwise a fresh
    ``random.Random(seed)`` is used.
    """
    env = Environment()
    protocol = ReliableBcastProtocol(n, lam, rto=rto)
    system = LossyPostalSystem(
        env, n, protocol.lam, loss=loss, seed=seed, rng=rng
    )
    for proc in range(n):
        gen = protocol.program(proc, system)
        if gen is not None:
            env.process(gen)
    env.run()
    if len(protocol.informed_at) != n:
        missing = set(range(n)) - set(protocol.informed_at)
        raise AssertionError(f"processors never informed: {sorted(missing)}")
    completion = max(protocol.informed_at.values())
    return completion, protocol.retransmissions, system.dropped
