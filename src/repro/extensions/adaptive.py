"""Time-varying communication latency (Section 5, first direction).

The paper assumes ``lambda`` is uniform and stable; here we let it change
over time: a :class:`LatencyProfile` is a piecewise-constant function
``lambda(t) >= 1``, and a message *sent* at time ``u`` arrives at
``u + lambda(u)`` (latency locked at send time, as when a route is chosen
at injection).

Two broadcast strategies are compared:

* :func:`adaptive_bcast_time` — the **eager** strategy: every informed
  processor sends to a brand-new processor every time unit.  It needs no
  knowledge of the profile at all, which makes it the natural "algorithm
  that adapts to changing lambda": it is optimal whenever arrivals are
  FIFO (``u + lambda(u)`` nondecreasing — latency does not drop so fast
  that later messages overtake earlier ones), by the same exchange
  argument as Lemma 5.
* :func:`static_tree_under_profile` — a generalized Fibonacci tree planned
  for one fixed ``lambda_plan``, executed under the true profile: each
  node starts forwarding when its message actually arrives, keeping the
  planned tree shape.  The gap to eager quantifies the cost of planning
  with a wrong/static latency estimate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.bcast import bcast_tree
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = ["LatencyProfile", "adaptive_bcast_time", "static_tree_under_profile"]


@dataclass(frozen=True)
class LatencyProfile:
    """Piecewise-constant latency: ``lambda(t) = values[i]`` on
    ``[breaks[i], breaks[i+1])``, with ``breaks[0] == 0`` and the last
    value extending to infinity.  All values must be ``>= 1``."""

    breaks: tuple[Time, ...]
    values: tuple[Time, ...]

    @classmethod
    def of(cls, pairs: Sequence[tuple[TimeLike, TimeLike]]) -> "LatencyProfile":
        """Build from ``[(start_time, lambda), ...]``; the first start time
        must be 0 and times must strictly increase."""
        if not pairs:
            raise InvalidParameterError("profile needs at least one piece")
        breaks = tuple(as_time(t) for t, _ in pairs)
        values = tuple(as_time(v) for _, v in pairs)
        if breaks[0] != 0:
            raise InvalidParameterError("profile must start at t = 0")
        if any(a >= b for a, b in zip(breaks, breaks[1:])):
            raise InvalidParameterError("profile breakpoints must increase")
        if any(v < 1 for v in values):
            raise InvalidParameterError("latency must be >= 1 everywhere")
        return cls(breaks, values)

    @classmethod
    def constant(cls, lam: TimeLike) -> "LatencyProfile":
        return cls.of([(0, lam)])

    def lam_at(self, t: TimeLike) -> Time:
        """The latency locked by a send starting at time *t*."""
        t = as_time(t)
        if t < 0:
            raise InvalidParameterError(f"t >= 0 required, got {t}")
        lam = self.values[0]
        for b, v in zip(self.breaks, self.values):
            if b <= t:
                lam = v
            else:
                break
        return lam

    def arrival(self, send_time: TimeLike) -> Time:
        """Arrival time of a message sent at *send_time*."""
        u = as_time(send_time)
        return u + self.lam_at(u)

    def is_fifo(self, *, horizon: TimeLike) -> bool:
        """True if the arrival map ``u + lambda(u)`` is nondecreasing over
        ``[0, horizon]`` — the condition under which the eager strategy is
        provably optimal (Lemma 5's exchange argument carries over).

        Within a piece the arrival map rises with slope 1, so for a
        piecewise-constant profile FIFO holds iff the latency never drops
        at a breakpoint inside the horizon (rises are always fine)."""
        limit = as_time(horizon)
        for b, prev, cur in zip(
            self.breaks[1:], self.values, self.values[1:]
        ):
            if b > limit:
                break
            if cur < prev:
                return False
        return True


def adaptive_bcast_time(n: int, profile: LatencyProfile) -> Time:
    """Completion time of the eager broadcast under *profile*: every
    informed processor sends to a new processor at every time unit; the
    ``k``-th earliest arrival informs the ``(k+1)``-th processor."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if n == 1:
        return ZERO
    # heap of (arrival, send_time) of in-flight messages; each arrival
    # informs one processor and spawns (a) the new processor's first send
    # and (b) the sender's next send one unit later
    informed = 1
    entries: list[tuple[Time, Time]] = [(profile.arrival(ZERO), ZERO)]
    heapq.heapify(entries)
    while entries:
        arrival, sent_at = heapq.heappop(entries)
        informed += 1
        if informed >= n:
            return arrival
        # newly informed processor starts sending immediately
        heapq.heappush(entries, (profile.arrival(arrival), arrival))
        # the sender's next send, one unit after this one
        nxt = sent_at + 1
        heapq.heappush(entries, (profile.arrival(nxt), nxt))
    raise AssertionError("unreachable: the eager frontier never runs dry")


def static_tree_under_profile(
    n: int, lam_plan: TimeLike, profile: LatencyProfile
) -> Time:
    """Completion time of the generalized Fibonacci tree planned for
    ``lam_plan`` when executed under the true *profile*: each node sends to
    its planned children in planned order, one per unit, starting when its
    own copy actually arrives."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    tree = bcast_tree(n, lam_plan)
    informed: dict[int, Time] = {tree.root: ZERO}
    worst = ZERO
    for proc in tree.preorder():
        t = informed[proc]
        for k, child in enumerate(tree.children_of(proc)):
            arr = profile.arrival(t + k)
            informed[child] = arr
            worst = max(worst, arr)
    return worst
