"""Rendering and reporting helpers.

* :mod:`repro.report.render` — ASCII broadcast trees (Figure 1) and Gantt
  timelines of schedules.
* :mod:`repro.report.tables` — fixed-width and Markdown table formatting
  used by the benchmark harness and EXPERIMENTS.md generation.
"""

from repro.report.render import render_gantt, render_tree
from repro.report.tables import (
    conformance_table,
    format_table,
    markdown_table,
    utilization_table,
)
from repro.report.phase import phase_diagram, winner_grid

__all__ = [
    "render_tree",
    "render_gantt",
    "format_table",
    "markdown_table",
    "utilization_table",
    "conformance_table",
    "phase_diagram",
    "winner_grid",
]
