"""ASCII rendering of broadcast trees and schedule timelines.

:func:`render_tree` draws the generalized Fibonacci tree the way Figure 1
of the paper does — processors annotated with the time they are informed:

    p0 @ 0
    ├─ p9 @ 5/2   (sent @ 0)
    │  ├─ ...
    ├─ p6 @ 7/2   (sent @ 1)
    ...

:func:`render_gantt` draws one line per processor with its send (``S``)
and receive (``R``) busy units on a discretized time axis — handy for
eyeballing port contention and pipelining behaviour.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.bcast import BroadcastTree
from repro.core.schedule import Schedule
from repro.types import Time, time_repr

__all__ = ["render_tree", "render_gantt"]


def render_tree(tree: BroadcastTree) -> str:
    """Multi-line ASCII rendering of *tree* (children in send order)."""
    lines: list[str] = []
    root = tree.node(tree.root)
    lines.append(f"p{root.proc} @ {time_repr(root.informed_at)}")

    def walk(proc: int, prefix: str) -> None:
        children = tree.children_of(proc)
        for i, child in enumerate(children):
            last = i == len(children) - 1
            branch = "└─ " if last else "├─ "
            node = tree.node(child)
            sent = (
                f"   (sent @ {time_repr(node.sent_at)})"
                if node.sent_at is not None
                else ""
            )
            lines.append(
                f"{prefix}{branch}p{node.proc} @ "
                f"{time_repr(node.informed_at)}{sent}"
            )
            walk(child, prefix + ("   " if last else "│  "))

    walk(tree.root, "")
    return "\n".join(lines)


def render_gantt(schedule: Schedule, *, cell: Fraction | None = None) -> str:
    """One line per processor; ``S`` marks send-busy cells, ``R`` receive-
    busy cells, ``*`` a cell busy with both (legal simultaneous I/O).

    *cell* is the time quantum per character (default: the finest quantum
    that makes every event boundary land on a cell edge, capped at 1/4).
    """
    if not schedule.events:
        return "(empty schedule)"
    lam = schedule.lam
    horizon = schedule.completion_time()
    if cell is None:
        # common denominator of all boundaries, capped for sanity
        den = 1
        for ev in schedule.events:
            den = _lcm(den, ev.send_time.denominator)
            den = _lcm(den, ev.arrival_time(lam).denominator)
            if den >= 4:
                den = 4
                break
        cell = Fraction(1, den)
    ncells = int(horizon / cell) + (0 if horizon % cell == 0 else 1)
    grid = [[" "] * ncells for _ in range(schedule.n)]

    def paint(proc: int, start: Time, end: Time, mark: str) -> None:
        i0 = int(start / cell)
        i1 = int(end / cell) + (0 if end % cell == 0 else 1)
        for i in range(i0, min(i1, ncells)):
            cur = grid[proc][i]
            grid[proc][i] = "*" if cur not in (" ", mark) else mark

    for ev in schedule.events:
        paint(ev.sender, ev.send_time, ev.send_time + 1, "S")
        arr = ev.arrival_time(lam)
        paint(ev.receiver, arr - 1, arr, "R")

    width = len(f"p{schedule.n - 1}")
    header = f"{'':>{width}} 0{'.' * (ncells - 1)}{time_repr(horizon)}"
    lines = [header]
    for proc in range(schedule.n):
        lines.append(f"{f'p{proc}':>{width}} {''.join(grid[proc])}")
    return "\n".join(lines)


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b)
