"""Plain-text and Markdown table formatting for the benchmark harness,
the rendered per-processor utilization table of the observability layer
(``python -m repro trace --summary``), and the per-family summary table
of the conformance fuzzer (``python -m repro conformance``)."""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Any, Sequence

from repro.types import time_repr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.conformance.fuzzer import FuzzReport
    from repro.obs.metrics import RunMetrics

__all__ = [
    "format_cell",
    "format_table",
    "markdown_table",
    "utilization_rows",
    "utilization_table",
    "UTILIZATION_HEADERS",
    "conformance_rows",
    "conformance_table",
    "CONFORMANCE_HEADERS",
]


def format_cell(value: Any) -> str:
    """Render one table cell: Fractions via :func:`~repro.types.time_repr`,
    floats to 4 significant digits, everything else via ``str``."""
    if isinstance(value, Fraction):
        return time_repr(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule, right-aligned numeric-ish
    columns."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(f"{v:>{w}}" for v, w in zip(row, widths))

    out = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    out.extend(fmt_row(r) for r in cells)
    return "\n".join(out)


#: Column headers of the utilization table.
UTILIZATION_HEADERS = (
    "proc",
    "sends",
    "send busy",
    "send util",
    "recvs",
    "recv busy",
    "recv util",
    "inbox hwm",
)


def _percent(fraction: Fraction) -> str:
    return f"{float(fraction) * 100:.1f}%"


def utilization_rows(metrics: "RunMetrics") -> list[list[Any]]:
    """Per-processor utilization rows (plus an ``all`` summary row) from a
    :class:`~repro.obs.metrics.RunMetrics`.  Busy times stay exact;
    utilization fractions render as percentages."""
    rows: list[list[Any]] = []
    for p in range(metrics.n):
        rows.append(
            [
                f"p{p}",
                metrics.sends[p],
                metrics.send_busy[p],
                _percent(metrics.send_utilization[p]),
                metrics.receives[p],
                metrics.recv_busy[p],
                _percent(metrics.recv_utilization[p]),
                metrics.inbox_high_water[p],
            ]
        )
    denom = metrics.n * metrics.makespan
    total_send_busy = sum(metrics.send_busy, Fraction(0))
    total_recv_busy = sum(metrics.recv_busy, Fraction(0))
    rows.append(
        [
            "all",
            metrics.total_sends,
            total_send_busy,
            _percent(total_send_busy / denom) if denom else "0.0%",
            metrics.total_deliveries,
            total_recv_busy,
            _percent(total_recv_busy / denom) if denom else "0.0%",
            max(metrics.inbox_high_water, default=0),
        ]
    )
    return rows


def utilization_table(metrics: "RunMetrics", *, markdown: bool = False) -> str:
    """Rendered per-port utilization table — the ``repro trace --summary``
    artifact.  The ``all`` row aggregates: total busy time over
    ``n * makespan`` (so 100% would mean every port saturated for the
    whole run)."""
    rows = utilization_rows(metrics)
    if markdown:
        return markdown_table(list(UTILIZATION_HEADERS), rows)
    return format_table(list(UTILIZATION_HEADERS), rows)


#: Column headers of the conformance summary table.
CONFORMANCE_HEADERS = (
    "family",
    "citation",
    "runs",
    "certified",
    "failed",
    "chaos caught",
    "chaos missed",
)


def conformance_rows(report: "FuzzReport") -> list[list[Any]]:
    """Per-family rows (plus an ``all`` summary row) from a
    :class:`~repro.conformance.fuzzer.FuzzReport`."""
    # imported lazily: repro.conformance pulls in the whole algorithm and
    # collective stack, which plain table formatting must not depend on
    from repro.conformance.oracles import get_oracle

    rows: list[list[Any]] = []
    totals = [0, 0, 0, 0, 0]
    for family in sorted(report.stats):
        s = report.stats[family]
        rows.append(
            [
                family,
                get_oracle(family).citation,
                s.runs,
                s.certified,
                s.failed,
                s.chaos_detected,
                s.chaos_missed,
            ]
        )
        for i, v in enumerate(
            (s.runs, s.certified, s.failed, s.chaos_detected, s.chaos_missed)
        ):
            totals[i] += v
    rows.append(["all", "", *totals])
    return rows


def conformance_table(report: "FuzzReport", *, markdown: bool = False) -> str:
    """Rendered per-family conformance summary — the
    ``repro conformance`` artifact."""
    rows = conformance_rows(report)
    if markdown:
        return markdown_table(list(CONFORMANCE_HEADERS), rows)
    return format_table(list(CONFORMANCE_HEADERS), rows)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavoured Markdown table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    out.extend("| " + " | ".join(r) + " |" for r in cells)
    return "\n".join(out)
