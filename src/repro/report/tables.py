"""Plain-text and Markdown table formatting for the benchmark harness."""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Sequence

from repro.types import time_repr

__all__ = ["format_cell", "format_table", "markdown_table"]


def format_cell(value: Any) -> str:
    """Render one table cell: Fractions via :func:`~repro.types.time_repr`,
    floats to 4 significant digits, everything else via ``str``."""
    if isinstance(value, Fraction):
        return time_repr(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule, right-aligned numeric-ish
    columns."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(f"{v:>{w}}" for v, w in zip(row, widths))

    out = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    out.extend(fmt_row(r) for r in cells)
    return "\n".join(out)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavoured Markdown table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    out.extend("| " + " | ".join(r) + " |" for r in cells)
    return "\n".join(out)
