"""Winner phase diagrams over the (m, lambda) plane.

Section 4's narrative is really a phase diagram: for fixed ``n``, which
algorithm family is fastest as the message count ``m`` and the latency
``lambda`` vary?  :func:`phase_diagram` renders it as an ASCII grid —
one letter per cell, rows indexed by lambda, columns by m — with a legend
and, on request, the winner's margin over the Lemma 8 lower bound.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.analysis import best_algorithm, multi_lower_bound
from repro.types import TimeLike, as_time, time_repr

__all__ = ["LETTERS", "winner_grid", "phase_diagram"]

#: One-letter codes for the algorithm families.
LETTERS = {
    "REPEAT": "R",
    "PACK": "K",
    "PIPELINE": "P",
    "DTREE-LINE": "L",
    "DTREE-BINARY": "B",
    "DTREE-LATENCY": "D",
    "DTREE-STAR": "S",
}


def winner_grid(
    n: int, ms: Sequence[int], lams: Sequence[TimeLike]
) -> list[list[tuple[str, float]]]:
    """For each (lambda, m) cell: the winning family and its ratio to the
    Lemma 8 lower bound.  Rows follow *lams*, columns follow *ms*."""
    grid: list[list[tuple[str, float]]] = []
    for lam in lams:
        lam_t = as_time(lam)
        row = []
        for m in ms:
            name, t = best_algorithm(n, m, lam_t)
            lb = multi_lower_bound(n, m, lam_t)
            ratio = float(t / lb) if lb > 0 else 1.0
            row.append((name, ratio))
        grid.append(row)
    return grid


def phase_diagram(
    n: int,
    ms: Sequence[int],
    lams: Sequence[TimeLike],
    *,
    show_ratio: bool = False,
) -> str:
    """ASCII phase diagram of the fastest family per (lambda, m) cell.

    With ``show_ratio`` each cell also prints the winner's distance to the
    lower bound (``P1.2`` = PIPELINE at 1.2x LB).
    """
    grid = winner_grid(n, ms, lams)
    cell_w = 6 if show_ratio else 2
    header_label = f"n={n}"
    left_w = max(len(header_label), max(len(time_repr(as_time(l))) for l in lams), 6)
    lines = [
        f"{header_label:>{left_w}} | "
        + " ".join(f"m={m}".ljust(cell_w) for m in ms)
    ]
    lines.append("-" * len(lines[0]))
    used: dict[str, str] = {}
    for lam, row in zip(lams, grid):
        cells = []
        for name, ratio in row:
            letter = LETTERS.get(name, "?")
            used[letter] = name
            cells.append(
                (f"{letter}{ratio:.1f}" if show_ratio else letter).ljust(cell_w)
            )
        lines.append(
            f"{time_repr(as_time(lam)):>{left_w}} | " + " ".join(cells)
        )
    legend = ", ".join(
        f"{letter}={name}" for letter, name in sorted(used.items())
    )
    lines.append("")
    lines.append(f"legend: {legend}  (rows: lambda; columns: m)")
    return "\n".join(lines)
