"""``repro.obs`` — the observability layer.

Everything here sits *on top of* the trace stream
(:mod:`repro.sim.trace`); nothing in the simulator or the algorithms
depends on it, so observability can be disabled without touching a hot
path.

* :mod:`repro.obs.metrics` — :class:`MetricsCollector` /
  :class:`RunMetrics`: exact per-processor busy time, port utilization,
  inbox high-water marks, latency histograms, makespan.
* :mod:`repro.obs.export` — Chrome trace-event (``chrome://tracing`` /
  Perfetto) JSON, CSV, and JSON-lines exporters.
* :mod:`repro.obs.critical` — zero-slack critical-path extraction and
  per-event slack over any :class:`~repro.core.schedule.Schedule`.
* :mod:`repro.obs.profile` — engine-level profiling (events processed,
  heap peak, wall time per simulated unit).

The trace schema, metric definitions (with their Lemma cross-
references), and a Chrome-trace walkthrough live in
``docs/observability.md``.  CLI entry point: ``python -m repro trace``.
"""

from repro.obs.critical import (
    CriticalPath,
    critical_path,
    event_slacks,
    format_critical_path,
)
from repro.obs.export import (
    CSV_FIELDS,
    chrome_trace,
    dump_csv,
    dump_jsonl,
    record_fields,
    schedule_to_chrome,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsCollector,
    RunMetrics,
    collect_metrics,
    cross_check_metrics,
)
from repro.obs.profile import EngineProfile, EngineProfiler

__all__ = [
    "MetricsCollector",
    "RunMetrics",
    "collect_metrics",
    "cross_check_metrics",
    "CriticalPath",
    "critical_path",
    "event_slacks",
    "format_critical_path",
    "chrome_trace",
    "schedule_to_chrome",
    "write_chrome_trace",
    "dump_csv",
    "dump_jsonl",
    "record_fields",
    "CSV_FIELDS",
    "EngineProfile",
    "EngineProfiler",
]
