"""Engine-level profiling: events processed, heap peak, wall time.

The discrete-event engine's cost model is simple — one heap pop plus
callbacks per event, with Fraction arithmetic dominating (see the
performance notes in ``docs/simulator.md``).  :class:`EngineProfiler`
instruments a live :class:`~repro.sim.engine.Environment` to measure
exactly that: how many events a run processed, how deep the pending-event
heap got, and how much wall time a simulated time unit costs.

The hook is an instance-attribute wrapper around ``env.step`` — zero
overhead when not installed, no engine-code changes, and removable with
:meth:`EngineProfiler.uninstall`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.sim.engine import Environment
from repro.types import Time, ZERO

__all__ = ["EngineProfile", "EngineProfiler"]


@dataclass(frozen=True)
class EngineProfile:
    """Frozen profiling summary of one (portion of a) simulation run.

    Attributes:
        events_processed: heap pops while the profiler was installed.
        heap_peak: maximum pending-event heap size observed (sampled at
            step boundaries, before the pop and after the callbacks).
        sim_time: simulated time elapsed while installed.
        wall_seconds: wall-clock seconds spent inside ``env.step``.
    """

    events_processed: int
    heap_peak: int
    sim_time: Time
    wall_seconds: float

    @property
    def events_per_second(self) -> float:
        """Throughput; 0.0 when no wall time was accumulated."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def wall_per_sim_unit(self) -> float:
        """Wall seconds per simulated time unit; 0.0 for zero-span runs."""
        if self.sim_time <= 0:
            return 0.0
        return self.wall_seconds / float(self.sim_time)

    def __str__(self) -> str:
        return (
            f"EngineProfile({self.events_processed} events, "
            f"heap peak {self.heap_peak}, "
            f"{self.wall_seconds * 1e3:.2f} ms wall, "
            f"{self.events_per_second:,.0f} ev/s)"
        )


class EngineProfiler:
    """Wraps ``env.step`` to count events, track heap depth, and time the
    run.  Usage::

        profiler = EngineProfiler(env)   # installed immediately
        env.run()
        print(profiler.report())
        profiler.uninstall()             # optional: restore the bare step
    """

    def __init__(self, env: Environment, *, install: bool = True):
        self.env = env
        self.events_processed = 0
        self.heap_peak = 0
        self.wall_seconds = 0.0
        self._start_sim: Time = env.now
        self._installed = False
        if install:
            self.install()

    def install(self) -> None:
        """Shadow ``env.step`` with the instrumented version."""
        if self._installed:
            raise ValueError("profiler is already installed")
        self._orig_step = self.env.step
        self.env.step = self._step  # type: ignore[method-assign]
        self._start_sim = self.env.now
        self._installed = True

    def uninstall(self) -> None:
        """Restore the un-instrumented ``env.step``."""
        if not self._installed:
            raise ValueError("profiler is not installed")
        del self.env.step  # drop the instance shadow, exposing the method
        self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    def _step(self) -> None:
        heap = self.env._heap
        if len(heap) > self.heap_peak:
            self.heap_peak = len(heap)
        t0 = _time.perf_counter()
        try:
            self._orig_step()
        finally:
            self.wall_seconds += _time.perf_counter() - t0
            self.events_processed += 1
            if len(heap) > self.heap_peak:
                self.heap_peak = len(heap)

    def report(self) -> EngineProfile:
        """Snapshot the counters as a frozen :class:`EngineProfile`."""
        span = self.env.now - self._start_sim
        return EngineProfile(
            events_processed=self.events_processed,
            heap_peak=self.heap_peak,
            sim_time=span if span > 0 else ZERO,
            wall_seconds=self.wall_seconds,
        )
