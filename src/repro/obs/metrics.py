"""Run metrics, computed live from the trace stream.

A :class:`MetricsCollector` subscribes to a
:class:`~repro.sim.trace.Tracer` and folds every record into exact
per-processor counters; :meth:`MetricsCollector.finalize` freezes them
into a :class:`RunMetrics` summary.  All arithmetic is
:class:`fractions.Fraction`-exact, so the summary quantities compare
against the paper's closed forms with ``==``:

* **makespan** — arrival of the last message, the paper's ``T_A(n, m,
  lambda)`` (Lemmas 10/12/14/16 give it in closed form for
  REPEAT/PACK/PIPELINE).
* **send/receive busy time** — one unit per traced send/delivery
  (Definition 1: ports are unit-rate), so busy time is exactly the event
  count.
* **port utilization** — busy time over makespan.  Lemma 8's lower bound
  ``(m-1) + f_lambda(n)`` is at heart a *root send-port utilization*
  argument: the root alone must emit ``m`` distinct messages.
* **inbox high-water mark** — peak queue depth between delivery
  (``"deliver"``) and consumption (``"consume"``); bounded streams are
  what make PIPELINE's order preservation cheap.
* **latency histogram** — exact ``arrived_at - sent_at`` per delivery:
  a single bucket at ``lambda`` under the strict uniform policy, a
  spread under the queued policy or pair-dependent latencies.

The collector never inspects the system it observes — everything derives
from the trace stream alone, which is what makes the numbers auditable
(the trace is one of the three independent records ``validate_run``
cross-checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.sim.trace import TraceRecord, Tracer
from repro.types import Time, ZERO, time_repr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.postal.machine import PostalSystem

__all__ = [
    "RunMetrics",
    "MetricsCollector",
    "collect_metrics",
    "cross_check_metrics",
]


def _per_proc(counts: Mapping[int, Any], n: int, default: Any) -> tuple:
    return tuple(counts.get(p, default) for p in range(n))


@dataclass(frozen=True)
class RunMetrics:
    """Frozen summary of one run's trace stream.

    All times are exact :class:`~fractions.Fraction`; per-processor
    sequences are indexed by processor id.  Two runs of the same
    deterministic protocol produce *equal* ``RunMetrics`` (asserted in the
    test suite).
    """

    n: int
    lam: Time | None
    makespan: Time
    total_sends: int
    total_deliveries: int
    total_consumed: int
    total_drops: int
    sends: tuple[int, ...]
    receives: tuple[int, ...]
    send_busy: tuple[Time, ...]
    recv_busy: tuple[Time, ...]
    send_utilization: tuple[Time, ...]
    recv_utilization: tuple[Time, ...]
    inbox_high_water: tuple[int, ...]
    inbox_residual: tuple[int, ...]
    latency_histogram: tuple[tuple[Time, int], ...]
    min_latency: Time | None
    max_latency: Time | None
    mean_latency: Time | None
    max_inbox_wait: Time | None

    # ------------------------------------------------------------ queries

    def busiest_sender(self) -> int:
        """Processor with the most sends (ties break low)."""
        return max(range(self.n), key=lambda p: (self.sends[p], -p))

    def deepest_inbox(self) -> int:
        """Processor with the highest inbox high-water mark (ties low)."""
        return max(range(self.n), key=lambda p: (self.inbox_high_water[p], -p))

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict: Fractions rendered via ``str`` (``"5/2"``)."""

        def t(v):
            return None if v is None else str(v)

        return {
            "n": self.n,
            "lam": t(self.lam),
            "makespan": t(self.makespan),
            "total_sends": self.total_sends,
            "total_deliveries": self.total_deliveries,
            "total_consumed": self.total_consumed,
            "total_drops": self.total_drops,
            "sends": list(self.sends),
            "receives": list(self.receives),
            "send_busy": [t(v) for v in self.send_busy],
            "recv_busy": [t(v) for v in self.recv_busy],
            "send_utilization": [t(v) for v in self.send_utilization],
            "recv_utilization": [t(v) for v in self.recv_utilization],
            "inbox_high_water": list(self.inbox_high_water),
            "inbox_residual": list(self.inbox_residual),
            "latency_histogram": [
                [t(latency), count] for latency, count in self.latency_histogram
            ],
            "min_latency": t(self.min_latency),
            "max_latency": t(self.max_latency),
            "mean_latency": t(self.mean_latency),
            "max_inbox_wait": t(self.max_inbox_wait),
        }

    def __str__(self) -> str:
        lam = "?" if self.lam is None else time_repr(self.lam)
        return (
            f"RunMetrics(n={self.n}, lambda={lam}, "
            f"makespan={time_repr(self.makespan)}, "
            f"sends={self.total_sends}, drops={self.total_drops})"
        )


class MetricsCollector:
    """Folds a trace stream into exact run metrics.

    Typical lifecycle (what :func:`repro.postal.runner.run_protocol`
    does)::

        collector = MetricsCollector()
        collector.attach(tracer)        # live subscription
        ...                             # run the simulation
        metrics = collector.finalize(n=system.n, lam=system.lam)
        collector.detach()              # explicit teardown

    A collector may also be applied *post hoc* to a finished tracer —
    :meth:`attach` with ``replay=True`` (the default) folds in records
    that were emitted before the subscription.
    """

    def __init__(self) -> None:
        self._tracer: Tracer | None = None
        self.reset()

    def reset(self) -> None:
        """Zero every counter (the attachment, if any, is kept)."""
        self._sends: dict[int, int] = {}
        self._recvs: dict[int, int] = {}
        self._consumed: dict[int, int] = {}
        self._drops = 0
        self._depth: dict[int, int] = {}
        self._high_water: dict[int, int] = {}
        self._latency: dict[Time, int] = {}
        self._latency_sum: Time = ZERO
        self._latency_count = 0
        self._max_wait: Time | None = None
        self._makespan: Time = ZERO

    # -------------------------------------------------------- subscription

    def attach(self, tracer: Tracer, *, replay: bool = True) -> "MetricsCollector":
        """Subscribe to *tracer* (optionally replaying its existing
        records first).  Returns ``self`` for chaining."""
        if self._tracer is not None:
            raise ValueError("collector is already attached to a tracer")
        if replay:
            for rec in tracer:
                self.on_record(rec)
        tracer.subscribe(self.on_record)
        self._tracer = tracer
        return self

    def detach(self) -> None:
        """Unsubscribe from the attached tracer."""
        if self._tracer is None:
            raise ValueError("collector is not attached to a tracer")
        self._tracer.unsubscribe(self.on_record)
        self._tracer = None

    @property
    def attached(self) -> bool:
        return self._tracer is not None

    # ------------------------------------------------------------ folding

    def on_record(self, rec: TraceRecord) -> None:
        """Fold one trace record (the subscriber callback)."""
        kind = rec.kind
        if kind == "send":
            src = rec.data["src"]
            self._sends[src] = self._sends.get(src, 0) + 1
        elif kind == "deliver":
            msg = rec.data
            dst = msg.dst
            self._recvs[dst] = self._recvs.get(dst, 0) + 1
            depth = self._depth.get(dst, 0) + 1
            self._depth[dst] = depth
            if depth > self._high_water.get(dst, 0):
                self._high_water[dst] = depth
            latency = msg.arrived_at - msg.sent_at
            self._latency[latency] = self._latency.get(latency, 0) + 1
            self._latency_sum += latency
            self._latency_count += 1
            if msg.arrived_at > self._makespan:
                self._makespan = msg.arrived_at
        elif kind == "consume":
            proc = rec.data["proc"]
            self._consumed[proc] = self._consumed.get(proc, 0) + 1
            self._depth[proc] = self._depth.get(proc, 0) - 1
            waited = rec.data["waited"]
            if self._max_wait is None or waited > self._max_wait:
                self._max_wait = waited
        elif kind == "drop":
            self._drops += 1
        # unknown kinds are ignored: forward-compatible with extensions

    # ----------------------------------------------------------- summary

    def finalize(self, *, n: int, lam: Time | None = None) -> RunMetrics:
        """Freeze the counters into a :class:`RunMetrics` for an
        ``n``-processor machine with nominal latency *lam*."""
        makespan = self._makespan
        sends = _per_proc(self._sends, n, 0)
        recvs = _per_proc(self._recvs, n, 0)
        send_busy = tuple(Time(c) for c in sends)
        recv_busy = tuple(Time(c) for c in recvs)
        if makespan > 0:
            send_util = tuple(b / makespan for b in send_busy)
            recv_util = tuple(b / makespan for b in recv_busy)
        else:
            send_util = tuple(ZERO for _ in range(n))
            recv_util = tuple(ZERO for _ in range(n))
        total_sends = sum(sends)
        total_deliveries = sum(recvs)
        total_consumed = sum(self._consumed.values())
        latencies = sorted(self._latency)
        mean = (
            self._latency_sum / self._latency_count
            if self._latency_count
            else None
        )
        return RunMetrics(
            n=n,
            lam=lam,
            makespan=makespan,
            total_sends=total_sends,
            total_deliveries=total_deliveries,
            total_consumed=total_consumed,
            total_drops=self._drops,
            sends=sends,
            receives=recvs,
            send_busy=send_busy,
            recv_busy=recv_busy,
            send_utilization=send_util,
            recv_utilization=recv_util,
            inbox_high_water=_per_proc(self._high_water, n, 0),
            inbox_residual=_per_proc(self._depth, n, 0),
            latency_histogram=tuple(
                (latency, self._latency[latency]) for latency in latencies
            ),
            min_latency=latencies[0] if latencies else None,
            max_latency=latencies[-1] if latencies else None,
            mean_latency=mean,
            max_inbox_wait=self._max_wait,
        )


def cross_check_metrics(metrics: RunMetrics, schedule) -> list[str]:
    """Diff a trace-derived :class:`RunMetrics` against an independently
    built :class:`~repro.core.schedule.Schedule` — the observability half
    of the conformance certificate (``repro.conformance``).

    Returns a list of human-readable discrepancy strings (empty = the two
    records agree).  Checked: makespan vs completion time, total sends vs
    event count, per-processor send/receive counts, and (uniform strict
    runs) the latency histogram collapsing to a single ``lambda`` bucket.
    """
    problems: list[str] = []
    completion = schedule.completion_time()
    if metrics.makespan != completion:
        problems.append(
            f"makespan {time_repr(metrics.makespan)} != schedule completion "
            f"{time_repr(completion)}"
        )
    if metrics.total_sends != len(schedule.events):
        problems.append(
            f"total_sends {metrics.total_sends} != "
            f"{len(schedule.events)} schedule events"
        )
    if metrics.total_deliveries != len(schedule.events):
        problems.append(
            f"total_deliveries {metrics.total_deliveries} != "
            f"{len(schedule.events)} schedule events"
        )
    sends: dict[int, int] = {}
    recvs: dict[int, int] = {}
    for ev in schedule.events:
        sends[ev.sender] = sends.get(ev.sender, 0) + 1
        recvs[ev.receiver] = recvs.get(ev.receiver, 0) + 1
    for p in range(metrics.n):
        if metrics.sends[p] != sends.get(p, 0):
            problems.append(
                f"p{p}: {metrics.sends[p]} traced sends != "
                f"{sends.get(p, 0)} schedule events"
            )
        if metrics.receives[p] != recvs.get(p, 0):
            problems.append(
                f"p{p}: {metrics.receives[p]} traced deliveries != "
                f"{recvs.get(p, 0)} schedule events"
            )
    if metrics.lam is not None and metrics.latency_histogram:
        buckets = [latency for latency, _ in metrics.latency_histogram]
        if buckets != [metrics.lam]:
            problems.append(
                f"latency histogram buckets "
                f"{[time_repr(b) for b in buckets]} != [lambda] — "
                f"a uniform strict run must pay exactly lambda per hop"
            )
    return problems


def collect_metrics(system: "PostalSystem") -> RunMetrics:
    """Post-hoc metrics for a finished :class:`~repro.postal.machine.
    PostalSystem`: replay its trace through a fresh collector."""
    collector = MetricsCollector()
    for rec in system.tracer:
        collector.on_record(rec)
    return collector.finalize(n=system.n, lam=system.lam)
