"""Critical-path extraction and slack analysis over a realized schedule.

In the postal model, a send event ``e`` by processor ``p`` cannot start
before either of its two *structural* predecessors finishes:

* **data edge** — the delivery that put ``(p, e.msg)`` in ``p``'s hands
  (arrival time; time 0 if ``p`` is the root);
* **port edge** — ``p``'s previous send finishing (``send_time + 1``;
  Definition 1's unit-rate send port).

``slack(e) = e.send_time - max(data_ready, port_free)`` is therefore an
exact, nonnegative Fraction for every valid schedule.  The **critical
path** is the zero-slack chain walked backwards from the event achieving
the completion time ``T_A`` — the sequence of sends along which the run
cannot be compressed.  Its *length* is the completion time itself, so for
BCAST/REPEAT/PACK/PIPELINE the reported length equals the paper's closed
forms (Theorem 6, Lemmas 10/12/14/16) with Fraction equality — asserted
across a parameter grid in the test suite.

Whether the chain is *anchored* (``tight``: reaches ``t = 0`` with zero
slack at every hop) is itself diagnostic:

* BCAST and PIPELINE chains are always tight — every hop is either a
  back-to-back port handoff or a forward-on-arrival data handoff.
* PACK is tight only at ``m = 1``: a forwarder idles ``m - 1`` units
  waiting for the whole pack before relaying message 1, which is exactly
  the structural reason PIPELINE dominates PACK (Section 4.2).
* REPEAT may break on ``F_lambda`` plateaus, where the root finishes an
  iteration early and Lemma 10's fixed stride leaves a genuine gap — the
  slack the greedy-REPEAT sharpening reclaims.

The walk prefers the port edge when both edges are tight (yielding a
chain that is contiguous in time at one processor before hopping), which
makes the rendered path read like a Gantt critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule, SendEvent
from repro.types import ONE, Time, ZERO, time_repr

__all__ = ["CriticalPath", "event_slacks", "critical_path", "format_critical_path"]


@dataclass(frozen=True)
class CriticalPath:
    """The extracted zero-slack chain.

    Attributes:
        events: the chain, chronological (empty for ``n == 1`` runs).
        length: arrival time of the final event — by construction the
            schedule's ``completion_time()``.
        tight: the chain reaches ``t = 0`` with zero slack at every hop.
        break_time: when not tight, the start time of the earliest chain
            event (the instant before which slack appears); ``None``
            when tight.
    """

    events: tuple[SendEvent, ...]
    length: Time
    tight: bool
    break_time: Time | None = None

    def __len__(self) -> int:
        return len(self.events)


def _structure(
    schedule: Schedule,
) -> tuple[
    dict[SendEvent, Time],
    dict[SendEvent, SendEvent | None],
    dict[SendEvent, SendEvent | None],
]:
    """Per-event slack plus the two predecessor maps (port, data)."""
    arrivals = schedule.arrivals()
    delivering: dict[tuple[int, int], SendEvent] = {
        (ev.receiver, ev.msg): ev for ev in schedule.events
    }
    slack: dict[SendEvent, Time] = {}
    pred_port: dict[SendEvent, SendEvent | None] = {}
    pred_data: dict[SendEvent, SendEvent | None] = {}
    last_send: dict[int, SendEvent] = {}
    for ev in schedule.events:  # chronological
        data_ready = arrivals[(ev.sender, ev.msg)]
        prev = last_send.get(ev.sender)
        port_free = prev.send_time + ONE if prev is not None else ZERO
        slack[ev] = ev.send_time - max(data_ready, port_free)
        pred_port[ev] = prev
        pred_data[ev] = delivering.get((ev.sender, ev.msg))
        last_send[ev.sender] = ev
    return slack, pred_port, pred_data


def event_slacks(schedule: Schedule) -> dict[SendEvent, Time]:
    """Exact start slack of every send event (nonnegative for any valid
    postal schedule)."""
    slack, _, _ = _structure(schedule)
    return slack


def critical_path(schedule: Schedule) -> CriticalPath:
    """Walk the zero-slack chain backwards from the completion event.

    Deterministic: the terminal event is the lexicographically largest
    among those achieving the completion time, and port edges are
    preferred over data edges when both are tight.
    """
    if not schedule.events:
        return CriticalPath(events=(), length=ZERO, tight=True)
    lam = schedule.lam
    slack, pred_port, pred_data = _structure(schedule)
    terminal = max(
        schedule.events, key=lambda ev: (ev.arrival_time(lam), ev)
    )
    chain = [terminal]
    ev = terminal
    tight = True
    break_time: Time | None = None
    while True:
        t = ev.send_time
        if slack[ev] > 0:
            tight = False
            break_time = t
            break
        if t == 0:
            break
        prev = pred_port[ev]
        if prev is not None and prev.send_time + ONE == t:
            ev = prev
        else:
            dep = pred_data[ev]
            # slack == 0 and t > 0 and the port edge is loose, so the
            # data edge must be tight: dep exists and arrives exactly at t
            assert dep is not None and dep.arrival_time(lam) == t
            ev = dep
        chain.append(ev)
    chain.reverse()
    return CriticalPath(
        events=tuple(chain),
        length=terminal.arrival_time(lam),
        tight=tight,
        break_time=break_time,
    )


def format_critical_path(path: CriticalPath, lam: Time) -> str:
    """Human-readable rendering, one hop per line."""
    if not path.events:
        return "(empty schedule: nothing to broadcast)"
    lines = []
    if path.tight:
        lines.append(
            f"critical path: {len(path.events)} sends, tight back to t=0, "
            f"length {time_repr(path.length)}"
        )
    else:
        lines.append(
            f"critical path: {len(path.events)} sends, slack appears before "
            f"t={time_repr(path.break_time)}, length {time_repr(path.length)}"
        )
    for ev in path.events:
        lines.append(
            f"  p{ev.sender} --M{ev.msg + 1}--> p{ev.receiver}  "
            f"send t={time_repr(ev.send_time)}  "
            f"arrive t={time_repr(ev.arrival_time(lam))}"
        )
    return "\n".join(lines)
