"""Trace exporters: Chrome trace-event JSON, CSV, and JSON-lines.

The Chrome exporter targets the `Trace Event Format` consumed by
``chrome://tracing`` and by Perfetto's legacy-JSON importer:

* every **processor** becomes a process (``pid`` = processor id, named
  ``p0 .. p{n-1}``) with two threads: ``tid 0`` = *send port*, ``tid 1``
  = *recv port*;
* every traced **send** becomes a one-unit complete (``"X"``) event on
  the sender's send-port track, and every **delivery** a one-unit
  ``"X"`` on the receiver's recv-port track covering the receive window
  ``[arrived-1, arrived)``;
* each message's network **flight** is a flow arrow (``"s"``/``"f"``)
  from the send to the matching receive — in Perfetto, enable *flow
  events* to see the broadcast tree as arrows;
* inbox **queue depth** is a counter track (``"C"``) per processor,
  stepped up on delivery and down on consumption;
* **drops** (lossy extension) are instant events (``"i"``) on the
  sender's track.

Timestamps are in microseconds as the format requires; one simulated
postal time unit maps to ``scale`` microseconds (default 1000, so one
unit renders as 1 ms).  Simulation times are exact Fractions; scaled
timestamps are emitted as floats, ordered exactly (events are sorted by
exact time before conversion, so ``ts`` is monotone in file order).
"""

from __future__ import annotations

import csv
import json
from typing import IO, TYPE_CHECKING, Any, Iterable

from repro.core.schedule import Schedule
from repro.sim.trace import TraceRecord
from repro.types import ONE, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.postal.machine import PostalSystem

__all__ = [
    "record_fields",
    "chrome_trace",
    "schedule_to_chrome",
    "write_chrome_trace",
    "dump_jsonl",
    "dump_csv",
    "CSV_FIELDS",
]

#: Column order of the CSV dump (the union of all per-kind payloads).
CSV_FIELDS = (
    "t",
    "kind",
    "src",
    "dst",
    "proc",
    "msg",
    "sent_at",
    "arrived_at",
    "waited",
)


def _timestr(value: Any) -> Any:
    """Fractions to exact strings (``"5/2"``), everything else as-is."""
    return str(value) if isinstance(value, Time) else value


def record_fields(rec: TraceRecord) -> dict[str, Any]:
    """Flatten one record to a JSON-safe dict (exact times as strings).

    ``send``/``consume``/``drop`` carry dict payloads that pass through;
    ``deliver`` carries a :class:`~repro.postal.message.Message` that is
    exploded into ``msg``/``src``/``dst``/``sent_at``/``arrived_at``.
    """
    out: dict[str, Any] = {"t": _timestr(rec.time), "kind": rec.kind}
    data = rec.data
    if data is None:
        return out
    if isinstance(data, dict):
        for key, value in data.items():
            out[key] = _timestr(value)
        return out
    # Message-like payload (duck-typed: no import cycle with repro.postal)
    for attr in ("msg", "src", "dst", "sent_at", "arrived_at"):
        if hasattr(data, attr):
            out[attr] = _timestr(getattr(data, attr))
    return out


# ------------------------------------------------------------------ chrome


def _meta(pid: int, n_label: str) -> list[dict[str, Any]]:
    return [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": n_label},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": pid},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "send port"},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "recv port"},
        },
    ]


def chrome_trace(
    system: "PostalSystem", *, scale: int = 1000
) -> dict[str, Any]:
    """Render a finished system's trace as a Chrome trace-event dict.

    ``json.dump`` the result (or use :func:`write_chrome_trace`) and load
    it in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: list[tuple[Time, int, dict[str, Any]]] = []  # (time, seq, event)
    seq = 0

    def push(time: Time, event: dict[str, Any]) -> None:
        nonlocal seq
        event["ts"] = float(time * scale)
        events.append((time, seq, event))
        seq += 1

    flow_ids: dict[tuple[int, int, int, Time], int] = {}
    depth: dict[int, int] = {}
    pids: set[int] = set()
    for rec in system.tracer:
        kind = rec.kind
        if kind == "send":
            src, dst, msg = rec.data["src"], rec.data["dst"], rec.data["msg"]
            pids.update((src, dst))
            push(
                rec.time,
                {
                    "ph": "X",
                    "pid": src,
                    "tid": 0,
                    "name": f"send M{msg + 1} to p{dst}",
                    "cat": "send",
                    "dur": float(scale),
                    "args": {"msg": msg, "dst": dst},
                },
            )
            flow = flow_ids[(src, dst, msg, rec.time)] = len(flow_ids)
            push(
                rec.time,
                {
                    "ph": "s",
                    "pid": src,
                    "tid": 0,
                    "id": flow,
                    "name": "flight",
                    "cat": "flight",
                },
            )
        elif kind == "deliver":
            message = rec.data
            pids.update((message.src, message.dst))
            push(
                message.arrived_at - ONE,
                {
                    "ph": "X",
                    "pid": message.dst,
                    "tid": 1,
                    "name": f"recv M{message.msg + 1} from p{message.src}",
                    "cat": "recv",
                    "dur": float(scale),
                    "args": {"msg": message.msg, "src": message.src},
                },
            )
            key = (message.src, message.dst, message.msg, message.sent_at)
            flow = flow_ids.get(key)
            if flow is not None:
                push(
                    message.arrived_at - ONE,
                    {
                        "ph": "f",
                        "bp": "e",
                        "pid": message.dst,
                        "tid": 1,
                        "id": flow,
                        "name": "flight",
                        "cat": "flight",
                    },
                )
            d = depth.get(message.dst, 0) + 1
            depth[message.dst] = d
            push(
                message.arrived_at,
                {
                    "ph": "C",
                    "pid": message.dst,
                    "tid": 1,
                    "name": "inbox",
                    "args": {"depth": d},
                },
            )
        elif kind == "consume":
            proc = rec.data["proc"]
            pids.add(proc)
            d = depth.get(proc, 0) - 1
            depth[proc] = d
            push(
                rec.time,
                {
                    "ph": "C",
                    "pid": proc,
                    "tid": 1,
                    "name": "inbox",
                    "args": {"depth": d},
                },
            )
        elif kind == "drop":
            src, dst, msg = rec.data["src"], rec.data["dst"], rec.data["msg"]
            pids.update((src, dst))
            push(
                rec.time,
                {
                    "ph": "i",
                    "pid": src,
                    "tid": 0,
                    "s": "p",
                    "name": f"drop M{msg + 1} to p{dst}",
                    "cat": "drop",
                },
            )

    trace_events: list[dict[str, Any]] = []
    for pid in sorted(pids if pids else range(system.n)):
        for meta in _meta(pid, f"p{pid}"):
            meta["ts"] = 0.0
            trace_events.append(meta)
    events.sort(key=lambda item: (item[0], item[1]))
    trace_events.extend(event for _, _, event in events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "n": system.n,
            "lam": str(system.lam),
            "policy": system.policy.value,
            "records": len(system.tracer),
            "scale_us_per_unit": scale,
        },
    }


def schedule_to_chrome(
    schedule: Schedule, *, scale: int = 1000
) -> dict[str, Any]:
    """Chrome trace of a *static* :class:`~repro.core.schedule.Schedule`
    (no simulation required): send and receive windows plus flight flows,
    derived from the schedule arithmetic."""
    lam = schedule.lam
    events: list[tuple[Time, int, dict[str, Any]]] = []
    seq = 0

    def push(time: Time, event: dict[str, Any]) -> None:
        nonlocal seq
        event["ts"] = float(time * scale)
        events.append((time, seq, event))
        seq += 1

    for flow, ev in enumerate(schedule.events):
        push(
            ev.send_time,
            {
                "ph": "X",
                "pid": ev.sender,
                "tid": 0,
                "name": f"send M{ev.msg + 1} to p{ev.receiver}",
                "cat": "send",
                "dur": float(scale),
                "args": {"msg": ev.msg, "dst": ev.receiver},
            },
        )
        push(
            ev.send_time,
            {
                "ph": "s",
                "pid": ev.sender,
                "tid": 0,
                "id": flow,
                "name": "flight",
                "cat": "flight",
            },
        )
        arrival = ev.arrival_time(lam)
        push(
            arrival - ONE,
            {
                "ph": "X",
                "pid": ev.receiver,
                "tid": 1,
                "name": f"recv M{ev.msg + 1} from p{ev.sender}",
                "cat": "recv",
                "dur": float(scale),
                "args": {"msg": ev.msg, "src": ev.sender},
            },
        )
        push(
            arrival - ONE,
            {
                "ph": "f",
                "bp": "e",
                "pid": ev.receiver,
                "tid": 1,
                "id": flow,
                "name": "flight",
                "cat": "flight",
            },
        )

    trace_events: list[dict[str, Any]] = []
    for pid in range(schedule.n):
        for meta in _meta(pid, f"p{pid}"):
            meta["ts"] = 0.0
            trace_events.append(meta)
    events.sort(key=lambda item: (item[0], item[1]))
    trace_events.extend(event for _, _, event in events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "n": schedule.n,
            "m": schedule.m,
            "lam": str(lam),
            "scale_us_per_unit": scale,
        },
    }


def write_chrome_trace(
    path: str, source: "PostalSystem | Schedule", *, scale: int = 1000
) -> None:
    """Write a Chrome trace JSON file for a finished system or a static
    schedule."""
    if isinstance(source, Schedule):
        doc = schedule_to_chrome(source, scale=scale)
    else:
        doc = chrome_trace(source, scale=scale)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)


# ------------------------------------------------------------- flat dumps


def dump_jsonl(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Write one JSON object per trace record; returns the line count."""
    count = 0
    for rec in records:
        fh.write(json.dumps(record_fields(rec), sort_keys=True))
        fh.write("\n")
        count += 1
    return count


def dump_csv(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Write the records as CSV (columns :data:`CSV_FIELDS`); returns the
    data-row count."""
    writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS, extrasaction="ignore")
    writer.writeheader()
    count = 0
    for rec in records:
        writer.writerow(record_fields(rec))
        count += 1
    return count
