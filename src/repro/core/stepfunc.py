"""Right-continuous step-function calculus (Claims 1 and 2 of the paper).

The paper's machinery is built on step functions ``G: R+ -> N`` that are
right-continuous, nondecreasing, and unbounded, together with their *index
functions* ``I_G(n) = min{t : G(t) >= n}``.  This module gives that calculus
a concrete, exactly-representable form:

* :class:`StepFunction` — abstract interface: evaluate at a time, query the
  index function, iterate jump points.
* :class:`TabulatedStepFunction` — a step function given by an explicit,
  finite-but-extensible table of jump points.  Used for ``N(t)`` in the
  optimality proof and for per-algorithm "informed processor count"
  functions ``A(t)``.

The four parts of Claim 1 and the comparison of Claim 2 are provided as
checkable predicates (used heavily by the property-based tests).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = [
    "StepFunction",
    "TabulatedStepFunction",
    "claim1_holds",
    "claim2_holds",
]


class StepFunction(ABC):
    """A right-continuous, nondecreasing, unbounded step function
    ``G: R+ -> N`` with its index function ``I_G``.

    Subclasses implement :meth:`value_at` and :meth:`index`; ``__call__``
    accepts anything :func:`repro.types.as_time` accepts.
    """

    @abstractmethod
    def value_at(self, t: Time) -> int:
        """``G(t)`` for exact time ``t >= 0``."""

    @abstractmethod
    def index(self, n: int) -> Time:
        """The index function ``I_G(n) = min{t : G(t) >= n}`` for ``n >= 1``."""

    def __call__(self, t: TimeLike) -> int:
        t = as_time(t)
        if t < 0:
            raise InvalidParameterError(f"step functions are defined on t >= 0, got {t}")
        return self.value_at(t)

    def jumps(self, up_to: TimeLike) -> Iterator[tuple[Time, int]]:
        """Yield ``(t, G(t))`` at each strict jump point ``t <= up_to``,
        starting with ``(0, G(0))``.

        The default implementation scans :meth:`jump_times`.
        """
        limit = as_time(up_to)
        prev: int | None = None
        for t in self.jump_times(limit):
            v = self.value_at(t)
            if prev is None or v > prev:
                yield (t, v)
                prev = v

    def jump_times(self, up_to: Time) -> Iterable[Time]:
        """Candidate jump times in ``[0, up_to]`` in increasing order.

        Subclasses with a known jump grid should override this; the base
        implementation raises.
        """
        raise NotImplementedError


class TabulatedStepFunction(StepFunction):
    """A step function given by explicit jump points.

    ``times`` and ``values`` are parallel sequences; the function takes the
    value ``values[i]`` on ``[times[i], times[i+1])`` and ``values[-1]`` on
    ``[times[-1], horizon)``.  The table must start at ``times[0] == 0`` and
    be strictly increasing in time and nondecreasing in value.

    A tabulated function is only known up to its ``horizon``; evaluating
    beyond it (or asking for an index above the last tabulated value) raises
    unless the instance was created with ``final=True``, in which case the
    last value extends to infinity (useful for "number of informed
    processors", which saturates at ``n``).
    """

    def __init__(
        self,
        times: Sequence[TimeLike],
        values: Sequence[int],
        *,
        final: bool = False,
        horizon: TimeLike | None = None,
    ):
        if len(times) != len(values):
            raise InvalidParameterError("times and values must have equal length")
        if not times:
            raise InvalidParameterError("a step function needs at least one jump point")
        self._times: list[Time] = [as_time(t) for t in times]
        self._values: list[int] = [int(v) for v in values]
        if self._times[0] != ZERO:
            raise InvalidParameterError(
                f"the table must start at t=0, got t={self._times[0]}"
            )
        for a, b in zip(self._times, self._times[1:]):
            if not a < b:
                raise InvalidParameterError("jump times must be strictly increasing")
        for a, b in zip(self._values, self._values[1:]):
            if a > b:
                raise InvalidParameterError("values must be nondecreasing")
        if any(v < 1 for v in self._values):
            raise InvalidParameterError("step functions map into the positive integers")
        self._final = final
        self._horizon = as_time(horizon) if horizon is not None else self._times[-1]
        if self._horizon < self._times[-1]:
            raise InvalidParameterError("horizon precedes the last jump point")

    @property
    def horizon(self) -> Time:
        """Largest time at which this table is authoritative."""
        return self._horizon

    def value_at(self, t: Time) -> int:
        if t < 0:
            raise InvalidParameterError(f"t must be >= 0, got {t}")
        if not self._final and t > self._horizon:
            raise InvalidParameterError(
                f"value at t={t} is beyond this table's horizon {self._horizon}"
            )
        i = bisect.bisect_right(self._times, t) - 1
        return self._values[i]

    def index(self, n: int) -> Time:
        if n < 1:
            raise InvalidParameterError(f"index is defined for n >= 1, got {n}")
        if n > self._values[-1]:
            raise InvalidParameterError(
                f"index({n}) exceeds the last tabulated value {self._values[-1]}"
            )
        i = bisect.bisect_left(self._values, n)
        return self._times[i]

    def jump_times(self, up_to: Time) -> Iterable[Time]:
        for t in self._times:
            if t > up_to:
                break
            yield t

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TabulatedStepFunction):
            return NotImplemented
        return (
            self._times == other._times
            and self._values == other._values
            and self._final == other._final
        )

    def __repr__(self) -> str:
        pairs = ", ".join(f"{t}:{v}" for t, v in zip(self._times[:6], self._values[:6]))
        more = "..." if len(self._times) > 6 else ""
        return f"TabulatedStepFunction({pairs}{more})"


def claim1_holds(
    g: StepFunction,
    *,
    times: Iterable[TimeLike],
    ns: Iterable[int],
    epsilons: Iterable[TimeLike] = ("1/1000",),
) -> bool:
    """Check the four parts of Claim 1 at the sampled points.

    (1) ``I_G`` is nondecreasing (checked over the sorted ``ns``);
    (2) ``I_G(G(t)) <= t`` for each sampled ``t``;
    (3) ``G(I_G(n)) >= n`` for each sampled ``n``;
    (4) ``G(I_G(n) - eps) < n`` whenever ``I_G(n) - eps >= 0``.
    """
    ns = sorted(set(int(n) for n in ns))
    idx = [g.index(n) for n in ns]
    if any(a > b for a, b in zip(idx, idx[1:])):
        return False
    for t in times:
        t = as_time(t)
        if g.index(g.value_at(t)) > t:
            return False
    eps_list = [as_time(e) for e in epsilons]
    for n, i in zip(ns, idx):
        if g.value_at(i) < n:
            return False
        for eps in eps_list:
            if i - eps >= 0 and g.value_at(i - eps) >= n:
                return False
    return True


def claim2_holds(
    g: StepFunction,
    h: StepFunction,
    *,
    times: Iterable[TimeLike],
    ns: Iterable[int],
) -> bool:
    """Check Claim 2: if ``G(t) <= H(t)`` pointwise (verified over the
    sampled ``times``) then ``I_G(n) >= I_H(n)`` for the sampled ``ns``."""
    for t in times:
        t = as_time(t)
        if g.value_at(t) > h.value_at(t):
            raise InvalidParameterError(
                f"claim2 precondition violated at t={t}: G={g.value_at(t)} > H={h.value_at(t)}"
            )
    return all(g.index(n) >= h.index(n) for n in ns)
