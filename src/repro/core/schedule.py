"""Schedule intermediate representation and postal-model validation.

Every broadcasting algorithm in this library — BCAST, REPEAT, PACK,
PIPELINE, DTREE, and the baselines — compiles to the same IR: a
:class:`Schedule`, i.e. a set of :class:`SendEvent` records over
``MPS(n, lambda)``.  A schedule knows how to:

* **validate** itself against the postal model (Definitions 1 and 2 of the
  paper): senders hold the message they send, send ports are busy for one
  unit per message, receive ports are busy during ``[t+lambda-1, t+lambda]``,
  and no port is driven twice at once (simultaneous I/O allows one send plus
  one receive, never two of the same kind);
* report its **completion time** (arrival of the last message at the last
  processor — the paper's ``T_A(n, m, lambda)``);
* expose per-processor arrival times and the "informed processors" step
  function ``A(t)`` used by the optimality argument of Lemma 5.

Busy intervals are treated as half-open ``[start, end)`` so that a send
finishing at ``t+1`` and the next send starting at ``t+1`` abut without
conflict, exactly as the paper's algorithms require.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import chain
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.stepfunc import TabulatedStepFunction
from repro.errors import (
    InvalidParameterError,
    ScheduleError,
    SimultaneousIOError,
)
from repro.types import ONE, ProcId, Time, TimeLike, ZERO, as_time, time_repr

__all__ = ["SendEvent", "Schedule", "check_intervals_disjoint"]


@dataclass(frozen=True, order=True)
class SendEvent:
    """One point-to-point message transmission.

    Ordering is by ``(send_time, sender, msg, receiver)`` so a sorted event
    list reads chronologically.

    Attributes:
        send_time: the time the sender starts sending; the sender's send
            port is busy during ``[send_time, send_time + 1)``.
        sender: originating processor.
        msg: message index, ``0 .. m-1`` (the paper's ``M_1 .. M_m``).
        receiver: destination processor; its receive port is busy during
            ``[send_time + lambda - 1, send_time + lambda)`` and it *knows*
            the message from ``send_time + lambda`` on.
    """

    send_time: Time
    sender: ProcId
    msg: int
    receiver: ProcId

    def arrival_time(self, lam: Time) -> Time:
        """Time at which the receiver has fully received this message."""
        return self.send_time + lam

    def __str__(self) -> str:
        return (
            f"p{self.sender} --M{self.msg + 1}--> p{self.receiver} "
            f"@ t={time_repr(self.send_time)}"
        )


def check_intervals_disjoint(
    intervals: Iterable[tuple[Time, Time]],
) -> tuple[Time, Time, Time, Time] | None:
    """Return the first overlapping pair among half-open intervals, or
    ``None`` if all are pairwise disjoint.  Input need not be sorted."""
    ordered = sorted(intervals)
    for (s1, e1), (s2, e2) in zip(ordered, ordered[1:]):
        if s2 < e1:  # half-open: touching endpoints are fine
            return (s1, e1, s2, e2)
    return None


class Schedule:
    """An executable broadcast schedule over ``MPS(n, lambda)``.

    Args:
        n: number of processors (``p_0 .. p_{n-1}``).
        lam: communication latency ``lambda >= 1``.
        events: the send events.
        m: number of messages being broadcast (message indices must lie in
            ``0 .. m-1``).
        root: the originating processor (default ``p_0``); it holds all
            ``m`` messages at time 0.
        validate: check postal-model conformance on construction (on by
            default; builders that construct provably valid schedules may
            skip and let tests validate).
    """

    def __init__(
        self,
        n: int,
        lam: TimeLike,
        events: Iterable[SendEvent],
        *,
        m: int = 1,
        root: ProcId = 0,
        validate: bool = True,
    ):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 processors, got {n}")
        if m < 1:
            raise InvalidParameterError(f"need m >= 1 messages, got {m}")
        lam = as_time(lam)
        if lam < 1:
            raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
        if not 0 <= root < n:
            raise InvalidParameterError(f"root p{root} outside 0..{n - 1}")
        self._n = n
        self._m = m
        self._lam = lam
        self._root = root
        self._events: tuple[SendEvent, ...] = tuple(sorted(events))
        self._arrivals: dict[tuple[ProcId, int], Time] | None = None
        if validate:
            self.validate()

    # ------------------------------------------------------------ accessors

    @property
    def n(self) -> int:
        """Number of processors."""
        return self._n

    @property
    def m(self) -> int:
        """Number of messages."""
        return self._m

    @property
    def lam(self) -> Time:
        """Communication latency ``lambda``."""
        return self._lam

    @property
    def root(self) -> ProcId:
        """The broadcast originator."""
        return self._root

    @property
    def events(self) -> tuple[SendEvent, ...]:
        """All send events in chronological order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SendEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and self._lam == other._lam
            and self._root == other._root
            and self._events == other._events
        )

    def __repr__(self) -> str:
        return (
            f"Schedule(n={self._n}, m={self._m}, lambda={time_repr(self._lam)}, "
            f"{len(self._events)} sends, T={time_repr(self.completion_time())})"
        )

    # ------------------------------------------------------------ semantics

    def arrivals(self) -> Mapping[tuple[ProcId, int], Time]:
        """Arrival time of each ``(processor, msg)`` delivery.

        The root's own entries are time 0 (it holds everything initially).
        """
        if self._arrivals is None:
            arr: dict[tuple[ProcId, int], Time] = {
                (self._root, k): ZERO for k in range(self._m)
            }
            for ev in self._events:
                key = (ev.receiver, ev.msg)
                if key in arr:
                    raise ScheduleError(
                        f"p{ev.receiver} is sent M{ev.msg + 1} more than once "
                        f"(second delivery: {ev})"
                    )
                arr[key] = ev.arrival_time(self._lam)
            self._arrivals = arr
        return self._arrivals

    def arrival_of(self, proc: ProcId, msg: int = 0) -> Time:
        """When *proc* has fully received message *msg*."""
        try:
            return self.arrivals()[(proc, msg)]
        except KeyError:
            raise ScheduleError(
                f"p{proc} never receives M{msg + 1} in this schedule"
            ) from None

    def completion_time(self) -> Time:
        """Arrival time of the last message at the last processor — the
        paper's running time ``T(n, m, lambda)``.  Zero for ``n == 1``."""
        arr = self.arrivals()
        return max(arr.values(), default=ZERO)

    def sends_by(self, proc: ProcId) -> list[SendEvent]:
        """The events *proc* originates, chronologically."""
        return [e for e in self._events if e.sender == proc]

    def receives_by(self, proc: ProcId) -> list[SendEvent]:
        """The events delivering to *proc*, by arrival time."""
        return sorted(
            (e for e in self._events if e.receiver == proc),
            key=lambda e: (e.arrival_time(self._lam), e.msg),
        )

    def informed_count(self, msg: int = 0) -> TabulatedStepFunction:
        """The step function ``A(t)`` = number of processors that know
        message *msg* at time ``t`` (the quantity bounded by ``F_lambda`` in
        Lemma 5).  Final: it saturates at ``n``."""
        times = sorted(
            arr for (proc, k), arr in self.arrivals().items() if k == msg
        )
        if not times or times[0] != ZERO:
            raise ScheduleError(f"no processor holds M{msg + 1} at time 0")
        jump_times: list[Time] = []
        values: list[int] = []
        count = 0
        for t in times:
            count += 1
            if jump_times and jump_times[-1] == t:
                values[-1] = count
            else:
                jump_times.append(t)
                values.append(count)
        return TabulatedStepFunction(jump_times, values, final=True)

    # ----------------------------------------------------------- validation

    def validate(self) -> None:
        """Check full conformance with the postal model.

        Raises:
            ScheduleError: structural problems — processor ids out of range,
                message ids out of range, a duplicate delivery, a sender
                transmitting a message it does not hold yet, sending to
                oneself, or an undelivered ``(processor, msg)`` pair.
            SimultaneousIOError: two sends (or two receives) at one
                processor overlap in time.
        """
        lam = self._lam
        for ev in self._events:
            if not 0 <= ev.sender < self._n:
                raise ScheduleError(f"sender out of range in {ev}")
            if not 0 <= ev.receiver < self._n:
                raise ScheduleError(f"receiver out of range in {ev}")
            if ev.sender == ev.receiver:
                raise ScheduleError(f"self-send in {ev}")
            if not 0 <= ev.msg < self._m:
                raise ScheduleError(f"message index out of range in {ev}")
            if ev.send_time < 0:
                raise ScheduleError(f"negative send time in {ev}")

        arrivals = self.arrivals()  # also detects duplicate deliveries

        # every sender must hold the message when it starts sending
        for ev in self._events:
            held_from = arrivals.get((ev.sender, ev.msg))
            if held_from is None:
                raise ScheduleError(
                    f"{ev}: p{ev.sender} never obtains M{ev.msg + 1}"
                )
            if ev.send_time < held_from:
                raise ScheduleError(
                    f"{ev}: p{ev.sender} only holds M{ev.msg + 1} from "
                    f"t={time_repr(held_from)}"
                )

        # full coverage: all n-1 non-root processors get all m messages
        expected = self._n * self._m
        if len(arrivals) != expected:
            missing = [
                (p, k)
                for p in range(self._n)
                for k in range(self._m)
                if (p, k) not in arrivals
            ]
            p, k = missing[0]
            raise ScheduleError(
                f"incomplete broadcast: p{p} never receives M{k + 1} "
                f"({len(missing)} deliveries missing)"
            )

        # port busy intervals: one send and one receive at a time, half-open
        self._audit_port_sweep()

    def _audit_port_sweep(self) -> None:
        """Check the simultaneous-I/O property with a sort-and-sweep.

        Every send occupies its port for exactly one unit
        (``[t, t+1)``) and every receive likewise
        (``[t+lambda-1, t+lambda)``), so two intervals on the same port
        overlap **iff** their sorted start times differ by less than one
        unit.  That reduces the audit to a per-processor sort of start
        times plus one adjacent-gap pass — ``O(E log E)`` overall,
        replacing the quadratic risk (and, more importantly in practice,
        the per-comparison ``Fraction`` arithmetic) of checking interval
        pairs.

        When all times in the schedule lie on a common tick grid — the
        LCM of denominators fits :data:`repro.turbo.ticks.MAX_SCALE`,
        which holds for every builder in this library — the sweep sorts
        plain ``int`` ticks, which is what makes validation scale to
        ``10^5+`` events.  Off-grid schedules fall back to the same
        sweep over exact ``Fraction`` starts.

        Raises:
            SimultaneousIOError: two sends (or two receives) at one
                processor overlap in time.
        """
        from repro.turbo.ticks import lcm_denominator

        lam = self._lam
        events = self._events
        scale = lcm_denominator(
            chain((lam,), (ev.send_time for ev in events))
        )
        send_starts: dict[ProcId, list] = {}
        recv_starts: dict[ProcId, list] = {}
        if scale is not None:
            # integer fast path: start ticks; a unit is `scale` ticks
            lam_off = lam.numerator * (scale // lam.denominator) - scale
            for ev in events:
                t = ev.send_time
                tick = t.numerator * (scale // t.denominator)
                send_starts.setdefault(ev.sender, []).append(tick)
                recv_starts.setdefault(ev.receiver, []).append(tick + lam_off)
            unit: object = scale

            def to_time(start: object) -> Time:
                return Fraction(start, scale)

        else:
            # exact fallback: sweep over Fraction starts directly
            lam_off_f = lam - ONE
            for ev in events:
                send_starts.setdefault(ev.sender, []).append(ev.send_time)
                recv_starts.setdefault(ev.receiver, []).append(
                    ev.send_time + lam_off_f
                )
            unit = ONE

            def to_time(start: object) -> Time:
                return start  # type: ignore[return-value]

        for kind, table in (("send", send_starts), ("receive", recv_starts)):
            for proc, starts in table.items():
                starts.sort()
                prev = None
                for s in starts:
                    if prev is not None and s - prev < unit:  # type: ignore[operator]
                        a, c = to_time(prev), to_time(s)
                        raise SimultaneousIOError(
                            f"p{proc} drives two {kind}s at once: busy "
                            f"[{time_repr(a)},{time_repr(a + ONE)}) and "
                            f"[{time_repr(c)},{time_repr(c + ONE)})"
                        )
                    prev = s

    # ------------------------------------------------------------- utility

    def shifted(self, delta: TimeLike) -> "Schedule":
        """A copy of this schedule with every send delayed by *delta*."""
        delta = as_time(delta)
        if delta < 0 and any(e.send_time + delta < 0 for e in self._events):
            raise InvalidParameterError("shift would make a send time negative")
        return Schedule(
            self._n,
            self._lam,
            (
                SendEvent(e.send_time + delta, e.sender, e.msg, e.receiver)
                for e in self._events
            ),
            m=self._m,
            root=self._root,
            validate=False,
        )

    @staticmethod
    def merged(parts: Sequence["Schedule"], *, validate: bool = True) -> "Schedule":
        """Union several schedules over the same machine into one.

        All parts must agree on ``n``, ``lambda``, and ``root``; message
        indices must already be distinct across parts.  ``m`` of the result
        is the max over parts.
        """
        if not parts:
            raise InvalidParameterError("cannot merge zero schedules")
        first = parts[0]
        if any(
            (s.n, s.lam, s.root) != (first.n, first.lam, first.root)
            for s in parts
        ):
            raise InvalidParameterError("schedules disagree on n, lambda, or root")
        events: list[SendEvent] = []
        for s in parts:
            events.extend(s.events)
        return Schedule(
            first.n,
            first.lam,
            events,
            m=max(s.m for s in parts),
            root=first.root,
            validate=validate,
        )
