"""Lossless JSON serialization of schedules and broadcast trees.

Exact times serialize as ``"p/q"`` strings (via
:func:`repro.types.time_repr` / :func:`repro.types.as_time`), so a
round-trip preserves every Fraction bit for bit.  Deserialization
re-validates by default — a schedule file from an untrusted source cannot
smuggle a postal-model violation into downstream tooling.

Format (version 1):

.. code-block:: json

    {
      "format": "repro.schedule.v1",
      "n": 14, "m": 1, "lambda": "5/2", "root": 0,
      "events": [[ "0", 0, 0, 9 ], ...]   // [send_time, sender, msg, receiver]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.bcast import BroadcastTree
from repro.core.schedule import Schedule, SendEvent
from repro.errors import ScheduleError
from repro.types import as_time, time_repr

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "dumps_schedule",
    "loads_schedule",
    "tree_to_dict",
]

FORMAT = "repro.schedule.v1"
TREE_FORMAT = "repro.tree.v1"


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """The JSON-ready dict form of *schedule* (exact, order-stable)."""
    return {
        "format": FORMAT,
        "n": schedule.n,
        "m": schedule.m,
        "lambda": time_repr(schedule.lam),
        "root": schedule.root,
        "events": [
            [time_repr(e.send_time), e.sender, e.msg, e.receiver]
            for e in schedule.events
        ],
    }


def schedule_from_dict(data: dict[str, Any], *, validate: bool = True) -> Schedule:
    """Rebuild a schedule from its dict form.

    Raises:
        ScheduleError: wrong/missing format tag or malformed events (and,
            with ``validate=True``, any postal-model violation).
    """
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise ScheduleError(
            f"not a {FORMAT} document (format={data.get('format')!r})"
            if isinstance(data, dict)
            else "schedule document must be a JSON object"
        )
    try:
        events = [
            SendEvent(as_time(t), int(src), int(msg), int(dst))
            for t, src, msg, dst in data["events"]
        ]
        return Schedule(
            int(data["n"]),
            as_time(data["lambda"]),
            events,
            m=int(data["m"]),
            root=int(data.get("root", 0)),
            validate=validate,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule document: {exc}") from exc


def dumps_schedule(schedule: Schedule, **json_kwargs: Any) -> str:
    """Serialize to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), **json_kwargs)


def loads_schedule(text: str, *, validate: bool = True) -> Schedule:
    """Parse a JSON string back into a (validated) schedule."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid JSON: {exc}") from exc
    return schedule_from_dict(data, validate=validate)


def tree_to_dict(tree: BroadcastTree) -> dict[str, Any]:
    """JSON-ready form of a broadcast tree (for external visualization:
    nodes carry informed/sent times, children in send order)."""
    nodes = {}
    for proc in tree.preorder():
        node = tree.node(proc)
        nodes[str(proc)] = {
            "informed_at": time_repr(node.informed_at),
            "sent_at": time_repr(node.sent_at) if node.sent_at is not None else None,
            "parent": node.parent,
            "children": list(node.children),
        }
    return {"format": TREE_FORMAT, "root": tree.root, "nodes": nodes}
