"""Order preservation of multi-message broadcasts.

All algorithms in the paper are *order-preserving*: every processor receives
``M_1, M_2, ..., M_m`` in index order.  (The paper's reference [13] proves a
lower bound specific to order-preserving broadcast; our DTREE factor bench
relies on this property.)

A schedule is order-preserving iff, at every processor, arrival times are
strictly increasing in message index — receives are serialized through one
port, so two messages can never arrive at the same instant in a valid
schedule; we nevertheless flag ties as violations because order would then
be ambiguous.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.errors import OrderViolationError
from repro.types import ProcId, Time, time_repr

__all__ = [
    "arrival_sequences",
    "check_order_preserving",
    "is_order_preserving",
]


def arrival_sequences(schedule: Schedule) -> dict[ProcId, list[tuple[Time, int]]]:
    """Per-processor list of ``(arrival_time, msg)`` in message-index order
    (the root is omitted: it holds everything at time 0)."""
    out: dict[ProcId, list[tuple[Time, int]]] = {}
    for (proc, msg), arr in schedule.arrivals().items():
        if proc == schedule.root:
            continue
        out.setdefault(proc, []).append((arr, msg))
    for seq in out.values():
        seq.sort(key=lambda pair: pair[1])
    return out


def check_order_preserving(schedule: Schedule) -> None:
    """Raise :class:`~repro.errors.OrderViolationError` if any processor
    receives a higher-indexed message no later than a lower-indexed one."""
    for proc, seq in arrival_sequences(schedule).items():
        for (t1, m1), (t2, m2) in zip(seq, seq[1:]):
            if t2 <= t1:
                raise OrderViolationError(
                    f"p{proc} receives M{m2 + 1} at t={time_repr(t2)}, not "
                    f"after M{m1 + 1} at t={time_repr(t1)}"
                )


def is_order_preserving(schedule: Schedule) -> bool:
    """True iff every processor receives the messages in index order."""
    try:
        check_order_preserving(schedule)
    except OrderViolationError:
        return False
    return True
