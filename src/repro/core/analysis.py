"""Closed-form running times and bounds (Lemmas 8-18, Corollaries 9-17).

Exact formulas return :class:`~fractions.Fraction`; the asymptotic
corollaries involve logarithms and return ``float``.  Every exact formula
here is cross-checked against simulated schedule completion times in the
test suite — with equality, not tolerances.

Conventions: ``n >= 1`` processors, ``m >= 1`` messages, ``lambda >= 1``.
For ``n == 1`` every broadcast takes time 0 (there is nobody to inform), so
the exact functions return 0 there even where the paper's formulas assume
``n >= 2``.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = [
    "bcast_time",
    "repeat_time",
    "repeat_upper",
    "pack_time",
    "pack_upper",
    "pipeline_time",
    "pipeline_upper",
    "dtree_upper",
    "multi_lower_bound",
    "multi_lower_cor9",
    "dtree_factor_binary",
    "dtree_factor_latency",
    "ALGORITHMS",
    "algorithm_times",
    "best_algorithm",
]


def _params(n: int, m: int, lam: TimeLike) -> tuple[int, int, Time]:
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if m < 1:
        raise InvalidParameterError(f"need m >= 1, got {m}")
    lam_t = as_time(lam)
    if lam_t < 1:
        raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam_t}")
    return n, m, lam_t


# --------------------------------------------------------------- Section 3


def bcast_time(n: int, lam: TimeLike) -> Fraction:
    """Theorem 6: the optimal single-message broadcast time
    ``T_B(n, lambda) = f_lambda(n)``."""
    n, _, lam = _params(n, 1, lam)
    return postal_f(lam, n)


# ------------------------------------------------------------ lower bounds


def multi_lower_bound(n: int, m: int, lam: TimeLike) -> Fraction:
    """Lemma 8: any ``m``-message broadcast needs
    ``(m - 1) + f_lambda(n)`` time (0 when ``n == 1``)."""
    n, m, lam = _params(n, m, lam)
    if n == 1:
        return ZERO
    return (m - 1) + postal_f(lam, n)


def multi_lower_cor9(n: int, m: int, lam: TimeLike) -> tuple[float, float]:
    """Corollary 9: the two explicit lower bounds
    ``m - 1 + lambda*log(n)/log(ceil(lambda)+1)`` and ``m - 1 + lambda``
    (the latter is strict; both require ``n >= 2``)."""
    n, m, lam = _params(n, m, lam)
    if n < 2:
        raise InvalidParameterError("Corollary 9 assumes n >= 2")
    lam_f = float(lam)
    part1 = m - 1 + lam_f * math.log2(n) / math.log2(math.ceil(lam) + 1)
    part2 = m - 1 + lam_f
    return part1, part2


# --------------------------------------------------------------- Lemma 10+


def repeat_time(n: int, m: int, lam: TimeLike) -> Fraction:
    """Lemma 10: Algorithm REPEAT runs in exactly
    ``m * f_lambda(n) - (m - 1)(lambda - 1)``."""
    n, m, lam = _params(n, m, lam)
    if n == 1:
        return ZERO
    return m * postal_f(lam, n) - (m - 1) * (lam - 1)


def repeat_upper(n: int, m: int, lam: TimeLike) -> float:
    """Corollary 11: ``T_R <= 2m*lambda*log(n)/log(lambda+1) + m*lambda
    + m + lambda - 1``."""
    n, m, lam = _params(n, m, lam)
    if n < 2:
        raise InvalidParameterError("Corollary 11 assumes n >= 2")
    lam_f = float(lam)
    return (
        2 * m * lam_f * math.log2(n) / math.log2(lam_f + 1)
        + m * lam_f
        + m
        + lam_f
        - 1
    )


def pack_time(n: int, m: int, lam: TimeLike) -> Fraction:
    """Lemma 12: Algorithm PACK runs in exactly
    ``m * f_{1 + (lambda-1)/m}(n)``."""
    n, m, lam = _params(n, m, lam)
    if n == 1:
        return ZERO
    return m * postal_f(1 + (lam - 1) / m, n)


def pack_upper(n: int, m: int, lam: TimeLike) -> float:
    """Corollary 13: ``T_PK <= 2(m+lambda-1)*log(n)/log(2+(lambda-1)/m)
    + 2(m+lambda-1)``."""
    n, m, lam = _params(n, m, lam)
    if n < 2:
        raise InvalidParameterError("Corollary 13 assumes n >= 2")
    lam_f = float(lam)
    denom = math.log2(2 + (lam_f - 1) / m)
    return 2 * (m + lam_f - 1) * math.log2(n) / denom + 2 * (m + lam_f - 1)


def pipeline_time(n: int, m: int, lam: TimeLike) -> Fraction:
    """Lemmas 14 and 16: Algorithm PIPELINE runs in exactly
    ``m * f_{lambda/m}(n) + (m - 1)`` when ``m <= lambda`` (PIPELINE-1) and
    ``lambda * f_{m/lambda}(n) + (lambda - 1)`` when ``m >= lambda``
    (PIPELINE-2).  The two agree at ``m == lambda``."""
    n, m, lam = _params(n, m, lam)
    if n == 1:
        return ZERO
    if m <= lam:
        return m * postal_f(lam / m, n) + (m - 1)
    return lam * postal_f(Fraction(m) / lam, n) + (lam - 1)


def pipeline_upper(n: int, m: int, lam: TimeLike) -> float:
    """Corollaries 15 and 17: the explicit PIPELINE upper bounds."""
    n, m, lam = _params(n, m, lam)
    if n < 2:
        raise InvalidParameterError("Corollaries 15/17 assume n >= 2")
    lam_f = float(lam)
    if m <= lam:
        return (
            2 * lam_f
            + 2 * lam_f * math.log2(n) / math.log2(1 + lam_f / m)
            + (m - 1)
        )
    return (
        2 * m * math.log2(n) / math.log2(1 + m / lam_f) + 2 * m + lam_f - 1
    )


def dtree_upper(n: int, m: int, lam: TimeLike, d: int) -> Fraction:
    """Lemma 18: ``T_DT <= d(m-1) + (d-1+lambda) * ceil(log_d n)`` for
    ``d >= 2``.  For ``d == 1`` (the line, where ``log_d`` is undefined) the
    exact time ``(m-1) + (n-1)*lambda`` is returned."""
    n, m, lam = _params(n, m, lam)
    if n == 1:
        return ZERO
    if d < 1:
        raise InvalidParameterError(f"need d >= 1, got {d}")
    if d == 1:
        return (m - 1) + (n - 1) * lam
    height = math.ceil(math.log(n) / math.log(d) - 1e-12)
    # guard against floating log: ceil(log_d n) is the least h with d^h >= n
    while d**height < n:
        height += 1
    while height > 0 and d ** (height - 1) >= n:
        height -= 1
    return d * (m - 1) + (d - 1 + lam) * height


# ------------------------------------------------------- Section 4.3 facts


def dtree_factor_binary(lam: TimeLike) -> float:
    """Section 4.3: the binary tree (``d = 2``) is within
    ``max{2, log(ceil(lambda)+1)}`` of optimal."""
    lam_t = as_time(lam)
    if lam_t < 1:
        raise InvalidParameterError(f"lambda >= 1 required, got {lam_t}")
    return max(2.0, math.log2(math.ceil(lam_t) + 1))


def dtree_factor_latency(lam: TimeLike) -> float:
    """Section 4.3: the ``d = ceil(lambda)+1`` tree is within
    ``max{2, ceil(lambda)+1}`` of optimal."""
    lam_t = as_time(lam)
    if lam_t < 1:
        raise InvalidParameterError(f"lambda >= 1 required, got {lam_t}")
    return float(max(2, math.ceil(lam_t) + 1))


# ----------------------------------------------------------- model picker

#: The algorithm families compared throughout Section 4.
ALGORITHMS = ("REPEAT", "PACK", "PIPELINE", "DTREE-LINE", "DTREE-BINARY",
              "DTREE-LATENCY", "DTREE-STAR")


def algorithm_times(n: int, m: int, lam: TimeLike) -> dict[str, Fraction]:
    """Exact running time of every algorithm family at ``(n, m, lambda)``.

    REPEAT/PACK/PIPELINE use the closed forms above; the DTREE variants run
    the deterministic event-driven builder (their closed form is only an
    upper bound).
    """
    from repro.core.dtree import DTreeShape, dtree_schedule

    n, m, lam = _params(n, m, lam)
    out: dict[str, Fraction] = {
        "REPEAT": repeat_time(n, m, lam),
        "PACK": pack_time(n, m, lam),
        "PIPELINE": pipeline_time(n, m, lam),
    }
    for name, shape in (
        ("DTREE-LINE", DTreeShape.LINE),
        ("DTREE-BINARY", DTreeShape.BINARY),
        ("DTREE-LATENCY", DTreeShape.LATENCY),
        ("DTREE-STAR", DTreeShape.STAR),
    ):
        out[name] = dtree_schedule(n, m, lam, shape, validate=False).completion_time()
    return out


def best_algorithm(n: int, m: int, lam: TimeLike) -> tuple[str, Fraction]:
    """The fastest algorithm family at ``(n, m, lambda)`` and its exact
    running time — the crossover-map primitive behind
    ``benchmarks/bench_crossover.py``."""
    times = algorithm_times(n, m, lam)
    name = min(times, key=lambda k: (times[k], k))
    return name, times[name]
