"""Algorithm DTREE — degree-``d`` tree broadcasting (Section 4.3).

For ``1 <= d <= n-1``, Algorithm DTREE broadcasts over the *left-to-right,
almost-full, degree-d tree* rooted at ``p_0``: nodes are numbered in BFS
(level) order, so node ``v`` has children ``d*v + 1 .. d*v + d`` (those that
exist) and node ``i >= 1`` has parent ``(i - 1) // d``.

The algorithm is fully event-driven: the root emits ``d`` copies of ``M_1``
left-to-right, then proceeds to ``M_2``; a non-root node forwards each
arriving message to its children left-to-right, queueing behind its own
earlier sends when the send port is busy.  The builder here performs that
event-driven execution deterministically (per-node FIFO send queues) and
emits the resulting schedule, whose completion time always satisfies
Lemma 18::

    T_DT(n, m, lambda) <= d(m-1) + (d-1+lambda) * ceil(log_d n)

(for ``d >= 2``; the ``d = 1`` line degenerates to exactly
``(m-1) + (n-1)*lambda``).

Named shapes from the paper's discussion:

* ``d = 1`` — the *line*: near optimal as ``m -> infinity``.
* ``d = 2`` — the *binary tree*: within ``max{2, log(ceil(lambda)+1)}`` of
  optimal.
* ``d = ceil(lambda) + 1`` — the *latency-matched* tree: within
  ``max{2, ceil(lambda)+1}`` of optimal, and within a factor of 3 when
  ``m <= log n / log(ceil(lambda)+1)``.
* ``d = n - 1`` — the *star*: near optimal as ``lambda -> infinity``.
"""

from __future__ import annotations

import math
from enum import Enum

from repro.core.schedule import Schedule, SendEvent
from repro.errors import InvalidParameterError
from repro.types import ProcId, Time, TimeLike, ZERO, as_time

__all__ = [
    "DTreeShape",
    "resolve_degree",
    "dtree_parent",
    "dtree_children",
    "dtree_height",
    "dtree_schedule",
]


class DTreeShape(Enum):
    """Named degree choices discussed in Section 4.3."""

    LINE = "line"  #: d = 1
    BINARY = "binary"  #: d = 2
    LATENCY = "latency"  #: d = ceil(lambda) + 1
    STAR = "star"  #: d = n - 1


def resolve_degree(shape: "DTreeShape | int", n: int, lam: TimeLike) -> int:
    """Translate a :class:`DTreeShape` (or explicit integer) into a degree
    ``d``, clamped to the valid range ``1 .. max(1, n-1)``."""
    if isinstance(shape, DTreeShape):
        lam_t = as_time(lam)
        if shape is DTreeShape.LINE:
            d = 1
        elif shape is DTreeShape.BINARY:
            d = 2
        elif shape is DTreeShape.LATENCY:
            d = math.ceil(lam_t) + 1
        else:  # STAR
            d = n - 1
    else:
        d = int(shape)
    if n <= 1:
        return 1
    return max(1, min(d, n - 1))


def dtree_parent(i: ProcId, d: int) -> ProcId:
    """Parent of node ``i >= 1`` in the degree-``d`` BFS-ordered tree."""
    if i < 1:
        raise InvalidParameterError("the root has no parent")
    if d < 1:
        raise InvalidParameterError(f"need d >= 1, got {d}")
    return (i - 1) // d


def dtree_children(v: ProcId, d: int, n: int) -> list[ProcId]:
    """Children of node *v*, left to right, within an ``n``-node tree."""
    if d < 1:
        raise InvalidParameterError(f"need d >= 1, got {d}")
    first = d * v + 1
    return [c for c in range(first, min(first + d, n))]


def dtree_height(n: int, d: int) -> int:
    """Number of edge levels of the ``n``-node degree-``d`` tree
    (``ceil(log_d n)`` for full trees; exact for almost-full ones)."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if n == 1:
        return 0
    if d == 1:
        return n - 1
    # depth of the last node, n-1, by repeated parent steps (O(log n))
    h = 0
    v = n - 1
    while v > 0:
        v = (v - 1) // d
        h += 1
    return h


def dtree_schedule(
    n: int,
    m: int,
    lam: TimeLike,
    shape: "DTreeShape | int",
    *,
    validate: bool = True,
) -> Schedule:
    """Execute Algorithm DTREE and return the resulting schedule.

    The execution is the deterministic fixed point of the event-driven
    rules: every node owns a FIFO of pending sends — message-major, children
    left-to-right, messages becoming pending when they arrive (at ``t = 0``
    for the root) — and drains it through its unit-time send port.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1 processors, got {n}")
    if m < 1:
        raise InvalidParameterError(f"need m >= 1 messages, got {m}")
    lam = as_time(lam)
    if lam < 1:
        raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
    d = resolve_degree(shape, n, lam)

    events: list[SendEvent] = []
    # arrival[v][k] = when node v knows message k; BFS numbering guarantees
    # parents are processed before children.
    arrival: list[list[Time]] = [[ZERO] * m] + [[ZERO] * m for _ in range(n - 1)]
    for v in range(n):
        children = dtree_children(v, d, n)
        if not children:
            continue
        port_free = ZERO
        for k in range(m):
            ready = arrival[v][k]
            for c in children:
                t = max(port_free, ready)
                events.append(SendEvent(t, v, k, c))
                port_free = t + 1
                arrival[c][k] = t + lam
    return Schedule(n, lam, events, m=m, validate=validate)
