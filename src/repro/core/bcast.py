"""Algorithm BCAST — optimal single-message broadcast (Section 3).

The algorithm, verbatim from the paper:

    (a) Processor ``p_0`` at time ``t = 0``: if ``n >= 2``, compute
        ``j = F_lambda(f_lambda(n) - 1)`` and send message ``M`` to ``p_j``
        together with the request to broadcast to ``p_j .. p_{n-1}``.
        At ``t = 1`` recursively apply BCAST to ``p_0 .. p_{j-1}``.
    (b) A processor receiving ``M`` with a range applies BCAST to that
        range, treating itself as ``p_0``.

The resulting broadcast tree is the *generalized Fibonacci tree* — a
binomial tree for ``lambda = 1`` and a Fibonacci tree for ``lambda = 2`` —
and the completion time is exactly ``f_lambda(n)`` (Theorem 6).

This module builds BCAST *schedules* (the static IR); the event-driven
distributed implementation that discovers the same schedule at run time
lives in :mod:`repro.algorithms.bcast_protocol`.  For large machines
(``n`` approaching ``10^5`` and beyond) prefer the columnar plan layer:
:func:`repro.plan.compile_plan` runs the same iterative recurrence in
pure integer ticks — no per-event objects, no ``Fraction`` arithmetic —
and converts losslessly to this module's schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fibfunc import GeneralizedFibonacci
from repro.core.schedule import Schedule, SendEvent
from repro.errors import InvalidParameterError
from repro.types import ProcId, Time, TimeLike, ZERO, as_time

__all__ = ["bcast_events", "bcast_schedule", "bcast_tree", "BroadcastTree", "TreeNode"]


def bcast_events(
    n: int,
    lam: TimeLike,
    *,
    start: TimeLike = 0,
    msg: int = 0,
    offset: ProcId = 0,
) -> list[SendEvent]:
    """Raw send events of Algorithm BCAST over processors
    ``offset .. offset+n-1`` with the range's first processor as originator,
    message index *msg*, first send at time *start*.

    Iterative (explicit work stack), so arbitrarily large ``n`` cannot hit
    the recursion limit.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    fib = GeneralizedFibonacci(lam)
    lam = fib.lam
    t0 = as_time(start)
    events: list[SendEvent] = []
    if n == 1:
        return events
    # Tabulate the whole F_lambda prefix up to the completion horizon in
    # one pass; the loop then splits every subrange with raw bisects
    # instead of per-call table lookups (f is monotone, so f(size) <=
    # f(n) keeps every query inside the prefix).
    prefix = fib.tabulate(fib.index(n))
    # (lo, size, t): originator `lo` broadcasts to `lo .. lo+size-1`, free
    # to start sending at time t.
    stack: list[tuple[ProcId, int, Time]] = [(offset, n, t0)]
    while stack:
        lo, size, t = stack.pop()
        if size == 1:
            continue
        j = prefix.split(size)  # 1 <= j <= size-1 (Lemma 3)
        events.append(SendEvent(t, lo, msg, lo + j))
        stack.append((lo, j, t + 1))
        stack.append((lo + j, size - j, t + lam))
    return events


def bcast_schedule(
    n: int,
    lam: TimeLike,
    *,
    start: TimeLike = 0,
    validate: bool = True,
) -> Schedule:
    """The full BCAST schedule for one message in ``MPS(n, lambda)``.

    Its :meth:`~repro.core.schedule.Schedule.completion_time` equals
    ``start + f_lambda(n)`` exactly (Theorem 6).
    """
    return Schedule(
        n,
        lam,
        bcast_events(n, lam, start=start),
        m=1,
        validate=validate,
    )


@dataclass
class TreeNode:
    """One node of a broadcast tree.

    Attributes:
        proc: the processor at this node.
        informed_at: when the processor knows the message (0 for the root).
        sent_at: when its parent started sending to it (None for the root).
        parent: parent processor (None for the root).
        children: child processors, in the order the sends were issued.
    """

    proc: ProcId
    informed_at: Time
    sent_at: Time | None = None
    parent: ProcId | None = None
    children: list[ProcId] = field(default_factory=list)


class BroadcastTree:
    """The tree induced by a single-message schedule (who informed whom).

    Figure 1 of the paper is exactly ``BroadcastTree.of(bcast_schedule(14,
    "5/2"))`` — see :mod:`repro.report.render` for the ASCII rendering.
    """

    def __init__(self, nodes: dict[ProcId, TreeNode], root: ProcId):
        self._nodes = nodes
        self._root = root

    @classmethod
    def of(cls, schedule: Schedule, msg: int = 0) -> "BroadcastTree":
        """Build the tree of message *msg* from *schedule*."""
        root = schedule.root
        nodes: dict[ProcId, TreeNode] = {root: TreeNode(root, ZERO)}
        for ev in schedule.events:
            if ev.msg != msg:
                continue
            nodes[ev.receiver] = TreeNode(
                ev.receiver,
                ev.arrival_time(schedule.lam),
                sent_at=ev.send_time,
                parent=ev.sender,
            )
        for ev in sorted(schedule.events, key=lambda e: e.send_time):
            if ev.msg == msg:
                nodes[ev.sender].children.append(ev.receiver)
        return cls(nodes, root)

    @property
    def root(self) -> ProcId:
        return self._root

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, proc: ProcId) -> bool:
        return proc in self._nodes

    def node(self, proc: ProcId) -> TreeNode:
        return self._nodes[proc]

    def children_of(self, proc: ProcId) -> list[ProcId]:
        return list(self._nodes[proc].children)

    def parent_of(self, proc: ProcId) -> ProcId | None:
        return self._nodes[proc].parent

    def height(self) -> Time:
        """Time at which the last node is informed (``t = 7 1/2`` in the
        paper's Figure 1)."""
        return max(nd.informed_at for nd in self._nodes.values())

    def depth_of(self, proc: ProcId) -> int:
        """Number of tree edges from the root to *proc*."""
        d = 0
        cur = self._nodes[proc]
        while cur.parent is not None:
            cur = self._nodes[cur.parent]
            d += 1
        return d

    def degrees(self) -> dict[ProcId, int]:
        """Number of children of each node.  In a generalized Fibonacci
        tree, nodes close to the root have higher degree."""
        return {p: len(nd.children) for p, nd in self._nodes.items()}

    def preorder(self) -> list[ProcId]:
        """Depth-first preorder, children in send order."""
        out: list[ProcId] = []
        stack = [self._root]
        while stack:
            p = stack.pop()
            out.append(p)
            stack.extend(reversed(self._nodes[p].children))
        return out


def bcast_tree(n: int, lam: TimeLike) -> BroadcastTree:
    """The generalized Fibonacci broadcast tree for ``MPS(n, lambda)``."""
    return BroadcastTree.of(bcast_schedule(n, lam, validate=False))
