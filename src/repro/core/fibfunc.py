"""The generalized Fibonacci function ``F_lambda`` and its index ``f_lambda``.

Section 3 of the paper defines, for any real latency ``lambda >= 1``::

    F_lambda(t) = 1                                   for 0 <= t < lambda
    F_lambda(t) = F_lambda(t-1) + F_lambda(t-lambda)  for t >= lambda

``F_lambda`` is a right-continuous, nondecreasing, unbounded step function
whose jump points all lie on the grid ``{a + b*lambda : a, b in N}``.  Its
index function ``f_lambda(n) = min{t : F_lambda(t) >= n}`` is exactly the
optimal single-message broadcast time in ``MPS(n, lambda)`` (Theorem 6).

Implementation notes
--------------------
* ``lambda`` and all times are exact :class:`~fractions.Fraction` values, so
  cases like the paper's ``lambda = 2.5`` evaluate with *equality*, never a
  tolerance.
* The function is tabulated bottom-up over its jump grid.  For ``t >= lambda``
  both ``t - 1 >= 0`` and ``t - lambda >= 0``, and both are strictly smaller
  than ``t``, so a single increasing sweep over the sorted grid computes the
  whole table; arbitrary ``t`` are answered by bisection (value at the
  rightmost grid point ``<= t``).
* The table grows on demand with a doubling strategy, so ``f_lambda(n)`` for
  astronomically large ``n`` stays cheap: ``F_lambda`` grows like
  ``(ceil(lambda)+1)^(t/2*lambda)`` (Theorem 7), hence the required horizon
  is ``O(lambda * log n / log(lambda+1))``.

Special cases, as in the paper:

* ``lambda = 1``: ``F_1(t) = 2**floor(t)`` and ``f_1(n) = ceil(log2 n)``
  (the telephone model / binomial tree).
* ``lambda = 2``: ``F_2(t)`` is the Fibonacci number of index
  ``floor(t) + 1`` (with ``Fib(1) = Fib(2) = 1``).
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from fractions import Fraction
from typing import Iterable, Iterator

from repro.core.stepfunc import StepFunction
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = [
    "GeneralizedFibonacci",
    "FibPrefix",
    "postal_F",
    "postal_f",
    "tabulate",
    "cache_info",
    "clear_cache",
]


class FibPrefix:
    """An immutable snapshot of the ``F_lambda`` jump table on
    ``[0, up_to_t]`` — the whole prefix materialized in one pass by
    :meth:`GeneralizedFibonacci.tabulate` / :func:`tabulate`.

    Schedule builders query ``F`` and ``f`` thousands of times in their
    inner loops; against a live :class:`GeneralizedFibonacci` every call
    re-checks the horizon and re-dispatches.  A prefix is two parallel
    tuples and raw :mod:`bisect` lookups — nothing else.

    Attributes:
        times: jump times, ascending (``times[0] == 0``).
        values: ``F_lambda`` at each jump time, strictly increasing.
    """

    __slots__ = ("times", "values")

    def __init__(self, times: tuple[Time, ...], values: tuple[int, ...]):
        self.times = times
        self.values = values

    def value_at(self, t: Time) -> int:
        """``F_lambda(t)``; *t* must lie within the tabulated prefix."""
        return self.values[bisect.bisect_right(self.times, t) - 1]

    def index(self, n: int) -> Time:
        """``f_lambda(n)``; *n* must not exceed the prefix's last value.

        Raises:
            InvalidParameterError: *n* is beyond the tabulated horizon
                (use a live :class:`GeneralizedFibonacci` instead).
        """
        i = bisect.bisect_left(self.values, n)
        if i == len(self.values):
            raise InvalidParameterError(
                f"f_lambda({n}) lies beyond this prefix "
                f"(max tabulated value {self.values[-1]})"
            )
        return self.times[i]

    def split(self, size: int) -> int:
        """The BCAST split point ``j = F_lambda(f_lambda(size) - 1)`` for
        a range of *size* processors (Lemma 3: ``1 <= j <= size - 1``)."""
        return self.value_at(self.index(size) - 1)

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return (
            f"FibPrefix({len(self.times)} jumps, "
            f"up to t={self.times[-1]}, F={self.values[-1]})"
        )


class GeneralizedFibonacci(StepFunction):
    """Exact evaluator for ``F_lambda(t)`` and ``f_lambda(n)``.

    Instances are cheap to create and cache their own value table; reuse one
    instance per ``lambda`` when evaluating many points (the module-level
    helpers :func:`postal_F` / :func:`postal_f` keep a shared cache).

    Args:
        lam: communication latency ``lambda >= 1`` (int, float, string like
            ``"5/2"``, or Fraction).
    """

    def __init__(self, lam: TimeLike):
        lam = as_time(lam)
        if lam < 1:
            raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
        self._lam: Time = lam
        # Sorted jump-grid times with their values; authoritative on
        # [0, self._horizon).  Seeded with the flat prefix F(t) = 1.
        self._times: list[Time] = [ZERO]
        self._values: list[int] = [1]
        self._horizon: Time = lam  # table is correct for t < horizon

    @property
    def lam(self) -> Time:
        """The latency ``lambda`` this instance evaluates."""
        return self._lam

    # ------------------------------------------------------------------ grid

    def _grid_upto(self, limit: Time) -> list[Time]:
        """All grid points ``a + b*lambda <= limit`` (a, b >= 0 integers),
        sorted ascending."""
        lam = self._lam
        pts: set[Time] = set()
        b = 0
        while b * lam <= limit:
            base = b * lam
            top = int(limit - base)  # floor, exact because Fraction
            pts.update(base + a for a in range(top + 1))
            b += 1
        return sorted(pts)

    def _extend_to(self, t: Time) -> None:
        """Ensure the table is authoritative for all times ``<= t``."""
        if t < self._horizon:
            return
        limit = t + 1  # a little slack so value_at(t) is safely interior
        lam = self._lam
        grid = self._grid_upto(limit)
        times: list[Time] = []
        values: list[int] = []

        def value_at_local(x: Time) -> int:
            # value of F at x using the table built so far in this pass
            i = bisect.bisect_right(times, x) - 1
            return values[i]

        prev = 0
        for g in grid:
            if g < lam:
                v = 1
            else:
                v = value_at_local(g - 1) + value_at_local(g - lam)
            if v != prev:  # keep only true jumps; keeps bisection tight
                times.append(g)
                values.append(v)
                prev = v
        self._times = times
        self._values = values
        self._horizon = limit

    # ----------------------------------------------------------- evaluation

    def value_at(self, t: Time) -> int:
        """``F_lambda(t)`` for exact ``t >= 0``."""
        if t < 0:
            raise InvalidParameterError(f"F_lambda is defined for t >= 0, got {t}")
        if t < self._lam:
            return 1
        self._extend_to(t)
        i = bisect.bisect_right(self._times, t) - 1
        return self._values[i]

    def index(self, n: int) -> Time:
        """``f_lambda(n) = min{t : F_lambda(t) >= n}`` for integer ``n >= 1``."""
        n = int(n)
        if n < 1:
            raise InvalidParameterError(f"f_lambda is defined for n >= 1, got {n}")
        if n == 1:
            return ZERO
        # grow the table until its maximum value reaches n
        while self._values[-1] < n:
            self._extend_to(self._horizon * 2)
        i = bisect.bisect_left(self._values, n)
        return self._times[i]

    def tabulate(self, up_to_t: TimeLike) -> FibPrefix:
        """The whole ``F_lambda`` prefix on ``[0, up_to_t]`` in one pass.

        One table extension, one slice — then every lookup on the
        returned :class:`FibPrefix` is a raw bisect with no horizon
        checks, which is what the schedule builders' inner loops want.
        """
        t = as_time(up_to_t)
        if t < 0:
            raise InvalidParameterError(
                f"F_lambda is defined for t >= 0, got {t}"
            )
        self._extend_to(t)
        i = bisect.bisect_right(self._times, t)
        return FibPrefix(tuple(self._times[:i]), tuple(self._values[:i]))

    def jump_times(self, up_to: Time) -> Iterable[Time]:
        self._extend_to(up_to)
        i = bisect.bisect_right(self._times, up_to)
        return list(self._times[:i])

    def sequence(self, count: int) -> Iterator[tuple[Time, int]]:
        """Yield the first *count* jump points ``(t, F_lambda(t))`` — the
        generalized Fibonacci *sequence* for this ``lambda``."""
        if count < 0:
            raise InvalidParameterError("count must be >= 0")
        while len(self._times) < count:
            self._extend_to(self._horizon * 2)
        for i in range(count):
            yield (self._times[i], self._values[i])

    def __repr__(self) -> str:
        return f"GeneralizedFibonacci(lambda={self._lam})"


# ------------------------------------------------------------- module cache

# LRU-bounded: long fuzzing runs sweep thousands of rational lambda values,
# and each GeneralizedFibonacci holds a value table, so an unbounded (or
# clear-all) cache would either grow without limit or periodically throw
# away every hot entry.  An OrderedDict gives exact LRU eviction instead.
_CACHE: "OrderedDict[Time, GeneralizedFibonacci]" = OrderedDict()
_CACHE_LIMIT = 256


def _cached(lam: TimeLike) -> GeneralizedFibonacci:
    key = as_time(lam)
    fib = _CACHE.get(key)
    if fib is None:
        while len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.popitem(last=False)  # evict least recently used
        fib = _CACHE[key] = GeneralizedFibonacci(key)
    else:
        _CACHE.move_to_end(key)
    return fib


def cache_info() -> tuple[int, int]:
    """``(current_size, limit)`` of the module-level ``F_lambda`` cache."""
    return len(_CACHE), _CACHE_LIMIT


def clear_cache() -> None:
    """Drop every cached ``GeneralizedFibonacci`` instance (tests and
    memory-sensitive embedders)."""
    _CACHE.clear()


def postal_F(lam: TimeLike, t: TimeLike) -> int:
    """``F_lambda(t)`` — maximum number of processors reachable by a
    single-message broadcast within ``t`` time units in ``MPS(*, lambda)``."""
    return _cached(lam)(t)


def postal_f(lam: TimeLike, n: int) -> Fraction:
    """``f_lambda(n)`` — the optimal broadcast time for one message to ``n``
    processors with latency ``lambda`` (Theorem 6)."""
    return _cached(lam).index(n)


def tabulate(lam: TimeLike, up_to_t: TimeLike) -> FibPrefix:
    """The whole ``F_lambda`` prefix on ``[0, up_to_t]`` in one pass,
    served from the shared per-``lambda`` cache.

    See :class:`FibPrefix`; typical builder usage pairs it with
    :func:`postal_f` for the horizon::

        prefix = tabulate(lam, postal_f(lam, n))
        j = prefix.split(size)      # F(f(size) - 1), raw bisects
    """
    return _cached(lam).tabulate(up_to_t)
