"""Multi-message generalizations of Algorithm BCAST (Section 4.2).

Three ways to broadcast ``m`` messages, each compiled to the common
:class:`~repro.core.schedule.Schedule` IR:

* :func:`repeat_schedule` — Algorithm REPEAT: ``m`` back-to-back BCAST
  iterations; iteration ``i+1`` starts ``lambda - 1`` time units *before*
  iteration ``i`` completes (the overlap exploited by Lemma 10).  Running
  time exactly ``m*f_lambda(n) - (m-1)(lambda-1)``.
* :func:`pack_schedule` — Algorithm PACK: the ``m`` messages travel as one
  long message; equivalent to BCAST with normalized latency
  ``lambda' = 1 + (lambda-1)/m`` and time scale ``t' = t/m`` (Lemma 12).
  Running time exactly ``m * f_{lambda'}(n)``.
* :func:`pipeline_schedule` — Algorithm PIPELINE: the messages travel as a
  stream, forwarded as they arrive.  For ``m <= lambda`` (PIPELINE-1) the
  stream *sender* finishes first and takes the larger recursive subrange;
  for ``m >= lambda`` (PIPELINE-2) the roles swap and the *recipient* takes
  the larger subrange.  Running times exactly ``m*f_{lambda/m}(n) + (m-1)``
  and ``lambda*f_{m/lambda}(n) + (lambda-1)`` (Lemmas 14 and 16).

All three preserve message order at every processor.

All builders here are iterative (explicit worklists — no recursion
limit at any ``n``), and each has an integer-tick twin in
:mod:`repro.plan.build` that compiles the same recurrence into a
columnar :class:`~repro.plan.columns.SchedulePlan` with byte-identical
events at a fraction of the construction time and memory.
"""

from __future__ import annotations

from repro.core.bcast import bcast_events
from repro.core.fibfunc import GeneralizedFibonacci, postal_f
from repro.core.schedule import Schedule, SendEvent
from repro.errors import InvalidParameterError
from repro.types import ProcId, Time, TimeLike, ZERO, as_time

__all__ = [
    "repeat_schedule",
    "pack_schedule",
    "pipeline_schedule",
    "pipeline_variant",
]


def _check_nm(n: int, m: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"need n >= 1 processors, got {n}")
    if m < 1:
        raise InvalidParameterError(f"need m >= 1 messages, got {m}")


def repeat_schedule(n: int, m: int, lam: TimeLike, *, validate: bool = True) -> Schedule:
    """Algorithm REPEAT: ``m`` overlapped iterations of BCAST.

    Processor ``p_0`` starts iteration ``i+1`` immediately after sending the
    last copy of ``M_{i+1}``'s predecessor — which is ``lambda - 1`` units
    before iteration ``i`` terminates — so consecutive iterations are spaced
    ``f_lambda(n) - (lambda - 1)`` apart (Lemma 10).
    """
    _check_nm(n, m)
    lam = as_time(lam)
    events: list[SendEvent] = []
    if n >= 2:
        stride = postal_f(lam, n) - (lam - 1)
        for i in range(m):
            events.extend(bcast_events(n, lam, start=i * stride, msg=i))
    return Schedule(n, lam, events, m=m, validate=validate)


def pack_schedule(n: int, m: int, lam: TimeLike, *, validate: bool = True) -> Schedule:
    """Algorithm PACK: broadcast the ``m`` messages as one long message.

    Built by running BCAST with the normalized latency
    ``lambda' = (lambda + m - 1)/m`` and unpacking each abstract send at
    normalized time ``t'`` into ``m`` unit sends at real times
    ``m*t', m*t'+1, ..., m*t'+m-1``.  Every processor finishes receiving the
    whole pack before its first forwarding send, as the algorithm requires.
    """
    _check_nm(n, m)
    lam = as_time(lam)
    if lam < 1:
        raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
    lam_packed = 1 + (lam - 1) / m
    abstract = bcast_events(n, lam_packed)
    events = [
        SendEvent(m * ev.send_time + k, ev.sender, k, ev.receiver)
        for ev in abstract
        for k in range(m)
    ]
    return Schedule(n, lam, events, m=m, validate=validate)


def pipeline_variant(m: int, lam: TimeLike) -> str:
    """Which pipeline case applies: ``"PIPELINE-1"`` when ``m <= lambda``
    (sender finishes first), else ``"PIPELINE-2"``.  At ``m == lambda`` the
    two coincide; we report PIPELINE-1."""
    return "PIPELINE-1" if m <= as_time(lam) else "PIPELINE-2"


def pipeline_schedule(n: int, m: int, lam: TimeLike, *, validate: bool = True) -> Schedule:
    """Algorithm PIPELINE: broadcast the ``m`` messages as a stream.

    One recursion covers both cases.  After a stream transmission starting
    at time ``t``:

    * the *sender* is free to start its next stream at ``t + m``;
    * the *recipient* can begin forwarding at ``t + lambda`` (it forwards
      message ``k`` during ``[t + lambda + k, t + lambda + k + 1)``, exactly
      as message ``k`` arrives).

    Whichever party is free earlier inherits the larger recursive subrange
    ``j = F_{lambda'}(f_{lambda'}(size) - 1)``, where ``lambda' = lambda/m``
    (PIPELINE-1, ``m <= lambda``) or ``lambda' = m/lambda`` (PIPELINE-2,
    ``m >= lambda``) — the role swap Section 4.2 describes.  With ``m = 1``
    this degenerates to Algorithm BCAST.
    """
    _check_nm(n, m)
    lam = as_time(lam)
    if lam < 1:
        raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
    sender_first = m <= lam  # who is free earlier after a stream
    lam_p = (lam / m) if sender_first else (Time(m) / lam)
    fib = GeneralizedFibonacci(lam_p)
    events: list[SendEvent] = []
    if n == 1:
        return Schedule(n, lam, events, m=m, validate=validate)
    # one-pass F_{lambda'} prefix; every split below is two raw bisects
    prefix = fib.tabulate(fib.index(n))
    # (lo, size, t): `lo` holds (or is receiving) the full stream and may
    # start transmitting it at time t to processors in lo .. lo+size-1.
    stack: list[tuple[ProcId, int, Time]] = [(0, n, ZERO)]
    while stack:
        lo, size, t = stack.pop()
        if size == 1:
            continue
        j = prefix.split(size)  # larger-side size
        if sender_first:
            keep, give = j, size - j  # sender keeps the larger side
        else:
            keep, give = size - j, j  # recipient takes the larger side
        v = lo + keep
        events.extend(SendEvent(t + k, lo, k, v) for k in range(m))
        stack.append((lo, keep, t + m))
        stack.append((v, give, t + lam))
    return Schedule(n, lam, events, m=m, validate=validate)
