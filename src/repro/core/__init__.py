"""Core algorithmic contribution of the paper.

Contents:

* :mod:`repro.core.stepfunc` — right-continuous step-function calculus
  (Claims 1 and 2 of the paper).
* :mod:`repro.core.fibfunc` — the generalized Fibonacci function
  ``F_lambda(t)`` and its index function ``f_lambda(n)``.
* :mod:`repro.core.bounds` — Theorem 7 bounds on ``F_lambda`` / ``f_lambda``.
* :mod:`repro.core.schedule` — the schedule intermediate representation and
  postal-model validator.
* :mod:`repro.core.bcast` — Algorithm BCAST (optimal single-message
  broadcast, Section 3).
* :mod:`repro.core.multi` — Algorithms REPEAT, PACK, PIPELINE (Section 4.2).
* :mod:`repro.core.dtree` — Algorithm DTREE (Section 4.3).
* :mod:`repro.core.analysis` — closed-form running times and lower bounds.
* :mod:`repro.core.optimal` — the ``N(t)`` optimality oracle (Lemma 5) and
  brute-force optimal schedules for small systems.
* :mod:`repro.core.orderpres` — order-preservation checking.
"""

from repro.core.fibfunc import (
    FibPrefix,
    GeneralizedFibonacci,
    postal_F,
    postal_f,
    tabulate,
)
from repro.core.schedule import Schedule, SendEvent
from repro.core.bcast import bcast_schedule, bcast_tree
from repro.core.multi import repeat_schedule, pack_schedule, pipeline_schedule
from repro.core.dtree import dtree_schedule, DTreeShape

__all__ = [
    "FibPrefix",
    "GeneralizedFibonacci",
    "postal_F",
    "postal_f",
    "tabulate",
    "Schedule",
    "SendEvent",
    "bcast_schedule",
    "bcast_tree",
    "repeat_schedule",
    "pack_schedule",
    "pipeline_schedule",
    "dtree_schedule",
    "DTreeShape",
]
