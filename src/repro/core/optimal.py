"""Independent optimality oracles for single-message broadcast (Lemma 5).

Theorem 6 says BCAST is optimal.  To *validate* that claim without trusting
the ``F_lambda`` implementation (which BCAST itself uses), this module
provides two independent computations of the optimum:

* :func:`opt_broadcast_time` — the split dynamic program

      OPT(1) = 0
      OPT(k) = min over 1 <= j <= k-1 of max(1 + OPT(j), lambda + OPT(k-j))

  which is the standard inverse formulation of the ``N(t)`` recurrence in
  Lemma 5: WLOG the originator sends at time 0, then the originator must
  finish a broadcast to ``j`` processors (itself included) while the
  recipient covers the remaining ``k - j``.

* :func:`max_informed` — the quantity ``N(t)`` of Lemma 5 computed
  *constructively* by simulating the eager strategy: every processor, from
  the moment it knows the message, sends it to a brand-new processor every
  time unit.  Lemma 5 proves this is the extremal strategy, so the informed
  count of this simulation equals ``N(t)``; the tests check it equals
  ``F_lambda(t)`` point for point.

Neither computation touches :mod:`repro.core.fibfunc`.
"""

from __future__ import annotations

import heapq
from fractions import Fraction

from repro.core.stepfunc import TabulatedStepFunction
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, ZERO, as_time

__all__ = ["opt_broadcast_time", "max_informed", "eager_informed_counts"]


def opt_broadcast_time(n: int, lam: TimeLike) -> Fraction:
    """Optimal single-message broadcast time in ``MPS(n, lambda)`` via the
    split dynamic program (O(n^2); intended for validation at small ``n``)."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    lam = as_time(lam)
    if lam < 1:
        raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
    opt: list[Fraction] = [ZERO, ZERO]  # OPT(0) unused, OPT(1) = 0
    for k in range(2, n + 1):
        best: Fraction | None = None
        for j in range(1, k):
            cand = max(1 + opt[j], lam + opt[k - j])
            if best is None or cand < best:
                best = cand
        assert best is not None
        opt.append(best)
    return opt[n]


def eager_informed_counts(lam: TimeLike, horizon: TimeLike) -> TabulatedStepFunction:
    """The informed-count step function of the eager strategy up to
    *horizon*: one processor knows the message at ``t = 0``; every informed
    processor sends to a new processor at every subsequent time unit.

    Returns a tabulated step function authoritative on ``[0, horizon]``.
    """
    lam = as_time(lam)
    if lam < 1:
        raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
    limit = as_time(horizon)
    if limit < 0:
        raise InvalidParameterError(f"horizon must be >= 0, got {limit}")

    # Min-heap of pending arrival times.  A processor informed at time `a`
    # emits sends at a, a+1, a+2, ... arriving at a+lam, a+1+lam, ...
    # Each arrival is enqueued lazily so the heap stays finite; note the
    # total number of arrivals below `horizon` is F_lambda(horizon) - 1,
    # i.e. exponential in the horizon — this oracle is for validation at
    # small horizons, not production use.
    arrivals: list[Time] = []

    def push(first_arrival: Time) -> None:
        if first_arrival <= limit:
            heapq.heappush(arrivals, first_arrival)

    jump_times: list[Time] = [ZERO]
    values: list[int] = [1]
    push(lam)  # root informed at 0: first send arrives at lam
    # Each popped arrival both informs a new processor (who starts sending)
    # and lets the sender's next send be scheduled one unit later.
    while arrivals:
        t = heapq.heappop(arrivals)
        count = values[-1] + 1
        if jump_times[-1] == t:
            values[-1] = count
        else:
            jump_times.append(t)
            values.append(count)
        push(t + lam)  # the newly informed processor's first arrival
        push(t + 1)  # the sender's next send, one unit after this one
    return TabulatedStepFunction(jump_times, values, horizon=limit)


def max_informed(lam: TimeLike, t: TimeLike) -> int:
    """``N(t)``: the maximum number of processors any algorithm can inform
    within ``t`` time units in ``MPS(*, lambda)`` (Lemma 5), computed
    constructively by the eager strategy."""
    t = as_time(t)
    return eager_informed_counts(lam, t).value_at(t)
