"""Theorem 7 — bounds on ``F_lambda(t)`` and ``f_lambda(n)``.

The four parts of Theorem 7 (proved in the paper's appendix, Lemmas 19-26):

1. ``(ceil(lambda)+1)^floor(t/2lambda) <= F_lambda(t)
   <= (ceil(lambda)+1)^floor(t/lambda)``
2. ``lambda*log(n)/log(ceil(lambda)+1) <= f_lambda(n)
   <= 2*lambda + 2*lambda*log(n)/log(ceil(lambda)+1)``
3. ``F_lambda(t) >= (lambda+1)^(t/(alpha*lambda) - 1)`` for sufficiently
   large ``lambda``, with ``alpha`` as below.
4. ``f_lambda(n) <= (1 + h(lambda)) * lambda*log(n)/log(lambda+1)`` for
   sufficiently large ``lambda`` and ``n >= 2^lambda``, with
   ``h(lambda) -> 0``.

The exact-part bounds (1)-(2) are computed in exact integer arithmetic so
comparisons with ``F_lambda``/``f_lambda`` never suffer float error; the
asymptotic parts (3)-(4) and the technical Claims 23-24 are floats.
"""

from __future__ import annotations

import math

from repro.core.fibfunc import postal_F, postal_f
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, as_time

__all__ = [
    "F_lower_exact",
    "F_upper_exact",
    "f_lower_log",
    "f_upper_log",
    "alpha",
    "F_lower_asymptotic",
    "h_of_lambda",
    "f_upper_asymptotic",
    "claim23_lhs",
    "claim24_holds",
    "theorem7_sandwich_holds",
]


def _lam(lam: TimeLike) -> Time:
    lam_t = as_time(lam)
    if lam_t < 1:
        raise InvalidParameterError(f"lambda >= 1 required, got {lam_t}")
    return lam_t


def F_lower_exact(lam: TimeLike, t: TimeLike) -> int:
    """Theorem 7(1) lower bound: ``(ceil(lambda)+1) ** floor(t/(2*lambda))``
    (Lemma 21), as an exact integer."""
    lam_t = _lam(lam)
    t = as_time(t)
    if t < 0:
        raise InvalidParameterError(f"t >= 0 required, got {t}")
    base = math.ceil(lam_t) + 1
    return base ** int(t / (2 * lam_t))


def F_upper_exact(lam: TimeLike, t: TimeLike) -> int:
    """Theorem 7(1) upper bound: ``(ceil(lambda)+1) ** floor(t/lambda)``
    (Lemma 19), as an exact integer."""
    lam_t = _lam(lam)
    t = as_time(t)
    if t < 0:
        raise InvalidParameterError(f"t >= 0 required, got {t}")
    base = math.ceil(lam_t) + 1
    return base ** int(t / lam_t)


def f_lower_log(lam: TimeLike, n: int) -> float:
    """Theorem 7(2) lower bound on ``f_lambda(n)``:
    ``lambda * log(n) / log(ceil(lambda)+1)`` (Lemma 20)."""
    lam_t = _lam(lam)
    if n < 1:
        raise InvalidParameterError(f"n >= 1 required, got {n}")
    return float(lam_t) * math.log2(n) / math.log2(math.ceil(lam_t) + 1)


def f_upper_log(lam: TimeLike, n: int) -> float:
    """Theorem 7(2) upper bound on ``f_lambda(n)``:
    ``2*lambda + 2*lambda * log(n) / log(ceil(lambda)+1)`` (Lemma 22)."""
    lam_t = _lam(lam)
    if n < 1:
        raise InvalidParameterError(f"n >= 1 required, got {n}")
    return 2 * float(lam_t) * (1 + math.log2(n) / math.log2(math.ceil(lam_t) + 1))


def alpha(lam: TimeLike) -> float:
    """The paper's ``alpha(lambda) = 1 + (ln ln(lambda+1) + 1) /
    (ln(lambda+1) - (ln ln(lambda+1) + 1))`` — the slack factor of the
    asymptotic bounds.

    The denominator ``ln(x) - ln(ln(x)) - 1`` (with ``x = lambda + 1``) is
    nonnegative for all ``lambda >= 1`` and touches zero only at
    ``lambda = e - 1``, where ``alpha`` blows up; it decreases toward 1
    (very slowly, at ``ln ln / ln`` rate) as ``lambda`` grows."""
    lam_f = float(_lam(lam))
    inner = math.log(math.log(lam_f + 1)) + 1
    denom = math.log(lam_f + 1) - inner
    if denom <= 0:
        raise InvalidParameterError(
            f"alpha(lambda) needs ln(lambda+1) > ln(ln(lambda+1)) + 1; "
            f"lambda={lam_f} is too small"
        )
    return 1 + inner / denom


def F_lower_asymptotic(lam: TimeLike, t: TimeLike) -> float:
    """Theorem 7(3): ``(lambda+1) ** (t/(alpha*lambda) - 1)`` (Lemma 25;
    valid for sufficiently large ``lambda``)."""
    lam_f = float(_lam(lam))
    t_f = float(as_time(t))
    return (lam_f + 1) ** (t_f / (alpha(lam) * lam_f) - 1)


def h_of_lambda(lam: TimeLike, n: int, eps: float = 0.0) -> float:
    """The ``h(lambda)`` of Theorem 7(4), from the proof of Lemma 26:
    ``1 + h(lambda) = alpha + alpha*log(lambda+1)/log(n) + eps``.
    Tends to 0 when ``lambda -> infinity`` with ``n >= 2**lambda``."""
    lam_f = float(_lam(lam))
    if n < 2:
        raise InvalidParameterError(f"n >= 2 required, got {n}")
    a = alpha(lam)
    return a + a * math.log2(lam_f + 1) / math.log2(n) + eps - 1


def f_upper_asymptotic(lam: TimeLike, n: int, eps: float = 0.0) -> float:
    """Theorem 7(4): ``(1 + h(lambda)) * lambda * log(n) / log(lambda+1)``
    (Lemma 26; valid for sufficiently large ``lambda`` and ``n``)."""
    lam_f = float(_lam(lam))
    return (1 + h_of_lambda(lam, n, eps)) * lam_f * math.log2(n) / math.log2(lam_f + 1)


def claim23_lhs(lam: TimeLike) -> float:
    """Left-hand side of Claim 23:
    ``(e*ln(lambda+1)/(alpha*lambda)) * (lambda+1)**((lambda-1)/(alpha*lambda))``
    — must be ``<= 1`` for sufficiently large ``lambda``.

    (The paper's display of the exponent reads ``(lambda-1)*alpha*lambda``;
    that is a typesetting slip for ``(lambda-1)/(alpha*lambda)``, the form
    actually used in the proof of Lemma 25.)
    """
    lam_f = float(_lam(lam))
    a = alpha(lam)
    return (
        math.e
        * math.log(lam_f + 1)
        / (a * lam_f)
        * (lam_f + 1) ** ((lam_f - 1) / (a * lam_f))
    )


def claim24_holds(lam: TimeLike) -> bool:
    """Claim 24: ``(lambda+1)**(1/(alpha*lambda)) - 1
    <= e*ln(lambda+1)/(alpha*lambda)``."""
    lam_f = float(_lam(lam))
    a = alpha(lam)
    lhs = (lam_f + 1) ** (1 / (a * lam_f)) - 1
    rhs = math.e * math.log(lam_f + 1) / (a * lam_f)
    return lhs <= rhs


def theorem7_sandwich_holds(lam: TimeLike, *, t: TimeLike, n: int) -> bool:
    """Check parts (1) and (2) of Theorem 7 at a sampled ``(t, n)``:
    the exact lower/upper bounds must sandwich ``F_lambda(t)`` and
    ``f_lambda(n)``."""
    lam_t = _lam(lam)
    F = postal_F(lam_t, t)
    if not F_lower_exact(lam_t, t) <= F <= F_upper_exact(lam_t, t):
        return False
    f = float(postal_f(lam_t, n))
    # widen the float bounds by one ulp-ish margin to avoid spurious
    # failures from log rounding right at equality
    return f_lower_log(lam_t, n) - 1e-9 <= f <= f_upper_log(lam_t, n) + 1e-9
