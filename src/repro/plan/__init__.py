"""Columnar schedule plans: compact, cacheable broadcast schedules.

The plan layer is the construction-side counterpart of the turbo
simulation lane.  A :class:`SchedulePlan` holds one broadcast schedule as
four parallel integer columns (ticks, senders, message ids, receivers)
instead of a list of event objects; :func:`compile_plan` builds one
directly in integer ticks — iteratively, with no per-event ``Fraction``
allocation — for every broadcast family in the paper and every
collective shape in :mod:`repro.collectives`, and
:func:`build_plan` memoizes construction through an LRU / on-disk
:class:`PlanCache` (see :mod:`repro.plan.cache` for the
``$REPRO_PLAN_CACHE`` knobs).

Typical use::

    from repro.plan import build_plan

    plan = build_plan("BCAST", 1000, 1, "5/2")
    plan.audit()                      # full postal validation, in place
    system = plan.replay()            # turbo execution, no tick re-derivation
    schedule = plan.to_schedule()     # classic event objects when needed
"""

from repro.plan.build import (
    canonical_family,
    collective_plan_families,
    compile_plan,
    plan_families,
    plan_m,
)
from repro.plan.cache import (
    DEFAULT_CAPACITY,
    PlanCache,
    build_plan,
    configure,
    default_cache,
)
from repro.plan.columns import SchedulePlan

__all__ = [
    "SchedulePlan",
    "compile_plan",
    "canonical_family",
    "plan_families",
    "collective_plan_families",
    "plan_m",
    "build_plan",
    "PlanCache",
    "default_cache",
    "configure",
    "DEFAULT_CAPACITY",
]
