"""Integer-tick plan compilers for the broadcast and collective families.

Each compiler runs the *same recurrence* as its ``repro.core`` or
``repro.collectives`` builder — BCAST's generalized-Fibonacci split
(Section 3), REPEAT's overlapped iterations (Lemma 10), PACK's
normalized latency (Lemma 12), PIPELINE's role swap (Lemmas 14/16),
DTREE's event-driven drain (Section 4.3), and the nine collective shapes
(gather/scatter stars, the alltoall rotation, the reversed-tree combine
compositions, the gather+pipeline and Bruck allgathers, the gossip
ring) — but entirely in **integer ticks** on the run's
:class:`~repro.turbo.ticks.TickDomain`:

* no per-event :class:`~repro.core.schedule.SendEvent` objects,
* no per-event :class:`fractions.Fraction` arithmetic,
* no recursion (explicit worklists throughout, like
  :func:`repro.core.bcast.bcast_events` since the turbo PR — ``n >= 10^6``
  never touches the recursion limit),
* one C-speed ``list.sort`` of packed integer keys instead of a
  ``Fraction``-comparing event sort.

The output :class:`~repro.plan.columns.SchedulePlan` converts to a
:class:`~repro.core.schedule.Schedule` with events *byte-identical* to the
corresponding builder's (``tests/test_plan_roundtrip.py`` pins this for
every family and rational lambda).

Split points ``j = F_lambda(f_lambda(size) - 1)`` come from an
integer-rescaled copy of the one-pass
:class:`~repro.core.fibfunc.FibPrefix` (:class:`_IntPrefix`), augmented
with a per-size memo — the recursion revisits only ``O(log^2 n)``
distinct subrange sizes, so split cost vanishes from the profile.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.dtree import DTreeShape, resolve_degree
from repro.core.fibfunc import FibPrefix, GeneralizedFibonacci, postal_f
from repro.core.multi import pipeline_variant
from repro.errors import InvalidParameterError
from repro.plan.columns import SchedulePlan
from repro.turbo.ticks import TickDomain
from repro.types import Time, TimeLike, as_time

__all__ = [
    "compile_plan",
    "canonical_family",
    "plan_families",
    "collective_plan_families",
    "plan_m",
]


class _IntPrefix:
    """A :class:`~repro.core.fibfunc.FibPrefix` with jump times rescaled
    to integer ticks (``scale`` ticks per time unit), plus a split memo.

    ``split(size)`` is the BCAST split point ``F(f(size) - 1)`` computed
    with two raw bisects over integer arrays — zero ``Fraction``
    arithmetic in the builders' inner loops.
    """

    __slots__ = ("times", "values", "scale", "_memo")

    def __init__(self, prefix: FibPrefix, scale: int):
        self.times = [
            t.numerator * (scale // t.denominator) for t in prefix.times
        ]
        self.values = list(prefix.values)
        self.scale = scale
        self._memo: dict[int, int] = {}

    def split(self, size: int) -> int:
        j = self._memo.get(size)
        if j is None:
            # f(size): first jump whose value reaches `size`; then F one
            # time unit (= `scale` ticks) earlier.
            i = bisect_left(self.values, size)
            t = self.times[i] - self.scale
            j = self.values[bisect_right(self.times, t) - 1]
            self._memo[size] = j
        return j


def _int_prefix(lam_eff: Time, n: int) -> _IntPrefix:
    """The ``F_{lam_eff}`` prefix up to ``f_{lam_eff}(n)``, integer-
    rescaled at ``lam_eff``'s own denominator (every jump time lies on
    the grid ``{a + b*lam_eff}``, so that scale is lossless)."""
    fib = GeneralizedFibonacci(lam_eff)
    prefix = fib.tabulate(fib.index(n))
    return _IntPrefix(prefix, lam_eff.denominator)


# --------------------------------------------------------------- compilers
#
# Every compiler emits packed keys ((tick*n + sender)*m + msg)*n + receiver
# into a plain list; SchedulePlan.from_sorted_keys sorts and decodes them.


def _bcast_keys(
    keys: list[int],
    sp: _IntPrefix,
    lo0: int,
    size0: int,
    t0: int,
    one: int,
    lam_ticks: int,
    n: int,
    m: int,
    msg: int,
) -> None:
    """Algorithm BCAST over ``lo0 .. lo0+size0-1`` in ticks, first send at
    tick ``t0``, message index ``msg`` (shared by BCAST and REPEAT)."""
    if size0 <= 1:
        return
    split = sp.split
    append = keys.append
    nm = n * m
    stack = [(lo0, size0, t0)]
    push = stack.append
    pop = stack.pop
    while stack:
        lo, size, t = pop()
        if size == 1:
            continue
        j = split(size)
        append((t * nm + lo * m + msg) * n + lo + j)
        push((lo, j, t + one))
        push((lo + j, size - j, t + lam_ticks))


def _compile_bcast(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    if m != 1:
        raise InvalidParameterError(
            f"BCAST broadcasts a single message; got m={m} "
            "(use REPEAT/PACK/PIPELINE for m > 1)"
        )
    keys: list[int] = []
    if n >= 2:
        sp = _int_prefix(lam, n)
        _bcast_keys(
            keys, sp, 0, n, 0, domain.scale, domain.to_ticks(lam), n, 1, 0
        )
    return keys


def _compile_repeat(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    keys: list[int] = []
    if n >= 2:
        sp = _int_prefix(lam, n)
        one = domain.scale
        lam_ticks = domain.to_ticks(lam)
        # iteration stride f_lambda(n) - (lambda - 1), exact (Lemma 10)
        stride = domain.to_ticks(postal_f(lam, n) - (lam - 1))
        for i in range(m):
            _bcast_keys(keys, sp, 0, n, i * stride, one, lam_ticks, n, m, i)
    return keys


def _compile_pack(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """PACK: run the abstract BCAST recursion with normalized latency
    ``lambda' = 1 + (lambda-1)/m`` at the finer scale ``q*m`` (q =
    ``domain.scale``), where one abstract unit is ``q*m`` ticks and
    ``lambda'`` is ``q*m + (p - q)`` ticks.  An abstract send at ``t'``
    unpacks into unit sends at real times ``m*t' + k``; since ``(m*t') *
    q == t' * (q*m)``, the abstract tick value *is* the real tick of the
    pack's first unit — ``k``-th unit at ``tick + k*q``, exactly."""
    keys: list[int] = []
    if n < 2:
        return keys
    q = domain.scale
    lam_packed = 1 + (lam - 1) / m
    sp = _int_prefix(lam_packed, n)
    one_abs = q * m
    lam_abs = one_abs + (domain.to_ticks(lam) - q)  # lambda' at scale q*m
    split = sp.split
    append = keys.append
    nm = n * m
    stack = [(0, n, 0)]
    push = stack.append
    pop = stack.pop
    while stack:
        lo, size, t = pop()
        if size == 1:
            continue
        j = split(size)
        r = lo + j
        base = t * nm + lo * m
        for k in range(m):
            append((base + k * q * nm + k) * n + r)
        push((lo, j, t + one_abs))
        push((r, size - j, t + lam_abs))
    return keys


def _compile_pipeline(
    n: int, m: int, lam: Time, domain: TickDomain, t0: int = 0
) -> list[int]:
    """PIPELINE: after a stream transmission at tick ``t`` the sender is
    free at ``t + m`` and the recipient at ``t + lambda``; whoever is free
    earlier takes the larger ``F_{lambda'}`` subrange (``lambda' =
    lambda/m`` or ``m/lambda`` — the Lemma 14/16 role swap).  ``t0``
    offsets the whole stream (the ALLGATHER compiler starts it after the
    gather phase)."""
    keys: list[int] = []
    if n < 2:
        return keys
    sender_first = m <= lam
    lam_p = (lam / m) if sender_first else (Time(m) / lam)
    sp = _int_prefix(lam_p, n)
    one = domain.scale
    m_ticks = m * one
    lam_ticks = domain.to_ticks(lam)
    split = sp.split
    append = keys.append
    nm = n * m
    stack = [(0, n, t0)]
    push = stack.append
    pop = stack.pop
    while stack:
        lo, size, t = pop()
        if size == 1:
            continue
        j = split(size)
        if sender_first:
            keep, give = j, size - j
        else:
            keep, give = size - j, j
        v = lo + keep
        base = t * nm + lo * m
        for k in range(m):
            append((base + k * one * nm + k) * n + v)
        push((lo, keep, t + m_ticks))
        push((v, give, t + lam_ticks))
    return keys


def _compile_binomial(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """BINOMIAL: the telephone-era binomial split in ticks — the same
    recurrence as :func:`repro.algorithms.baselines.binomial_schedule`
    (the sender keeps the low ``size - half`` ranks, hands the top
    ``half`` — the largest power of two below ``size`` — to
    ``base + size - half``; the recipient forwards from arrival,
    ``t + lambda``)."""
    if m != 1:
        raise InvalidParameterError(
            f"BINOMIAL broadcasts a single message; got m={m} "
            "(use REPEAT/PACK/PIPELINE for m > 1)"
        )
    keys: list[int] = []
    append = keys.append
    one = domain.scale
    lam_ticks = domain.to_ticks(lam)
    stack: list[tuple[int, int, int]] = [(0, n, 0)]
    while stack:
        base, size, t = stack.pop()
        if size == 1:
            continue
        half = 1
        while half * 2 < size:
            half *= 2
        j = size - half
        append((t * n + base) * n + (base + j))  # m = 1: msg index 0
        stack.append((base, j, t + one))
        stack.append((base + j, half, t + lam_ticks))
    keys.sort()
    return keys


def _compile_dtree(
    n: int, m: int, lam: Time, domain: TickDomain, d: int
) -> list[int]:
    """DTREE: the deterministic event-driven drain of Section 4.3 over the
    BFS-numbered degree-``d`` tree, in ticks (same fixed point as
    :func:`repro.core.dtree.dtree_schedule`: per-node FIFO, message-major,
    children left to right)."""
    keys: list[int] = []
    if n < 2:
        return keys
    one = domain.scale
    lam_ticks = domain.to_ticks(lam)
    append = keys.append
    nm = n * m
    step = one * nm  # key increment for one send-port unit
    # arrival tick of message k at node v, flat at v*m + k; BFS numbering
    # writes every parent before its children read.
    arrival = [0] * (n * m)
    for v in range(n):
        first = d * v + 1
        if first >= n:
            continue
        last = min(first + d, n)
        port_free = 0
        base_v = v * m
        for k in range(m):
            ready = arrival[base_v + k]
            if port_free > ready:
                t = port_free
            else:
                t = ready
            row = t * nm + base_v + k
            for c in range(first, last):
                append(row * n + c)
                t += one
                row += step
                arrival[c * m + k] = t - one + lam_ticks
            port_free = t
    return keys


# ------------------------------------------------------------- collectives
#
# The collective compilers mirror the static builders in
# ``repro.collectives`` (gather_schedule, bruck_schedule, ...): same
# shapes, same message-index conventions, in pure integer ticks.  Their
# message flow is not single-root broadcast, so ``compile_plan`` audits
# them with :meth:`SchedulePlan.audit_ports` instead of the broadcast
# :meth:`~repro.plan.columns.SchedulePlan.audit`.


def _compile_gather(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """GATHER: ``p_i`` sends message ``i - 1`` straight to the root at
    tick ``i - 1`` — the root's receive port serializes perfectly."""
    one = domain.scale
    nm = n * m
    return [
        ((i - 1) * one * nm + i * m + (i - 1)) * n for i in range(1, n)
    ]


def _compile_scatter(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """SCATTER: the root sends message ``i - 1`` to ``p_i`` at tick
    ``i - 1`` (the mirror image of GATHER)."""
    one = domain.scale
    nm = n * m
    return [((i - 1) * one * nm + (i - 1)) * n + i for i in range(1, n)]


def _compile_alltoall(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """ALLTOALL: rotation round ``r`` at tick ``r`` — ``p_i`` sends
    message ``r`` to ``p_{(i+r+1) mod n}``."""
    one = domain.scale
    nm = n * m
    return [
        (r * one * nm + i * m + r) * n + (i + r + 1) % n
        for r in range(n - 1)
        for i in range(n)
    ]


def _compile_reduce(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """REDUCE: the time-reversed BCAST tree — each forward send
    ``(t, s -> r)`` becomes ``(f_lambda(n) - t - lambda, r -> s)``."""
    fwd = _compile_bcast(n, 1, lam, domain)
    if not fwd:
        return fwd
    lam_ticks = domain.to_ticks(lam)
    max_t = domain.to_ticks(postal_f(lam, n)) - lam_ticks
    keys = []
    for key in fwd:
        key, r = divmod(key, n)
        t, s = divmod(key, n)  # m == 1: the msg digit is zero
        keys.append(((max_t - t) * n + r) * n + s)
    return keys


def _compile_combine_bcast(
    n: int, m: int, lam: Time, domain: TickDomain
) -> list[int]:
    """ALLREDUCE / BARRIER: the reversed tree up (combine), then BCAST
    itself shifted by ``f_lambda(n)`` (the result / release down) — total
    ``2 f_lambda(n)``."""
    keys = _compile_reduce(n, m, lam, domain)
    if keys:
        shift = domain.to_ticks(postal_f(lam, n)) * n * n
        keys.extend(key + shift for key in _compile_bcast(n, 1, lam, domain))
    return keys


def _compile_allgather(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """ALLGATHER: gather (rumor ``i`` to the root at tick ``i - 1``) then
    the ``m = n`` PIPELINE stream started at ``max(n-1, lambda-1)``."""
    keys: list[int] = []
    if n < 2:
        return keys
    one = domain.scale
    nm = n * m
    keys.extend(
        ((i - 1) * one * nm + i * m + i) * n for i in range(1, n)
    )
    t0 = max((n - 1) * one, domain.to_ticks(lam) - one)
    keys.extend(_compile_pipeline(n, n, lam, domain, t0))
    return keys


def _compile_bruck(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """BRUCK-ALLGATHER: doubling rounds of cyclic-shift blocks; round
    ``r+1`` starts the tick the previous block's last rumor lands."""
    keys: list[int] = []
    if n < 2:
        return keys
    one = domain.scale
    lam_ticks = domain.to_ticks(lam)
    nm = n * m
    append = keys.append
    t = 0
    step = 1
    while step < n:
        size = min(step, n - step)
        for i in range(n):
            dst = (i - step) % n
            base = t * nm + i * m
            for offset in range(size):
                append((base + offset * one * nm + (i + offset) % n) * n + dst)
        t += (size - 1) * one + lam_ticks
        step *= 2
    return keys


def _compile_gossip(n: int, m: int, lam: Time, domain: TickDomain) -> list[int]:
    """GOSSIP-RING: at step ``k`` (tick ``k*lambda``) ``p_i`` forwards
    rumor ``(i - k) mod n`` to its ring successor."""
    keys: list[int] = []
    if n < 2:
        return keys
    lam_ticks = domain.to_ticks(lam)
    nm = n * m
    keys.extend(
        (k * lam_ticks * nm + i * m + (i - k) % n) * n + (i + 1) % n
        for k in range(n - 1)
        for i in range(n)
    )
    return keys


# ----------------------------------------------------------------- registry

_BUILDER_FAMILIES = (
    "BCAST",
    "BINOMIAL",
    "PACK",
    "PIPELINE-1",
    "PIPELINE-2",
    "REPEAT",
)

#: Collective family -> (compiler, message-count rule).  The rule maps
#: ``n`` to the plan's message-index space: personalized collectives use
#: one index per source/destination, allgathers one per rumor, and the
#: combine-shaped ones a single logical message.
_COLLECTIVE_COMPILERS = {
    "ALLGATHER": (_compile_allgather, lambda n: max(1, n)),
    "ALLREDUCE": (_compile_combine_bcast, lambda n: 1),
    "ALLTOALL": (_compile_alltoall, lambda n: max(1, n - 1)),
    "BARRIER": (_compile_combine_bcast, lambda n: 1),
    "BRUCK-ALLGATHER": (_compile_bruck, lambda n: max(1, n)),
    "GATHER": (_compile_gather, lambda n: max(1, n - 1)),
    "GOSSIP-RING": (_compile_gossip, lambda n: max(1, n)),
    "REDUCE": (_compile_reduce, lambda n: 1),
    "SCATTER": (_compile_scatter, lambda n: max(1, n - 1)),
}
_DTREE_SHAPES = {
    "DTREE-LINE": DTreeShape.LINE,
    "DTREE-BINARY": DTreeShape.BINARY,
    "DTREE-LATENCY": DTreeShape.LATENCY,
    "STAR": DTreeShape.STAR,
}


def plan_families() -> tuple[str, ...]:
    """Canonical *broadcast* family names the plan layer can compile,
    sorted.

    ``DTREE-<d>`` with an explicit integer degree is accepted too (e.g.
    ``"DTREE-7"``); ``"PIPELINE"`` resolves to the applicable variant.
    The collective shapes are listed separately by
    :func:`collective_plan_families` (their plans audit ports only, not
    broadcast coverage).
    """
    return tuple(sorted((*_BUILDER_FAMILIES, *_DTREE_SHAPES)))


def collective_plan_families() -> tuple[str, ...]:
    """Canonical collective family names the plan layer can compile,
    sorted — the nine shapes of :mod:`repro.collectives`."""
    return tuple(sorted(_COLLECTIVE_COMPILERS))


def plan_m(family: str, n: int, m: int) -> int:
    """The message count a compiled plan for *family* actually carries.

    Broadcast families pass ``m`` through.  The collectives are all
    single-message *protocols* (``m == 1`` in oracle terms) but their
    plans use the message index as a data label — destination rank for
    GATHER/SCATTER/ALLTOALL, rumor index for the allgathers and the
    gossip ring, 0 for the combine-shaped ones — so their plans carry a
    fixed per-``n`` message space regardless of the requested ``m``.
    :meth:`PlanCache.key <repro.plan.cache.PlanCache.key>` canonicalizes
    through this function, so ``build_plan("GATHER", n, 1, lam)`` and the
    plan it stores (``m = n - 1``) share one cache entry.

    Raises:
        InvalidParameterError: *m* is neither 1 nor the family's plan
            message count.
    """
    entry = _COLLECTIVE_COMPILERS.get(family.upper())
    if entry is None:
        return m
    m_eff = entry[1](n)
    if m not in (1, m_eff):
        raise InvalidParameterError(
            f"{family.upper()} is a single-message collective; its plan "
            f"at n={n} carries m={m_eff} message indices (got m={m})"
        )
    return m_eff


def canonical_family(family: str, n: int, m: int, lam: TimeLike) -> str:
    """Normalize *family* to its canonical compiled name.

    ``"PIPELINE"`` picks the variant by ``m`` vs ``lambda`` (Lemma 14 vs
    16); named DTREE shapes and ``STAR`` stay symbolic (their canonical
    name is the alias itself, since e.g. DTREE-LATENCY's degree depends
    on ``lambda``).  Case-insensitive.

    Raises:
        InvalidParameterError: unknown family.
    """
    fam = family.upper()
    if fam == "PIPELINE":
        return pipeline_variant(m, as_time(lam))
    if (
        fam in _BUILDER_FAMILIES
        or fam in _DTREE_SHAPES
        or fam in _COLLECTIVE_COMPILERS
    ):
        return fam
    if fam.startswith("DTREE-"):
        try:
            int(fam[6:])
        except ValueError:
            raise InvalidParameterError(
                f"unknown DTREE shape {family!r} (named shapes: DTREE-LINE, "
                "DTREE-BINARY, DTREE-LATENCY, STAR; or DTREE-<d>)"
            ) from None
        return fam
    raise InvalidParameterError(
        f"the plan layer cannot compile family {family!r} "
        f"(supported: {', '.join(plan_families())}, "
        f"{', '.join(collective_plan_families())}, and DTREE-<d>)"
    )


def compile_plan(
    family: str,
    n: int,
    m: int,
    lam: TimeLike,
    *,
    validate: bool = False,
) -> SchedulePlan:
    """Compile ``(family, n, m, lambda)`` into a columnar
    :class:`~repro.plan.columns.SchedulePlan`.

    Pure integer-tick construction: iterative, allocation-light, and
    byte-identical (via :meth:`~repro.plan.columns.SchedulePlan.
    to_schedule`) to the corresponding ``repro.core`` builder.

    Args:
        family: one of :func:`plan_families`,
            :func:`collective_plan_families`, ``"PIPELINE"``, or
            ``"DTREE-<d>"`` with an explicit degree.  Collective plans
            carry ``m = plan_m(family, n, 1)`` message indices and
            compare byte-identically to the matching
            ``repro.collectives`` static builder.
        validate: run the in-place columnar
            :meth:`~repro.plan.columns.SchedulePlan.audit` (broadcast
            families) or :meth:`~repro.plan.columns.SchedulePlan.
            audit_ports` (collectives) before returning (off by default
            — the compilers are the same provably-correct recurrences as
            the builders; the conformance suite audits independently).

    Raises:
        InvalidParameterError: unknown family, or parameters outside the
            family's domain (e.g. BCAST with ``m != 1``).
        TickDomainError: ``lambda``'s denominator exceeds the supported
            tick scale.
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1 processors, got {n}")
    if m < 1:
        raise InvalidParameterError(f"need m >= 1 messages, got {m}")
    lam = as_time(lam)
    if lam < 1:
        raise InvalidParameterError(
            f"the postal model requires lambda >= 1, got {lam}"
        )
    fam = canonical_family(family, n, m, lam)
    domain = TickDomain.for_values([lam])

    entry = _COLLECTIVE_COMPILERS.get(fam)
    if entry is not None:
        compiler, _ = entry
        m_eff = plan_m(fam, n, m)
        keys = compiler(n, m_eff, lam, domain)
        plan = SchedulePlan.from_sorted_keys(fam, n, m_eff, lam, domain, keys)
        if validate:
            plan.audit_ports()
        return plan

    if fam == "BCAST":
        keys = _compile_bcast(n, m, lam, domain)
    elif fam == "REPEAT":
        keys = _compile_repeat(n, m, lam, domain)
    elif fam == "PACK":
        keys = _compile_pack(n, m, lam, domain)
    elif fam.startswith("PIPELINE"):
        keys = _compile_pipeline(n, m, lam, domain)
    elif fam == "BINOMIAL":
        keys = _compile_binomial(n, m, lam, domain)
    else:
        shape = _DTREE_SHAPES.get(fam, None)
        if shape is None:  # DTREE-<d> with an explicit degree
            shape = int(fam[6:])
        keys = _compile_dtree(
            n, m, lam, domain, resolve_degree(shape, n, lam)
        )

    plan = SchedulePlan.from_sorted_keys(fam, n, m, lam, domain, keys)
    if validate:
        plan.audit()
    return plan
