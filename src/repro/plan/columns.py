"""Columnar schedule plans: structure-of-arrays broadcast schedules.

Above ``n ~ 10^5`` the cost of a broadcast run is no longer the
simulation (the turbo lane fixed that) but the *schedule construction*:
one :class:`~repro.core.schedule.SendEvent` dataclass per send, each
holding a :class:`fractions.Fraction` start time, dominates both wall
clock and peak memory.  Träff (arXiv:2407.18004) makes the general point
that broadcast schedules admit representations far more compact than
materialized event lists; this module is that observation applied to the
whole builder family of this library.

A :class:`SchedulePlan` stores one broadcast schedule as four parallel
``array('q')`` columns —

* ``ticks``      — integer send-start ticks on the run's
  :class:`~repro.turbo.ticks.TickDomain` grid (lossless: ``tick =
  send_time * scale``),
* ``senders``    — originating processor per event,
* ``msgs``       — message index per event,
* ``receivers``  — destination processor per event,

sorted by ``(tick, sender, msg, receiver)`` — exactly the order
:class:`~repro.core.schedule.Schedule` keeps its events in, so the two
representations convert **losslessly** in both directions
(:meth:`to_schedule` / :meth:`from_schedule` round-trip to identical
event tuples).  Four machine words per event instead of a dataclass plus
two ``Fraction`` objects is where the ~5x+ peak-memory win of the plan
layer comes from; the integer-only construction (no per-event
``Fraction`` arithmetic) is where the build-time win comes from.

The plan validates itself *in place*: :meth:`audit` runs the full postal
certification (structure, sender-holds, duplicate/complete coverage, and
the sort-and-sweep simultaneous-I/O port audit) directly over the
integer columns without materializing a single event object, and
:meth:`replay` feeds the columns straight into the turbo event loop
(:mod:`repro.turbo.fastsim`) without re-deriving ticks.

Construction goes through :func:`repro.plan.build.compile_plan` (or the
cached :func:`repro.plan.cache.build_plan`); this module is only the
data structure and its conversions.
"""

from __future__ import annotations

import json
import sys
from array import array
from typing import Iterator

from repro.core.schedule import Schedule, SendEvent
from repro.errors import (
    InvalidParameterError,
    PlanCacheError,
    ScheduleError,
    SimultaneousIOError,
)
from repro.turbo.ticks import TickDomain, lcm_denominator
from repro.types import ProcId, Time, TimeLike, ZERO, as_time, time_repr

__all__ = ["SchedulePlan"]

#: Magic prefix of the on-disk plan format (bumped on layout changes).
_MAGIC = b"repro-plan/1\n"


class SchedulePlan:
    """One broadcast schedule as four parallel integer columns.

    Instances are built by :func:`repro.plan.build.compile_plan` (or
    loaded from cache / disk); the constructor only checks invariants
    cheaply and trusts the columns otherwise — run :meth:`audit` for the
    full postal certification.

    Attributes:
        family: canonical builder family (e.g. ``"BCAST"``,
            ``"DTREE-2"``).
        n: number of processors.
        m: number of messages.
        lam: latency ``lambda`` (exact :class:`~fractions.Fraction`).
        root: the broadcast originator.
        domain: the integer tick grid all ``ticks`` live on.
        ticks / senders / msgs / receivers: the ``array('q')`` columns,
            row-sorted by ``(tick, sender, msg, receiver)``.
    """

    __slots__ = (
        "family",
        "n",
        "m",
        "lam",
        "root",
        "domain",
        "ticks",
        "senders",
        "msgs",
        "receivers",
        "_lam_ticks",
        "_shared",
    )

    def __init__(
        self,
        family: str,
        n: int,
        m: int,
        lam: TimeLike,
        domain: TickDomain,
        ticks: array,
        senders: array,
        msgs: array,
        receivers: array,
        *,
        root: ProcId = 0,
    ):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 processors, got {n}")
        if m < 1:
            raise InvalidParameterError(f"need m >= 1 messages, got {m}")
        lam = as_time(lam)
        if lam < 1:
            raise InvalidParameterError(
                f"the postal model requires lambda >= 1, got {lam}"
            )
        if not 0 <= root < n:
            raise InvalidParameterError(f"root p{root} outside 0..{n - 1}")
        if not (len(ticks) == len(senders) == len(msgs) == len(receivers)):
            raise InvalidParameterError(
                "plan columns disagree on length: "
                f"{len(ticks)}/{len(senders)}/{len(msgs)}/{len(receivers)}"
            )
        self.family = family
        self.n = n
        self.m = m
        self.lam = lam
        self.root = root
        self.domain = domain
        self.ticks = ticks
        self.senders = senders
        self.msgs = msgs
        self.receivers = receivers
        self._lam_ticks = domain.to_ticks(lam)  # raises if lam off-grid
        self._shared = None  # shared-memory keepalive (from_shared only)

    # ------------------------------------------------------------ accessors

    @property
    def event_count(self) -> int:
        """Number of send events in the plan."""
        return len(self.ticks)

    def __len__(self) -> int:
        return len(self.ticks)

    @property
    def lam_ticks(self) -> int:
        """``lambda`` expressed in ticks of :attr:`domain`."""
        return self._lam_ticks

    @property
    def nbytes(self) -> int:
        """Bytes held by the four columns (the plan's event storage)."""
        return sum(
            col.itemsize * len(col)
            for col in (self.ticks, self.senders, self.msgs, self.receivers)
        )

    def rows(self) -> Iterator[tuple[int, int, int, int]]:
        """Iterate ``(tick, sender, msg, receiver)`` rows in order."""
        return zip(self.ticks, self.senders, self.msgs, self.receivers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchedulePlan):
            return NotImplemented
        return (
            self.family == other.family
            and self.n == other.n
            and self.m == other.m
            and self.lam == other.lam
            and self.root == other.root
            and self.domain == other.domain
            and self.ticks == other.ticks
            and self.senders == other.senders
            and self.msgs == other.msgs
            and self.receivers == other.receivers
        )

    def __repr__(self) -> str:
        return (
            f"SchedulePlan({self.family}, n={self.n}, m={self.m}, "
            f"lambda={time_repr(self.lam)}, {len(self)} sends, "
            f"scale={self.domain.scale})"
        )

    # ------------------------------------------------------------ semantics

    def completion_ticks(self) -> int:
        """Arrival tick of the last delivery (0 when there are no sends —
        the columns are tick-sorted, so this is the last row + lambda)."""
        if not self.ticks:
            return 0
        return self.ticks[-1] + self._lam_ticks

    def completion_time(self) -> Time:
        """The schedule's makespan ``T(n, m, lambda)`` as an exact
        :class:`~fractions.Fraction` (the paper's running time)."""
        if not self.ticks:
            return ZERO
        return self.domain.to_time(self.completion_ticks())

    # ---------------------------------------------------------- conversion

    def to_schedule(self, *, validate: bool = False) -> Schedule:
        """Materialize the classic event-object :class:`Schedule`.

        The produced events are byte-identical to the corresponding
        builder's output (``repro.core`` builders and plan compilers run
        the same recurrences); the round trip
        ``SchedulePlan.from_schedule(plan.to_schedule())`` is the
        identity.
        """
        to_time = self.domain.to_time
        events = [
            SendEvent(to_time(t), s, k, r) for t, s, k, r in self.rows()
        ]
        return Schedule(
            self.n,
            self.lam,
            events,
            m=self.m,
            root=self.root,
            validate=validate,
        )

    @classmethod
    def from_schedule(
        cls, schedule: Schedule, *, family: str = "SCHEDULE"
    ) -> "SchedulePlan":
        """Compress a :class:`Schedule` into columnar form (lossless).

        Raises:
            TickDomainError: the schedule's times do not lie on a common
                tick grid within :data:`repro.turbo.ticks.MAX_SCALE`.
        """
        from repro.errors import TickDomainError

        scale = lcm_denominator(
            [schedule.lam, *(ev.send_time for ev in schedule.events)]
        )
        if scale is None:
            raise TickDomainError(
                "schedule times have no common denominator within the "
                "supported tick scale; the plan layer cannot represent it"
            )
        domain = TickDomain(scale)
        count = len(schedule.events)
        ticks = array("q", bytes(8 * count))
        senders = array("q", bytes(8 * count))
        msgs = array("q", bytes(8 * count))
        receivers = array("q", bytes(8 * count))
        for i, ev in enumerate(schedule.events):
            t = ev.send_time
            ticks[i] = t.numerator * (scale // t.denominator)
            senders[i] = ev.sender
            msgs[i] = ev.msg
            receivers[i] = ev.receiver
        return cls(
            family,
            schedule.n,
            schedule.m,
            schedule.lam,
            domain,
            ticks,
            senders,
            msgs,
            receivers,
            root=schedule.root,
        )

    @classmethod
    def from_sorted_keys(
        cls,
        family: str,
        n: int,
        m: int,
        lam: TimeLike,
        domain: TickDomain,
        keys: list[int],
        *,
        root: ProcId = 0,
        presorted: bool = False,
    ) -> "SchedulePlan":
        """Decode packed row keys into columns (the builders' entry).

        Each key encodes one event as
        ``((tick * n + sender) * m + msg) * n + receiver``; integer
        sorting of the keys is exactly the ``(tick, sender, msg,
        receiver)`` row order, so one C-speed ``list.sort`` replaces the
        ``Schedule`` constructor's ``Fraction``-comparing event sort.
        """
        if not presorted:
            keys.sort()
        count = len(keys)
        ticks = array("q", bytes(8 * count))
        senders = array("q", bytes(8 * count))
        msgs = array("q", bytes(8 * count))
        receivers = array("q", bytes(8 * count))
        for i, key in enumerate(keys):
            key, receivers[i] = divmod(key, n)
            key, msgs[i] = divmod(key, m)
            ticks[i], senders[i] = divmod(key, n)
        return cls(
            family, n, m, lam, domain, ticks, senders, msgs, receivers,
            root=root,
        )

    # ----------------------------------------------------------- validation

    def audit(self) -> None:
        """Full postal-model certification, in place over the columns.

        The same checks as :meth:`Schedule.validate
        <repro.core.schedule.Schedule.validate>` — structural ranges,
        sender-holds-message causality, duplicate and missing deliveries,
        and the simultaneous-I/O port audit — but in pure integer
        arithmetic with no event materialization.  Because the rows are
        tick-sorted and every port occupation is exactly one unit
        (``scale`` ticks), the port audit degenerates to one linear
        sweep with a per-processor last-start array: two starts on the
        same port collide **iff** they are less than one unit apart, and
        sorted rows visit each port's starts in nondecreasing order.

        Raises:
            ScheduleError: structural violation (range, causality,
                duplicate or incomplete delivery, unsorted columns).
            SimultaneousIOError: two sends (or two receives) overlap at
                one processor.
        """
        n, m = self.n, self.m
        one = self.domain.scale
        lam_ticks = self._lam_ticks
        to_time = self.domain.to_time
        root = self.root

        # arrival tick per (proc, msg); -1 = not yet delivered
        arrival = [-1] * (n * m)
        for k in range(m):
            arrival[root * m + k] = 0

        send_last = [-(one + 1)] * n  # last send-start tick per processor
        recv_last = [-(one + 1)] * n  # last recv-start tick per processor
        recv_off = lam_ticks - one  # receive window opens at t + lam - 1

        prev_tick = -1
        for t, s, k, r in self.rows():
            if t < prev_tick:
                raise ScheduleError(
                    "plan columns are not tick-sorted "
                    f"({t} after {prev_tick})"
                )
            prev_tick = t
            if not 0 <= s < n:
                raise ScheduleError(f"sender p{s} out of range 0..{n - 1}")
            if not 0 <= r < n:
                raise ScheduleError(f"receiver p{r} out of range 0..{n - 1}")
            if s == r:
                raise ScheduleError(
                    f"self-send at p{s} (t={time_repr(to_time(t))})"
                )
            if not 0 <= k < m:
                raise ScheduleError(f"message index {k} out of range 0..{m - 1}")
            if t < 0:
                raise ScheduleError(f"negative send tick {t} at p{s}")

            held = arrival[s * m + k]
            if held < 0 or t < held:
                raise ScheduleError(
                    f"p{s} sends M{k + 1} at t={time_repr(to_time(t))} "
                    + (
                        "but never obtains it"
                        if held < 0
                        else f"but only holds it from t={time_repr(to_time(held))}"
                    )
                )
            slot = r * m + k
            if arrival[slot] >= 0:
                raise ScheduleError(
                    f"p{r} is sent M{k + 1} more than once "
                    f"(second delivery at t={time_repr(to_time(t + lam_ticks))})"
                )
            arrival[slot] = t + lam_ticks

            if t - send_last[s] < one:
                a = to_time(send_last[s])
                raise SimultaneousIOError(
                    f"p{s} drives two sends at once: busy "
                    f"[{time_repr(a)},{time_repr(a + 1)}) and "
                    f"[{time_repr(to_time(t))},{time_repr(to_time(t) + 1)})"
                )
            send_last[s] = t
            w = t + recv_off
            if w - recv_last[r] < one:
                a = to_time(recv_last[r])
                raise SimultaneousIOError(
                    f"p{r} drives two receives at once: busy "
                    f"[{time_repr(a)},{time_repr(a + 1)}) and "
                    f"[{time_repr(to_time(w))},{time_repr(to_time(w) + 1)})"
                )
            recv_last[r] = w

        missing = arrival.count(-1)
        if missing:
            idx = arrival.index(-1)
            raise ScheduleError(
                f"incomplete broadcast: p{idx // m} never receives "
                f"M{idx % m + 1} ({missing} deliveries missing)"
            )

    def audit_ports(self) -> None:
        """Structural + port certification for non-broadcast plans.

        The collective compilers (gather, scatter, allreduce, Bruck, …)
        produce schedules whose message flow is *not* single-root
        broadcast — rumors originate everywhere and deliveries may repeat
        on purpose (the allreduce release retraces the combine edges) —
        so :meth:`audit`'s coverage and sender-holds checks do not apply.
        This method runs everything that is semantics-independent: the
        structural range checks, tick sortedness, and the same one-unit
        sort-and-sweep send/receive port audit.

        Raises:
            ScheduleError: range violation, self-send, or unsorted
                columns.
            SimultaneousIOError: two sends (or two receives) overlap at
                one processor.
        """
        n, m = self.n, self.m
        one = self.domain.scale
        lam_ticks = self._lam_ticks
        to_time = self.domain.to_time

        send_last = [-(one + 1)] * n
        recv_last = [-(one + 1)] * n
        recv_off = lam_ticks - one

        prev_tick = -1
        for t, s, k, r in self.rows():
            if t < prev_tick:
                raise ScheduleError(
                    "plan columns are not tick-sorted "
                    f"({t} after {prev_tick})"
                )
            prev_tick = t
            if not 0 <= s < n:
                raise ScheduleError(f"sender p{s} out of range 0..{n - 1}")
            if not 0 <= r < n:
                raise ScheduleError(f"receiver p{r} out of range 0..{n - 1}")
            if s == r:
                raise ScheduleError(
                    f"self-send at p{s} (t={time_repr(to_time(t))})"
                )
            if not 0 <= k < m:
                raise ScheduleError(f"message index {k} out of range 0..{m - 1}")
            if t < 0:
                raise ScheduleError(f"negative send tick {t} at p{s}")

            if t - send_last[s] < one:
                a = to_time(send_last[s])
                raise SimultaneousIOError(
                    f"p{s} drives two sends at once: busy "
                    f"[{time_repr(a)},{time_repr(a + 1)}) and "
                    f"[{time_repr(to_time(t))},{time_repr(to_time(t) + 1)})"
                )
            send_last[s] = t
            w = t + recv_off
            if w - recv_last[r] < one:
                a = to_time(recv_last[r])
                raise SimultaneousIOError(
                    f"p{r} drives two receives at once: busy "
                    f"[{time_repr(a)},{time_repr(a + 1)}) and "
                    f"[{time_repr(to_time(w))},{time_repr(to_time(w) + 1)})"
                )
            recv_last[r] = w

    # -------------------------------------------------------------- replay

    def replay(self, *, policy: "str | None" = None):
        """Execute the plan on the turbo event loop, feeding the integer
        columns straight into :class:`~repro.turbo.fastsim.TurboSystem`
        — no tick re-derivation, no protocol generators.

        Each planned send is booked at its recorded tick; the turbo
        system then enforces the postal model exactly as it does for
        protocol runs (a plan violating port exclusivity raises
        :class:`~repro.errors.SimultaneousIOError` under the strict
        policy).  Returns the finished ``TurboSystem``; its
        ``realized_schedule(m=plan.m)`` equals :meth:`to_schedule`.

        Args:
            policy: ``"strict"`` (default) or ``"queued"``.
        """
        from repro.postal.machine import ContentionPolicy
        from repro.turbo.fastsim import TurboEnvironment, TurboSystem

        pol = (
            ContentionPolicy.STRICT
            if policy in (None, "strict")
            else ContentionPolicy.QUEUED
        )
        env = TurboEnvironment(self.domain)
        system = TurboSystem(env, self.n, self.lam, policy=pol)
        send = system.send
        push = env._push
        for t, s, k, r in self.rows():
            push(t, send, s, r, k)
        env.run()
        return system

    # -------------------------------------------------------- shared memory

    def to_shared(self):
        """Export the four columns into a named shared-memory segment.

        Returns a picklable
        :class:`~repro.batch.shared.SharedPlanHandle` (a few dozen
        bytes) that any process can pass to :meth:`from_shared`.  The
        *calling* process owns the segment: release it with
        :func:`repro.batch.shared.release_shared` — in a ``finally``,
        so a crashed worker can never leak it —
        or manage a whole batch with
        :class:`~repro.batch.shared.SharedPlanSet`.
        """
        from repro.batch.shared import share_plan

        return share_plan(self)

    @classmethod
    def from_shared(cls, handle) -> "SchedulePlan":
        """Attach to a segment created by :meth:`to_shared`.

        The returned plan's columns are **zero-copy** ``memoryview('q')``
        slices of the mapped segment (the buffer protocol makes them
        interchangeable with ``array('q')`` everywhere — replay kernels,
        audits, serialization).  The plan keeps the mapping alive for
        its own lifetime and closes it when garbage-collected; it never
        unlinks (only the creating process does).
        """
        from repro.batch.shared import attach_columns

        columns, attachment = attach_columns(handle)
        plan = cls(
            handle.family,
            handle.n,
            handle.m,
            as_time(handle.lam),
            TickDomain(handle.scale),
            *columns,
            root=handle.root,
        )
        plan._shared = attachment
        return plan

    # -------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize to the compact on-disk format: a magic line, one
        JSON header line, then the four raw column buffers."""
        header = {
            "family": self.family,
            "n": self.n,
            "m": self.m,
            "lam": f"{self.lam.numerator}/{self.lam.denominator}",
            "root": self.root,
            "scale": self.domain.scale,
            "count": len(self.ticks),
            "itemsize": self.ticks.itemsize,
            "byteorder": sys.byteorder,
        }
        parts = [_MAGIC, json.dumps(header, sort_keys=True).encode(), b"\n"]
        parts.extend(
            col.tobytes()
            for col in (self.ticks, self.senders, self.msgs, self.receivers)
        )
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SchedulePlan":
        """Inverse of :meth:`to_bytes`.

        Raises:
            PlanCacheError: the payload is not a well-formed plan.
        """
        if not data.startswith(_MAGIC):
            raise PlanCacheError("not a serialized schedule plan (bad magic)")
        body = data[len(_MAGIC):]
        nl = body.find(b"\n")
        if nl < 0:
            raise PlanCacheError("truncated plan header")
        try:
            header = json.loads(body[:nl])
        except ValueError as exc:
            raise PlanCacheError(f"unreadable plan header: {exc}") from None
        try:
            n = int(header["n"])
            m = int(header["m"])
            count = int(header["count"])
            itemsize = int(header["itemsize"])
            lam = as_time(header["lam"])
            scale = int(header["scale"])
            root = int(header["root"])
            family = str(header["family"])
            byteorder = header["byteorder"]
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanCacheError(f"incomplete plan header: {exc}") from None
        probe = array("q")
        if itemsize != probe.itemsize:
            raise PlanCacheError(
                f"plan written with {itemsize}-byte integers; this "
                f"platform uses {probe.itemsize}-byte ones"
            )
        payload = body[nl + 1:]
        col_bytes = count * itemsize
        if len(payload) != 4 * col_bytes:
            raise PlanCacheError(
                f"plan payload is {len(payload)} bytes; header promises "
                f"{4 * col_bytes}"
            )
        cols = []
        for i in range(4):
            col = array("q")
            col.frombytes(payload[i * col_bytes:(i + 1) * col_bytes])
            if byteorder != sys.byteorder:
                col.byteswap()
            cols.append(col)
        return cls(
            family, n, m, lam, TickDomain(scale),
            cols[0], cols[1], cols[2], cols[3], root=root,
        )
