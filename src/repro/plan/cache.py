"""Plan memoization: an in-memory LRU in front of an optional disk cache.

Repeated bench and conformance sweeps rebuild the *same* schedules over
and over — every ``(family, n, m, lambda)`` grid point is deterministic,
so the second construction is pure waste.  :func:`build_plan` wraps
:func:`repro.plan.build.compile_plan` with a :class:`PlanCache`, a
concrete :class:`repro.caching.TwoLevelCache`:

* **mem** (default): an exact-LRU :class:`~collections.OrderedDict` of
  live :class:`~repro.plan.columns.SchedulePlan` objects, capped at
  :data:`DEFAULT_CAPACITY` entries;
* **disk**: additionally persists each plan under a content key —
  ``sha256(family | n | m | lambda | root | format-version)`` — in
  ``$REPRO_PLAN_CACHE_DIR`` (default ``~/.cache/repro/plans``) using the
  :meth:`~repro.plan.columns.SchedulePlan.to_bytes` format, so a *fresh
  process* (a new CI shard, the next nightly run) skips construction
  entirely.  Writes are atomic (`tmp` + :func:`os.replace`); unreadable
  or foreign files are treated as misses, never as errors — but each
  discarded file is logged at ``WARNING`` on ``repro.plan.cache`` so
  corruption never hides behind a silent rebuild;
* **off**: every lookup misses (benchmarking construction itself, or
  ruling the cache out while debugging).

The mode comes from ``$REPRO_PLAN_CACHE`` (``off`` / ``mem`` / ``disk``)
unless given explicitly.  The process-wide default cache is
:func:`default_cache`; :func:`configure` swaps it (tests point it at a
temp directory).
"""

from __future__ import annotations

import logging
from pathlib import Path

from repro.caching import DEFAULT_CAPACITY, TwoLevelCache
from repro.errors import PlanCacheError
from repro.plan.build import canonical_family, compile_plan, plan_m
from repro.plan.columns import SchedulePlan
from repro.types import TimeLike, as_time

__all__ = [
    "PlanCache",
    "build_plan",
    "default_cache",
    "configure",
    "DEFAULT_CAPACITY",
]

_ENV_MODE = "REPRO_PLAN_CACHE"
_ENV_DIR = "REPRO_PLAN_CACHE_DIR"

#: Bumped together with the on-disk column format so stale files from an
#: older layout can never be decoded into the wrong shape.
_KEY_VERSION = "repro-plan/1"

#: Disk-level robustness events (truncated / mismatched cache files
#: being discarded) are logged loudly here — a rebuild is correct but
#: should never be silent, or real corruption hides behind it.
logger = logging.getLogger("repro.plan.cache")


class PlanCache(TwoLevelCache):
    """Two-level (memory LRU, optional disk) cache of compiled plans.

    Args:
        mode: ``"off"``, ``"mem"``, or ``"disk"``; defaults to
            ``$REPRO_PLAN_CACHE`` or ``"mem"``.
        directory: disk cache root (``disk`` mode only); defaults to
            ``$REPRO_PLAN_CACHE_DIR`` or ``~/.cache/repro/plans``.
        capacity: LRU entry cap for the memory level.
    """

    artifact = "plan"
    env_mode = _ENV_MODE
    env_dir = _ENV_DIR
    suffix = ".plan"
    logger = logger
    decode_errors = (PlanCacheError,)

    def default_directory(self) -> Path:
        return Path.home() / ".cache" / "repro" / "plans"

    # ----------------------------------------------------------------- keys

    @staticmethod
    def key(family: str, n: int, m: int, lam: TimeLike) -> tuple:
        """The canonical cache key (family aliases collapse: ``PIPELINE``
        and its applicable variant share one entry, and a collective
        requested at ``m = 1`` shares its entry with the ``plan_m``
        message count the compiled plan actually carries)."""
        lam = as_time(lam)
        fam = canonical_family(family, n, m, lam)
        return (fam, n, plan_m(fam, n, m), lam)

    def content_text(self, key: tuple) -> str:
        fam, n, m, lam = key
        return (
            f"{_KEY_VERSION}|{fam}|{n}|{m}|"
            f"{lam.numerator}/{lam.denominator}|root=0"
        )

    # ---------------------------------------------------------------- codec

    def encode(self, plan: SchedulePlan) -> bytes:
        return plan.to_bytes()

    def decode(self, data: bytes) -> SchedulePlan:
        return SchedulePlan.from_bytes(data)

    def check(self, key: tuple, plan: SchedulePlan) -> bool:
        expect_fam, n, m, lam = key
        if (plan.family, plan.n, plan.m, plan.lam) != (expect_fam, n, m, lam):
            logger.warning(
                "discarding plan cache file %s: content is %s but the key "
                "demands %s (hash collision or tampered file); "
                "the plan will be rebuilt",
                self.path_for(key),
                (plan.family, plan.n, plan.m, str(plan.lam)),
                (expect_fam, n, m, str(lam)),
            )
            return False
        return True

    # --------------------------------------------------------------- lookup

    def get(self, family: str, n: int, m: int, lam: TimeLike) -> "SchedulePlan | None":
        """The cached plan, or ``None`` (always ``None`` in ``off`` mode)."""
        if self.mode == "off":
            self.misses += 1
            return None
        return self.lookup(self.key(family, n, m, lam))

    def put(self, plan: SchedulePlan) -> None:
        """Remember *plan* (no-op in ``off`` mode)."""
        if self.mode == "off":
            return
        self.store(self.key(plan.family, plan.n, plan.m, plan.lam), plan)


# ------------------------------------------------------- process-wide cache

_DEFAULT: "PlanCache | None" = None


def default_cache() -> PlanCache:
    """The process-wide cache (created lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PlanCache()
    return _DEFAULT


def configure(
    *,
    mode: "str | None" = None,
    directory: "Path | str | None" = None,
    capacity: int = DEFAULT_CAPACITY,
) -> PlanCache:
    """Replace the process-wide cache (returns the new one)."""
    global _DEFAULT
    _DEFAULT = PlanCache(mode=mode, directory=directory, capacity=capacity)
    return _DEFAULT


def build_plan(
    family: str,
    n: int,
    m: int,
    lam: TimeLike,
    *,
    validate: bool = False,
    cache: "PlanCache | None" = None,
) -> SchedulePlan:
    """:func:`~repro.plan.build.compile_plan` through a cache.

    A hit returns the cached plan as-is (plans are immutable by
    convention — don't mutate the columns); a miss compiles, remembers,
    and returns.  With ``cache=None`` the process-wide
    :func:`default_cache` is used.
    """
    if cache is None:
        cache = default_cache()
    plan = cache.get(family, n, m, lam)
    if plan is None:
        plan = compile_plan(family, n, m, lam, validate=validate)
        cache.put(plan)
    return plan
