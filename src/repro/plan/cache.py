"""Plan memoization: an in-memory LRU in front of an optional disk cache.

Repeated bench and conformance sweeps rebuild the *same* schedules over
and over — every ``(family, n, m, lambda)`` grid point is deterministic,
so the second construction is pure waste.  :func:`build_plan` wraps
:func:`repro.plan.build.compile_plan` with a :class:`PlanCache`:

* **mem** (default): an exact-LRU :class:`~collections.OrderedDict` of
  live :class:`~repro.plan.columns.SchedulePlan` objects, capped at
  :data:`DEFAULT_CAPACITY` entries;
* **disk**: additionally persists each plan under a content key —
  ``sha256(family | n | m | lambda | root | format-version)`` — in
  ``$REPRO_PLAN_CACHE_DIR`` (default ``~/.cache/repro/plans``) using the
  :meth:`~repro.plan.columns.SchedulePlan.to_bytes` format, so a *fresh
  process* (a new CI shard, the next nightly run) skips construction
  entirely.  Writes are atomic (`tmp` + :func:`os.replace`); unreadable
  or foreign files are treated as misses, never as errors — but each
  discarded file is logged at ``WARNING`` on ``repro.plan.cache`` so
  corruption never hides behind a silent rebuild;
* **off**: every lookup misses (benchmarking construction itself, or
  ruling the cache out while debugging).

The mode comes from ``$REPRO_PLAN_CACHE`` (``off`` / ``mem`` / ``disk``)
unless given explicitly.  The process-wide default cache is
:func:`default_cache`; :func:`configure` swaps it (tests point it at a
temp directory).
"""

from __future__ import annotations

import hashlib
import logging
import os
import tempfile
from collections import OrderedDict
from pathlib import Path

from repro.errors import InvalidParameterError, PlanCacheError
from repro.plan.build import canonical_family, compile_plan, plan_m
from repro.plan.columns import SchedulePlan
from repro.types import Time, TimeLike, as_time

__all__ = [
    "PlanCache",
    "build_plan",
    "default_cache",
    "configure",
    "DEFAULT_CAPACITY",
]

#: In-memory LRU capacity (plans, not bytes); a full conformance smoke
#: grid holds well under this many distinct configurations.
DEFAULT_CAPACITY = 128

_ENV_MODE = "REPRO_PLAN_CACHE"
_ENV_DIR = "REPRO_PLAN_CACHE_DIR"
_MODES = ("off", "mem", "disk")

#: Bumped together with the on-disk column format so stale files from an
#: older layout can never be decoded into the wrong shape.
_KEY_VERSION = "repro-plan/1"

#: Disk-level robustness events (truncated / mismatched cache files
#: being discarded) are logged loudly here — a rebuild is correct but
#: should never be silent, or real corruption hides behind it.
logger = logging.getLogger("repro.plan.cache")


def _default_dir() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "plans"


class PlanCache:
    """Two-level (memory LRU, optional disk) cache of compiled plans.

    Args:
        mode: ``"off"``, ``"mem"``, or ``"disk"``; defaults to
            ``$REPRO_PLAN_CACHE`` or ``"mem"``.
        directory: disk cache root (``disk`` mode only); defaults to
            ``$REPRO_PLAN_CACHE_DIR`` or ``~/.cache/repro/plans``.
        capacity: LRU entry cap for the memory level.
    """

    def __init__(
        self,
        *,
        mode: "str | None" = None,
        directory: "Path | str | None" = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if mode is None:
            mode = os.environ.get(_ENV_MODE, "mem").strip().lower() or "mem"
        if mode not in _MODES:
            raise InvalidParameterError(
                f"plan cache mode must be one of {_MODES}, got {mode!r} "
                f"(check ${_ENV_MODE})"
            )
        if capacity < 1:
            raise InvalidParameterError(f"need capacity >= 1, got {capacity}")
        self.mode = mode
        self.directory = Path(directory) if directory else _default_dir()
        self.capacity = capacity
        self._mem: "OrderedDict[tuple, SchedulePlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ----------------------------------------------------------------- keys

    @staticmethod
    def key(family: str, n: int, m: int, lam: TimeLike) -> tuple:
        """The canonical cache key (family aliases collapse: ``PIPELINE``
        and its applicable variant share one entry, and a collective
        requested at ``m = 1`` shares its entry with the ``plan_m``
        message count the compiled plan actually carries)."""
        lam = as_time(lam)
        fam = canonical_family(family, n, m, lam)
        return (fam, n, plan_m(fam, n, m), lam)

    def path_for(self, key: tuple) -> Path:
        """Content-hashed disk location of *key* (exists or not)."""
        fam, n, m, lam = key
        text = (
            f"{_KEY_VERSION}|{fam}|{n}|{m}|"
            f"{lam.numerator}/{lam.denominator}|root=0"
        )
        digest = hashlib.sha256(text.encode()).hexdigest()
        return self.directory / f"{digest}.plan"

    # --------------------------------------------------------------- lookup

    def get(self, family: str, n: int, m: int, lam: TimeLike) -> "SchedulePlan | None":
        """The cached plan, or ``None`` (always ``None`` in ``off`` mode)."""
        if self.mode == "off":
            self.misses += 1
            return None
        key = self.key(family, n, m, lam)
        plan = self._mem.get(key)
        if plan is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return plan
        if self.mode == "disk":
            plan = self._read_disk(key)
            if plan is not None:
                self._remember(key, plan)
                self.hits += 1
                self.disk_hits += 1
                return plan
        self.misses += 1
        return None

    def put(self, plan: SchedulePlan) -> None:
        """Remember *plan* (no-op in ``off`` mode)."""
        if self.mode == "off":
            return
        key = self.key(plan.family, plan.n, plan.m, plan.lam)
        self._remember(key, plan)
        if self.mode == "disk":
            self._write_disk(key, plan)

    def _remember(self, key: tuple, plan: SchedulePlan) -> None:
        self._mem[key] = plan
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)

    # ----------------------------------------------------------------- disk

    def _read_disk(self, key: tuple) -> "SchedulePlan | None":
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            plan = SchedulePlan.from_bytes(data)
        except PlanCacheError as exc:
            # truncated/foreign file: rebuild, don't crash — but loudly,
            # so disk corruption never hides behind a silent recompile
            logger.warning(
                "discarding corrupt plan cache file %s (%s); "
                "the plan will be rebuilt", path, exc,
            )
            return None
        expect_fam, n, m, lam = key
        if (plan.family, plan.n, plan.m, plan.lam) != (expect_fam, n, m, lam):
            logger.warning(
                "discarding plan cache file %s: content is %s but the key "
                "demands %s (hash collision or tampered file); "
                "the plan will be rebuilt",
                path,
                (plan.family, plan.n, plan.m, str(plan.lam)),
                (expect_fam, n, m, str(lam)),
            )
            return None
        return plan

    def _write_disk(self, key: tuple, plan: SchedulePlan) -> None:
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(plan.to_bytes())
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # read-only FS / quota: the cache is best-effort

    # ----------------------------------------------------------- management

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory level (and the disk files when ``disk=True``)."""
        self._mem.clear()
        self.hits = self.misses = self.disk_hits = 0
        if disk and self.mode == "disk":
            try:
                for path in self.directory.glob("*.plan"):
                    path.unlink(missing_ok=True)
            except OSError:
                pass

    def stats(self) -> dict:
        """``{"mode", "entries", "hits", "misses", "disk_hits"}``."""
        return {
            "mode": self.mode,
            "entries": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
        }

    def __repr__(self) -> str:
        return (
            f"PlanCache(mode={self.mode!r}, entries={len(self._mem)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ------------------------------------------------------- process-wide cache

_DEFAULT: "PlanCache | None" = None


def default_cache() -> PlanCache:
    """The process-wide cache (created lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PlanCache()
    return _DEFAULT


def configure(
    *,
    mode: "str | None" = None,
    directory: "Path | str | None" = None,
    capacity: int = DEFAULT_CAPACITY,
) -> PlanCache:
    """Replace the process-wide cache (returns the new one)."""
    global _DEFAULT
    _DEFAULT = PlanCache(mode=mode, directory=directory, capacity=capacity)
    return _DEFAULT


def build_plan(
    family: str,
    n: int,
    m: int,
    lam: TimeLike,
    *,
    validate: bool = False,
    cache: "PlanCache | None" = None,
) -> SchedulePlan:
    """:func:`~repro.plan.build.compile_plan` through a cache.

    A hit returns the cached plan as-is (plans are immutable by
    convention — don't mutate the columns); a miss compiles, remembers,
    and returns.  With ``cache=None`` the process-wide
    :func:`default_cache` is used.
    """
    if cache is None:
        cache = default_cache()
    plan = cache.get(family, n, m, lam)
    if plan is None:
        plan = compile_plan(family, n, m, lam, validate=validate)
        cache.put(plan)
    return plan
