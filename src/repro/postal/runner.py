"""Run distributed protocols on a postal machine.

:func:`run_protocol` instantiates a fresh environment and
:class:`~repro.postal.machine.PostalSystem`, starts one process per
processor from the protocol's ``program``, runs to quiescence, and returns
a :class:`ProtocolResult` bundling the realized schedule (validated for
broadcast-semantics protocols under the strict policy), the completion
time, run metrics folded live from the trace stream
(:class:`~repro.obs.metrics.RunMetrics`), and the finished system for
trace/port inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.obs.metrics import MetricsCollector, RunMetrics
from repro.obs.profile import EngineProfile, EngineProfiler
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.validator import audit_ports, schedule_from_trace, validate_run
from repro.sim.engine import Environment
from repro.sim.trace import Tracer
from repro.types import Time, ZERO

__all__ = ["ProtocolResult", "run_protocol"]


@dataclass
class ProtocolResult:
    """Outcome of one protocol execution.

    Attributes:
        schedule: the realized schedule (``None`` for non-broadcast
            semantics or under the queued policy, where the broadcast
            schedule IR does not apply).
        completion_time: arrival of the last message.
        system: the (finished) postal system, for trace/port inspection.
        sends: total number of messages transmitted.
        metrics: exact run metrics folded from the trace stream
            (``None`` when collected with ``collect=False``).
        profile: engine profiling summary (``None`` unless requested
            with ``profile=True``).
    """

    schedule: Schedule | None
    completion_time: Time
    system: PostalSystem
    sends: int
    metrics: RunMetrics | None = None
    profile: EngineProfile | None = None


def run_protocol(
    protocol,
    *,
    policy: ContentionPolicy = ContentionPolicy.STRICT,
    validate: bool = True,
    collect: bool = True,
    profile: bool = False,
) -> ProtocolResult:
    """Execute *protocol* (a :class:`repro.algorithms.base.Protocol`) on a
    fresh ``MPS(n, lambda)`` and audit the run.

    The simulation runs until no events remain (all processor programs
    finished and all messages delivered).

    Args:
        protocol: the distributed program to execute.
        policy: receive-port contention policy.
        validate: audit the run against the postal model.
        collect: attach a live :class:`~repro.obs.metrics.
            MetricsCollector` and populate ``result.metrics``.
        profile: install an :class:`~repro.obs.profile.EngineProfiler`
            and populate ``result.profile``.
    """
    env = Environment()
    latency_fn = getattr(protocol, "latency_fn", None)
    tracer = Tracer()
    collector = MetricsCollector().attach(tracer) if collect else None
    profiler = EngineProfiler(env) if profile else None
    system = PostalSystem(
        env,
        protocol.n,
        protocol.lam,
        policy=policy,
        tracer=tracer,
        latency=latency_fn,
    )
    for proc in range(protocol.n):
        gen = protocol.program(proc, system)
        if gen is not None:
            env.process(gen)
    env.run()

    is_broadcast = (
        getattr(protocol, "semantics", "broadcast") == "broadcast"
        and latency_fn is None
    )
    strict = policy is ContentionPolicy.STRICT

    schedule: Schedule | None = None
    if is_broadcast and strict:
        if validate:
            schedule = validate_run(system, m=protocol.m, root=protocol.root)
        else:
            schedule = schedule_from_trace(
                system, m=protocol.m, root=protocol.root, validate=False
            )
        completion = schedule.completion_time()
        sends = len(schedule)
    else:
        if validate:
            audit_ports(system)
        deliveries = system.tracer.records("deliver")
        completion = max(
            (rec.data.arrived_at for rec in deliveries), default=ZERO
        )
        sends = len(system.tracer.records("send"))

    metrics: RunMetrics | None = None
    if collector is not None:
        metrics = collector.finalize(n=system.n, lam=system.lam)
        collector.detach()
    engine_profile: EngineProfile | None = None
    if profiler is not None:
        engine_profile = profiler.report()
        profiler.uninstall()
    return ProtocolResult(
        schedule=schedule,
        completion_time=completion,
        system=system,
        sends=sends,
        metrics=metrics,
        profile=engine_profile,
    )
