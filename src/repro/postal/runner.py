"""Run distributed protocols on a postal machine.

:func:`run_protocol` instantiates a fresh environment and
:class:`~repro.postal.machine.PostalSystem`, starts one process per
processor from the protocol's ``program``, runs to quiescence, and returns
a :class:`ProtocolResult` bundling the realized schedule (validated for
broadcast-semantics protocols under the strict policy), the completion
time, run metrics folded live from the trace stream
(:class:`~repro.obs.metrics.RunMetrics`), and the finished system for
trace/port inspection.

Two execution lanes share this entry point:

* ``backend="exact"`` (default) — the general discrete-event engine
  (:mod:`repro.sim.engine`): ``Fraction`` clock, generator processes,
  live tracing.
* ``backend="turbo"`` — the integer-tick fast lane
  (:mod:`repro.turbo.fastsim`): the run's rational times are losslessly
  rescaled to ``int`` ticks, deliveries are direct calendar-queue
  callbacks, and trace records are materialized only when validation or
  metrics ask.  Results are bit-identical to the exact lane for every
  registered protocol family (pinned by
  ``tests/test_turbo_equivalence.py``); a protocol whose delays leave
  the tick grid raises :class:`~repro.errors.TickDomainError` instead of
  degrading.
* ``backend="replay"`` — the vectorized plan tier
  (:mod:`repro.turbo.replay`): the protocol is *compiled* to a columnar
  :class:`~repro.plan.columns.SchedulePlan` (cached across runs by
  :func:`repro.plan.build_plan`) and executed as batched column passes —
  no event queue, no generators.  Machine-level results (schedule,
  completion, sends, ports, metrics) are byte-identical to the other
  lanes (pinned by ``tests/test_replay_equivalence.py``); only protocols
  with a registered plan compiler and uniform latency qualify, anything
  else raises :class:`~repro.errors.InvalidParameterError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.errors import InvalidParameterError
from repro.obs.metrics import MetricsCollector, RunMetrics
from repro.obs.profile import EngineProfile, EngineProfiler
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.validator import audit_ports, schedule_from_trace, validate_run
from repro.sim.engine import Environment
from repro.sim.trace import Tracer
from repro.types import Time, ZERO

__all__ = ["ProtocolResult", "run_protocol"]

#: Accepted values of ``run_protocol``'s *backend* argument.
BACKENDS = ("exact", "turbo", "replay")


def _protocol_from_family(
    family: str,
    n: "int | None",
    m: int,
    lam,
    *,
    policy: ContentionPolicy,
    backend: str,
):
    """Build a protocol from a family-name (or ``"auto"``) string."""
    # local imports: the tuner and the oracle registry both sit above
    # this module in the import graph
    from repro.conformance.oracles import get_oracle
    from repro.tune.model import resolve_family
    from repro.types import as_time

    if n is None:
        raise InvalidParameterError(
            f"running protocol {family!r} by name requires n"
        )
    lam_t = as_time(lam)
    resolved = resolve_family(
        family, n, m, lam_t,
        policy=policy.value,
        require_plan=(backend == "replay"),
    )
    oracle = get_oracle(resolved)
    oracle.check_applicable(n, m, lam_t)
    return oracle.protocol(n, m, lam_t)


@dataclass
class ProtocolResult:
    """Outcome of one protocol execution.

    Attributes:
        schedule: the realized schedule (``None`` for non-broadcast
            semantics or under the queued policy, where the broadcast
            schedule IR does not apply).
        completion_time: arrival of the last message.
        system: the (finished) postal system, for trace/port inspection.
        sends: total number of messages transmitted.
        metrics: exact run metrics folded from the trace stream
            (``None`` when collected with ``collect=False``).
        profile: engine profiling summary (``None`` unless requested
            with ``profile=True``).
    """

    schedule: Schedule | None
    completion_time: Time
    system: PostalSystem
    sends: int
    metrics: RunMetrics | None = None
    profile: EngineProfile | None = None


def run_protocol(
    protocol,
    *,
    policy: ContentionPolicy = ContentionPolicy.STRICT,
    validate: bool = True,
    collect: bool = True,
    profile: bool = False,
    backend: str = "exact",
    n: "int | None" = None,
    m: int = 1,
    lam=1,
) -> ProtocolResult:
    """Execute *protocol* (a :class:`repro.algorithms.base.Protocol`) on a
    fresh ``MPS(n, lambda)`` and audit the run.

    The simulation runs until no events remain (all processor programs
    finished and all messages delivered).

    Args:
        protocol: the distributed program to execute — either a
            :class:`~repro.algorithms.base.Protocol` instance, or a
            family-name string (``"BCAST"``, ``"auto"``,
            ``"auto:allgather"``, ...) resolved through the oracle
            registry and, for auto specs, the :mod:`repro.tune`
            selector.  String protocols require *n* (and take *m* /
            *lam* from the keyword arguments).
        policy: receive-port contention policy.
        validate: audit the run against the postal model.
        collect: attach a live :class:`~repro.obs.metrics.
            MetricsCollector` and populate ``result.metrics``.
        profile: install an :class:`~repro.obs.profile.EngineProfiler`
            and populate ``result.profile`` (exact backend only).
        backend: ``"exact"`` for the general engine, ``"turbo"`` for the
            integer-tick fast lane (identical results, see
            :mod:`repro.turbo`), ``"replay"`` for the vectorized plan
            tier (plan-compilable protocols only).
        n: machine size (string protocols only).
        m: message count (string protocols only).
        lam: latency (string protocols only).
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if isinstance(protocol, str):
        protocol = _protocol_from_family(
            protocol, n, m, lam, policy=policy, backend=backend
        )
    if backend == "replay":
        return _run_protocol_replay(
            protocol,
            policy=policy,
            validate=validate,
            collect=collect,
            profile=profile,
        )
    if backend == "turbo":
        return _run_protocol_turbo(
            protocol,
            policy=policy,
            validate=validate,
            collect=collect,
            profile=profile,
        )
    env = Environment()
    latency_fn = getattr(protocol, "latency_fn", None)
    tracer = Tracer()
    collector = MetricsCollector().attach(tracer) if collect else None
    profiler = EngineProfiler(env) if profile else None
    system = PostalSystem(
        env,
        protocol.n,
        protocol.lam,
        policy=policy,
        tracer=tracer,
        latency=latency_fn,
    )
    for proc in range(protocol.n):
        gen = protocol.program(proc, system)
        if gen is not None:
            env.process(gen)
    env.run()

    is_broadcast = (
        getattr(protocol, "semantics", "broadcast") == "broadcast"
        and latency_fn is None
    )
    strict = policy is ContentionPolicy.STRICT

    schedule: Schedule | None = None
    if is_broadcast and strict:
        if validate:
            schedule = validate_run(system, m=protocol.m, root=protocol.root)
        else:
            schedule = schedule_from_trace(
                system, m=protocol.m, root=protocol.root, validate=False
            )
        completion = schedule.completion_time()
        sends = len(schedule)
    else:
        if validate:
            audit_ports(system)
        deliveries = system.tracer.records("deliver")
        completion = max(
            (rec.data.arrived_at for rec in deliveries), default=ZERO
        )
        sends = len(system.tracer.records("send"))

    metrics: RunMetrics | None = None
    if collector is not None:
        metrics = collector.finalize(n=system.n, lam=system.lam)
        collector.detach()
    engine_profile: EngineProfile | None = None
    if profiler is not None:
        engine_profile = profiler.report()
        profiler.uninstall()
    return ProtocolResult(
        schedule=schedule,
        completion_time=completion,
        system=system,
        sends=sends,
        metrics=metrics,
        profile=engine_profile,
    )


def _run_protocol_turbo(
    protocol,
    *,
    policy: ContentionPolicy,
    validate: bool,
    collect: bool,
    profile: bool,
) -> ProtocolResult:
    """The ``backend="turbo"`` lane of :func:`run_protocol`.

    Identical control flow, different substrate: the protocol's programs
    drive a :class:`~repro.turbo.fastsim.TurboSystem` whose clock is
    integer ticks.  The audit path is byte-for-byte the same code
    (``validate_run`` / ``audit_ports`` duck-type the turbo system), fed
    from trace records materialized on demand by ``flush_trace`` — so a
    ``validate=False, collect=False`` run never builds a single
    :class:`~repro.sim.trace.TraceRecord`.
    """
    from repro.turbo.fastsim import build_turbo

    if profile:
        raise InvalidParameterError(
            "engine profiling requires backend='exact' (the turbo loop has "
            "no per-event step hook to instrument)"
        )
    latency_fn = getattr(protocol, "latency_fn", None)
    system = build_turbo(
        protocol.n, protocol.lam, policy=policy, latency=latency_fn
    )
    for proc in range(protocol.n):
        gen = protocol.program(proc, system)
        if gen is not None:
            system.env.process(gen)
    system.env.run()

    is_broadcast = (
        getattr(protocol, "semantics", "broadcast") == "broadcast"
        and latency_fn is None
    )
    strict = policy is ContentionPolicy.STRICT

    schedule: Schedule | None = None
    if is_broadcast and strict:
        if validate:
            system.flush_trace()
            schedule = validate_run(system, m=protocol.m, root=protocol.root)
        else:
            schedule = system.realized_schedule(
                m=protocol.m, root=protocol.root, validate=False
            )
        completion = schedule.completion_time()
        sends = len(schedule)
    else:
        if validate:
            system.flush_trace()
            audit_ports(system)
        completion = system.completion_time
        sends = system.send_count

    metrics: RunMetrics | None = None
    if collect:
        collector = MetricsCollector()
        for rec in system.flush_trace():
            collector.on_record(rec)
        metrics = collector.finalize(n=system.n, lam=system.lam)
    return ProtocolResult(
        schedule=schedule,
        completion_time=completion,
        system=system,
        sends=sends,
        metrics=metrics,
        profile=None,
    )


def _replay_family(protocol) -> str:
    """Map *protocol* to its compiled plan family name.

    Every registered family's protocol ``name`` matches its plan family,
    except the two parameterized ones: DTREE carries its resolved degree
    (``DTREE-<d>``) and PIPELINE resolves to the Lemma 14/16 variant
    inside :func:`~repro.plan.build.canonical_family`.
    """
    name = getattr(protocol, "name", None)
    if name is None:
        raise InvalidParameterError(
            f"{type(protocol).__name__} has no family name; the replay "
            "backend executes compiled plans only — use backend='turbo'"
        )
    if name == "DTREE":
        return f"DTREE-{protocol.d}"
    return name


def _run_protocol_replay(
    protocol,
    *,
    policy: ContentionPolicy,
    validate: bool,
    collect: bool,
    profile: bool,
) -> ProtocolResult:
    """The ``backend="replay"`` lane of :func:`run_protocol`.

    The protocol is not *stepped* at all: its family/parameters select a
    compiled (and cached) :class:`~repro.plan.columns.SchedulePlan`,
    which :func:`~repro.turbo.replay.replay_plan` executes as batched
    column passes.  The audit path is the same duck-typed
    ``validate_run`` / ``audit_ports`` code the other lanes use.
    """
    from repro.plan import build_plan, canonical_family, plan_m
    from repro.turbo.replay import replay_plan

    if profile:
        raise InvalidParameterError(
            "engine profiling requires backend='exact' (a vectorized "
            "replay has no per-event step to instrument)"
        )
    if getattr(protocol, "latency_fn", None) is not None:
        raise InvalidParameterError(
            "the replay backend compiles uniform-latency plans only; "
            "pair-dependent latencies need backend='exact' or 'turbo'"
        )
    family = canonical_family(
        _replay_family(protocol), protocol.n, protocol.m, protocol.lam
    )
    system = replay_plan(
        build_plan(
            family,
            protocol.n,
            plan_m(family, protocol.n, protocol.m),
            protocol.lam,
        ),
        policy=policy,
    )
    if system.queued_contention:
        # the static plan queued at a receive port; the live protocol
        # would adapt its own send times instead (e.g. the gossip ring),
        # so a replay can no longer claim protocol equivalence
        raise InvalidParameterError(
            f"the compiled {family} plan is contention-adaptive under the "
            "queued policy (its static send times queue at receive ports, "
            "where the protocol would reschedule); use backend='turbo'"
        )

    is_broadcast = getattr(protocol, "semantics", "broadcast") == "broadcast"
    strict = policy is ContentionPolicy.STRICT

    schedule: Schedule | None = None
    if is_broadcast and strict:
        if validate:
            system.flush_trace()
            schedule = validate_run(system, m=protocol.m, root=protocol.root)
        else:
            schedule = system.realized_schedule(
                m=protocol.m, root=protocol.root, validate=False
            )
        completion = schedule.completion_time()
        sends = len(schedule)
    else:
        if validate:
            system.flush_trace()
            audit_ports(system)
        completion = system.completion_time
        sends = system.send_count

    metrics: RunMetrics | None = None
    if collect:
        collector = MetricsCollector()
        for rec in system.flush_trace():
            collector.on_record(rec)
        metrics = collector.finalize(n=system.n, lam=system.lam)
    return ProtocolResult(
        schedule=schedule,
        completion_time=completion,
        system=system,
        sends=sends,
        metrics=metrics,
        profile=None,
    )
