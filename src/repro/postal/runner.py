"""Run distributed protocols on a postal machine.

:func:`run_protocol` instantiates a fresh environment and
:class:`~repro.postal.machine.PostalSystem`, starts one process per
processor from the protocol's ``program``, runs to quiescence, and returns
a :class:`ProtocolResult` bundling the realized schedule (validated for
broadcast-semantics protocols under the strict policy), the completion
time, and the finished system for trace/port inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.validator import audit_ports, schedule_from_trace, validate_run
from repro.sim.engine import Environment
from repro.sim.trace import Tracer
from repro.types import Time, ZERO

__all__ = ["ProtocolResult", "run_protocol"]


@dataclass
class ProtocolResult:
    """Outcome of one protocol execution.

    Attributes:
        schedule: the realized schedule (``None`` for non-broadcast
            semantics or under the queued policy, where the broadcast
            schedule IR does not apply).
        completion_time: arrival of the last message.
        system: the (finished) postal system, for trace/port inspection.
        sends: total number of messages transmitted.
    """

    schedule: Schedule | None
    completion_time: Time
    system: PostalSystem
    sends: int


def run_protocol(
    protocol,
    *,
    policy: ContentionPolicy = ContentionPolicy.STRICT,
    validate: bool = True,
) -> ProtocolResult:
    """Execute *protocol* (a :class:`repro.algorithms.base.Protocol`) on a
    fresh ``MPS(n, lambda)`` and audit the run.

    The simulation runs until no events remain (all processor programs
    finished and all messages delivered).
    """
    env = Environment()
    latency_fn = getattr(protocol, "latency_fn", None)
    system = PostalSystem(
        env,
        protocol.n,
        protocol.lam,
        policy=policy,
        tracer=Tracer(),
        latency=latency_fn,
    )
    for proc in range(protocol.n):
        gen = protocol.program(proc, system)
        if gen is not None:
            env.process(gen)
    env.run()

    is_broadcast = (
        getattr(protocol, "semantics", "broadcast") == "broadcast"
        and latency_fn is None
    )
    strict = policy is ContentionPolicy.STRICT

    schedule: Schedule | None = None
    if is_broadcast and strict:
        if validate:
            schedule = validate_run(system, m=protocol.m, root=protocol.root)
        else:
            schedule = schedule_from_trace(
                system, m=protocol.m, root=protocol.root, validate=False
            )
        completion = schedule.completion_time()
        sends = len(schedule)
    else:
        if validate:
            audit_ports(system)
        deliveries = system.tracer.records("deliver")
        completion = max(
            (rec.data.arrived_at for rec in deliveries), default=ZERO
        )
        sends = len(system.tracer.records("send"))
    return ProtocolResult(
        schedule=schedule,
        completion_time=completion,
        system=system,
        sends=sends,
    )
