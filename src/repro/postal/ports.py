"""Unit-rate processor ports with busy-interval accounting.

Each postal processor owns one :class:`SendPort` and one :class:`RecvPort`
(Definition 1's *simultaneous I/O*: one send plus one receive may be in
flight at a time, but never two sends or two receives).  Ports serialize
through a capacity-1 :class:`~repro.sim.resources.Resource` and log their
busy intervals so the validator can audit a finished run.

The :class:`RecvPort` supports two contention policies:

* **strict** — a delivery whose receive window overlaps an ongoing receive
  raises :class:`~repro.errors.SimultaneousIOError`.  This is the paper's
  model: correct algorithms never collide, so a collision is a bug in the
  algorithm (or an intentionally invalid schedule in the tests).
* **queued** — collisions serialize: the second receive starts when the
  port frees up, so its message arrives later than ``sent_at + lambda``.
  This models a real NIC with an input queue and powers the contention
  ablation bench.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import SimultaneousIOError
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.types import ONE, ProcId, Time, time_repr

__all__ = ["SendPort", "RecvPort"]


class _Port:
    """Common busy-interval bookkeeping."""

    def __init__(self, env: Environment, proc: ProcId, label: str):
        self.env = env
        self.proc = proc
        self.label = label
        self._res = Resource(env, capacity=1)
        self._busy_log: list[tuple[Time, Time]] = []

    @property
    def busy_intervals(self) -> list[tuple[Time, Time]]:
        """All completed busy intervals ``[start, end)`` in time order."""
        return list(self._busy_log)

    @property
    def idle(self) -> bool:
        return self._res.count == 0

    def _occupy(self) -> Generator[Event, None, None]:
        """Hold the port for exactly one time unit (blocking if taken)."""
        req = self._res.request()
        yield req
        start = self.env.now
        yield self.env.timeout(ONE)
        self._res.release(req)
        self._busy_log.append((start, self.env.now))


class SendPort(_Port):
    """The outgoing port: one unit of sending at a time, FIFO."""

    def __init__(self, env: Environment, proc: ProcId):
        super().__init__(env, proc, "send")

    def transmit(self, on_start=None) -> Generator[Event, None, Time]:
        """Occupy the port for the one-unit send.  Returns the time the
        send *started*.

        *on_start*, if given, is called with the start time the moment the
        port is granted — the machine uses it to launch the network
        delivery concurrently with the send (essential for ``lambda < 2``,
        where the receive window opens before the send unit ends).
        """
        req = self._res.request()
        yield req
        start = self.env.now
        if on_start is not None:
            on_start(start)
        yield self.env.timeout(ONE)
        self._res.release(req)
        self._busy_log.append((start, self.env.now))
        return start


class RecvPort(_Port):
    """The incoming port: one unit of receiving at a time."""

    def __init__(self, env: Environment, proc: ProcId, *, strict: bool):
        super().__init__(env, proc, "recv")
        self._strict = strict

    def receive(self) -> Generator[Event, None, Time]:
        """Occupy the port for the one-unit receive, starting now (strict)
        or as soon as the port frees (queued).  Returns the completion
        time.

        Strict mode flags any delivery that cannot start at its nominal
        time: the port request must be granted at the very instant it is
        made (same-instant handoff from a receive ending exactly now is
        legal — busy intervals are half-open)."""
        t_nominal = self.env.now
        req = self._res.request()
        yield req
        if self._strict and self.env.now > t_nominal:
            self._res.release(req)
            raise SimultaneousIOError(
                f"p{self.proc}: a message delivery due at t="
                f"{time_repr(t_nominal)} could not start receiving until "
                f"t={time_repr(self.env.now)} (simultaneous-I/O violation)"
            )
        start = self.env.now
        yield self.env.timeout(ONE)
        self._res.release(req)
        self._busy_log.append((start, self.env.now))
        return self.env.now
