"""``MPS(n, lambda)``: the postal machine (Definitions 1 and 2).

A :class:`PostalSystem` gives each of its ``n`` processors

* a unit-rate :class:`~repro.postal.ports.SendPort`,
* a unit-rate :class:`~repro.postal.ports.RecvPort`, and
* an unbounded inbox (:class:`~repro.sim.resources.Store`),

and connects every pair with a latency-``lambda`` channel:  a send started
at ``t`` occupies the sender during ``[t, t+1)``, the network carries the
message silently, and the receiver's port is occupied during
``[t + lambda - 1, t + lambda)``, after which the message lands in the
inbox.  Every send and delivery is traced, so a finished run yields the
exact realized :class:`~repro.core.schedule.Schedule`.

This is the substrate on which the *event-driven* algorithm implementations
(:mod:`repro.algorithms`) run; the static schedule builders in
:mod:`repro.core` never touch it, which is what makes comparing the two
paths a meaningful integration test.
"""

from __future__ import annotations

from enum import Enum
from functools import partial
from typing import Any, Callable, Generator

from repro.errors import InvalidParameterError
from repro.postal.message import Message
from repro.postal.ports import RecvPort, SendPort
from repro.sim.engine import Environment, Event, Process
from repro.sim.resources import Store
from repro.sim.trace import Tracer
from repro.types import ONE, ProcId, Time, TimeLike, as_time

__all__ = ["ContentionPolicy", "PostalSystem"]


class ContentionPolicy(Enum):
    """What happens when two deliveries overlap at one receive port."""

    STRICT = "strict"  #: raise SimultaneousIOError — the paper's model
    QUEUED = "queued"  #: serialize receives — the NIC-with-a-queue extension


class PostalSystem:
    """A fully connected message-passing system with latency ``lambda``.

    Args:
        env: the simulation environment.
        n: number of processors ``p_0 .. p_{n-1}``.
        lam: communication latency ``lambda >= 1``.
        policy: receive-port contention policy.
        tracer: optional tracer; one is created if omitted.
        latency: optional pair-dependent latency ``(src, dst) -> lambda``
            overriding the uniform *lam* (the Section-5 "hierarchies of
            latency parameters" relaxation).  Every returned value must be
            ``>= 1``; *lam* remains the nominal/advertised latency.
    """

    def __init__(
        self,
        env: Environment,
        n: int,
        lam: TimeLike,
        *,
        policy: ContentionPolicy = ContentionPolicy.STRICT,
        tracer: Tracer | None = None,
        latency: "Callable[[ProcId, ProcId], TimeLike] | None" = None,
    ):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 processors, got {n}")
        lam = as_time(lam)
        if lam < 1:
            raise InvalidParameterError(f"the postal model requires lambda >= 1, got {lam}")
        self.env = env
        self._n = n
        self._lam = lam
        self._latency_fn = latency
        self._policy = policy
        self.tracer = tracer if tracer is not None else Tracer()
        strict = policy is ContentionPolicy.STRICT
        self._send_ports = [SendPort(env, p) for p in range(n)]
        self._recv_ports = [RecvPort(env, p, strict=strict) for p in range(n)]
        self._inboxes = [Store(env) for _ in range(n)]

    # ------------------------------------------------------------ metadata

    @property
    def n(self) -> int:
        """Number of processors."""
        return self._n

    @property
    def lam(self) -> Time:
        """Communication latency ``lambda``."""
        return self._lam

    @property
    def policy(self) -> ContentionPolicy:
        return self._policy

    @property
    def uniform_latency(self) -> bool:
        """True when every pair uses the nominal ``lambda`` (the paper's
        model); False under a pair-dependent latency function."""
        return self._latency_fn is None

    def latency(self, src: ProcId, dst: ProcId) -> Time:
        """The latency a send from *src* to *dst* experiences."""
        if self._latency_fn is None:
            return self._lam
        lam = as_time(self._latency_fn(src, dst))
        if lam < 1:
            raise InvalidParameterError(
                f"latency({src}, {dst}) = {lam} violates lambda >= 1"
            )
        return lam

    def send_port(self, proc: ProcId) -> SendPort:
        return self._send_ports[proc]

    def recv_port(self, proc: ProcId) -> RecvPort:
        return self._recv_ports[proc]

    # ---------------------------------------------------------- primitives

    def send(
        self, src: ProcId, dst: ProcId, msg: int, payload: Any = None
    ) -> Process:
        """Start sending message *msg* from *src* to *dst*.

        Returns a process that completes when the **sender** finishes its
        one-unit send (so ``yield system.send(...)`` paces a sending loop
        at one message per time unit, exactly as the paper's algorithms
        require).  Delivery continues in the background and deposits a
        :class:`~repro.postal.message.Message` in *dst*'s inbox at
        ``send_start + lambda`` (later under the queued policy).
        """
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            raise InvalidParameterError(f"p{src} cannot send to itself")
        return self.env.process(self._send_proc(src, dst, msg, payload))

    def _send_proc(
        self, src: ProcId, dst: ProcId, msg: int, payload: Any
    ) -> Generator[Event, Any, Time]:
        def launch_delivery(start: Time) -> None:
            # runs the instant the send port is granted, so the network leg
            # overlaps the sender's busy unit (needed when lambda < 2)
            self.tracer.emit(start, "send", {"src": src, "dst": dst, "msg": msg})
            self.env.process(self._deliver_proc(start, src, dst, msg, payload))

        start = yield from self._send_ports[src].transmit(launch_delivery)
        return start

    def _deliver_proc(
        self, start: Time, src: ProcId, dst: ProcId, msg: int, payload: Any
    ) -> Generator[Event, Any, None]:
        # the receive window opens lambda - 1 after the send started
        gap = (start + self.latency(src, dst) - ONE) - self.env.now
        if gap > 0:
            yield self.env.timeout(gap)
        arrived = yield from self._recv_ports[dst].receive()
        record = Message(msg, src, dst, start, arrived, payload)
        self.tracer.emit(arrived, "deliver", record)
        yield self._inboxes[dst].put(record)

    def recv(self, dst: ProcId) -> Event:
        """An event yielding the next :class:`Message` from *dst*'s inbox
        (fires the instant the receive completes if one is in flight).

        When the event fires a ``"consume"`` trace record is emitted with
        the inbox sojourn time (``now - arrived_at``) — the raw material
        for the queue-depth metrics in :mod:`repro.obs`.  A cancelled
        recv (:meth:`cancel_recv`) never fires and emits nothing.
        """
        self._check_proc(dst)
        ev = self._inboxes[dst].get()
        assert ev.callbacks is not None  # freshly created, never processed
        # bound method + partial instead of a fresh closure per recv
        ev.callbacks.append(partial(self._trace_consume, dst))
        return ev

    def _trace_consume(self, dst: ProcId, event: Event) -> None:
        if not self.tracer.active:
            return  # skip building the payload dict when nobody listens
        msg = event.value
        self.tracer.emit(
            self.env.now,
            "consume",
            {
                "proc": dst,
                "msg": msg.msg,
                "src": msg.src,
                "waited": self.env.now - msg.arrived_at,
            },
        )

    def cancel_recv(self, dst: ProcId, event: Event) -> None:
        """Withdraw a pending :meth:`recv` (e.g. after racing it against a
        timeout) so it does not swallow a later message."""
        self._check_proc(dst)
        self._inboxes[dst].cancel_get(event)

    def inbox_size(self, proc: ProcId) -> int:
        self._check_proc(proc)
        return len(self._inboxes[proc])

    # ------------------------------------------------------------ internal

    def _check_proc(self, proc: ProcId) -> None:
        if not 0 <= proc < self._n:
            raise InvalidParameterError(
                f"processor p{proc} outside 0..{self._n - 1}"
            )
