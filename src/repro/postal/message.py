"""The atomic message of the postal model.

A message is one unit of size: it takes the sender one unit of time to send
and the receiver one unit of time to receive, and it cannot be split
(Section 2 of the paper).  Larger data travels as several messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import ProcId, Time, time_repr

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One delivered atomic message.

    Attributes:
        msg: message index (``0``-based; the paper's ``M_{msg+1}``).
        src: sending processor.
        dst: receiving processor.
        sent_at: when the sender started sending (sender busy
            ``[sent_at, sent_at + 1)``).
        arrived_at: when the receiver finished receiving.  Equals
            ``sent_at + lambda`` under the strict policy; may be later under
            the queued contention policy.
        payload: algorithm-specific data riding along (e.g. the recipient's
            broadcast subrange in Algorithm BCAST).
    """

    msg: int
    src: ProcId
    dst: ProcId
    sent_at: Time
    arrived_at: Time
    payload: Any = None

    def __str__(self) -> str:
        return (
            f"M{self.msg + 1} p{self.src}->p{self.dst} "
            f"sent t={time_repr(self.sent_at)}, "
            f"arrived t={time_repr(self.arrived_at)}"
        )
