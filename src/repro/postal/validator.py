"""Audit a finished postal-machine run against the postal model.

The machine traces every send start and every delivery.  The validator
rebuilds the run as a :class:`~repro.core.schedule.Schedule` (which brings
the full static validation of Definitions 1-2 along) and additionally
audits the *ports' own busy logs* — a second, independent record of what
the simulation actually did.

Three audit depths are available:

* :func:`audit_ports` — pure port-log audit (both policies, any latency
  function): busy intervals are unit-length and pairwise disjoint.
* :func:`audit_deliveries` — delivery-record audit (both policies): every
  arrival respects ``sent_at + latency``; the delivery windows are exactly
  the receive port's busy log; under the queued policy, realized arrival
  times are the *work-conserving FIFO* completion of their due times (a
  late delivery must be explained by port contention, never by idling).
* :func:`validate_run` — the full audit.  Under the strict uniform policy
  it also rebuilds and validates the broadcast :class:`Schedule`; under
  the queued policy it instead checks broadcast *coverage* and sender
  possession directly from the delivery records
  (:func:`audit_broadcast_coverage`) and returns ``None``.
"""

from __future__ import annotations

from repro.core.schedule import Schedule, SendEvent
from repro.errors import ModelError, ScheduleError, SimultaneousIOError
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.message import Message
from repro.types import ONE, ProcId, Time, ZERO, time_repr

__all__ = [
    "schedule_from_trace",
    "audit_ports",
    "audit_deliveries",
    "audit_broadcast_coverage",
    "validate_run",
]


def schedule_from_trace(
    system: PostalSystem, *, m: int, root: int = 0, validate: bool = True
) -> Schedule:
    """Reconstruct the realized schedule from a system's trace.

    Only meaningful under the strict policy (under the queued policy
    arrivals may exceed ``sent_at + lambda`` and the reconstruction would
    misstate them); raises :class:`~repro.errors.ModelError` otherwise.
    """
    if system.policy is not ContentionPolicy.STRICT:
        raise ModelError(
            "schedule reconstruction requires the strict contention policy"
        )
    if not system.uniform_latency:
        raise ModelError(
            "schedule reconstruction requires uniform latency; pair-"
            "dependent runs are audited via audit_ports + delivery records"
        )
    events = [
        SendEvent(rec.time, rec.data["src"], rec.data["msg"], rec.data["dst"])
        for rec in system.tracer.records("send")
    ]
    return Schedule(system.n, system.lam, events, m=m, root=root, validate=validate)


def audit_ports(system: PostalSystem) -> None:
    """Check every port's busy log: intervals pairwise disjoint (half-open)
    and each exactly one unit long.

    Both checks run in a single pass over the port's *sorted* log: since
    every interval is one unit long, two intervals overlap iff their
    sorted starts are less than one unit apart, so the disjointness
    audit is an adjacent-gap sweep rather than a pairwise comparison —
    ``O(I log I)`` per port.

    Raises:
        SimultaneousIOError: overlapping busy intervals on one port.
        ModelError: an interval of the wrong length.
    """
    for kind, ports in (
        ("send", [system.send_port(p) for p in range(system.n)]),
        ("recv", [system.recv_port(p) for p in range(system.n)]),
    ):
        for port in ports:
            prev: tuple[Time, Time] | None = None
            for s, e in sorted(port.busy_intervals):
                if e - s != 1:
                    raise ModelError(
                        f"p{port.proc} {kind} busy interval "
                        f"[{time_repr(s)},{time_repr(e)}) is not one unit"
                    )
                if prev is not None and s < prev[1]:
                    raise SimultaneousIOError(
                        f"p{port.proc} {kind} port driven twice at once: "
                        f"[{time_repr(prev[0])},{time_repr(prev[1])}) and "
                        f"[{time_repr(s)},{time_repr(e)})"
                    )
                prev = (s, e)


def _deliveries_by_receiver(system: PostalSystem) -> dict[ProcId, list[Message]]:
    by_dst: dict[ProcId, list[Message]] = {}
    for rec in system.tracer.records("deliver"):
        by_dst.setdefault(rec.data.dst, []).append(rec.data)
    return by_dst


def audit_deliveries(system: PostalSystem) -> None:
    """Audit the delivery records against the model arithmetic *and* the
    receive-port busy logs — valid under **both** contention policies.

    Checks, per receiver:

    1. every delivery arrives no earlier than ``sent_at + latency`` (its
       *due* time); under the strict policy, *exactly* at its due time;
    2. the delivery windows ``[arrived-1, arrived)`` are exactly the
       receive port's busy log (no phantom receives, no unlogged ones);
    3. under the queued policy, the multiset of realized arrival times is
       the work-conserving FIFO completion of the due times: a receive
       starts at ``due - 1`` or the instant the port frees, whichever is
       later.  A delivery that is late without a port conflict to blame
       (the port idled while a message waited) violates the
       NIC-queue semantics and is flagged.

    Raises:
        ScheduleError: an arrival before (or, strict, different from) its
            due time.
        ModelError: delivery records disagree with the port logs, or
            queued arrivals are not work-conserving.
    """
    strict = system.policy is ContentionPolicy.STRICT
    for dst, msgs in _deliveries_by_receiver(system).items():
        dues: list[Time] = []
        for msg in msgs:
            due = msg.sent_at + system.latency(msg.src, msg.dst)
            if msg.arrived_at < due:
                raise ScheduleError(
                    f"{msg}: arrives before sent_at + lambda = "
                    f"{time_repr(due)}"
                )
            if strict and msg.arrived_at != due:
                raise ScheduleError(
                    f"{msg}: arrival differs from sent_at + lambda = "
                    f"{time_repr(due)}"
                )
            dues.append(due)

        windows = sorted((m.arrived_at - ONE, m.arrived_at) for m in msgs)
        busy = sorted(system.recv_port(dst).busy_intervals)
        if windows != busy:
            raise ModelError(
                f"p{dst}: delivery records ({len(windows)} receive "
                f"windows) do not match the recv-port busy log "
                f"({len(busy)} intervals)"
            )

        if not strict:
            # work-conserving FIFO replay over the sorted due times
            clock: Time | None = None
            finishes: list[Time] = []
            for due in sorted(dues):
                start = due - ONE
                if clock is not None and clock > start:
                    start = clock
                clock = start + ONE
                finishes.append(clock)
            realized = sorted(m.arrived_at for m in msgs)
            if finishes != realized:
                raise ModelError(
                    f"p{dst}: queued arrival times are not the "
                    f"work-conserving FIFO completion of their due times "
                    f"(expected {[time_repr(t) for t in finishes]}, "
                    f"got {[time_repr(t) for t in realized]})"
                )


def audit_broadcast_coverage(
    system: PostalSystem, *, m: int, root: int = 0
) -> None:
    """Check broadcast *semantics* directly from the delivery records —
    the queued-policy replacement for rebuilding a :class:`Schedule`:

    * every processor except the root receives every message ``0..m-1``
      exactly once (and the root receives nothing);
    * every sender *holds* each message when it starts sending it (it is
      the root, or its own delivery of that message completed first).

    Raises:
        ScheduleError: missing, duplicate, or premature transmissions.
    """
    held_from: dict[tuple[ProcId, int], Time] = {
        (root, k): ZERO for k in range(m)
    }
    for rec in system.tracer.records("deliver"):
        msg = rec.data
        key = (msg.dst, msg.msg)
        if not 0 <= msg.msg < m:
            raise ScheduleError(f"{msg}: message index outside 0..{m - 1}")
        if msg.dst == root:
            raise ScheduleError(f"{msg}: the root must not receive")
        if key in held_from:
            raise ScheduleError(
                f"p{msg.dst} receives M{msg.msg + 1} more than once"
            )
        held_from[key] = msg.arrived_at
    missing = [
        (p, k)
        for p in range(system.n)
        for k in range(m)
        if (p, k) not in held_from
    ]
    if missing:
        p, k = missing[0]
        raise ScheduleError(
            f"incomplete broadcast: p{p} never receives M{k + 1} "
            f"({len(missing)} deliveries missing)"
        )
    for rec in system.tracer.records("send"):
        src, msg_id = rec.data["src"], rec.data["msg"]
        held = held_from.get((src, msg_id))
        if held is None:
            raise ScheduleError(
                f"p{src} sends M{msg_id + 1} without ever obtaining it"
            )
        if rec.time < held:
            raise ScheduleError(
                f"p{src} sends M{msg_id + 1} at t={time_repr(rec.time)} but "
                f"only holds it from t={time_repr(held)}"
            )


def validate_run(
    system: PostalSystem, *, m: int, root: int = 0
) -> Schedule | None:
    """Full audit of a finished run, under either contention policy.

    * **strict, uniform latency** — rebuild + validate the realized
      broadcast :class:`Schedule`, audit the port logs, and cross-check
      every delivery record; returns the validated schedule.
    * **queued (or pair-dependent latency)** — audit the port logs, the
      delivery records (work-conserving FIFO lateness accounting), and
      broadcast coverage/possession; returns ``None`` (no schedule IR
      applies when arrivals may exceed ``sent_at + lambda``).
    """
    if system.policy is ContentionPolicy.STRICT and system.uniform_latency:
        sched = schedule_from_trace(system, m=m, root=root, validate=True)
        audit_ports(system)
        audit_deliveries(system)
        return sched
    audit_ports(system)
    audit_deliveries(system)
    audit_broadcast_coverage(system, m=m, root=root)
    return None
