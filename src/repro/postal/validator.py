"""Audit a finished postal-machine run against the postal model.

The machine traces every send start and every delivery.  The validator
rebuilds the run as a :class:`~repro.core.schedule.Schedule` (which brings
the full static validation of Definitions 1-2 along) and additionally
audits the *ports' own busy logs* — a second, independent record of what
the simulation actually did.
"""

from __future__ import annotations

from repro.core.schedule import Schedule, SendEvent, check_intervals_disjoint
from repro.errors import ModelError, ScheduleError, SimultaneousIOError
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.types import time_repr

__all__ = ["schedule_from_trace", "audit_ports", "validate_run"]


def schedule_from_trace(
    system: PostalSystem, *, m: int, root: int = 0, validate: bool = True
) -> Schedule:
    """Reconstruct the realized schedule from a system's trace.

    Only meaningful under the strict policy (under the queued policy
    arrivals may exceed ``sent_at + lambda`` and the reconstruction would
    misstate them); raises :class:`~repro.errors.ModelError` otherwise.
    """
    if system.policy is not ContentionPolicy.STRICT:
        raise ModelError(
            "schedule reconstruction requires the strict contention policy"
        )
    if not system.uniform_latency:
        raise ModelError(
            "schedule reconstruction requires uniform latency; pair-"
            "dependent runs are audited via audit_ports + delivery records"
        )
    events = [
        SendEvent(rec.time, rec.data["src"], rec.data["msg"], rec.data["dst"])
        for rec in system.tracer.records("send")
    ]
    return Schedule(system.n, system.lam, events, m=m, root=root, validate=validate)


def audit_ports(system: PostalSystem) -> None:
    """Check every port's busy log: intervals pairwise disjoint (half-open)
    and each exactly one unit long.

    Raises:
        SimultaneousIOError: overlapping busy intervals on one port.
        ModelError: an interval of the wrong length.
    """
    for kind, ports in (
        ("send", [system.send_port(p) for p in range(system.n)]),
        ("recv", [system.recv_port(p) for p in range(system.n)]),
    ):
        for port in ports:
            intervals = port.busy_intervals
            for s, e in intervals:
                if e - s != 1:
                    raise ModelError(
                        f"p{port.proc} {kind} busy interval "
                        f"[{time_repr(s)},{time_repr(e)}) is not one unit"
                    )
            clash = check_intervals_disjoint(intervals)
            if clash is not None:
                raise SimultaneousIOError(
                    f"p{port.proc} {kind} port driven twice at once: "
                    f"[{time_repr(clash[0])},{time_repr(clash[1])}) and "
                    f"[{time_repr(clash[2])},{time_repr(clash[3])})"
                )


def validate_run(system: PostalSystem, *, m: int, root: int = 0) -> Schedule:
    """Full audit: rebuild + validate the schedule and audit the port logs.
    Returns the validated schedule."""
    sched = schedule_from_trace(system, m=m, root=root, validate=True)
    audit_ports(system)
    # cross-check the trace's delivery times against the model arithmetic
    for rec in system.tracer.records("deliver"):
        msg = rec.data
        expected = msg.sent_at + system.latency(msg.src, msg.dst)
        if msg.arrived_at != expected:
            raise ScheduleError(
                f"{msg}: arrival differs from sent_at + lambda = "
                f"{time_repr(expected)}"
            )
    return sched
