"""The postal machine: ``MPS(n, lambda)`` as a running discrete-event system.

* :mod:`repro.postal.message` — the atomic message record.
* :mod:`repro.postal.ports` — unit-rate send/receive ports with busy-
  interval accounting and the strict/queued contention policies.
* :mod:`repro.postal.machine` — :class:`~repro.postal.machine.PostalSystem`:
  full connectivity, simultaneous I/O, latency-``lambda`` delivery
  (Definitions 1 and 2 of the paper).
* :mod:`repro.postal.runner` — executes a distributed
  :class:`~repro.algorithms.base.Protocol` on a postal system and extracts
  the realized :class:`~repro.core.schedule.Schedule` from the trace.
* :mod:`repro.postal.validator` — checks a trace against the postal model.
"""

from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.message import Message
from repro.postal.runner import ProtocolResult, run_protocol

__all__ = [
    "PostalSystem",
    "ContentionPolicy",
    "Message",
    "run_protocol",
    "ProtocolResult",
]
