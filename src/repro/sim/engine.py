"""The discrete-event engine: environment, events, timeouts, processes.

Model (deliberately simpy-compatible in spirit):

* An :class:`Event` is a one-shot awaitable.  It is *triggered* when given a
  value (or failure) and *processed* once its callbacks have run.
* A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
  events; the process resumes when the yielded event fires, receiving the
  event's value at the ``yield`` expression (or the exception, raised).
* The :class:`Environment` owns the clock and the pending-event heap.
  Scheduling is deterministic: ties in time break by scheduling order.

The clock is an exact :class:`fractions.Fraction`; delays accept anything
:func:`repro.types.as_time` accepts.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.errors import ProcessInterrupt, SimulationError
from repro.types import Time, TimeLike, as_time

__all__ = ["Environment", "Event", "Timeout", "Process", "NORMAL", "URGENT"]

#: Scheduling priorities: URGENT events at a given time run before NORMAL
#: ones (used internally so a process resumption precedes same-time timeouts
#: created after it).
URGENT = 0
NORMAL = 1

PENDING = object()

#: Cached ``as_time`` results for the delays that dominate postal runs
#: (zero is handled separately — adding it would still allocate).  Keys
#: are plain ints; ``dict.get`` finds them for equal ``Fraction``/float
#: delays too, since equal numbers hash equal.
_SMALL_DELAYS: dict[TimeLike, Time] = {i: as_time(i) for i in range(1, 17)}


class Event:
    """A one-shot occurrence that processes can wait for.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called; queued
    on the environment) -> *processed* (callbacks ran).

    Slotted (as are :class:`Timeout` and :class:`Process`): a postal run
    allocates one event per send/delivery/resume, so the per-instance
    ``__dict__`` was measurable.  Subclasses that add attributes and do
    not declare ``__slots__`` themselves (e.g. resource requests) simply
    get a dict again — slotting is an optimization, not a contract.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool | None = None
        #: failure was handed to a waiting process (or explicitly defused)
        self._defused = False

    @property
    def triggered(self) -> bool:
        """The event has a value and is (or was) queued for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure.  A failed event re-raises
        *exception* in every waiting process; if nothing waits, the
        environment raises it at processing time (so errors never vanish
        silently)."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._queue_event(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the environment will not
        re-raise it."""
        self._defused = True

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: TimeLike, value: Any = None):
        super().__init__(env)
        d = as_time(delay)
        if d < 0:
            raise SimulationError(f"negative timeout delay {d}")
        self.delay: Time = d
        self._ok = True
        self._value = value
        env._queue_event(self, delay=d)


class Initialize(Event):
    """Internal: starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._queue_event(self, priority=URGENT)


class Process(Event):
    """A running generator.  As an event, it fires when the generator
    returns (value = return value) or raises (failure)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """The generator has not finished yet."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`~repro.errors.ProcessInterrupt` inside the process
        at the current simulation time.

        The process is detached from whatever event it was waiting for; if
        that event was a queued *claim* (a :class:`~repro.sim.resources.
        Resource` request or ``Store.get``), the claim itself stays queued
        and the interrupted process should withdraw it (``Request.cancel``
        / ``Store.cancel_get``) in its interrupt handler, or a later grant
        will be consumed by a dead waiter.  Timeout-and-retry code should
        prefer ``any_of(claim, timeout)`` + explicit cancel over
        interrupts.

        Cost note: detaching scans the old target's callback list
        (``callbacks.remove``), so interrupting is O(w) in the number of
        waiters *w* on that event — fine for the rare-interrupt designs
        this library uses, pathological only if many processes wait on
        one event and all get interrupted."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None:
            raise SimulationError("cannot interrupt a process mid-resume")
        # detach from whatever it was waiting for, then resume with failure
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = ProcessInterrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks = [self._resume]
        old_target = self._target
        if old_target.callbacks is not None and self._resume in old_target.callbacks:
            old_target.callbacks.remove(self._resume)
        self.env._queue_event(interrupt_ev, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_ev = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_ev = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._queue_event(self, priority=URGENT)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._queue_event(self, priority=URGENT)
                break
            if not isinstance(next_ev, Event):
                exc2 = SimulationError(
                    f"process yielded a non-event: {next_ev!r}"
                )
                self._ok = False
                self._value = exc2
                self.env._queue_event(self, priority=URGENT)
                break
            if next_ev.processed:
                # already happened: resume immediately with its value
                event = next_ev
                continue
            self._target = next_ev
            assert next_ev.callbacks is not None
            next_ev.callbacks.append(self._resume)
            break
        self.env._active_process = None


class Environment:
    """The simulation environment: exact clock + deterministic event loop."""

    def __init__(self, initial_time: TimeLike = 0):
        self._now: Time = as_time(initial_time)
        self._heap: list[tuple[Time, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None

    @property
    def now(self) -> Time:
        """Current simulation time (exact)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -------------------------------------------------------- construction

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: TimeLike, value: Any = None) -> Timeout:
        """An event firing *delay* from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start *generator* as a process."""
        return Process(self, generator)

    # ----------------------------------------------------------- execution

    def _queue_event(
        self, event: Event, *, delay: TimeLike = 0, priority: int = NORMAL
    ) -> None:
        # Zero delay (event triggers, process resumptions — the majority
        # of queue operations) skips conversion *and* the Fraction add;
        # small integer delays hit the precomputed table.
        if delay:
            step = _SMALL_DELAYS.get(delay)
            if step is None:
                step = as_time(delay)
            at = self._now + step
        else:
            at = self._now
        self._seq += 1
        heapq.heappush(self._heap, (at, priority, self._seq, event))

    def peek(self) -> Time | None:
        """Time of the next scheduled event, or ``None`` if none remain."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no more events")
        at, _prio, _seq, event = heapq.heappop(self._heap)
        if at < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = at
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for cb in callbacks:
                cb(event)
        elif not event._ok and not event._defused:
            # a failure nobody waited for: surface it
            raise event._value

    def run(self, until: "TimeLike | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain; returns ``None``.
        * ``until=<time>`` — run to that time (clock lands exactly on it);
          returns ``None``.
        * ``until=<event>`` — run until the event fires; returns its value
          (raising if it failed).
        """
        stop_event: Event | None = None
        stop_time: Time | None = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
        elif until is not None:
            stop_time = as_time(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"cannot run until {stop_time}: already at {self._now}"
                )

        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self._heap[0][0] > stop_time:
                break
            self.step()

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "simulation ran out of events before `until` fired"
                )
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        if stop_time is not None:
            self._now = max(self._now, stop_time)
        return None
