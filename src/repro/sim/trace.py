"""Structured tracing of simulation runs.

A :class:`Tracer` collects timestamped :class:`TraceRecord` entries; the
postal machine emits one record per send-start, delivery, inbox
consumption, and (in the lossy extension) drop, which the validator, the
schedule extractor, and the observability layer (:mod:`repro.obs`)
consume.

The record *schema* — every ``kind`` the library emits, its ``data``
payload, its emission point, and the ordering guarantees — is documented
in ``docs/observability.md`` and pinned by the test suite.

Subscriber lifetime
-------------------

Live subscribers registered with :meth:`Tracer.subscribe` are independent
of the record log: :meth:`Tracer.clear` resets the *log* but deliberately
keeps subscribers attached (a metrics collector survives a between-phases
reset).  Detach explicitly with :meth:`Tracer.unsubscribe`, or pass
``clear(subscribers=True)`` to drop everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.types import Time, time_repr

__all__ = ["TraceRecord", "Tracer", "TRACE_KINDS"]

#: Every trace ``kind`` the library emits, with its emitter.  The full
#: payload schema lives in ``docs/observability.md``; tests assert the two
#: stay in sync.
TRACE_KINDS: dict[str, str] = {
    "send": "PostalSystem._send_proc (send port granted)",
    "deliver": "PostalSystem._deliver_proc (receive completed)",
    "consume": "PostalSystem.recv (message taken from the inbox)",
    "drop": "LossyPostalSystem._deliver_proc / FaultyTurboSystem "
    "(message lost to the network or to a crashed receiver)",
}


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: simulation time of the occurrence.
        kind: category string, e.g. ``"send"`` / ``"deliver"``.
        data: free-form payload (sorted last; compared by repr to keep
            records orderable even with dict payloads).
    """

    time: Time
    kind: str
    data: Any = field(compare=False, default=None)

    def __str__(self) -> str:
        return f"[t={time_repr(self.time)}] {self.kind}: {self.data}"


class Tracer:
    """An append-only log of trace records with simple querying.

    Records are appended in event-processing order, so iteration yields
    them with nondecreasing ``time`` (the engine's clock never moves
    backwards) — the ordering guarantee the exporters in
    :mod:`repro.obs.export` rely on.

    Args:
        retain: keep emitted records in the log (the default).  A
            ``retain=False`` tracer is a pure fan-out hub: with no
            subscribers attached it is *inactive* and :meth:`emit`
            short-circuits without even constructing the record —
            emitters can additionally check :attr:`active` to skip
            building payload dicts at all.
    """

    def __init__(self, *, retain: bool = True) -> None:
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._retain = retain

    @property
    def active(self) -> bool:
        """Whether :meth:`emit` currently does anything — i.e. records
        are retained or at least one subscriber listens.  Hot emitters
        check this before building a payload."""
        return self._retain or bool(self._subscribers)

    def emit(self, time: Time, kind: str, data: Any = None) -> TraceRecord | None:
        """Append a record (and fan out to live subscribers).

        Returns the record, or ``None`` when the tracer is inactive
        (``retain=False`` and nobody subscribed) — in that case nothing
        is constructed or stored.
        """
        if not (self._retain or self._subscribers):
            return None
        rec = TraceRecord(time, kind, data)
        if self._retain:
            self._records.append(rec)
        for sub in self._subscribers:
            sub(rec)
        return rec

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke *callback* on every future record.

        The subscription persists across :meth:`clear` (unless asked to
        drop subscribers too); detach with :meth:`unsubscribe`.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Detach a previously registered *callback*.

        Raises:
            ValueError: *callback* was never subscribed (or was already
                unsubscribed) — a silent no-op here would hide lifecycle
                bugs in collectors.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            raise ValueError(
                f"{callback!r} is not subscribed to this tracer"
            ) from None

    @property
    def subscriber_count(self) -> int:
        """Number of live subscribers."""
        return len(self._subscribers)

    def records(self, kind: str | None = None) -> list[TraceRecord]:
        """All records, optionally filtered by *kind*, in emit order."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self, *, subscribers: bool = False) -> None:
        """Reset the record log.

        Subscribers stay attached by default so a long-lived collector
        keeps observing after a between-phases reset; pass
        ``subscribers=True`` to detach them as well.
        """
        self._records.clear()
        if subscribers:
            self._subscribers.clear()
