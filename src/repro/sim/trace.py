"""Structured tracing of simulation runs.

A :class:`Tracer` collects timestamped :class:`TraceRecord` entries; the
postal machine emits one record per send-start, delivery, and receive-
completion, which the validator and the schedule extractor consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.types import Time, time_repr

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: simulation time of the occurrence.
        kind: category string, e.g. ``"send"`` / ``"deliver"``.
        data: free-form payload (sorted last; compared by repr to keep
            records orderable even with dict payloads).
    """

    time: Time
    kind: str
    data: Any = field(compare=False, default=None)

    def __str__(self) -> str:
        return f"[t={time_repr(self.time)}] {self.kind}: {self.data}"


class Tracer:
    """An append-only log of trace records with simple querying."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: Time, kind: str, data: Any = None) -> TraceRecord:
        """Append a record (and fan out to live subscribers)."""
        rec = TraceRecord(time, kind, data)
        self._records.append(rec)
        for sub in self._subscribers:
            sub(rec)
        return rec

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke *callback* on every future record."""
        self._subscribers.append(callback)

    def records(self, kind: str | None = None) -> list[TraceRecord]:
        """All records, optionally filtered by *kind*, in emit order."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        self._records.clear()
