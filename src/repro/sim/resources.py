"""Resources for simulation processes.

* :class:`Resource` — a capacity-limited resource with FIFO request
  queueing (``request()``/``release()``); models the unit-rate send and
  receive ports of a postal processor.
* :class:`Store` — an unbounded (or bounded) FIFO item queue
  (``put()``/``get()``); models processor inboxes.

Both are deliberately minimal but complete: requests and gets are events,
so processes compose them with timeouts and conditions freely.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`.  Fires when granted.

    Use as ``req = resource.request(); yield req; ...;
    resource.release(req)``.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        queue = self.resource._queue
        if self in queue:
            queue.remove(self)


class Resource:
    """A resource holding up to *capacity* concurrent users, FIFO-granted."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._users: set[Request] = set()
        self._queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim one unit of the resource.  The returned event fires when
        the claim is granted."""
        req = Request(self)
        if len(self._users) < self._capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted claim, waking the next waiter."""
        if request not in self._users:
            raise SimulationError("releasing a request that is not held")
        self._users.remove(request)
        if self._queue:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """A FIFO item queue with blocking ``get`` and (optionally bounded)
    ``put``."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit *item*.  Fires immediately unless the store is full."""
        ev = Event(self.env)
        if self._getters:
            # hand the item straight to the oldest waiting getter
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif len(self._items) < self._capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Take the oldest item.  Fires (with the item as value) once one
        is available."""
        ev = Event(self.env)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending ``get`` so it stops competing for future
        items (no-op if it already fired or is unknown).  Needed by
        timeout-and-retry patterns built with ``any_of(get, timeout)``."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass
