"""Discrete-event simulation substrate.

A small, exact-time (``Fraction``-clocked), generator-based discrete-event
engine in the style of simpy (which is unavailable in this environment):

* :class:`~repro.sim.engine.Environment` — the event loop and clock.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Process` — the primitive awaitables.
* :mod:`repro.sim.events` — composite conditions (:func:`all_of`,
  :func:`any_of`) and process interrupts.
* :mod:`repro.sim.resources` — :class:`~repro.sim.resources.Resource`
  (capacity-limited), :class:`~repro.sim.resources.Store` (FIFO item
  queue) — the building blocks of the postal machine's ports.
* :mod:`repro.sim.trace` — structured event tracing.

The engine clock is a :class:`fractions.Fraction`, so simulated postal-model
times compare **exactly** against the paper's closed forms.
"""

from repro.sim.engine import Environment, Event, Process, Timeout
from repro.sim.events import all_of, any_of
from repro.sim.resources import Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "all_of",
    "any_of",
    "Resource",
    "Store",
    "Tracer",
    "TraceRecord",
]
