"""Composite condition events: wait for all / any of several events.

:func:`all_of` fires once every constituent event has fired; its value is a
dict mapping each event to its value.  :func:`any_of` fires as soon as one
constituent fires; its value is a dict of the events fired so far.  A
failure in any constituent fails the condition (first failure wins).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event

__all__ = ["all_of", "any_of", "Condition"]


class Condition(Event):
    """An event that fires when ``count`` of the given events have fired.

    ``count = len(events)`` gives *all-of*; ``count = 1`` gives *any-of*.
    """

    def __init__(self, env: Environment, events: Sequence[Event], count: int):
        super().__init__(env)
        events = list(events)
        if any(ev.env is not env for ev in events):
            raise SimulationError("all events must belong to the same environment")
        if not 0 <= count <= len(events):
            raise SimulationError(
                f"need 0 <= count <= {len(events)}, got {count}"
            )
        self._events = events
        self._needed = count
        self._fired = 0
        if count == 0 or not events:
            self.succeed(self._collect())
            return
        for ev in events:
            if ev.processed:
                self._check(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._check)
            if self.triggered:
                break

    def _collect(self) -> dict[Event, Any]:
        # NOTE: `processed`, not `triggered` — a Timeout is "triggered"
        # (value assigned, queued) from the moment it is created, but it
        # has only *happened* once its callbacks ran.
        return {
            ev: ev._value
            for ev in self._events
            if ev.processed and ev._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._fired += 1
        if self._fired >= self._needed:
            self.succeed(self._collect())


def all_of(env: Environment, events: Iterable[Event]) -> Condition:
    """An event that fires when *all* of *events* have fired."""
    evs = list(events)
    return Condition(env, evs, len(evs))


def any_of(env: Environment, events: Iterable[Event]) -> Condition:
    """An event that fires when *any one* of *events* has fired."""
    evs = list(events)
    return Condition(env, evs, min(1, len(evs)))
