"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``fib``      — evaluate ``F_lambda(t)`` and/or ``f_lambda(n)``.
* ``tree``     — print the generalized Fibonacci broadcast tree (Figure 1
  style), optionally as JSON.
* ``gantt``    — print the port timeline of an algorithm's schedule.
* ``simulate`` — run an algorithm (broadcast or collective) event-driven
  on ``MPS(n, lambda)``, on either backend (``--backend turbo`` for the
  integer-tick lane), and report completion time / sends; optionally
  export the realized schedule as JSON (broadcast semantics only).
* ``compare``  — exact running time of every algorithm family at
  ``(n, m, lambda)`` plus the Lemma 8 lower bound and the winner.
* ``bounds``   — the Theorem 7 sandwich at given ``(lambda, t, n)``.
* ``collectives`` — optimal/measured times of every collective at
  ``(n, lambda)``.
* ``phase``    — ASCII winner phase diagram over the (m, lambda) plane.
* ``reliable`` — reliable broadcast over a lossy network (seeded,
  replayable).
* ``resilience`` — deterministic fault injection + recovery on the
  turbo lane: one certified run (crash-stop processors, per-edge loss,
  on-grid latency jitter, RTO/backoff retransmission, subtree
  re-rooting over survivors), or ``--curve`` for the degradation table
  over the loss x crash grid (``--jobs N`` shards it byte-identically).
* ``trace``    — observability: run an algorithm and report per-port
  utilization, the zero-slack critical path (checked against the closed
  form), and export the trace as Chrome trace-event JSON / CSV / JSONL.
* ``conformance`` — the seeded differential fuzzer: certify every
  protocol family against its closed form (``--smoke`` for the CI grid,
  ``--deep`` for the nightly one, ``--jobs N`` to shard the sweep over
  worker processes with an identical report); failures are filed as
  self-contained repro artifacts.
* ``bench``    — the perf regression harness: wall-time the exact and
  turbo backends over the broadcast grid (BCAST/PIPELINE-2/DTREE-BINARY)
  plus every collective workload (``--smoke`` for the CI gate, ``--full``
  for the nightly trajectory, ``--jobs N`` to shard the grid), enforce
  the >= 3x turbo speedup gates (BCAST at n=10^4 and ALLGATHER at the
  10^4-send point), the plan-layer construction/memory gate, and the
  resilience gate (fault-injected recovery: determinism, certificates,
  loss-0 ceiling), and optionally diff against the committed
  ``BENCH_turbo.json`` baseline.

All latency/time arguments accept ints, decimals, or ratios (``5/2``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.analysis import algorithm_times, best_algorithm, multi_lower_bound
from repro.core.bcast import bcast_schedule, bcast_tree
from repro.core.bounds import (
    F_lower_exact,
    F_upper_exact,
    f_lower_log,
    f_upper_log,
)
from repro.core.dtree import dtree_schedule
from repro.core.fibfunc import postal_F, postal_f
from repro.core.multi import pack_schedule, pipeline_schedule, repeat_schedule
from repro.core.serialize import dumps_schedule, tree_to_dict
from repro.report.render import render_gantt, render_tree
from repro.report.tables import format_table
from repro.types import as_time as _parse_time, time_repr

__all__ = ["main", "build_parser"]


def as_time(value):
    """CLI-boundary time parsing: an unparseable ``--lam``/``--t``
    literal becomes a one-line ``error:`` exit (via
    :class:`~repro.errors.InvalidParameterError` and :func:`main`'s
    central handler), never a ``Fraction`` traceback."""
    from repro.errors import InvalidParameterError

    try:
        return _parse_time(value)
    except (ValueError, TypeError, ZeroDivisionError) as exc:
        raise InvalidParameterError(
            f"invalid time value {value!r}: {exc}"
        ) from exc


def _build_schedule(algorithm: str, n: int, m: int, lam):
    """Resolve an algorithm name to its builder schedule."""
    algorithm = algorithm.lower()
    if algorithm == "bcast":
        if m != 1:
            raise SystemExit("bcast broadcasts one message; use -m 1")
        return bcast_schedule(n, lam, validate=False)
    if algorithm == "repeat":
        return repeat_schedule(n, m, lam, validate=False)
    if algorithm == "pack":
        return pack_schedule(n, m, lam, validate=False)
    if algorithm == "pipeline":
        return pipeline_schedule(n, m, lam, validate=False)
    if algorithm.startswith("dtree-"):
        return dtree_schedule(n, m, lam, int(algorithm[6:]), validate=False)
    if algorithm == "star":
        return dtree_schedule(n, m, lam, max(1, n - 1), validate=False)
    if algorithm == "binomial":
        from repro.algorithms.baselines import binomial_schedule

        if m != 1:
            raise SystemExit("the binomial baseline broadcasts one message")
        return binomial_schedule(n, lam, validate=False)
    raise SystemExit(
        f"unknown algorithm {algorithm!r} (try: bcast, repeat, pack, "
        f"pipeline, dtree-<d>, star, binomial)"
    )


def _protocol_for(algorithm: str, n: int, m: int, lam):
    from repro.algorithms import (
        BcastProtocol,
        BinomialProtocol,
        DTreeProtocol,
        PackProtocol,
        PipelineProtocol,
        RepeatProtocol,
    )

    algorithm = algorithm.lower()
    if algorithm == "auto" or algorithm.startswith("auto:"):
        # tuner-selected family; ReproError from an unknown workload or
        # an inapplicable point surfaces through main()'s error handler
        from repro.conformance.oracles import get_oracle
        from repro.tune.model import resolve_family

        resolved = resolve_family(algorithm, n, m, lam)
        print(f"auto-selected family: {resolved}", file=sys.stderr)
        return get_oracle(resolved).protocol(n=n, m=m, lam=lam)
    if algorithm == "bcast":
        return BcastProtocol(n, lam)
    if algorithm == "repeat":
        return RepeatProtocol(n, m, lam)
    if algorithm == "pack":
        return PackProtocol(n, m, lam)
    if algorithm == "pipeline":
        return PipelineProtocol(n, m, lam)
    if algorithm.startswith("dtree-"):
        return DTreeProtocol(n, m, lam, int(algorithm[6:]))
    if algorithm == "star":
        return DTreeProtocol(n, m, lam, max(1, n - 1))
    if algorithm == "binomial":
        return BinomialProtocol(n, lam)
    # collectives (and any future family) resolve via the oracle registry
    from repro.conformance.oracles import get_oracle
    from repro.errors import InvalidParameterError

    try:
        oracle = get_oracle(algorithm)
        oracle.check_applicable(n, m, lam)
    except InvalidParameterError as exc:
        raise SystemExit(str(exc)) from None
    return oracle.protocol(n=n, m=m, lam=lam)


# ------------------------------------------------------------- commands


def cmd_fib(args: argparse.Namespace) -> int:
    lam = as_time(args.lam)
    if args.t is None and args.n is None:
        raise SystemExit("fib: provide --t and/or --n")
    if args.t is not None:
        t = as_time(args.t)
        print(f"F_{time_repr(lam)}({time_repr(t)}) = {postal_F(lam, t)}")
    if args.n is not None:
        print(f"f_{time_repr(lam)}({args.n}) = {time_repr(postal_f(lam, args.n))}")
    return 0


def cmd_tree(args: argparse.Namespace) -> int:
    tree = bcast_tree(args.n, as_time(args.lam))
    if args.json:
        import json

        print(json.dumps(tree_to_dict(tree), indent=2))
    else:
        print(render_tree(tree))
        print(f"\nheight (completion time): {time_repr(tree.height())}")
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    sched = _build_schedule(args.algorithm, args.n, args.m, as_time(args.lam))
    print(render_gantt(sched))
    print(f"\ncompletion: {time_repr(sched.completion_time())}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.postal import run_protocol

    proto = _protocol_for(args.algorithm, args.n, args.m, as_time(args.lam))
    result = run_protocol(proto, backend=args.backend)
    print(f"algorithm : {proto.name}")
    print(f"machine   : MPS(n={args.n}, lambda={time_repr(as_time(args.lam))})")
    print(f"messages  : {proto.m}")
    print(f"backend   : {args.backend}")
    print(f"completion: {time_repr(result.completion_time)}")
    print(f"sends     : {result.sends}")
    if proto.semantics == "broadcast":
        lb = multi_lower_bound(args.n, proto.m, as_time(args.lam))
        if lb > 0:
            print(f"Lemma 8 LB: {time_repr(lb)}  "
                  f"(ratio {float(result.completion_time / lb):.3f})")
    if args.export:
        if result.schedule is None:
            raise SystemExit(
                f"{proto.name} has {proto.semantics} semantics — no "
                "broadcast schedule to export (the run is audited via "
                "ports and deliveries instead)"
            )
        with open(args.export, "w") as fh:
            fh.write(dumps_schedule(result.schedule, indent=2))
        print(f"schedule exported to {args.export}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    lam = as_time(args.lam)
    times = algorithm_times(args.n, args.m, lam)
    lb = multi_lower_bound(args.n, args.m, lam)
    rows = [
        [name, t, f"{float(t / lb):.3f}x" if lb > 0 else "-"]
        for name, t in sorted(times.items(), key=lambda kv: kv[1])
    ]
    print(
        format_table(["algorithm", "time", "vs Lemma 8"], rows)
    )
    winner, t = best_algorithm(args.n, args.m, lam)
    print(f"\nwinner: {winner} at t = {time_repr(t)} "
          f"(lower bound {time_repr(lb)})")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    lam = as_time(args.lam)
    if args.t is not None:
        t = as_time(args.t)
        print(
            f"Theorem 7(1) at t={time_repr(t)}:  "
            f"{F_lower_exact(lam, t)} <= F = {postal_F(lam, t)} <= "
            f"{F_upper_exact(lam, t)}"
        )
    if args.n is not None:
        f = postal_f(lam, args.n)
        print(
            f"Theorem 7(2) at n={args.n}:  "
            f"{f_lower_log(lam, args.n):.4f} <= f = {time_repr(f)} <= "
            f"{f_upper_log(lam, args.n):.4f}"
        )
    if args.t is None and args.n is None:
        raise SystemExit("bounds: provide --t and/or --n")
    return 0


def cmd_phase(args: argparse.Namespace) -> int:
    from repro.report.phase import phase_diagram

    ms = [int(v) for v in args.ms.split(",")]
    lams = args.lams.split(",")
    print(phase_diagram(args.n, ms, lams, show_ratio=args.ratio))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.tune import TuningTable, cached_table, rank, verify_table

    if args.verify:
        ok, fresh, committed_text, fresh_text = verify_table(
            args.verify, jobs=args.jobs, progress=print
        )
        if ok:
            print(
                f"tuning table {args.verify} verified: "
                f"{len(fresh)} entries, content hash "
                f"{fresh.content_hash[:16]}... matches the fresh derivation"
            )
            return 0
        print(
            f"tuning table {args.verify} DRIFTED from the fresh "
            f"derivation ({len(fresh)} entries)", file=sys.stderr,
        )
        committed_lines = committed_text.splitlines()
        fresh_lines = fresh_text.splitlines()
        shown = 0
        for i, (old, new) in enumerate(zip(committed_lines, fresh_lines)):
            if old != new:
                print(f"  line {i + 1}: committed {old.strip()!r} "
                      f"vs fresh {new.strip()!r}", file=sys.stderr)
                shown += 1
                if shown >= 10:
                    break
        if len(committed_lines) != len(fresh_lines):
            print(
                f"  length: committed {len(committed_lines)} lines "
                f"vs fresh {len(fresh_lines)}", file=sys.stderr,
            )
        if args.fresh_out:
            Path(args.fresh_out).write_text(fresh_text)
            print(f"fresh table written to {args.fresh_out}",
                  file=sys.stderr)
        return 1

    if args.sweep:
        table = cached_table(jobs=args.jobs)
        rows = [
            (e.workload, e.n, e.m, e.lam, e.policy, e.winner,
             e.ranking[0].predicted)
            for e in table.entries
        ]
        print(
            format_table(
                ("workload", "n", "m", "lambda", "policy", "winner",
                 "predicted"),
                rows,
            )
        )
        print(f"\n{len(table)} entries, grid {table.grid}, "
              f"content hash {table.content_hash[:16]}...")
        if args.out:
            table.save(args.out)
            print(f"table written to {args.out}")
        return 0

    if args.n is None:
        raise SystemExit("tune: provide --n (or use --sweep / --verify)")
    lam = as_time(args.lam)
    committed = TuningTable.load(args.table) if args.table else None
    entry = (
        committed.lookup(args.workload, args.n, args.m, lam, args.policy)
        if committed is not None
        else None
    )
    if entry is not None:
        rows = [
            (r.family, r.predicted, "yes" if r.exact else "UB",
             r.measured or "-", r.sends if r.sends is not None else "-")
            for r in entry.ranking
        ]
        source = f"committed table {args.table}"
        winner = entry.winner
    else:
        ranking = rank(
            args.workload, args.n, args.m, lam,
            policy=args.policy, calibrate=not args.no_calibrate,
        )
        rows = [
            (c.family, time_repr(c.predicted), "yes" if c.exact else "UB",
             time_repr(c.measured) if c.measured is not None else "-",
             c.sends if c.sends is not None else "-")
            for c in ranking
        ]
        source = "derived on the spot"
        winner = ranking[0].family
    print(
        f"tune: workload={args.workload} n={args.n} m={args.m} "
        f"lambda={time_repr(lam)} policy={args.policy} ({source})"
    )
    print()
    print(
        format_table(
            ("family", "predicted", "exact", "measured", "sends"), rows
        )
    )
    print(f"\nselected: {winner}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (
        COLLECTIVE_GATE_MIN_SPEEDUP,
        GATE_MIN_SPEEDUP,
        bench_plan_layer,
        bench_replay,
        bench_resilience,
        collective_gate_result,
        compare_to_baseline,
        format_results,
        gate_result,
        run_bench,
        to_json,
    )
    from repro.parallel import effective_jobs

    mode = "full" if args.full else "smoke"
    jobs = effective_jobs(args.jobs)
    suffix = f", {jobs} workers" if jobs > 1 else ""
    print(
        f"perf regression harness ({mode}): "
        f"exact vs turbo vs replay backend{suffix}"
    )
    results = run_bench(mode, progress=print, jobs=jobs)
    print()
    print(format_results(results))

    gate = gate_result(results)
    verdict = "PASS" if gate["ok"] else "FAIL"
    print(
        f"\ngate: turbo >= {GATE_MIN_SPEEDUP:.0f}x exact for "
        f"{gate['family']} at n={gate['n']:,} — measured "
        f"{gate['speedup']:.2f}x [{verdict}]"
    )
    cgate = collective_gate_result(results)
    cverdict = "PASS" if cgate["ok"] else "FAIL"
    print(
        f"collective gate: turbo >= {COLLECTIVE_GATE_MIN_SPEEDUP:.0f}x "
        f"exact for {cgate['family']} at n={cgate['n']:,} "
        f"({cgate['sends']:,} sends, the 10^4-send scale) — measured "
        f"{cgate['speedup']:.2f}x [{cverdict}]"
    )

    ok = gate["ok"] and cgate["ok"]
    plan = None
    if args.plan_n > 0:
        plan = bench_plan_layer(n=args.plan_n)
        pg = plan["gate"]
        pv = "PASS" if pg["ok"] else "FAIL"
        print(
            f"plan gate: columnar build >= "
            f"{pg['min_construction_speedup']:.0f}x and storage >= "
            f"{pg['min_storage_ratio']:.0f}x at BCAST n={plan['n']:,} — "
            f"measured {plan['construction_speedup']:.2f}x build, "
            f"{plan['storage_ratio']:.2f}x storage, warm cache "
            f"{plan['plan_cached_s'] * 1e6:.0f}us [{pv}]"
        )
        ok = ok and pg["ok"]
    resilience = None
    if args.resilience_n > 0:
        resilience = bench_resilience(n=args.resilience_n)
        rg = resilience["gate"]
        rv = "PASS" if rg["ok"] else "FAIL"
        print(
            f"resilience gate: {len(resilience['cases'])} fault cases at "
            f"n={resilience['n']:,} — deterministic="
            f"{'yes' if rg['deterministic'] else 'NO'}, certified="
            f"{'yes' if rg['certified'] else 'NO'}, loss-0 ceiling "
            f"{'held' if rg['within_depth'] else 'BROKEN'} [{rv}]"
        )
        ok = ok and rg["ok"]
    replay = None
    if args.replay_n > 0:
        replay = bench_replay(n=args.replay_n)
        yg = replay["gate"]
        yv = "PASS" if yg["ok"] else "FAIL"
        print(
            f"replay gate: replay >= {yg['min_speedup']:.0f}x exact for "
            f"BCAST at n={replay['n']:,} — measured "
            f"{replay['speedup']:.2f}x (exact {replay['exact_s']:.4f}s, "
            f"turbo {replay['turbo_s']:.4f}s, replay "
            f"{replay['replay_s']:.4f}s) [{yv}]"
        )
        ok = ok and yg["ok"]
    batch = None
    if args.batch:
        from repro.bench import bench_batch

        batch = bench_batch()
        bg = batch["gate"]
        bv = "PASS" if bg["ok"] else "FAIL"
        print(
            f"batch gate: run_batch >= {bg['min_speedup']:.0f}x per-point "
            f"replay over {batch['points']} points — measured "
            f"{batch['speedup']:.2f}x (per-point {batch['per_point_s']:.4f}s, "
            f"batch {batch['batch_s']:.4f}s) [{bv}]"
        )
        kernel = batch["kernel"]
        kg = kernel["gate"]
        if kernel["numpy_s"] is None:
            why = (
                "disabled by REPRO_NUMPY"
                if kernel["numpy"] is not None
                else "not installed"
            )
            print(
                f"kernel gate: NumPy {why} — pure-Python passes "
                "are the implementation [SKIP]"
            )
        else:
            kv = "PASS" if kg["ok"] else "FAIL"
            print(
                f"kernel gate: NumPy passes >= {kg['min_speedup']:.0f}x "
                f"pure-Python for BCAST at n={kernel['n']:,} — measured "
                f"{kernel['speedup']:.2f}x (python {kernel['python_s']:.4f}s, "
                f"numpy {kernel['numpy_s']:.4f}s, NumPy {kernel['numpy']}) "
                f"[{kv}]"
            )
        ok = ok and bg["ok"]
    tune = None
    if args.tune:
        from repro.bench import bench_tune

        tune = bench_tune()
        tg = tune["gate"]
        tv = "PASS" if tg["ok"] else "FAIL"
        print(
            f"tune gate: auto selection within {tg['tolerance']:.0%} of "
            f"the best fixed family (and never past the worst) over "
            f"{tg['points']} pinned points — exact arithmetic [{tv}]"
        )
        for row in tune["points"]:
            if not row["ok"]:
                print(
                    f"  FAIL at n={row['n']} m={row['m']} "
                    f"lam={row['lam']}: auto {row['auto']} = "
                    f"{row['auto_completion']} vs best "
                    f"{row['best_family']} = {row['best_completion']}"
                )
        ok = ok and tg["ok"]
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        regressions = compare_to_baseline(
            results, baseline, tolerance=args.tolerance
        )
        if regressions:
            print(f"\nregressions vs {args.baseline} "
                  f"(tolerance {args.tolerance:.0%}):")
            for line in regressions:
                print(f"  {line}")
            ok = False
        else:
            print(f"\nno regressions vs {args.baseline} "
                  f"(tolerance {args.tolerance:.0%})")

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(
                to_json(
                    results,
                    mode=mode,
                    jobs=args.jobs,
                    plan=plan,
                    resilience=resilience,
                    replay=replay,
                    batch=batch,
                    tune=tune,
                )
            )
        print(f"\nresults written to {args.out}")

    if args.profile:
        from repro.bench import BenchCase, profile_case
        from repro.bench import _FAMILY_M, _LAM

        parts = args.profile.split(":")
        if len(parts) not in (2, 3):
            print(
                f"error: --profile expects FAMILY:N[:BACKEND], "
                f"got {args.profile!r}"
            )
            return 2
        family = parts[0].upper()
        n = int(parts[1])
        backend = parts[2] if len(parts) == 3 else "turbo"
        case = BenchCase(family, n, _FAMILY_M.get(family, 1), _LAM)
        dump = (args.out or "bench") + ".profile.pstats"
        print()
        print(profile_case(case, backend=backend, out=dump), end="")
        print(f"profile stats written to {dump}")
    return 0 if ok else 1


def cmd_reliable(args: argparse.Namespace) -> int:
    from repro.extensions.faulty import run_reliable_bcast

    lam = as_time(args.lam)
    t, rtx, drops = run_reliable_bcast(
        args.n, lam, loss=args.loss, seed=args.seed
    )
    f = postal_f(lam, args.n)
    print(f"machine     : MPS(n={args.n}, lambda={time_repr(lam)})")
    print(f"loss rate   : {args.loss:.0%}  (seed {args.seed})")
    print(f"completion  : {time_repr(t)}  "
          f"(loss-free optimum {time_repr(f)}, "
          f"ratio {float(t / f):.2f})")
    print(f"drops       : {drops}")
    print(f"retransmits : {rtx}")
    return 0


def cmd_resilience(args: argparse.Namespace) -> int:
    from repro.errors import InvalidParameterError, TickDomainError
    from repro.resilience import degradation_curve, format_curve, run_resilient
    from repro.parallel import effective_jobs

    lam = as_time(args.lam)
    crashed = None
    if args.crashed:
        try:
            crashed = [int(p) for p in args.crashed.split(",") if p.strip()]
        except ValueError:
            raise SystemExit(
                f"--crashed wants a comma-separated processor list, "
                f"got {args.crashed!r}"
            ) from None

    if args.curve:
        losses = [float(x) for x in args.losses.split(",")]
        crashes = [float(x) for x in args.crashes.split(",")]
        jobs = effective_jobs(args.jobs)
        try:
            results = degradation_curve(
                args.n,
                lam,
                m=args.m,
                loss_rates=losses,
                crash_rates=crashes,
                jitter=args.jitter,
                seed=args.seed,
                detector=args.detector,
                max_retries=args.max_retries,
                jobs=jobs,
            )
        except (InvalidParameterError, TickDomainError) as exc:
            raise SystemExit(str(exc)) from None
        print(
            f"degradation curve: MPS(n={args.n}, lambda={time_repr(lam)}), "
            f"m={args.m}, detector={args.detector}, seed {args.seed}"
        )
        print()
        print(format_curve(results))
        return 0 if all(r.certified for r in results) else 1

    try:
        result = run_resilient(
            args.n,
            lam,
            m=args.m,
            loss=args.loss,
            crash=args.crash,
            jitter=args.jitter,
            crashed=crashed,
            seed=args.seed,
            detector=args.detector,
            rto=args.rto,
            max_retries=args.max_retries,
        )
    except (InvalidParameterError, TickDomainError) as exc:
        raise SystemExit(str(exc)) from None

    drops = result.loss_drops + result.crash_drops
    print(f"machine      : MPS(n={args.n}, lambda={time_repr(lam)}), m={args.m}")
    print(
        f"faults       : loss={result.loss:g} crash={result.crash:g} "
        f"jitter<={time_repr(result.jitter)} (seed {result.seed}, "
        f"{len(result.crashed)} crashed)"
    )
    print(
        f"completion   : {time_repr(result.completion)}  "
        f"(fault-free optimum {time_repr(result.fault_free)}, "
        f"ratio {result.ratio:.2f}x)"
    )
    print(
        f"survivors    : {result.survivors}/{result.n} — "
        + ("all informed" if result.certified else "NOT all informed")
    )
    print(
        f"drops        : {drops}  "
        f"({result.loss_drops} loss + {result.crash_drops} crash-suppressed)"
    )
    print(f"retransmits  : {result.retransmissions}")
    print(
        f"re-rooted    : {len(result.adoptions)} orphan edges adopted, "
        f"{len(result.declared_dead)} declared dead "
        f"(detector {result.detector})"
    )
    if result.certified:
        print(
            f"certificate  : OK — T >= (m-1)+f_lambda(s) = "
            f"{time_repr(result.bound)}, order preserved for survivors, "
            f"fault accounting exact"
        )
        return 0
    print("certificate  : FAILED")
    for violation in result.violations:
        print(f"  - {violation}")
    return 1


def _closed_form_time(algorithm: str, n: int, m: int, lam):
    """Exact closed-form completion time for the named algorithm, or
    ``None`` when only an upper bound is known (DTREE for d >= 2)."""
    from repro.core.analysis import (
        bcast_time,
        dtree_upper,
        pack_time,
        pipeline_time,
        repeat_time,
    )

    algorithm = algorithm.lower()
    if algorithm == "bcast":
        return bcast_time(n, lam)
    if algorithm == "repeat":
        return repeat_time(n, m, lam)
    if algorithm == "pack":
        return pack_time(n, m, lam)
    if algorithm == "pipeline":
        return pipeline_time(n, m, lam)
    if algorithm == "dtree-1":
        return dtree_upper(n, m, lam, 1)  # exact for the line
    return None


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        critical_path,
        dump_csv,
        dump_jsonl,
        format_critical_path,
        write_chrome_trace,
    )
    from repro.postal import run_protocol
    from repro.report.tables import utilization_table

    lam = as_time(args.lam)
    proto = _protocol_for(args.algorithm, args.n, args.m, lam)
    result = run_protocol(proto, profile=args.profile)
    metrics = result.metrics
    assert metrics is not None
    print(f"algorithm : {proto.name}")
    print(f"machine   : MPS(n={args.n}, lambda={time_repr(lam)})")
    print(f"messages  : {proto.m}")
    print(f"completion: {time_repr(result.completion_time)}")
    print(f"sends     : {result.sends}")

    closed = _closed_form_time(args.algorithm, args.n, proto.m, lam)
    if result.schedule is not None:
        path = critical_path(result.schedule)
        anchored = "tight to t=0" if path.tight else "has upstream slack"
        print(
            f"critical path: {len(path.events)} sends, "
            f"length {time_repr(path.length)} ({anchored})"
        )
        if closed is not None:
            verdict = "matches" if closed == path.length else "DIFFERS FROM"
            print(
                f"closed form  : {time_repr(closed)} — "
                f"critical path {verdict} the exact formula"
            )
        if args.critical_path:
            print()
            print(format_critical_path(path, lam))

    if args.summary:
        print()
        print("per-port utilization over the makespan "
              f"({time_repr(metrics.makespan)}):")
        print(utilization_table(metrics))
        if metrics.latency_histogram:
            hist = ", ".join(
                f"{time_repr(latency)}x{count}"
                for latency, count in metrics.latency_histogram
            )
            print(f"\nlatency histogram (latency x count): {hist}")

    if args.profile and result.profile is not None:
        print(f"\nengine    : {result.profile}")

    if args.chrome:
        write_chrome_trace(args.chrome, result.system)
        print(f"\nChrome trace written to {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            rows = dump_csv(result.system.tracer, fh)
        print(f"CSV dump written to {args.csv} ({rows} records)")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            rows = dump_jsonl(result.system.tracer, fh)
        print(f"JSONL dump written to {args.jsonl} ({rows} records)")
    return 0


def cmd_collectives(args: argparse.Namespace) -> int:
    from repro.collectives import (
        allgather_time,
        allreduce_time,
        alltoall_time,
        barrier_time,
        bruck_time,
        gather_time,
        gossip_ring_time,
        reduce_time,
        scatter_time,
    )

    n, lam = args.n, as_time(args.lam)
    rows = [
        ["broadcast (BCAST)", postal_f(lam, n), "optimal (Thm 6)"],
        ["reduce/combine", reduce_time(n, lam), "optimal (reversal)"],
        ["scatter", scatter_time(n, lam), "optimal (direct)"],
        ["gather", gather_time(n, lam), "optimal (direct)"],
        ["alltoall", alltoall_time(n, lam), "optimal (rotation)"],
        ["allreduce", allreduce_time(n, lam), "2x combine LB"],
        ["allgather", allgather_time(n, lam), "heuristic (open)"],
        ["bruck allgather", bruck_time(n, lam), "heuristic (open)"],
        ["gossip ring", gossip_ring_time(n, lam), "heuristic (open)"],
        ["barrier", barrier_time(n, lam), "combine+notify"],
    ]
    print(f"Collective costs on MPS(n={n}, lambda={time_repr(lam)}):\n")
    print(format_table(["collective", "time", "status"], rows))
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.conformance import (
        deep_options,
        families,
        run_fuzz,
        smoke_options,
    )
    from repro.report.tables import conformance_table

    if args.deep:
        opts = deep_options(seed=args.seed, artifact_dir=args.artifacts)
    else:
        opts = smoke_options(seed=args.seed, artifact_dir=args.artifacts)
    overrides = {}
    if args.iterations is not None:
        overrides["iterations"] = args.iterations
    if args.families:
        overrides["families"] = tuple(
            f.strip() for f in args.families.split(",") if f.strip()
        )
    if args.chaos is not None:
        overrides["chaos_rate"] = args.chaos
    if args.backend != "exact":
        overrides["backend"] = args.backend
    if args.batch:
        if args.backend != "replay":
            print(
                "error: --batch pre-compiles and shares schedule plans, "
                "which only the replay backend executes — add "
                "--backend replay"
            )
            return 2
        overrides["batch"] = True
    if overrides:
        opts = replace(opts, **overrides)

    from repro.parallel import effective_jobs

    jobs = effective_jobs(args.jobs)
    mode = "deep" if args.deep else "smoke"
    suffix = f", {jobs} workers" if jobs > 1 else ""
    if opts.backend != "exact":
        suffix += f", backend={opts.backend}"
    if opts.batch:
        suffix += ", shared batch plans"
    print(
        f"conformance fuzz ({mode}): {opts.iterations} configs over "
        f"{len(opts.families or families())} families, seed {opts.seed}"
        f"{suffix}"
    )
    report = run_fuzz(opts, jobs=jobs)
    print()
    print(conformance_table(report, markdown=args.markdown))
    print()
    print(report.summary())
    if report.artifacts:
        print(f"artifacts ({len(report.artifacts)}):")
        for path in report.artifacts:
            print(f"  {path}")
    if not report.ok:
        for result in report.failures:
            print()
            print(result.summary())
            for violation in result.violations:
                print(f"  - {violation}")
        return 1
    return 0


# --------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Postal-model broadcasting (Bar-Noy & Kipnis, SPAA 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fib", help="evaluate F_lambda(t) / f_lambda(n)")
    p.add_argument("--lam", required=True, help="latency lambda >= 1 (e.g. 5/2)")
    p.add_argument("--t", help="evaluate F_lambda at this time")
    p.add_argument("--n", type=int, help="evaluate f_lambda at this size")
    p.set_defaults(func=cmd_fib)

    p = sub.add_parser("tree", help="print the Fibonacci broadcast tree")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    p.set_defaults(func=cmd_tree)

    p = sub.add_parser("gantt", help="print a schedule's port timeline")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("--m", type=int, default=1)
    p.add_argument("--algorithm", default="bcast")
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser("simulate", help="run an algorithm on the simulated machine")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("--m", type=int, default=1)
    p.add_argument(
        "--algorithm",
        default="bcast",
        help="a broadcast builder (bcast, repeat, pack, pipeline, "
        "dtree-<d>, star, binomial) or any oracle family, including the "
        "collectives (gather, scatter, alltoall, reduce, allreduce, "
        "barrier, allgather, bruck-allgather, gossip-ring)",
    )
    p.add_argument(
        "--backend",
        choices=("exact", "turbo", "replay"),
        default="exact",
        help="execution lane (turbo = integer-tick fast lane, replay = "
        "vectorized compiled-plan tier; both bit-identical results)",
    )
    p.add_argument("--export", help="write the realized schedule JSON here")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("compare", help="compare all algorithm families")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("--m", type=int, default=1)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("bounds", help="Theorem 7 sandwich at (lambda, t, n)")
    p.add_argument("--lam", required=True)
    p.add_argument("--t")
    p.add_argument("--n", type=int)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("collectives", help="collective costs at (n, lambda)")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.set_defaults(func=cmd_collectives)

    p = sub.add_parser(
        "phase", help="winner phase diagram over the (m, lambda) plane"
    )
    p.add_argument("--n", type=int, required=True)
    p.add_argument(
        "--ms", default="1,2,4,8,16,32,64", help="comma-separated m values"
    )
    p.add_argument(
        "--lams",
        default="1,3/2,2,5/2,4,8,16",
        help="comma-separated lambda values",
    )
    p.add_argument("--ratio", action="store_true", help="show winner/LB ratios")
    p.set_defaults(func=cmd_phase)

    p = sub.add_parser(
        "trace",
        help="observability: utilization, critical path, Chrome trace export",
    )
    p.add_argument("-n", "--n", dest="n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("-m", "--m", dest="m", type=int, default=1)
    p.add_argument("--algorithm", default="bcast")
    p.add_argument(
        "--chrome",
        metavar="PATH",
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto)",
    )
    p.add_argument("--csv", metavar="PATH", help="write the trace as CSV")
    p.add_argument(
        "--jsonl", metavar="PATH", help="write the trace as JSON-lines"
    )
    p.add_argument(
        "--summary",
        action="store_true",
        help="print the per-port utilization table and latency histogram",
    )
    p.add_argument(
        "--critical-path",
        action="store_true",
        dest="critical_path",
        help="print the zero-slack critical path hop by hop",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="report engine-level profiling (events, heap peak, wall time)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "conformance",
        help="certify every family against its closed form (seeded fuzz)",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="the CI grid: every family, a few seconds (default)",
    )
    mode.add_argument(
        "--deep",
        action="store_true",
        help="the nightly grid: larger machines, chaos self-tests",
    )
    p.add_argument("--seed", type=int, default=0, help="master fuzz seed")
    p.add_argument(
        "--iterations",
        type=int,
        help="override the number of configs to certify",
    )
    p.add_argument(
        "--families",
        help="comma-separated family subset (e.g. BCAST,PIPELINE-2)",
    )
    p.add_argument(
        "--chaos",
        type=float,
        help="override the chaos (corruption self-test) probability",
    )
    p.add_argument(
        "--artifacts",
        metavar="DIR",
        help="file failure artifacts (config + repro.py + traces) here",
    )
    p.add_argument(
        "--markdown",
        action="store_true",
        help="render the summary table as Markdown",
    )
    p.add_argument(
        "--backend",
        choices=("exact", "turbo", "replay"),
        default="exact",
        help="execution lane for the simulation leg — the certificates "
        "are backend-blind, so fuzzing under turbo or replay pins that "
        "lane against every closed form",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (0 = one per CPU; the "
        "report is identical for any value — default 1)",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="batch plan distribution (requires --backend replay): "
        "pre-sample the grid, compile each distinct plan once, and map "
        "it into workers over shared memory instead of rebuilding "
        "per point — the report is byte-identical either way",
    )
    p.set_defaults(func=cmd_conformance)

    p = sub.add_parser(
        "tune",
        help="postal autotuner: rank families for a query, sweep the "
        "pinned grid into a tuning table, or drift-check a committed one",
    )
    p.add_argument("--workload", default="broadcast",
                   help="broadcast, allgather, allreduce, reduce, "
                   "scatter, gather, alltoall, or barrier")
    p.add_argument("--n", type=int, help="machine size for a single query")
    p.add_argument("--m", type=int, default=1,
                   help="message count (broadcast workload only)")
    p.add_argument("--lam", default="2",
                   help="postal latency (int, decimal, or ratio)")
    p.add_argument("--policy", choices=("strict", "queued"),
                   default="strict")
    p.add_argument(
        "--no-calibrate", action="store_true",
        help="rank by closed forms only, skipping turbo tie-break runs",
    )
    p.add_argument(
        "--table", metavar="PATH",
        help="consult this committed tuning table first in query mode",
    )
    p.add_argument(
        "--sweep", action="store_true",
        help="derive the full pinned grid (through the two-level "
        "$REPRO_TUNE_CACHE) and print the table",
    )
    p.add_argument(
        "--verify", metavar="PATH",
        help="re-derive PATH's grid and fail (exit 1) unless the fresh "
        "table is byte-identical — the CI drift check",
    )
    p.add_argument(
        "--out", metavar="PATH",
        help="with --sweep: write the canonical table JSON here",
    )
    p.add_argument(
        "--fresh-out", metavar="PATH",
        help="with --verify: on drift, write the fresh table here "
        "(CI uploads it as an artifact)",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the calibration sweep (0 = one per "
        "CPU; any value derives byte-identical tables)",
    )
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "bench",
        help="perf regression harness: exact vs turbo vs replay wall times",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="the CI grid: every family, BCAST up to n=10^4 (default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="the nightly grid: every family up to n=10^5",
    )
    p.add_argument(
        "--out",
        metavar="PATH",
        help="write the machine-readable results JSON here "
        "(the BENCH_turbo.json schema)",
    )
    p.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against this committed BENCH_turbo.json; any case "
        "slower than baseline by more than the tolerance fails the run",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="relative regression tolerance for --baseline (default 0.30)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the case grid (0 = one per CPU; "
        "parallel timings share cores — baselines are recorded serially)",
    )
    p.add_argument(
        "--plan-n",
        type=int,
        default=100_000,
        metavar="N",
        help="BCAST size for the plan-layer construction bench "
        "(0 disables the plan section; default 100000)",
    )
    p.add_argument(
        "--resilience-n",
        type=int,
        default=1_000,
        metavar="N",
        help="machine size for the resilience gate cases — determinism, "
        "certificates, and the loss-0 ceiling, never wall time "
        "(0 disables the resilience section; default 1000)",
    )
    p.add_argument(
        "--replay-n",
        type=int,
        default=100_000,
        metavar="N",
        help="BCAST size for the replay-tier gate section — replay must "
        "beat exact by the gate factor (0 disables the replay section; "
        "default 100000)",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="measure the batch tier (repro.batch): 64-point sweep vs "
        "per-point replay plus the NumPy-kernel gate at BCAST n=10^5 "
        "(the bench_batch section)",
    )
    p.add_argument(
        "--tune",
        action="store_true",
        help="run the auto-selection gate (the bench_tune section): the "
        "tuner's pick must match the best fixed family within tolerance "
        "on a pinned grid — exact arithmetic, no wall clocks",
    )
    p.add_argument(
        "--profile",
        metavar="FAMILY:N[:BACKEND]",
        help="wrap one extra run of the given case in cProfile; writes "
        "the pstats dump next to --out (or ./bench.profile.pstats) and "
        "prints the top-20 cumulative table (backend defaults to turbo)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "reliable", help="reliable broadcast over a lossy network"
    )
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("--loss", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_reliable)

    p = sub.add_parser(
        "resilience",
        help="deterministic fault injection + recovery on the turbo lane",
    )
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--lam", required=True)
    p.add_argument("-m", type=int, default=1, help="messages to broadcast")
    p.add_argument(
        "--loss", type=float, default=0.0,
        help="per-transmission drop probability in [0, 1)",
    )
    p.add_argument(
        "--crash", type=float, default=0.0,
        help="per-processor crash-stop probability in [0, 1) "
        "(the root never crashes)",
    )
    p.add_argument(
        "--jitter", default="0",
        help="max extra latency per delivery; must sit on the run's "
        "tick grid (accepts ratios like 1/2)",
    )
    p.add_argument(
        "--crashed", metavar="P,P,...",
        help="explicit crash-stop processors (crashed at t=0), "
        "composable with --crash sampling",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--detector", choices=("timeout", "perfect"), default="timeout",
        help="failure detector: local RTO timeouts (realistic) or the "
        "perfect detector (absolute recovery guarantee)",
    )
    p.add_argument(
        "--rto", default=None,
        help="per-edge retransmission timeout (default 2*ceil(lambda)+2)",
    )
    p.add_argument(
        "--max-retries", type=int, default=8,
        help="silent RTOs before a child is declared dead "
        "(timeout detector only; default 8)",
    )
    p.add_argument(
        "--curve", action="store_true",
        help="sweep the --losses x --crashes grid and print the "
        "degradation table instead of one run",
    )
    p.add_argument(
        "--losses", default="0,0.05,0.1,0.2",
        help="comma-separated loss rates for --curve",
    )
    p.add_argument(
        "--crashes", default="0,0.05",
        help="comma-separated crash rates for --curve",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for --curve (0 = one per CPU; per-point "
        "seed derivation keeps any jobs value byte-identical)",
    )
    p.set_defaults(func=cmd_resilience)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError` — off-grid tick
    domains, bad parameter values, inapplicable tuning queries, ...)
    are reported as a one-line ``error:`` message on stderr with exit
    code 2, never as a traceback."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
