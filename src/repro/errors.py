"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Model-violation errors carry enough context to debug a
bad schedule (who, when, which constraint).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "InvalidParameterError",
    "ScheduleError",
    "PortBusyError",
    "SimultaneousIOError",
    "OrderViolationError",
    "SimulationError",
    "ProcessInterrupt",
    "TickDomainError",
    "PlanCacheError",
    "TuningError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A model parameter is out of range (e.g. ``lambda < 1`` or ``n < 1``)."""


class ModelError(ReproError):
    """A schedule or trace violates the postal model's constraints."""


class ScheduleError(ModelError):
    """A schedule is structurally invalid (unknown processors, uninformed
    senders, duplicate deliveries, ...)."""


class PortBusyError(ModelError):
    """A processor tried to drive its send or receive port during an
    interval in which the port was already busy."""


class SimultaneousIOError(PortBusyError):
    """Two receive (or two send) intervals overlap at the same processor,
    violating the simultaneous-I/O property of Definition 1."""


class OrderViolationError(ModelError):
    """A processor received message ``M_j`` before ``M_i`` with ``i < j``;
    the paper's algorithms are all order-preserving."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class TickDomainError(InvalidParameterError):
    """A time value cannot be represented losslessly in the integer tick
    domain of the turbo backend (off-grid delay, or a pathological mix of
    denominators whose LCM exceeds the supported scale)."""


class PlanCacheError(ReproError):
    """A serialized schedule plan could not be decoded (truncated file,
    foreign magic, or a header that disagrees with its column payload)."""


class TuningError(ReproError):
    """The autotuner cannot answer a query (no applicable family at the
    requested point) or a tuning-table artifact is invalid (malformed
    payload, unknown schema, or a content hash that does not match)."""


class ProcessInterrupt(ReproError):
    """Raised inside a simulation process that another process interrupted.

    Carries an arbitrary ``cause`` describing why.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause
