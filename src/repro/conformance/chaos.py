"""Seeded schedule corruption — the certifier's self-test.

A conformance subsystem that never sees a failure proves nothing: maybe
every family is correct, or maybe the certifier silently accepts
everything.  :func:`corrupt_schedule` closes that loop.  Given a pristine
static schedule and a seeded :class:`random.Random`, it applies exactly
one mutation drawn from a small catalogue of postal-model violations and
returns the corrupted schedule (constructed **unvalidated** — the whole
point is to hand the certifier something broken) together with a
human-readable description of what was done.

The mutation catalogue targets one certification layer each:

``drop``
    Remove one send event.  Some processor never receives some message —
    :meth:`Schedule.validate` reports an incomplete broadcast.
``hasten``
    Move a non-root sender's event to ``t = 0``, before the sender can
    possibly hold the message — a possession violation (Definition 1).
    When every sender is the root (e.g. STAR), fall back to ``clash``.
``clash``
    Re-time one event to collide with another send by the same sender —
    two sends on one port at once (:class:`SimultaneousIOError`,
    Definition 2).  Falls back to duplicating the root's first send time
    when a sender has only one event.
``delay``
    Push the latest-arriving event one unit later.  The schedule stays
    postal-valid but its makespan now exceeds the exact closed form (or,
    for a tight schedule, trips the differential against the builder).

Determinism matters: the fuzzer records only ``chaos_seed`` in the
failure artifact, and the repro script must regenerate the *same*
mutation from it.  All randomness therefore flows through the single
``rng`` argument, and event selection is over the schedule's sorted
event tuple (itself deterministic).
"""

from __future__ import annotations

import random

from repro.core.schedule import Schedule, SendEvent
from repro.errors import InvalidParameterError
from repro.types import ONE, ZERO, time_repr

__all__ = ["MUTATIONS", "corrupt_schedule"]

#: Mutation names, in the order the seeded draw indexes them.
MUTATIONS = ("drop", "hasten", "clash", "delay")


def _rebuild(schedule: Schedule, events: list[SendEvent]) -> Schedule:
    """A copy of *schedule* with *events*, skipping validation."""
    return Schedule(
        schedule.n,
        schedule.lam,
        events,
        m=schedule.m,
        root=schedule.root,
        validate=False,
    )


def _drop(
    schedule: Schedule, rng: random.Random
) -> tuple[Schedule, str] | None:
    events = list(schedule.events)
    victim = rng.randrange(len(events))
    ev = events.pop(victim)
    return _rebuild(schedule, events), f"drop: removed {ev}"


def _hasten(
    schedule: Schedule, rng: random.Random
) -> tuple[Schedule, str] | None:
    events = list(schedule.events)
    candidates = [
        i
        for i, ev in enumerate(events)
        if ev.sender != schedule.root and ev.send_time > ZERO
    ]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    ev = events[victim]
    events[victim] = SendEvent(ZERO, ev.sender, ev.msg, ev.receiver)
    return (
        _rebuild(schedule, events),
        f"hasten: moved {ev} to t=0 (p{ev.sender} cannot hold "
        f"M{ev.msg + 1} yet)",
    )


def _clash(
    schedule: Schedule, rng: random.Random
) -> tuple[Schedule, str] | None:
    events = list(schedule.events)
    by_sender: dict[int, list[int]] = {}
    for i, ev in enumerate(events):
        by_sender.setdefault(ev.sender, []).append(i)
    multi = sorted(s for s, idxs in by_sender.items() if len(idxs) >= 2)
    if not multi:
        return None
    sender = rng.choice(multi)
    first, second = by_sender[sender][0], by_sender[sender][1]
    ev = events[second]
    moved = SendEvent(
        events[first].send_time, ev.sender, ev.msg, ev.receiver
    )
    events[second] = moved
    return (
        _rebuild(schedule, events),
        f"clash: re-timed {ev} to t={time_repr(moved.send_time)}, "
        f"colliding with {events[first]} on p{sender}'s send port",
    )


def _delay(
    schedule: Schedule, rng: random.Random
) -> tuple[Schedule, str] | None:
    events = list(schedule.events)
    lam = schedule.lam
    victim = max(
        range(len(events)), key=lambda i: events[i].arrival_time(lam)
    )
    ev = events[victim]
    events[victim] = SendEvent(
        ev.send_time + ONE, ev.sender, ev.msg, ev.receiver
    )
    return (
        _rebuild(schedule, events),
        f"delay: pushed {ev} one unit later "
        f"(new arrival t={time_repr(ev.arrival_time(lam) + ONE)})",
    )


_APPLY = {
    "drop": _drop,
    "hasten": _hasten,
    "clash": _clash,
    "delay": _delay,
}


def corrupt_schedule(
    schedule: Schedule, rng: random.Random
) -> tuple[Schedule, str]:
    """Apply one seeded mutation to *schedule*.

    Args:
        schedule: a pristine (presumed-valid) static schedule with at
            least one event.
        rng: the seeded source of all randomness; identical seeds yield
            identical corruptions on identical schedules.

    Returns:
        ``(corrupted, description)`` — the corrupted schedule is built
        with ``validate=False`` so the certifier gets first look.

    Raises:
        InvalidParameterError: the schedule has no events to corrupt.
    """
    if not schedule.events:
        raise InvalidParameterError("cannot corrupt an empty schedule")
    start = rng.randrange(len(MUTATIONS))
    # try the drawn mutation first; fall through the catalogue so every
    # seed yields *some* corruption even on degenerate schedules
    for offset in range(len(MUTATIONS)):
        name = MUTATIONS[(start + offset) % len(MUTATIONS)]
        outcome = _APPLY[name](schedule, rng)
        if outcome is not None:
            return outcome
    raise InvalidParameterError(
        "no mutation applies to this schedule"
    )  # pragma: no cover — drop always applies
