"""Failure artifacts: everything needed to re-live one divergence.

When the fuzzer certifies a config and :attr:`CertResult.violations` is
non-empty, :func:`write_failure_artifact` files a self-contained
directory:

``config.json``
    The :class:`~repro.conformance.certify.ConformanceConfig` (exact
    rational ``lambda`` as a string), the violation list, the oracle
    citation, the predicted/realized times, and — for chaos configs —
    the corruption description.  Everything a human needs at a glance.
``reproduce.py``
    A standalone script that re-evaluates the recorded config through
    :func:`~repro.conformance.certify.certify_config` and exits ``1``
    iff the violation reproduces.  It imports only ``repro``; run it
    with ``PYTHONPATH=src python <artifact>/reproduce.py`` from the repo
    root.  (It is *not* named ``repro.py`` — Python prepends the
    script's own directory to ``sys.path``, and a ``repro.py`` would
    shadow the ``repro`` package it needs to import.)  Because every
    random choice (grid sampling, chaos mutation) is derived from seeds
    stored *inside* the config, the script needs no other state.
``trace-<policy>.jsonl``
    The full simulation trace per contention policy, one JSON object
    per record (:func:`repro.obs.export.dump_jsonl`) — only when the
    fuzzer kept the finished systems.
``chrome-<policy>.json`` / ``chrome-static.json``
    Chrome trace-event JSON (``chrome://tracing`` / Perfetto) of the
    simulated run, or of the (possibly corrupted) static schedule when
    no simulation ran.

Artifact directories are named ``<family>-n<n>-m<m>-<hash>`` so repeated
fuzz runs do not collide; the hash covers the full config dict.
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path

from repro.obs.export import dump_jsonl, write_chrome_trace
from repro.types import time_repr

from repro.conformance.certify import CertResult
from repro.conformance.chaos import corrupt_schedule
from repro.conformance.oracles import get_oracle

__all__ = ["artifact_name", "write_failure_artifact"]

_REPRO_TEMPLATE = '''\
#!/usr/bin/env python3
"""Auto-generated conformance failure repro.

Re-certifies the recorded configuration and exits 1 iff the violation
reproduces.  Run from the repository root:

    PYTHONPATH=src python {name}/reproduce.py
"""

import sys

from repro.conformance import ConformanceConfig, certify_config

CONFIG = {config!r}

EXPECTED_VIOLATIONS = {violations!r}


def main() -> int:
    result = certify_config(ConformanceConfig.from_dict(CONFIG))
    print(result.summary())
    for violation in result.violations:
        print(f"  - {{violation}}")
    if result.ok:
        print("violation did NOT reproduce")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
'''


def artifact_name(result: CertResult) -> str:
    """Deterministic, collision-resistant directory name for a result."""
    cfg = result.config
    digest = hashlib.sha256(
        json.dumps(cfg.to_dict(), sort_keys=True).encode()
    ).hexdigest()[:10]
    return f"{cfg.family.lower()}-n{cfg.n}-m{cfg.m}-{digest}"


def write_failure_artifact(result: CertResult, root: "str | Path") -> Path:
    """File a failure artifact for *result* under *root*.

    Returns the artifact directory.  Never raises on partial data: a
    result without kept systems simply produces no simulation traces.
    """
    directory = Path(root) / artifact_name(result)
    directory.mkdir(parents=True, exist_ok=True)
    cfg = result.config

    summary = {
        "config": cfg.to_dict(),
        "citation": result.citation,
        "predicted": time_repr(result.predicted)
        if result.predicted is not None
        else None,
        "lower_bound": time_repr(result.lower_bound)
        if result.lower_bound is not None
        else None,
        "static_time": time_repr(result.static_time)
        if result.static_time is not None
        else None,
        "sim_times": {
            policy: time_repr(t) for policy, t in result.sim_times.items()
        },
        "corruption": result.corruption,
        "violations": result.violations,
    }
    (directory / "config.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )

    (directory / "reproduce.py").write_text(
        _REPRO_TEMPLATE.format(
            name=directory.name,
            config=cfg.to_dict(),
            violations=result.violations,
        )
    )

    for policy, system in result.systems.items():
        with open(directory / f"trace-{policy}.jsonl", "w") as fh:
            dump_jsonl(system.tracer, fh)
        write_chrome_trace(str(directory / f"chrome-{policy}.json"), system)

    if not result.systems and cfg.chaos_seed is not None:
        # no simulation ran; regenerate the corrupted static schedule
        # from the recorded seed so the trace is still inspectable
        oracle = get_oracle(cfg.family)
        if oracle.schedule is not None:
            pristine = oracle.schedule(cfg.n, cfg.m, cfg.lam_time)
            corrupted, _ = corrupt_schedule(
                pristine, random.Random(cfg.chaos_seed)
            )
            write_chrome_trace(
                str(directory / "chrome-static.json"), corrupted
            )

    return directory
