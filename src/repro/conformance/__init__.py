"""``repro.conformance`` — oracles, certification, and the fuzzer.

The conformance subsystem certifies every protocol family against the
paper's closed forms, from four independent directions at once:

* :mod:`repro.conformance.oracles` — the **oracle registry**: each
  family's exact (or upper-bound) running-time formula with its paper
  citation, applicability predicate, protocol factory, and independent
  static schedule builder.
* :mod:`repro.conformance.certify` — :func:`certify_config`:
  end-to-end certification of one ``(family, n, m, lambda, policy)``
  grid point — postal axioms, closed-form makespan, Lemma 5 population
  certificate, Lemma 8 lower bound, order preservation, the extended
  run validator under both contention policies, and static-vs-simulated
  differentials.
* :mod:`repro.conformance.chaos` — seeded schedule corruption, the
  self-test that proves the certifier can actually fail.
* :mod:`repro.conformance.fuzzer` — :func:`run_fuzz`: the seeded
  differential fuzzer over reproducible grids (rational ``lambda``
  included), with round-robin family coverage.  Every grid point owns a
  stable derived seed (:func:`repro.parallel.derive_seed`), so the
  sweep shards over worker processes (``run_fuzz(opts, jobs=N)``) with
  a report identical to the serial one.
* :mod:`repro.conformance.artifacts` — failure artifacts: a
  self-contained directory with the config, a standalone ``repro.py``
  that reproduces the violation from the recorded seed, and the
  JSONL / Chrome traces.

CLI entry point: ``python -m repro conformance`` (``--smoke`` for the
CI grid, ``--deep`` for the nightly one).  The oracle table and the
artifact format are documented in ``docs/conformance.md``.
"""

from repro.conformance.artifacts import artifact_name, write_failure_artifact
from repro.conformance.certify import (
    CertResult,
    ConformanceConfig,
    certify_config,
)
from repro.conformance.chaos import MUTATIONS, corrupt_schedule
from repro.conformance.fuzzer import (
    FamilyStats,
    FuzzOptions,
    FuzzReport,
    deep_options,
    point_rng,
    run_fuzz,
    sample_config,
    smoke_options,
)
from repro.conformance.oracles import (
    REGISTRY,
    Oracle,
    broadcast_families,
    collective_families,
    families,
    get_oracle,
    register,
)

__all__ = [
    "Oracle",
    "REGISTRY",
    "register",
    "get_oracle",
    "families",
    "broadcast_families",
    "collective_families",
    "ConformanceConfig",
    "CertResult",
    "certify_config",
    "MUTATIONS",
    "corrupt_schedule",
    "FuzzOptions",
    "FamilyStats",
    "FuzzReport",
    "smoke_options",
    "deep_options",
    "sample_config",
    "point_rng",
    "run_fuzz",
    "artifact_name",
    "write_failure_artifact",
]
