"""The oracle registry: every protocol family mapped to its closed form.

An :class:`Oracle` is the *certifiable identity* of one protocol family:
its exact (or upper-bound) running-time formula with the paper citation,
its applicability predicate over ``(n, m, lambda)``, the event-driven
:class:`~repro.algorithms.base.Protocol` factory, and — where one exists —
the independent static schedule builder the simulation is diffed against.

Registered families and their certificates:

========== ==================== =========================================
family     citation             predicted time
========== ==================== =========================================
BCAST      Theorem 6            ``f_lambda(n)`` (m = 1)
REPEAT     Lemma 10 / Cor. 11   ``m f_lambda(n) - (m-1)(lambda-1)``
PACK       Lemma 12 / Cor. 13   ``m f_{1+(lambda-1)/m}(n)``
PIPELINE-1 Lemma 14 / Cor. 15   ``m f_{lambda/m}(n) + (m-1)`` (m <= lambda)
PIPELINE-2 Lemma 16 / Cor. 17   ``lambda f_{m/lambda}(n) + (lambda-1)``
DTREE-LINE Lemma 18 (d = 1)     ``(m-1) + (n-1) lambda``
DTREE-BINARY  Lemma 18 (d = 2)  upper bound ``d(m-1)+(d-1+lambda)ceil(log_d n)``
DTREE-LATENCY Lemma 18          upper bound, ``d = ceil(lambda)+1``
STAR       Section 4.3 (d=n-1)  ``m(n-1) - 1 + lambda``
BINOMIAL   Section 1 baseline   exact split recursion (telephone optimum)
REDUCE     Cidon-Gopal-Kutten   ``f_lambda(n)`` (time-reversed BCAST)
SCATTER    Section 5            ``(n-2) + lambda``
GATHER     Section 5            ``(n-2) + lambda``
ALLTOALL   Section 5            ``(n-2) + lambda``
ALLREDUCE  combine + broadcast  ``2 f_lambda(n)``
BARRIER    combine + notify     ``2 f_lambda(n)``
ALLGATHER  Section 5 gossip UB  ``max(n-1, lambda-1) + pipeline_time(n, n)``
BRUCK-ALLGATHER  Bruck et al.   ``(n-1) + ceil(lg n)(lambda-1)``
GOSSIP-RING Section 5 baseline  ``(n-1) lambda``
========== ==================== =========================================

Broadcast families additionally certify the Lemma 5 population bound
``N(t) <= F_lambda(t)`` per message and the Lemma 8 lower bound
``(m-1) + f_lambda(n)`` (Corollary 9's explicit forms are implied).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.algorithms import (
    BcastProtocol,
    BinomialProtocol,
    DTreeProtocol,
    PackProtocol,
    PipelineProtocol,
    Protocol,
    RepeatProtocol,
    StarProtocol,
    binomial_schedule,
    binomial_time,
    star_time,
)
from repro.collectives import (
    AllgatherProtocol,
    AllreduceProtocol,
    AllToAllProtocol,
    allgather_time,
    alltoall_time,
    allreduce_time,
    barrier_time,
    BarrierProtocol,
    BruckAllgatherProtocol,
    bruck_time,
    GatherProtocol,
    gather_time,
    GossipRingProtocol,
    gossip_ring_time,
    ReduceProtocol,
    reduce_time,
    ScatterProtocol,
    scatter_time,
)
from repro.core.analysis import (
    bcast_time,
    dtree_upper,
    multi_lower_bound,
    pack_time,
    pipeline_time,
    repeat_time,
)
from repro.core.bcast import bcast_schedule
from repro.core.dtree import dtree_schedule
from repro.core.multi import pack_schedule, pipeline_schedule, repeat_schedule
from repro.core.schedule import Schedule
from repro.errors import InvalidParameterError
from repro.types import Time, TimeLike, as_time

__all__ = [
    "Oracle",
    "register",
    "get_oracle",
    "families",
    "broadcast_families",
    "collective_families",
    "REGISTRY",
]


@dataclass(frozen=True)
class Oracle:
    """One protocol family's certifiable identity.

    Attributes:
        family: registry key, e.g. ``"PIPELINE-1"``.
        citation: the paper result the formula comes from.
        exact: True when :attr:`time` is the family's exact running time
            (certified with ``==``); False when it is an upper bound
            (certified with ``<=`` plus equality against the
            deterministic builder).
        semantics: ``"broadcast"`` (full schedule certification applies)
            or the collective's label (completion + port/delivery audits).
        applicable: predicate over ``(n, m, lam)`` — e.g. ``m <= lambda``
            for PIPELINE-1.
        time: ``(n, m, lam) -> Time`` — the closed form (or upper bound).
        protocol: ``(n, m, lam) -> Protocol`` — the event-driven program.
        schedule: optional ``(n, m, lam) -> Schedule`` — the independent
            static builder (constructed **unvalidated**; the certifier
            validates, so a buggy builder cannot hide behind its own
            constructor).
        order_preserving: the family guarantees index-order delivery.
        supports_queued: meaningful to re-run under the queued contention
            policy (every registered family is collision-free, so queued
            and strict must realize identical arrival times).
    """

    family: str
    citation: str
    exact: bool
    semantics: str
    applicable: Callable[[int, int, Time], bool]
    time: Callable[[int, int, Time], Time]
    protocol: Callable[[int, int, Time], Protocol]
    schedule: Callable[[int, int, Time], Schedule] | None = None
    order_preserving: bool = True
    supports_queued: bool = True

    def lower_bound(self, n: int, m: int, lam: Time) -> Time | None:
        """The Lemma 8 certificate ``(m-1) + f_lambda(n)`` for broadcast
        semantics; ``None`` for collectives (their optimality arguments
        are family-specific and encoded in :attr:`time`)."""
        if self.semantics != "broadcast":
            return None
        return multi_lower_bound(n, m, lam)

    def check_applicable(self, n: int, m: int, lam: TimeLike) -> None:
        lam_t = as_time(lam)
        if not self.applicable(n, m, lam_t):
            raise InvalidParameterError(
                f"{self.family} is not applicable at (n={n}, m={m}, "
                f"lambda={lam_t})"
            )


#: The registry, keyed by family name.
REGISTRY: dict[str, Oracle] = {}


def register(oracle: Oracle) -> Oracle:
    """Add *oracle* to the registry (rejecting duplicate names)."""
    if oracle.family in REGISTRY:
        raise InvalidParameterError(
            f"oracle {oracle.family!r} is already registered"
        )
    REGISTRY[oracle.family] = oracle
    return oracle


def get_oracle(family: str) -> Oracle:
    """Look up a family (case-insensitive)."""
    key = family.upper()
    if key not in REGISTRY:
        raise InvalidParameterError(
            f"unknown protocol family {family!r} "
            f"(registered: {', '.join(sorted(REGISTRY))})"
        )
    return REGISTRY[key]


def families() -> tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(REGISTRY))


def broadcast_families() -> tuple[str, ...]:
    return tuple(
        sorted(f for f, o in REGISTRY.items() if o.semantics == "broadcast")
    )


def collective_families() -> tuple[str, ...]:
    return tuple(
        sorted(f for f, o in REGISTRY.items() if o.semantics != "broadcast")
    )


# ----------------------------------------------------------- registrations


def _any(n: int, m: int, lam: Time) -> bool:
    return True


def _single_message(n: int, m: int, lam: Time) -> bool:
    return m == 1


register(
    Oracle(
        family="BCAST",
        citation="Theorem 6",
        exact=True,
        semantics="broadcast",
        applicable=_single_message,
        time=lambda n, m, lam: bcast_time(n, lam),
        protocol=lambda n, m, lam: BcastProtocol(n, lam),
        schedule=lambda n, m, lam: bcast_schedule(n, lam, validate=False),
    )
)

register(
    Oracle(
        family="REPEAT",
        citation="Lemma 10 / Corollary 11",
        exact=True,
        semantics="broadcast",
        applicable=_any,
        time=repeat_time,
        protocol=lambda n, m, lam: RepeatProtocol(n, m, lam),
        schedule=lambda n, m, lam: repeat_schedule(n, m, lam, validate=False),
    )
)

register(
    Oracle(
        family="PACK",
        citation="Lemma 12 / Corollary 13",
        exact=True,
        semantics="broadcast",
        applicable=_any,
        time=pack_time,
        protocol=lambda n, m, lam: PackProtocol(n, m, lam),
        schedule=lambda n, m, lam: pack_schedule(n, m, lam, validate=False),
    )
)

register(
    Oracle(
        family="PIPELINE-1",
        citation="Lemma 14 / Corollary 15",
        exact=True,
        semantics="broadcast",
        applicable=lambda n, m, lam: m <= lam,
        time=pipeline_time,
        protocol=lambda n, m, lam: PipelineProtocol(n, m, lam),
        schedule=lambda n, m, lam: pipeline_schedule(n, m, lam, validate=False),
    )
)

register(
    Oracle(
        family="PIPELINE-2",
        citation="Lemma 16 / Corollary 17",
        exact=True,
        semantics="broadcast",
        applicable=lambda n, m, lam: m >= lam,
        time=pipeline_time,
        protocol=lambda n, m, lam: PipelineProtocol(n, m, lam),
        schedule=lambda n, m, lam: pipeline_schedule(n, m, lam, validate=False),
    )
)

register(
    Oracle(
        family="DTREE-LINE",
        citation="Lemma 18 (d = 1, exact)",
        exact=True,
        semantics="broadcast",
        applicable=_any,
        time=lambda n, m, lam: dtree_upper(n, m, lam, 1),
        protocol=lambda n, m, lam: DTreeProtocol(n, m, lam, 1),
        schedule=lambda n, m, lam: dtree_schedule(n, m, lam, 1, validate=False),
    )
)

register(
    Oracle(
        family="DTREE-BINARY",
        citation="Lemma 18 (d = 2, upper bound)",
        exact=False,
        semantics="broadcast",
        applicable=lambda n, m, lam: n >= 2,
        time=lambda n, m, lam: dtree_upper(n, m, lam, 2),
        protocol=lambda n, m, lam: DTreeProtocol(n, m, lam, 2),
        schedule=lambda n, m, lam: dtree_schedule(n, m, lam, 2, validate=False),
    )
)

register(
    Oracle(
        family="DTREE-LATENCY",
        citation="Lemma 18 (d = ceil(lambda)+1, upper bound)",
        exact=False,
        semantics="broadcast",
        applicable=lambda n, m, lam: n >= 2 and math.ceil(lam) + 1 <= n - 1,
        time=lambda n, m, lam: dtree_upper(n, m, lam, math.ceil(lam) + 1),
        protocol=lambda n, m, lam: DTreeProtocol(
            n, m, lam, math.ceil(lam) + 1
        ),
        schedule=lambda n, m, lam: dtree_schedule(
            n, m, lam, math.ceil(lam) + 1, validate=False
        ),
    )
)

register(
    Oracle(
        family="STAR",
        citation="Section 4.3 (d = n-1)",
        exact=True,
        semantics="broadcast",
        applicable=_any,
        time=star_time,
        protocol=lambda n, m, lam: StarProtocol(n, m, lam),
        schedule=lambda n, m, lam: dtree_schedule(
            n, m, lam, max(1, n - 1), validate=False
        ),
    )
)

register(
    Oracle(
        family="BINOMIAL",
        citation="telephone-model baseline (Section 1)",
        exact=True,
        semantics="broadcast",
        applicable=_single_message,
        time=lambda n, m, lam: binomial_time(n, lam),
        protocol=lambda n, m, lam: BinomialProtocol(n, lam),
        schedule=lambda n, m, lam: binomial_schedule(n, lam, validate=False),
    )
)


# collectives — completion certified against the closed form; the port and
# delivery audits still apply, but the broadcast schedule IR does not

register(
    Oracle(
        family="REDUCE",
        citation="reversal of Theorem 6 (Cidon-Gopal-Kutten [6])",
        exact=True,
        semantics="reduction",
        applicable=lambda n, m, lam: m == 1 and n >= 1,
        time=lambda n, m, lam: reduce_time(n, lam),
        protocol=lambda n, m, lam: ReduceProtocol(n, lam),
    )
)

register(
    Oracle(
        family="SCATTER",
        citation="Section 5 (direct star, optimal)",
        exact=True,
        semantics="scatter",
        applicable=_single_message,
        time=lambda n, m, lam: scatter_time(n, lam),
        protocol=lambda n, m, lam: ScatterProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="GATHER",
        citation="Section 5 (direct, optimal)",
        exact=True,
        semantics="gather",
        applicable=_single_message,
        time=lambda n, m, lam: gather_time(n, lam),
        protocol=lambda n, m, lam: GatherProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="ALLTOALL",
        citation="Section 5 (rotation, optimal)",
        exact=True,
        semantics="alltoall",
        applicable=_single_message,
        time=lambda n, m, lam: alltoall_time(n, lam),
        protocol=lambda n, m, lam: AllToAllProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="ALLREDUCE",
        citation="combine + broadcast (2x combine LB)",
        exact=True,
        semantics="allreduce",
        applicable=_single_message,
        time=lambda n, m, lam: allreduce_time(n, lam),
        protocol=lambda n, m, lam: AllreduceProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="BARRIER",
        citation="combine + notify",
        exact=True,
        semantics="barrier",
        applicable=_single_message,
        time=lambda n, m, lam: barrier_time(n, lam),
        protocol=lambda n, m, lam: BarrierProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="ALLGATHER",
        citation="Section 5 gossip upper bound (gather + PIPELINE)",
        exact=True,
        semantics="allgather",
        applicable=_single_message,
        time=lambda n, m, lam: allgather_time(n, lam),
        protocol=lambda n, m, lam: AllgatherProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="BRUCK-ALLGATHER",
        citation="Bruck et al. doubling rounds (Section 5 gossip)",
        exact=True,
        semantics="allgather",
        applicable=_single_message,
        time=lambda n, m, lam: bruck_time(n, lam),
        protocol=lambda n, m, lam: BruckAllgatherProtocol(n, lam),
        order_preserving=False,
    )
)

register(
    Oracle(
        family="GOSSIP-RING",
        citation="pipelined ring baseline (Section 5 gossip)",
        exact=True,
        semantics="gossip",
        applicable=_single_message,
        time=lambda n, m, lam: gossip_ring_time(n, lam),
        protocol=lambda n, m, lam: GossipRingProtocol(n, lam),
        order_preserving=False,
    )
)
