"""End-to-end certification of one ``(family, n, m, lambda, policy)``.

:func:`certify_config` is the heart of the conformance subsystem: given a
:class:`ConformanceConfig` it

1. builds the family's **static schedule** (unvalidated) and certifies it
   from scratch: postal axioms (Definitions 1-2 via
   :meth:`Schedule.validate`), makespan against the oracle's closed form
   (``==`` for exact families, ``<=`` + builder equality for upper-bound
   families), order preservation, the **Lemma 5 certificate**
   ``N_k(t) <= F_lambda(t)`` for every message ``k``, and the **Lemma 8
   lower bound** ``(m-1) + f_lambda(n)``;
2. runs the family's **event-driven protocol** on a live
   :class:`~repro.postal.machine.PostalSystem` under the requested
   contention policies (strict / queued / both), auditing the run with the
   extended :func:`repro.postal.validator.validate_run` and diffing the
   realized execution against both the closed form and the static builder
   (the *differential* part);
3. cross-checks the trace-derived :class:`~repro.obs.metrics.RunMetrics`
   against the realized schedule.

A *chaos* config (``chaos_seed`` set) instead corrupts the static
schedule with one seeded mutation (:mod:`repro.conformance.chaos`) and
expects the same machinery to flag it — the self-test that proves the
certifier can actually fail.

Nothing here raises on a conformance violation; every divergence becomes
a string in :attr:`CertResult.violations`, so one failure cannot mask
another and the fuzzer can file a complete failure artifact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.fibfunc import postal_F
from repro.core.orderpres import check_order_preserving
from repro.core.schedule import Schedule
from repro.errors import InvalidParameterError, ReproError
from repro.obs.metrics import cross_check_metrics
from repro.postal.machine import ContentionPolicy
from repro.postal.runner import ProtocolResult, run_protocol
from repro.postal.validator import validate_run
from repro.types import Time, as_time, time_repr

from repro.conformance.chaos import corrupt_schedule
from repro.conformance.oracles import Oracle, get_oracle

__all__ = ["ConformanceConfig", "CertResult", "certify_config"]

#: Accepted values of :attr:`ConformanceConfig.policy`.
POLICIES = ("strict", "queued", "both")


@dataclass(frozen=True)
class ConformanceConfig:
    """One point of the fuzz grid.  Hashable and trivially serializable —
    a failure artifact's repro script is just this dataclass re-evaluated.

    Attributes:
        family: oracle-registry key (e.g. ``"PIPELINE-2"``).
        n: processor count.
        m: message count.
        lam: latency (anything :func:`~repro.types.as_time` accepts —
            ``"5/2"`` round-trips exactly through JSON).
        policy: ``"strict"``, ``"queued"``, or ``"both"`` (run under each
            and diff).
        chaos_seed: when set, corrupt the static schedule with one
            mutation drawn from ``random.Random(chaos_seed)`` before
            certifying — the certifier *must* then report a violation.
    """

    family: str
    n: int
    m: int
    lam: str
    policy: str = "strict"
    chaos_seed: int | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        as_time(self.lam)  # fail fast on garbage

    @property
    def lam_time(self) -> Time:
        return as_time(self.lam)

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "n": self.n,
            "m": self.m,
            "lam": str(self.lam),
            "policy": self.policy,
            "chaos_seed": self.chaos_seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ConformanceConfig":
        return cls(
            family=data["family"],
            n=int(data["n"]),
            m=int(data["m"]),
            lam=str(data["lam"]),
            policy=data.get("policy", "strict"),
            chaos_seed=data.get("chaos_seed"),
        )


@dataclass
class CertResult:
    """Everything one certification learned.

    ``violations`` empty means the run is **certified**: every layer
    (schedule arithmetic, simulation, ports, deliveries, metrics) agrees
    with the paper's closed forms and bounds.
    """

    config: ConformanceConfig
    citation: str = ""
    predicted: Time | None = None
    lower_bound: Time | None = None
    static_time: Time | None = None
    sim_times: dict[str, Time] = field(default_factory=dict)
    corruption: str | None = None
    violations: list[str] = field(default_factory=list)
    systems: dict[str, Any] = field(default_factory=dict)  # policy -> system

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        cfg = self.config
        head = (
            f"{cfg.family} n={cfg.n} m={cfg.m} lambda={cfg.lam} "
            f"policy={cfg.policy}"
        )
        if self.ok:
            return f"{head}: certified (T={time_repr(self.predicted)})"
        return f"{head}: {len(self.violations)} violation(s)"


def _check(result: CertResult, label: str, fn) -> bool:
    """Run one check, folding any model error into the violation list.
    Returns True when the check ran clean."""
    try:
        fn()
    except ReproError as exc:
        result.violations.append(f"{label}: {type(exc).__name__}: {exc}")
        return False
    return True


def _certify_schedule(
    result: CertResult, oracle: Oracle, schedule: Schedule
) -> None:
    """Certify a static schedule from first principles."""
    cfg = result.config
    lam = cfg.lam_time

    _check(result, "postal axioms", schedule.validate)

    completion = schedule.completion_time()
    result.static_time = completion
    predicted = result.predicted
    assert predicted is not None
    if oracle.exact:
        if completion != predicted:
            result.violations.append(
                f"closed form: static makespan {time_repr(completion)} != "
                f"{oracle.citation} prediction {time_repr(predicted)}"
            )
    elif completion > predicted:
        result.violations.append(
            f"upper bound: static makespan {time_repr(completion)} exceeds "
            f"{oracle.citation} bound {time_repr(predicted)}"
        )

    if oracle.order_preserving and cfg.m >= 2:
        _check(
            result,
            "order preservation",
            lambda: check_order_preserving(schedule),
        )

    # Lemma 5 certificate: for every message, the informed population at
    # each arrival instant never exceeds F_lambda(t)
    def lemma5() -> None:
        per_msg: dict[int, list[Time]] = {}
        for (proc, k), arr in schedule.arrivals().items():
            if proc != schedule.root:
                per_msg.setdefault(k, []).append(arr)
        for k, arrivals in per_msg.items():
            arrivals.sort()
            informed = 1  # the root
            for t in arrivals:
                informed += 1
                bound = postal_F(lam, t)
                if informed > bound:
                    result.violations.append(
                        f"Lemma 5: {informed} processors know M{k + 1} at "
                        f"t={time_repr(t)} but F_lambda(t) = {bound}"
                    )
                    return

    _check(result, "Lemma 5", lemma5)

    lb = result.lower_bound
    if lb is not None and completion < lb:
        result.violations.append(
            f"Lemma 8: static makespan {time_repr(completion)} beats the "
            f"lower bound {time_repr(lb)} — the certifier or the model "
            f"is broken"
        )


def _certify_simulation(
    result: CertResult,
    oracle: Oracle,
    policy_name: str,
    *,
    keep_system: bool,
    backend: str = "exact",
) -> None:
    cfg = result.config
    policy = (
        ContentionPolicy.STRICT
        if policy_name == "strict"
        else ContentionPolicy.QUEUED
    )
    protocol = oracle.protocol(cfg.n, cfg.m, cfg.lam_time)
    try:
        run: ProtocolResult = run_protocol(
            protocol, policy=policy, backend=backend
        )
    except ReproError as exc:
        result.violations.append(
            f"simulation[{policy_name}]: {type(exc).__name__}: {exc}"
        )
        return
    if keep_system:
        result.systems[policy_name] = run.system
    completion = run.completion_time
    result.sim_times[policy_name] = completion

    predicted = result.predicted
    assert predicted is not None
    if oracle.exact:
        if completion != predicted:
            result.violations.append(
                f"simulation[{policy_name}]: makespan "
                f"{time_repr(completion)} != {oracle.citation} prediction "
                f"{time_repr(predicted)}"
            )
    else:
        if completion > predicted:
            result.violations.append(
                f"simulation[{policy_name}]: makespan "
                f"{time_repr(completion)} exceeds {oracle.citation} bound "
                f"{time_repr(predicted)}"
            )
        if (
            result.static_time is not None
            and completion != result.static_time
        ):
            result.violations.append(
                f"differential[{policy_name}]: simulated makespan "
                f"{time_repr(completion)} != static builder "
                f"{time_repr(result.static_time)}"
            )

    if oracle.semantics == "broadcast":
        # the extended validator: schedule rebuild under strict, port +
        # delivery + coverage audits under queued
        _check(
            result,
            f"validate_run[{policy_name}]",
            lambda: validate_run(
                run.system, m=protocol.m, root=protocol.root
            ),
        )
        if run.schedule is not None:
            if oracle.order_preserving and cfg.m >= 2:
                _check(
                    result,
                    f"order preservation[{policy_name}]",
                    lambda: check_order_preserving(run.schedule),
                )
            if run.metrics is not None:
                for problem in cross_check_metrics(
                    run.metrics, run.schedule
                ):
                    result.violations.append(
                        f"metrics[{policy_name}]: {problem}"
                    )
    else:
        # collectives: the runner audited the ports; add the delivery-
        # record audit (valid under both policies)
        from repro.postal.validator import audit_deliveries

        _check(
            result,
            f"delivery audit[{policy_name}]",
            lambda: audit_deliveries(run.system),
        )

    lb = result.lower_bound
    if lb is not None and completion < lb:
        result.violations.append(
            f"Lemma 8[{policy_name}]: simulated makespan "
            f"{time_repr(completion)} beats the lower bound {time_repr(lb)}"
        )


def certify_config(
    config: ConformanceConfig,
    *,
    keep_system: bool = False,
    backend: str = "exact",
) -> CertResult:
    """Certify one configuration end to end.  Never raises on a model
    violation — inspect :attr:`CertResult.violations`.

    Args:
        config: the grid point (validated against the oracle's
            applicability predicate).
        keep_system: retain the finished :class:`PostalSystem` per policy
            in :attr:`CertResult.systems` so a failure artifact can dump
            the trace (costs memory; the fuzzer only sets it when it
            intends to write artifacts).
        backend: execution lane for the simulation leg (any of
            :data:`repro.postal.runner.BACKENDS`) — the certificates are
            backend-blind, so running the fuzz grid under ``"turbo"`` or
            ``"replay"`` differentially pins those lanes against every
            closed form.
    """
    oracle = get_oracle(config.family)
    oracle.check_applicable(config.n, config.m, config.lam_time)
    result = CertResult(config=config, citation=oracle.citation)
    lam = config.lam_time
    result.predicted = oracle.time(config.n, config.m, lam)
    result.lower_bound = oracle.lower_bound(config.n, config.m, lam)

    if config.chaos_seed is not None:
        if oracle.schedule is None:
            raise InvalidParameterError(
                f"{config.family} has no static builder to corrupt"
            )
        pristine = oracle.schedule(config.n, config.m, lam)
        if not pristine.events:
            raise InvalidParameterError(
                "cannot corrupt an empty schedule (n must be >= 2)"
            )
        corrupted, description = corrupt_schedule(
            pristine, random.Random(config.chaos_seed)
        )
        result.corruption = description
        _certify_schedule(result, oracle, corrupted)
        return result

    if oracle.schedule is not None:
        schedule = oracle.schedule(config.n, config.m, lam)
        _certify_schedule(result, oracle, schedule)

    if config.policy in ("strict", "both"):
        _certify_simulation(
            result, oracle, "strict", keep_system=keep_system,
            backend=backend,
        )
    if config.policy in ("queued", "both") and oracle.supports_queued:
        _certify_simulation(
            result, oracle, "queued", keep_system=keep_system,
            backend=backend,
        )
    if config.policy == "both":
        strict_t = result.sim_times.get("strict")
        queued_t = result.sim_times.get("queued")
        if (
            strict_t is not None
            and queued_t is not None
            and strict_t != queued_t
        ):
            result.violations.append(
                f"differential[policies]: strict makespan "
                f"{time_repr(strict_t)} != queued makespan "
                f"{time_repr(queued_t)} — a collision-free protocol must "
                f"not slow down behind a NIC queue"
            )
    return result
