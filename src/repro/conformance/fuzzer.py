"""The seeded differential fuzzer.

:func:`run_fuzz` walks a reproducible grid of
:class:`~repro.conformance.certify.ConformanceConfig` points — families
round-robin (so even a tiny smoke run covers *every* registered family),
parameters drawn from one ``random.Random(seed)`` — and certifies each
point with :func:`~repro.conformance.certify.certify_config`.

Everything is derived from the single seed: the family rotation, the
``(n, m, lambda)`` draws (rational ``lambda`` included), the contention
policy, and any chaos-mutation seeds.  Two runs with the same options
certify the same configs in the same order and — because the simulator
itself is deterministic — produce byte-identical failure artifacts.

Sampling is *constructive* per family: PIPELINE-1 draws ``m`` from
``1..floor(lambda)``, PIPELINE-2 from ``ceil(lambda)..``, DTREE-LATENCY
draws ``n >= ceil(lambda)+2`` so the tree degree is not clamped, and the
single-message families pin ``m = 1``.  Every emitted config therefore
satisfies its oracle's applicability predicate by construction; a
sampler bug surfaces as an :class:`InvalidParameterError` from the
certifier, not as silent grid shrinkage.

Chaos points (``chaos_rate``) invert the contract: the certifier *must*
report a violation there.  A chaos config that certifies clean is the
real failure — it means the certifier cannot see corruption — and is
reported as ``chaos_missed``.
"""

from __future__ import annotations

import random
import time as _wallclock
from dataclasses import dataclass, field, replace
from fractions import Fraction
from math import ceil, floor
from pathlib import Path

from repro.errors import InvalidParameterError

from repro.conformance.artifacts import write_failure_artifact
from repro.conformance.certify import (
    POLICIES,
    CertResult,
    ConformanceConfig,
    certify_config,
)
from repro.conformance.oracles import families, get_oracle

__all__ = [
    "FuzzOptions",
    "FamilyStats",
    "FuzzReport",
    "smoke_options",
    "deep_options",
    "sample_config",
    "run_fuzz",
]


@dataclass(frozen=True)
class FuzzOptions:
    """Everything that determines a fuzz run (hence its reproducibility).

    Attributes:
        seed: master seed; all randomness derives from it.
        iterations: number of configs to certify.
        families: restrict to these families (default: all registered).
        max_n: processor-count ceiling (floor is 2).
        max_m: message-count ceiling for multi-message families.
        max_lam: ceiling on ``lambda`` (as an integer part).
        max_denominator: rational ``lambda`` denominators are drawn from
            ``1..max_denominator`` — ``1`` disables rational latencies.
        chaos_rate: probability that a point is corrupted (chaos) —
            only exact families with a static builder are eligible.
        policies: contention policies to draw from.
        artifact_dir: when set, keep finished systems and file failure
            artifacts (including chaos detections) under this directory.
    """

    seed: int = 0
    iterations: int = 64
    families: tuple[str, ...] | None = None
    max_n: int = 12
    max_m: int = 4
    max_lam: int = 5
    max_denominator: int = 3
    chaos_rate: float = 0.0
    policies: tuple[str, ...] = POLICIES
    artifact_dir: str | None = None


def smoke_options(seed: int = 0, artifact_dir: str | None = None) -> FuzzOptions:
    """The CI grid: every family, rational lambdas, a few seconds."""
    return FuzzOptions(
        seed=seed,
        iterations=4 * len(families()),
        max_n=10,
        max_m=3,
        max_lam=4,
        max_denominator=3,
        artifact_dir=artifact_dir,
    )


def deep_options(seed: int = 0, artifact_dir: str | None = None) -> FuzzOptions:
    """The nightly grid: larger machines, longer rotation, some chaos."""
    return FuzzOptions(
        seed=seed,
        iterations=40 * len(families()),
        max_n=33,
        max_m=6,
        max_lam=8,
        max_denominator=4,
        chaos_rate=0.05,
        artifact_dir=artifact_dir,
    )


@dataclass
class FamilyStats:
    """Per-family tallies for the report table."""

    runs: int = 0
    certified: int = 0
    failed: int = 0
    chaos_detected: int = 0
    chaos_missed: int = 0


@dataclass
class FuzzReport:
    """What one fuzz run learned.

    ``ok`` means no *real* failures: every normal config certified clean
    and every chaos config was caught.  Chaos detections are successes
    (they prove the certifier can fail) and never flip ``ok``.
    """

    options: FuzzOptions
    stats: dict[str, FamilyStats] = field(default_factory=dict)
    failures: list[CertResult] = field(default_factory=list)
    chaos_results: list[CertResult] = field(default_factory=list)
    artifacts: list[Path] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_runs(self) -> int:
        return sum(s.runs for s in self.stats.values())

    def summary(self) -> str:
        certified = sum(s.certified for s in self.stats.values())
        caught = sum(s.chaos_detected for s in self.stats.values())
        head = (
            f"seed={self.options.seed}: {certified}/{self.total_runs} "
            f"certified across {len(self.stats)} families "
            f"in {self.elapsed:.1f}s"
        )
        if caught:
            head += f", {caught} chaos corruption(s) caught"
        if self.failures:
            head += f", {len(self.failures)} FAILURE(S)"
        return head


# ---------------------------------------------------------------- sampling


def _sample_lam(rng: random.Random, opts: FuzzOptions) -> Fraction:
    """Draw ``lambda >= 1`` with denominator ``<= max_denominator``."""
    den = rng.randint(1, max(1, opts.max_denominator))
    num = rng.randint(den, max(den, opts.max_lam * den))
    return Fraction(num, den)


def sample_config(
    rng: random.Random, family: str, opts: FuzzOptions
) -> ConformanceConfig:
    """Draw one applicable-by-construction config for *family*."""
    oracle = get_oracle(family)
    lam = _sample_lam(rng, opts)
    n = rng.randint(2, max(2, opts.max_n))
    m = rng.randint(1, max(1, opts.max_m))

    key = oracle.family
    if key == "PIPELINE-1":
        m = rng.randint(1, max(1, floor(lam)))
    elif key == "PIPELINE-2":
        lo = ceil(lam)
        m = rng.randint(lo, max(lo, opts.max_m))
    elif key == "DTREE-LATENCY":
        lo = ceil(lam) + 2
        n = rng.randint(lo, max(lo, opts.max_n))
    elif not oracle.applicable(n, m, Fraction(lam)):
        # single-message families (BCAST, BINOMIAL, collectives)
        m = 1

    policy = rng.choice(list(opts.policies))

    chaos_seed: int | None = None
    chaos_draw = rng.random()  # always drawn: keeps the stream aligned
    if (
        opts.chaos_rate > 0
        and chaos_draw < opts.chaos_rate
        and oracle.exact
        and oracle.schedule is not None
    ):
        chaos_seed = rng.randrange(2**32)

    config = ConformanceConfig(
        family=key,
        n=n,
        m=m,
        lam=str(lam),
        policy=policy,
        chaos_seed=chaos_seed,
    )
    oracle.check_applicable(config.n, config.m, config.lam_time)
    return config


# ---------------------------------------------------------------- the run


def run_fuzz(opts: FuzzOptions) -> FuzzReport:
    """Certify ``opts.iterations`` seeded grid points.

    Never raises on a conformance violation; inspect
    :attr:`FuzzReport.failures`.  A sampler or registry bug (an
    inapplicable config reaching the certifier) *does* raise — that is
    an infrastructure failure, not a model divergence.
    """
    chosen = opts.families if opts.families is not None else families()
    if not chosen:
        raise InvalidParameterError("no families to fuzz")
    chosen = tuple(get_oracle(f).family for f in chosen)  # canonicalize

    rng = random.Random(opts.seed)
    report = FuzzReport(options=opts)
    keep = opts.artifact_dir is not None
    started = _wallclock.perf_counter()

    for i in range(opts.iterations):
        family = chosen[i % len(chosen)]
        config = sample_config(rng, family, opts)
        result = certify_config(config, keep_system=keep)
        stats = report.stats.setdefault(family, FamilyStats())
        stats.runs += 1

        if config.chaos_seed is not None:
            report.chaos_results.append(result)
            if result.ok:
                # the real failure: corruption went undetected
                stats.chaos_missed += 1
                result.violations.append(
                    f"chaos: corruption {result.corruption!r} went "
                    f"undetected by the certifier"
                )
                report.failures.append(result)
            else:
                stats.chaos_detected += 1
            if keep:
                report.artifacts.append(
                    write_failure_artifact(result, opts.artifact_dir)
                )
        elif result.ok:
            stats.certified += 1
        else:
            stats.failed += 1
            report.failures.append(result)
            if keep:
                report.artifacts.append(
                    write_failure_artifact(result, opts.artifact_dir)
                )
        result.systems.clear()  # free the kept machines

    report.elapsed = _wallclock.perf_counter() - started
    return report


def _replay(opts: FuzzOptions) -> FuzzOptions:  # pragma: no cover - helper
    """Options for replaying a run without artifacts (debug aid)."""
    return replace(opts, artifact_dir=None)
