"""The seeded differential fuzzer.

:func:`run_fuzz` walks a reproducible grid of
:class:`~repro.conformance.certify.ConformanceConfig` points — families
round-robin (so even a tiny smoke run covers *every* registered family)
— and certifies each point with
:func:`~repro.conformance.certify.certify_config`.

Everything is derived from the single master seed, *per point*: grid
point ``i`` draws its ``(n, m, lambda)``, contention policy, and any
chaos-mutation seed from ``random.Random(derive_seed(seed, "fuzz", i))``
(:func:`repro.parallel.derive_seed`, a stable SHA-256 hash).  Because no
point consumes another point's randomness, the grid is identical however
the sweep is executed: serial, ``jobs=4``, or resumed elsewhere — same
configs, same order after the ordered merge, and (the simulator itself
being deterministic) byte-identical failure artifacts.

Sampling is *constructive* per family: PIPELINE-1 draws ``m`` from
``1..floor(lambda)``, PIPELINE-2 from ``ceil(lambda)..``, DTREE-LATENCY
draws ``n >= ceil(lambda)+2`` so the tree degree is not clamped, and the
single-message families pin ``m = 1``.  Every emitted config therefore
satisfies its oracle's applicability predicate by construction; a
sampler bug surfaces as an :class:`InvalidParameterError` from the
certifier, not as silent grid shrinkage.

Chaos points (``chaos_rate``) invert the contract: the certifier *must*
report a violation there.  A chaos config that certifies clean is the
real failure — it means the certifier cannot see corruption — and is
reported as ``chaos_missed``.
"""

from __future__ import annotations

import random
import time as _wallclock
from dataclasses import dataclass, field, replace
from fractions import Fraction
from math import ceil, floor
from pathlib import Path

from repro.errors import InvalidParameterError

from repro.conformance.artifacts import write_failure_artifact
from repro.conformance.certify import (
    POLICIES,
    CertResult,
    ConformanceConfig,
    certify_config,
)
from repro.conformance.oracles import families, get_oracle
from repro.parallel import derive_seed, parallel_map

__all__ = [
    "FuzzOptions",
    "FamilyStats",
    "FuzzReport",
    "smoke_options",
    "deep_options",
    "sample_config",
    "point_rng",
    "run_fuzz",
]


@dataclass(frozen=True)
class FuzzOptions:
    """Everything that determines a fuzz run (hence its reproducibility).

    Attributes:
        seed: master seed; all randomness derives from it.
        iterations: number of configs to certify.
        families: restrict to these families (default: all registered).
        max_n: processor-count ceiling (floor is 2).
        max_m: message-count ceiling for multi-message families.
        max_lam: ceiling on ``lambda`` (as an integer part).
        max_denominator: rational ``lambda`` denominators are drawn from
            ``1..max_denominator`` — ``1`` disables rational latencies.
        chaos_rate: probability that a point is corrupted (chaos) —
            only exact families with a static builder are eligible.
        policies: contention policies to draw from.
        artifact_dir: when set, keep finished systems and file failure
            artifacts (including chaos detections) under this directory.
        backend: execution lane for the simulation leg (``"exact"``,
            ``"turbo"``, or ``"replay"``) — the certificates are
            backend-blind, so fuzzing under an alternate lane pins it
            differentially against every closed form.
        batch: pre-sample the whole grid in the parent (the per-point
            seed derivation makes the pre-sampled configs identical to
            what each worker would draw), compile each distinct plan
            once, and hand workers zero-copy shared-memory handles
            instead of letting every worker rebuild every plan.
            Requires ``backend="replay"`` — the only lane that executes
            plans.  The report is byte-identical with or without it.
    """

    seed: int = 0
    iterations: int = 64
    families: tuple[str, ...] | None = None
    max_n: int = 12
    max_m: int = 4
    max_lam: int = 5
    max_denominator: int = 3
    chaos_rate: float = 0.0
    policies: tuple[str, ...] = POLICIES
    artifact_dir: str | None = None
    backend: str = "exact"
    batch: bool = False


def smoke_options(seed: int = 0, artifact_dir: str | None = None) -> FuzzOptions:
    """The CI grid: every family, rational lambdas, a few seconds."""
    return FuzzOptions(
        seed=seed,
        iterations=4 * len(families()),
        max_n=10,
        max_m=3,
        max_lam=4,
        max_denominator=3,
        artifact_dir=artifact_dir,
    )


def deep_options(seed: int = 0, artifact_dir: str | None = None) -> FuzzOptions:
    """The nightly grid: larger machines, longer rotation, some chaos."""
    return FuzzOptions(
        seed=seed,
        iterations=40 * len(families()),
        max_n=33,
        max_m=6,
        max_lam=8,
        max_denominator=4,
        chaos_rate=0.05,
        artifact_dir=artifact_dir,
    )


@dataclass
class FamilyStats:
    """Per-family tallies for the report table."""

    runs: int = 0
    certified: int = 0
    failed: int = 0
    chaos_detected: int = 0
    chaos_missed: int = 0


@dataclass
class FuzzReport:
    """What one fuzz run learned.

    ``ok`` means no *real* failures: every normal config certified clean
    and every chaos config was caught.  Chaos detections are successes
    (they prove the certifier can fail) and never flip ``ok``.
    """

    options: FuzzOptions
    stats: dict[str, FamilyStats] = field(default_factory=dict)
    failures: list[CertResult] = field(default_factory=list)
    chaos_results: list[CertResult] = field(default_factory=list)
    artifacts: list[Path] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_runs(self) -> int:
        return sum(s.runs for s in self.stats.values())

    def summary(self) -> str:
        certified = sum(s.certified for s in self.stats.values())
        caught = sum(s.chaos_detected for s in self.stats.values())
        head = (
            f"seed={self.options.seed}: {certified}/{self.total_runs} "
            f"certified across {len(self.stats)} families "
            f"in {self.elapsed:.1f}s"
        )
        if caught:
            head += f", {caught} chaos corruption(s) caught"
        if self.failures:
            head += f", {len(self.failures)} FAILURE(S)"
        return head


# ---------------------------------------------------------------- sampling


def _sample_lam(rng: random.Random, opts: FuzzOptions) -> Fraction:
    """Draw ``lambda >= 1`` with denominator ``<= max_denominator``."""
    den = rng.randint(1, max(1, opts.max_denominator))
    num = rng.randint(den, max(den, opts.max_lam * den))
    return Fraction(num, den)


def sample_config(
    rng: random.Random, family: str, opts: FuzzOptions
) -> ConformanceConfig:
    """Draw one applicable-by-construction config for *family*."""
    oracle = get_oracle(family)
    lam = _sample_lam(rng, opts)
    n = rng.randint(2, max(2, opts.max_n))
    m = rng.randint(1, max(1, opts.max_m))

    key = oracle.family
    if key == "PIPELINE-1":
        m = rng.randint(1, max(1, floor(lam)))
    elif key == "PIPELINE-2":
        lo = ceil(lam)
        m = rng.randint(lo, max(lo, opts.max_m))
    elif key == "DTREE-LATENCY":
        lo = ceil(lam) + 2
        n = rng.randint(lo, max(lo, opts.max_n))
    elif not oracle.applicable(n, m, Fraction(lam)):
        # single-message families (BCAST, BINOMIAL, collectives)
        m = 1

    policy = rng.choice(list(opts.policies))

    chaos_seed: int | None = None
    chaos_draw = rng.random()  # always drawn: keeps the stream aligned
    if (
        opts.chaos_rate > 0
        and chaos_draw < opts.chaos_rate
        and oracle.exact
        and oracle.schedule is not None
    ):
        chaos_seed = rng.randrange(2**32)

    config = ConformanceConfig(
        family=key,
        n=n,
        m=m,
        lam=str(lam),
        policy=policy,
        chaos_seed=chaos_seed,
    )
    oracle.check_applicable(config.n, config.m, config.lam_time)
    return config


# ---------------------------------------------------------------- the run


def point_rng(seed: int, index: int) -> random.Random:
    """The RNG owned by grid point *index* under master *seed* (stable
    across processes and worker assignment)."""
    return random.Random(derive_seed(seed, "fuzz", index))


#: Shared-memory segments whose plans this process already installed in
#: the default plan cache — attach each segment once per worker, not once
#: per grid point.
_INSTALLED: "set[str]" = set()


def _install_shared_plans(handles: tuple) -> None:
    """Attach each not-yet-seen shared plan and seed the default cache.

    Runs in the worker (or in-process on the serial path).  The attached
    plan's columns are zero-copy views of the parent's segment, so the
    certifier's :func:`~repro.plan.cache.build_plan` lookups hit without
    rebuilding or even copying the schedule.
    """
    from repro.plan.cache import default_cache
    from repro.plan.columns import SchedulePlan

    cache = default_cache()
    for handle in handles:
        if handle.name in _INSTALLED:
            continue
        cache.put(SchedulePlan.from_shared(handle))
        _INSTALLED.add(handle.name)


def _certify_index(
    args: "tuple[FuzzOptions, tuple[str, ...], int]",
) -> "tuple[int, str, CertResult, str | None, str]":
    """Worker: sample and certify grid point ``i`` (runs in-process for
    serial sweeps, in a pool worker for ``jobs > 1``).

    Returns ``(index, family, result, artifact_path, outcome)`` with
    ``outcome`` one of ``certified`` / ``failed`` / ``chaos_detected`` /
    ``chaos_missed``.  Artifacts are written *here* (their directory
    names are content-hashed, so serial and parallel runs produce the
    same files), and the unpicklable live systems are stripped before
    the result crosses the process boundary.

    Batch runs append a tuple of
    :class:`~repro.batch.shared.SharedPlanHandle` as a fourth element;
    the handles are attached once per process and pre-seed the plan
    cache before certification.
    """
    opts, chosen, i, *rest = args
    if rest:
        _install_shared_plans(rest[0])
    family = chosen[i % len(chosen)]
    config = sample_config(point_rng(opts.seed, i), family, opts)
    keep = opts.artifact_dir is not None
    result = certify_config(config, keep_system=keep, backend=opts.backend)

    if config.chaos_seed is not None:
        if result.ok:
            # the real failure: corruption went undetected
            result.violations.append(
                f"chaos: corruption {result.corruption!r} went "
                f"undetected by the certifier"
            )
            outcome = "chaos_missed"
        else:
            outcome = "chaos_detected"
    else:
        outcome = "certified" if result.ok else "failed"

    artifact: "str | None" = None
    if keep and outcome != "certified":
        artifact = str(write_failure_artifact(result, opts.artifact_dir))
    result.systems.clear()  # free (and unpickle-proof) the kept machines
    return (i, family, result, artifact, outcome)


def _share_grid_plans(opts: FuzzOptions, chosen: "tuple[str, ...]") -> tuple:
    """Pre-sample the whole grid and share each distinct plan once.

    Point ``i`` owns its RNG (:func:`point_rng`), so replaying the same
    stream here yields *exactly* the configs each worker will draw —
    the pre-compiled plans are the ones the certifier would have built.
    Returns a tuple of :class:`~repro.batch.shared.SharedPlanHandle`;
    the caller must :func:`~repro.batch.shared.release_shared` each.
    """
    from repro.batch.shared import release_shared, share_plan
    from repro.plan.cache import PlanCache, build_plan

    seen: "set[tuple]" = set()
    handles: "list" = []
    try:
        for i in range(opts.iterations):
            family = chosen[i % len(chosen)]
            config = sample_config(point_rng(opts.seed, i), family, opts)
            key = PlanCache.key(config.family, config.n, config.m, config.lam_time)
            if key in seen:
                continue
            seen.add(key)
            plan = build_plan(config.family, config.n, config.m, config.lam_time)
            handles.append(share_plan(plan))
    except BaseException:
        for handle in handles:
            release_shared(handle)
        raise
    return tuple(handles)


def run_fuzz(opts: FuzzOptions, *, jobs: int = 1) -> FuzzReport:
    """Certify ``opts.iterations`` seeded grid points.

    Never raises on a conformance violation; inspect
    :attr:`FuzzReport.failures`.  A sampler or registry bug (an
    inapplicable config reaching the certifier) *does* raise — that is
    an infrastructure failure, not a model divergence.

    Args:
        jobs: worker processes (``repro conformance --jobs``).  Every
            grid point owns its seed (:func:`point_rng`), results merge
            in index order, and artifacts are content-addressed, so the
            report is identical for any ``jobs`` value; ``0`` means one
            worker per CPU.
    """
    chosen = opts.families if opts.families is not None else families()
    if not chosen:
        raise InvalidParameterError("no families to fuzz")
    chosen = tuple(get_oracle(f).family for f in chosen)  # canonicalize

    report = FuzzReport(options=opts)
    started = _wallclock.perf_counter()

    handles: tuple = ()
    if opts.batch:
        if opts.backend != "replay":
            raise InvalidParameterError(
                "batch plan distribution pre-compiles schedule plans, "
                "which only the replay backend executes; got "
                f"backend={opts.backend!r}"
            )
        handles = _share_grid_plans(opts, chosen)

    work: "list[tuple]" = [
        (opts, chosen, i) if not handles else (opts, chosen, i, handles)
        for i in range(opts.iterations)
    ]
    try:
        outcomes = parallel_map(_certify_index, work, jobs=jobs)
    finally:
        if handles:
            from repro.batch.shared import release_shared

            for handle in handles:
                release_shared(handle)

    for i, family, result, artifact, outcome in outcomes:  # index order
        stats = report.stats.setdefault(family, FamilyStats())
        stats.runs += 1
        if outcome == "certified":
            stats.certified += 1
        elif outcome == "failed":
            stats.failed += 1
            report.failures.append(result)
        elif outcome == "chaos_detected":
            stats.chaos_detected += 1
            report.chaos_results.append(result)
        else:  # chaos_missed — the real failure
            stats.chaos_missed += 1
            report.chaos_results.append(result)
            report.failures.append(result)
        if artifact is not None:
            report.artifacts.append(Path(artifact))

    report.elapsed = _wallclock.perf_counter() - started
    return report


def _replay(opts: FuzzOptions) -> FuzzOptions:  # pragma: no cover - helper
    """Options for replaying a run without artifacts (debug aid)."""
    return replace(opts, artifact_dir=None)
