"""Deterministic multi-core sweep execution.

The bench and conformance sweeps are embarrassingly parallel — every
grid point is an independent, seeded, deterministic computation — so the
only hard requirement for exploiting all cores is that parallel runs be
*indistinguishable* from serial ones.  Three ingredients deliver that:

* :func:`derive_seed` — a stable (process- and ``PYTHONHASHSEED``-
  independent) per-point seed derived by hashing ``(master seed, path)``
  with SHA-256.  Each grid point owns its RNG; nothing depends on which
  worker draws first.
* deterministic chunking — :func:`parallel_map` preserves input order in
  its output (``ProcessPoolExecutor.map`` semantics), so the merged
  result list is identical to the serial one, element for element.
* serial fallback — when multiprocessing is unavailable (restricted
  sandboxes, ``jobs=1``, single-item sweeps) the same function runs the
  same loop in-process; callers never branch.

Workers are separate processes: anything sent in or out must pickle.
Sweep drivers therefore pass frozen option dataclasses plus an integer
index, and strip unpicklable state (live simulator objects) from results
before returning them.
"""

from __future__ import annotations

import hashlib
import math
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import InvalidParameterError

__all__ = [
    "derive_seed",
    "shard",
    "parallel_map",
    "effective_jobs",
    "warn_if_oversubscribed",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def derive_seed(master: int, *path: object) -> int:
    """A stable 63-bit seed for the grid point at *path* under *master*.

    Pure function of its arguments — independent of process, platform,
    ``PYTHONHASHSEED``, and worker assignment — so serial and parallel
    sweeps (and sweeps resumed on another machine) draw identical
    randomness per point.

    >>> derive_seed(0, "fuzz", 0) == derive_seed(0, "fuzz", 0)
    True
    >>> derive_seed(0, "fuzz", 0) != derive_seed(0, "fuzz", 1)
    True
    >>> derive_seed(0, "fuzz", 1) != derive_seed(1, "fuzz", 1)
    True
    """
    text = "\x1f".join([str(int(master)), *(str(p) for p in path)])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # 63 bits, nonnegative


def effective_jobs(jobs: "int | None") -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one worker per
    CPU; anything else is clamped to at least 1."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise InvalidParameterError(f"need jobs >= 0, got {jobs}")
    return jobs


#: Whether this process already warned about oversubscription — sweep
#: drivers call :func:`warn_if_oversubscribed` per sharded call, and
#: repeating the identical warning for every shard is pure noise.
_warned_oversubscribed = False


def warn_if_oversubscribed(jobs: int, *, what: str = "sweep") -> bool:
    """Emit the oversubscription :class:`RuntimeWarning` **at most once
    per process** when *jobs* exceeds the CPU count.

    Oversubscribed workers time-slice cores, so per-case wall times are
    inflated and unsuitable as a baseline — worth saying once, not once
    per sharded call.  Returns whether a warning was emitted (tests
    reset the module flag ``_warned_oversubscribed`` to re-arm it).
    """
    global _warned_oversubscribed
    cpus = os.cpu_count() or 1
    if jobs <= cpus or _warned_oversubscribed:
        return False
    _warned_oversubscribed = True
    warnings.warn(
        f"{what} jobs={jobs} exceeds cpu_count={cpus}; oversubscribed "
        f"workers time-slice cores, so per-case wall times will be "
        f"inflated and unsuitable as a baseline",
        RuntimeWarning,
        stacklevel=3,
    )
    return True


def shard(count: int, jobs: int) -> list[range]:
    """Split ``range(count)`` into at most *jobs* contiguous, near-equal
    chunks (deterministic; earlier chunks get the remainder).

    >>> [list(r) for r in shard(7, 3)]
    [[0, 1, 2], [3, 4], [5, 6]]
    >>> shard(2, 8)
    [range(0, 1), range(1, 2)]
    """
    if count < 0:
        raise InvalidParameterError(f"need count >= 0, got {count}")
    jobs = max(1, min(effective_jobs(jobs), count if count else 1))
    base, extra = divmod(count, jobs)
    out: list[range] = []
    start = 0
    for i in range(jobs):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        out.append(range(start, start + size))
        start += size
    return out


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: int = 1,
    chunksize: "int | None" = None,
) -> list[_R]:
    """``[fn(x) for x in items]`` across *jobs* worker processes.

    Results come back **in input order** regardless of which worker
    finished first, so the merged output of a parallel sweep is
    element-for-element identical to the serial one.  ``jobs <= 1``, a
    short input, or an unavailable/broken process pool all take the
    in-process path — same function, same order, no pool.

    Exceptions raised *by fn* propagate (after the serial fallback
    re-raises them deterministically when the pool itself broke).
    """
    work: Sequence[_T] = list(items)
    jobs = effective_jobs(jobs)
    if jobs <= 1 or len(work) <= 1:
        return [fn(x) for x in work]
    jobs = min(jobs, len(work))
    if chunksize is None:
        # a few chunks per worker: balances stragglers against IPC cost
        chunksize = max(1, math.ceil(len(work) / (jobs * 4)))
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))
    except (BrokenProcessPool, OSError, ImportError):
        # infrastructure failure (fork refused, worker killed, missing
        # _multiprocessing): redo serially — determinism makes the
        # retry exact, and any real error from fn re-raises here.
        return [fn(x) for x in work]
