"""Generic two-level (memory LRU + optional disk) artifact caching.

:class:`TwoLevelCache` is the machinery behind
:class:`repro.plan.cache.PlanCache` and
:class:`repro.tune.cache.TuneCache`: an exact-LRU
:class:`~collections.OrderedDict` of live objects in front of an
optional directory of content-hashed files, with atomic writes
(``tmp`` + :func:`os.replace`) and miss-not-error semantics for
unreadable or foreign files.  Each concrete cache supplies

* the artifact noun used in diagnostics (``artifact``),
* its environment knobs (``env_mode`` / ``env_dir``) and file suffix,
* the canonical text hashed into a file name (:meth:`content_text`),
* the byte codec (:meth:`encode` / :meth:`decode`, with
  ``decode_errors`` naming the exceptions that mean "corrupt file"),
* and an optional identity check (:meth:`check`) guarding against hash
  collisions or tampered files.

The mode is one of ``off`` (every lookup misses), ``mem`` (LRU only,
the default), or ``disk`` (LRU plus persistent files), resolved from
the subclass's ``env_mode`` variable unless given explicitly.
Discarded disk files are logged at ``WARNING`` on the subclass's
logger so corruption never hides behind a silent rebuild.
"""

from __future__ import annotations

import hashlib
import logging
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Tuple, Type

from repro.errors import InvalidParameterError

__all__ = ["TwoLevelCache", "DEFAULT_CAPACITY", "MODES"]

#: In-memory LRU capacity (entries, not bytes); sweeps in this repo hold
#: well under this many distinct configurations.
DEFAULT_CAPACITY = 128

MODES = ("off", "mem", "disk")


class TwoLevelCache:
    """Memory-LRU-plus-disk cache of immutable, content-keyed artifacts.

    Args:
        mode: ``"off"``, ``"mem"``, or ``"disk"``; defaults to the
            subclass's ``env_mode`` environment variable or ``"mem"``.
        directory: disk cache root (``disk`` mode only); defaults to the
            subclass's ``env_dir`` environment variable or
            :meth:`default_directory`.
        capacity: LRU entry cap for the memory level.
    """

    #: Noun used in error and warning messages ("plan", "tuning table").
    artifact = "artifact"
    #: Environment variable selecting the mode.
    env_mode = "REPRO_CACHE"
    #: Environment variable overriding the disk directory.
    env_dir = "REPRO_CACHE_DIR"
    #: File suffix for disk entries (also drives :meth:`clear`'s glob).
    suffix = ".bin"
    #: Logger that receives discard warnings.
    logger = logging.getLogger("repro.caching")
    #: Exception types :meth:`decode` raises on a corrupt payload.
    decode_errors: Tuple[Type[BaseException], ...] = ()

    def __init__(
        self,
        *,
        mode: "str | None" = None,
        directory: "Path | str | None" = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if mode is None:
            mode = os.environ.get(self.env_mode, "mem").strip().lower() or "mem"
        if mode not in MODES:
            raise InvalidParameterError(
                f"{self.artifact} cache mode must be one of {MODES}, "
                f"got {mode!r} (check ${self.env_mode})"
            )
        if capacity < 1:
            raise InvalidParameterError(f"need capacity >= 1, got {capacity}")
        self.mode = mode
        if directory:
            self.directory = Path(directory)
        else:
            env = os.environ.get(self.env_dir)
            self.directory = Path(env) if env else self.default_directory()
        self.capacity = capacity
        self._mem: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------ subclass hooks

    def default_directory(self) -> Path:
        """Disk root used when neither ``directory`` nor ``env_dir`` is set."""
        raise NotImplementedError

    def content_text(self, key: Any) -> str:
        """Canonical text whose SHA-256 names the disk file for *key*."""
        raise NotImplementedError

    def encode(self, obj: Any) -> bytes:
        """Serialize *obj* for the disk level."""
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        """Deserialize a disk payload (raise one of ``decode_errors``)."""
        raise NotImplementedError

    def check(self, key: Any, obj: Any) -> bool:
        """Whether a decoded *obj* really is the artifact *key* names.

        Subclasses log their own discard warning and return ``False`` on
        a mismatch (hash collision or tampered file).
        """
        return True

    # ----------------------------------------------------------------- keys

    def path_for(self, key: Any) -> Path:
        """Content-hashed disk location of *key* (exists or not)."""
        digest = hashlib.sha256(self.content_text(key).encode()).hexdigest()
        return self.directory / f"{digest}{self.suffix}"

    # --------------------------------------------------------------- lookup

    def lookup(self, key: Any) -> Any:
        """The cached artifact for *key*, or ``None`` (always ``None`` in
        ``off`` mode)."""
        if self.mode == "off":
            self.misses += 1
            return None
        obj = self._mem.get(key)
        if obj is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return obj
        if self.mode == "disk":
            obj = self._read_disk(key)
            if obj is not None:
                self._remember(key, obj)
                self.hits += 1
                self.disk_hits += 1
                return obj
        self.misses += 1
        return None

    def store(self, key: Any, obj: Any) -> None:
        """Remember *obj* under *key* (no-op in ``off`` mode)."""
        if self.mode == "off":
            return
        self._remember(key, obj)
        if self.mode == "disk":
            self._write_disk(key, obj)

    def _remember(self, key: Any, obj: Any) -> None:
        self._mem[key] = obj
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)

    # ----------------------------------------------------------------- disk

    def _read_disk(self, key: Any) -> Any:
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            obj = self.decode(data)
        except self.decode_errors as exc:
            # truncated/foreign file: rebuild, don't crash — but loudly,
            # so disk corruption never hides behind a silent recompile
            self.logger.warning(
                "discarding corrupt %s cache file %s (%s); "
                "the %s will be rebuilt",
                self.artifact, path, exc, self.artifact,
            )
            return None
        if not self.check(key, obj):
            return None
        return obj

    def _write_disk(self, key: Any, obj: Any) -> None:
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(self.encode(obj))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # read-only FS / quota: the cache is best-effort

    # ----------------------------------------------------------- management

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory level (and the disk files when ``disk=True``)."""
        self._mem.clear()
        self.hits = self.misses = self.disk_hits = 0
        if disk and self.mode == "disk":
            try:
                for path in self.directory.glob(f"*{self.suffix}"):
                    path.unlink(missing_ok=True)
            except OSError:
                pass

    def stats(self) -> dict:
        """``{"mode", "entries", "hits", "misses", "disk_hits"}``."""
        return {
            "mode": self.mode,
            "entries": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(mode={self.mode!r}, "
            f"entries={len(self._mem)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
