"""Grid-level batch execution: NumPy replay kernels + shared-memory
plan distribution.

The sweeps the ROADMAP cares about (conformance grids, bench
trajectories, degradation curves) evaluate *many* parameter points,
each a deterministic plan replay.  This package makes the sweep itself
the unit of execution:

* :mod:`repro.batch.kernels` — the three replay passes as optional
  NumPy kernels over zero-copy views of the plan columns, with the
  pure-Python passes as a byte-identical fallback (``REPRO_NUMPY=off``
  forces it);
* :mod:`repro.batch.shared` — ``SchedulePlan.to_shared()`` /
  ``from_shared()`` over ``multiprocessing.shared_memory`` so workers
  map plan columns instead of unpickling copies;
* :mod:`repro.batch.runner` — :func:`run_batch`: compile or cache-hit
  each distinct plan once, shard the points over workers, stream
  results back in submission order, byte-identical to the serial path.

Typical use::

    from repro.batch import BatchPoint, run_batch

    points = [BatchPoint("BCAST", n, 1, "5/2") for n in range(64, 4096, 64)]
    results = run_batch(points, jobs=4)          # == run_batch(points)

The attribute indirection below keeps imports acyclic:
:mod:`repro.turbo.replay` imports the kernels at module scope, while
the runner imports :mod:`repro.turbo.replay` — so the runner (and the
shared-memory layer) load lazily on first attribute access.
"""

from repro.batch.kernels import kernels_enabled, numpy_version

__all__ = [
    "BatchPoint",
    "BatchResult",
    "SharedPlanHandle",
    "SharedPlanSet",
    "kernels_enabled",
    "numpy_version",
    "run_batch",
]

_RUNNER = ("BatchPoint", "BatchResult", "run_batch")
_SHARED = ("SharedPlanHandle", "SharedPlanSet")


def __getattr__(name):
    if name in _RUNNER:
        from repro.batch import runner

        return getattr(runner, name)
    if name in _SHARED:
        from repro.batch import shared

        return getattr(shared, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
