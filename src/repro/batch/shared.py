"""Zero-copy plan distribution over ``multiprocessing.shared_memory``.

``repro.parallel`` workers used to receive their
:class:`~repro.plan.columns.SchedulePlan` by pickling it into every
work item — four full column copies per worker per plan.  This module
puts each plan's columns into **one named shared-memory segment** so
every worker maps the same physical pages:

* :func:`share_plan` (the engine behind
  :meth:`SchedulePlan.to_shared()
  <repro.plan.columns.SchedulePlan.to_shared>`) copies the four columns
  into a fresh segment and returns a tiny picklable
  :class:`SharedPlanHandle` — the only thing that crosses the process
  boundary;
* :meth:`SchedulePlan.from_shared()
  <repro.plan.columns.SchedulePlan.from_shared>` attaches and rebuilds
  the plan with its columns as **zero-copy memoryviews** of the mapped
  segment (``memoryview(shm.buf)[a:b].cast("q")`` — same buffer
  protocol as ``array('q')``, so every consumer from ``np.frombuffer``
  to the pure-Python passes reads it unchanged);
* ownership is explicit and crash-safe: the *creating* process keeps
  the segment registered in a module table and unlinks it in
  :func:`release_shared` (callers wrap distribution in
  ``try/finally``, so a worker crash — even a hard ``os._exit`` — never
  leaks the segment: POSIX keeps the name until the owner unlinks, and
  the owner always does); attached plans hold a
  :class:`_SharedAttachment` that reference-counts the mapping for the
  lifetime of the plan's column views and closes it cleanly when the
  plan is garbage-collected (views released *before* the segment —
  closing a segment with exported buffers raises ``BufferError``, which
  under ``python -X dev -W error`` would fail CI as an unraisable
  finalizer error).

:class:`SharedPlanSet` bundles the pattern for a whole batch: share
many plans, hand the handle table to workers, unlink everything on
exit — the shape :func:`repro.batch.runner.run_batch` and the batched
conformance sweep use.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.errors import InvalidParameterError

__all__ = [
    "SharedPlanHandle",
    "SharedPlanSet",
    "attach_columns",
    "release_shared",
    "share_plan",
]

_ITEMSIZE = 8  # array('q') / int64 — the only column width plans use


@dataclass(frozen=True)
class SharedPlanHandle:
    """Everything a worker needs to map a shared plan (all primitives,
    so the handle pickles in a few dozen bytes regardless of plan size).

    Attributes:
        name: the shared-memory segment name.
        family / n / m / lam / root / scale: the plan header —
            ``lam`` serialized as ``"numerator/denominator"``.
        count: rows per column.
    """

    name: str
    family: str
    n: int
    m: int
    lam: str
    root: int
    scale: int
    count: int


#: Segments created by this process, by name — the owner side of the
#: refcount: workers only ever *attach* (close on GC), the creator
#: alone unlinks, in :func:`release_shared`.
_OWNED: "dict[str, shared_memory.SharedMemory]" = {}


class _SharedAttachment:
    """Keeps one attached segment mapped while plan columns view it.

    The plan holds the attachment, the attachment holds the segment and
    every exported column view.  ``close()`` (idempotent, also run by
    the finalizer) releases the views *first*, then closes the mapping —
    never raising, so no unraisable-exception noise under ``-X dev``.
    """

    __slots__ = ("_shm", "_views", "_closed")

    def __init__(self, shm, views):
        self._shm = shm
        self._views = list(views)
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for view in self._views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - exported sub-view
                pass
        self._views.clear()
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass

    def __del__(self):  # pragma: no cover - GC timing varies
        self.close()


def share_plan(plan) -> SharedPlanHandle:
    """Copy *plan*'s four columns into a fresh shared-memory segment.

    The creating process owns the segment; pass the returned handle to
    workers and call :func:`release_shared` (in a ``finally``) when the
    batch is done.
    """
    count = len(plan.ticks)
    col_bytes = count * _ITEMSIZE
    shm = shared_memory.SharedMemory(create=True, size=max(1, 4 * col_bytes))
    offset = 0
    for col in (plan.ticks, plan.senders, plan.msgs, plan.receivers):
        shm.buf[offset:offset + col_bytes] = col.tobytes()
        offset += col_bytes
    _OWNED[shm.name] = shm
    return SharedPlanHandle(
        name=shm.name,
        family=plan.family,
        n=plan.n,
        m=plan.m,
        lam=f"{plan.lam.numerator}/{plan.lam.denominator}",
        root=plan.root,
        scale=plan.domain.scale,
        count=count,
    )


def attach_columns(handle: SharedPlanHandle):
    """Map *handle*'s segment; returns ``(columns, attachment)``.

    *columns* are four zero-copy ``memoryview('q')`` slices (ticks,
    senders, msgs, receivers); *attachment* must stay alive as long as
    any column is used (plans store it in their ``_shared`` slot).
    Attaching always opens a fresh mapping — even in the creator
    process — so every attachment tears down independently of the
    owner's handle.
    """
    shm = shared_memory.SharedMemory(name=handle.name)
    col_bytes = handle.count * _ITEMSIZE
    base = memoryview(shm.buf)
    columns = tuple(
        base[i * col_bytes:(i + 1) * col_bytes].cast("q") for i in range(4)
    )
    return columns, _SharedAttachment(shm, [base, *columns])


def release_shared(handle: SharedPlanHandle) -> None:
    """Close **and unlink** a segment this process created (no-op for a
    handle someone else owns — workers never unlink)."""
    shm = _OWNED.pop(handle.name, None)
    if shm is None:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already removed
        pass


class SharedPlanSet:
    """Share a set of plans for one batch; unlink them all on exit.

    >>> from repro.plan import build_plan
    >>> from repro.plan.columns import SchedulePlan
    >>> with SharedPlanSet([build_plan("BCAST", 16, 1, "2")]) as shared:
    ...     handle = shared.handles[0]
    ...     clone = SchedulePlan.from_shared(handle)
    ...     clone.completion_time()
    Fraction(7, 1)
    """

    def __init__(self, plans):
        if not isinstance(plans, (list, tuple)):
            raise InvalidParameterError("SharedPlanSet takes a list of plans")
        self.handles: list[SharedPlanHandle] = [share_plan(p) for p in plans]

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        while self.handles:
            release_shared(self.handles.pop())

    def __enter__(self) -> "SharedPlanSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
