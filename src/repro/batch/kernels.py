"""Optional NumPy kernels for the three replay passes.

:func:`repro.turbo.replay.replay_plan` executes a compiled
:class:`~repro.plan.columns.SchedulePlan` as three batched column
passes.  The pure-Python passes are already free of the event loop, but
at ``n = 10^5`` they still spend their time in interpreted per-row
loops.  This module re-states each pass as whole-column NumPy
arithmetic over **zero-copy views** of the plan's ``array('q')``
columns (``np.frombuffer`` — no row is ever copied into Python
objects):

* **pass 1 (per-sender prefix-max starts)** — the sequential recurrence
  ``start_i = max(tick_i, prev_start_of_sender + one)`` becomes a
  *segmented cumulative maximum*: group rows by sender (stable argsort),
  subtract ``j * one`` from the ``j``-th row of each group, and a single
  ``np.maximum.accumulate`` over the shifted values reproduces the
  chain.  The segmentation trick offsets each group by a disjoint range
  so one global accumulate never leaks across groups; the required
  headroom is checked against int64 and the caller falls back to the
  Python pass when it would overflow (astronomically large tick spans).
* **pass 2 (window order)** — ``np.argsort(starts, kind="stable")``,
  bit-identical to the Python ``sorted``'s stable order.
* **pass 3 (port booking)** — group the window-ordered rows by receiver
  (stable argsort again).  Under the strict policy a collision is two
  consecutive same-receiver windows less than one unit apart; the first
  violation *in window order* raises the byte-identical
  :class:`~repro.errors.SimultaneousIOError`.  Under the queued policy
  the FIFO chain ``due = max(window, prev_due) + one`` is the same
  segmented cumulative maximum as pass 1.

The kernels are **behavior-transparent**: :func:`replay_passes` returns
exactly the ``(starts, order, arrivals, contended)`` tuple the Python
passes produce (same ``array('q')`` types, same list order), or ``None``
when NumPy is unavailable, disabled via ``REPRO_NUMPY=off``, or the
overflow guard trips — the caller then runs the Python passes.  The
differential suite (``tests/test_batch_differential.py``) pins
byte-identity across every plan-compiled family under both policies.
"""

from __future__ import annotations

import os
from array import array

from repro.errors import SimultaneousIOError
from repro.postal.machine import ContentionPolicy
from repro.types import time_repr

__all__ = [
    "kernels_enabled",
    "numpy_or_none",
    "numpy_version",
    "replay_passes",
]

#: ``$REPRO_NUMPY`` values that force the pure-Python fallback.
_FALSEY = frozenset({"off", "0", "false", "no"})

_ENV = "REPRO_NUMPY"

# import result cached per process (the env gate is re-read every call
# so tests can flip REPRO_NUMPY at runtime without reloading modules)
_np_probed = False
_np = None


def numpy_or_none():
    """The :mod:`numpy` module when kernels may run, else ``None``.

    ``None`` when ``$REPRO_NUMPY`` is a falsey value (``off`` / ``0`` /
    ``false`` / ``no``, case-insensitive) or NumPy is not installed.
    """
    if os.environ.get(_ENV, "").strip().lower() in _FALSEY:
        return None
    global _np_probed, _np
    if not _np_probed:
        _np_probed = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _np = numpy
    return _np


def kernels_enabled() -> bool:
    """Whether :func:`replay_passes` will use the NumPy kernels.

    >>> import os
    >>> os.environ["REPRO_NUMPY"] = "off"
    >>> kernels_enabled()
    False
    >>> _ = os.environ.pop("REPRO_NUMPY")
    """
    return numpy_or_none() is not None


def numpy_version() -> "str | None":
    """Version string of the *installed* NumPy, or ``None``.

    Deliberately ignores the ``$REPRO_NUMPY`` gate: this feeds the
    reproducibility header of ``BENCH_turbo.json``, which records what
    the machine had, not what the run chose to use.
    """
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


class _Overflow(Exception):
    """Int64 headroom exhausted — fall back to the Python passes."""


def _seg_cummax(np, vals, group_id):
    """Cumulative maximum of *vals* restarted at each new *group_id*.

    *group_id* must be nondecreasing.  Each group is lifted onto a
    disjoint band whose width is the global value range of *vals*, one
    ``np.maximum.accumulate`` runs, and the lift is undone — a maximum
    taken inside a band can never see the (strictly lower) bands of
    earlier groups, so the accumulate restarts exactly at group
    boundaries.

    Raises:
        _Overflow: the lifted values would not fit int64 (only possible
            for astronomically sparse tick grids).
    """
    base = int(vals.min())
    spread = int(vals.max()) - base + 1
    groups = int(group_id[-1]) + 1
    if groups * spread >= 2**62:
        raise _Overflow
    offset = group_id * spread
    return np.maximum.accumulate((vals - base) + offset) - offset + base


def replay_passes(plan, policy: ContentionPolicy):
    """The three replay passes as NumPy kernels, or ``None`` to fall
    back to the pure-Python passes.

    Returns ``(starts, order, arrivals, contended)`` with *starts* and
    *arrivals* as ``array('q')`` and *order* a ``list[int]`` — the
    exact types and values of the Python passes in
    :func:`repro.turbo.replay.replay_plan`.

    Raises:
        SimultaneousIOError: strict policy, first colliding receive
            window in window order — message byte-identical to the
            Python pass (and to the turbo event loop).
    """
    np = numpy_or_none()
    if np is None:
        return None

    one = plan.domain.scale
    lat = plan.lam_ticks
    ticks = np.frombuffer(plan.ticks, dtype=np.int64)
    senders = np.frombuffer(plan.senders, dtype=np.int64)
    receivers = np.frombuffer(plan.receivers, dtype=np.int64)
    E = len(ticks)
    if E == 0:
        return array("q"), [], array("q"), False

    try:
        return _passes(np, plan, policy, ticks, senders, receivers, one, lat)
    except _Overflow:
        return None  # astronomically sparse plan: Python passes handle it


def _passes(np, plan, policy, ticks, senders, receivers, one, lat):
    E = len(ticks)

    # ---- pass 1: per-sender prefix-max starts ----------------------------
    sidx = np.argsort(senders, kind="stable")
    firsts = np.empty(E, dtype=bool)
    firsts[0] = True
    ss = senders[sidx]
    firsts[1:] = ss[1:] != ss[:-1]
    gid = np.cumsum(firsts) - 1
    gstart = np.nonzero(firsts)[0]
    # j = rank of the row within its sender group; subtracting j*one
    # turns the chain "next start >= prev start + one" into a plain
    # running maximum of the adjusted ticks.
    j = np.arange(E, dtype=np.int64) - gstart[gid]
    adjusted = ticks[sidx] - j * one
    starts = np.empty(E, dtype=np.int64)
    starts[sidx] = _seg_cummax(np, adjusted, gid) + j * one

    # ---- pass 2: window order (stable by start = stable by window) -------
    order = np.argsort(starts, kind="stable")

    # ---- pass 3: receive booking in window order -------------------------
    w = starts[order] + (lat - one)
    d = receivers[order]
    ridx = np.argsort(d, kind="stable")
    ds = d[ridx]
    ws = w[ridx]
    rfirst = np.empty(E, dtype=bool)
    rfirst[0] = True
    rfirst[1:] = ds[1:] != ds[:-1]
    arrivals = np.empty(E, dtype=np.int64)
    contended = False
    if policy is ContentionPolicy.STRICT:
        # two consecutive same-receiver windows < one unit apart collide;
        # the *first* violation in window order (min position in the
        # window-ordered sequence) must raise, with the same operands
        # the sequential pass would have seen at that point.
        viol = np.zeros(E, dtype=bool)
        viol[1:] = ~rfirst[1:] & (ws[1:] - ws[:-1] < one)
        if viol.any():
            vk = np.nonzero(viol)[0]
            k = int(vk[np.argmin(ridx[vk])])
            to_time = plan.domain.to_time
            dst = int(ds[k])
            window = int(ws[k])
            recv_free = int(ws[k - 1]) + one
            raise SimultaneousIOError(
                f"p{dst}: a message delivery due at t="
                f"{time_repr(to_time(window))} could not start receiving "
                f"until t={time_repr(to_time(recv_free))} "
                f"(simultaneous-I/O violation)"
            )
        arrivals[order] = w + one
    else:
        # queued FIFO: due = max(window, prev due) + one per receiver —
        # the same chain shape as pass 1, so the same segmented cummax.
        rgid = np.cumsum(rfirst) - 1
        rgstart = np.nonzero(rfirst)[0]
        rj = np.arange(E, dtype=np.int64) - rgstart[rgid]
        due = _seg_cummax(np, ws - rj * one, rgid) + (rj + 1) * one
        contended = bool((due != ws + one).any())
        in_window_order = np.empty(E, dtype=np.int64)
        in_window_order[ridx] = due
        arrivals[order] = in_window_order

    starts_arr = array("q")
    starts_arr.frombytes(starts.tobytes())
    arrivals_arr = array("q")
    arrivals_arr.frombytes(arrivals.tobytes())
    return starts_arr, order.tolist(), arrivals_arr, contended
