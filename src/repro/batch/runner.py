"""``run_batch``: execute a grid of plan replays as one batch.

The per-point path (``run_protocol(proto, backend="replay")``) pays,
for every point, protocol construction, plan-cache lookup *and* the
materialization of a full event-object
:class:`~repro.core.schedule.Schedule` with ``Fraction`` times.  A
batch sweep needs none of that: every point is "replay this compiled
plan under this policy and summarize".  :func:`run_batch` therefore

1. **compiles or cache-hits each distinct plan once** in the parent
   (points sharing a ``(family, n, m, lambda)`` key share the plan);
2. replays each point through :func:`repro.turbo.replay.replay_plan`
   (NumPy kernels when available, pure-Python fallback otherwise —
   byte-identical either way);
3. with ``jobs > 1``, distributes the plans to workers **zero-copy**
   over shared memory (``transport="shared"``, the default) or by
   serialized plan bytes (``transport="pickle"``, kept for differential
   testing) and shards the points with
   :func:`repro.parallel.parallel_map`, which streams results back in
   submission order — so the merged output is element-for-element
   identical to the serial run (the per-point summaries are exact
   integers/strings, not wall times).

Every :class:`BatchResult` carries a SHA-256 digest over the realized
``starts`` and ``arrivals`` columns, so "byte-identical" is checkable
with ``==`` across serial/parallel, kernel/fallback, and
shared/pickled variants — ``tests/test_batch_differential.py`` does
exactly that for every plan-compiled family under both policies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidParameterError
from repro.parallel import effective_jobs, parallel_map, warn_if_oversubscribed
from repro.plan.cache import PlanCache, build_plan
from repro.plan.columns import SchedulePlan
from repro.postal.machine import ContentionPolicy
from repro.turbo.replay import replay_plan
from repro.types import as_time, time_repr

__all__ = ["BatchPoint", "BatchResult", "run_batch"]

_POLICIES = ("strict", "queued")
_TRANSPORTS = ("shared", "pickle")


@dataclass(frozen=True)
class BatchPoint:
    """One grid point: a plan-compiled family at ``(n, m, lambda)``
    under a contention policy.  ``lam`` is kept as the string/number
    given (normalized via :func:`repro.types.as_time` at execution), so
    points pickle small and hash cleanly."""

    family: str
    n: int
    m: int = 1
    lam: "str | int" = 2
    policy: str = "strict"

    def __post_init__(self):
        if self.policy not in _POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )


@dataclass(frozen=True)
class BatchResult:
    """The exact, wall-clock-free summary of one replayed point.

    Attributes:
        family / n / m / lam / policy: the point, with ``lam``
            canonicalized by :func:`repro.types.time_repr`.
        completion: the replay's completion time (exact, rendered).
        sends: send events in the plan.
        contended: queued policy only — whether FIFO booking delayed
            any receive (always ``False`` under strict).
        digest: SHA-256 over the realized ``starts`` and ``arrivals``
            columns — equal digests mean byte-identical replays.
    """

    family: str
    n: int
    m: int
    lam: str
    policy: str
    completion: str
    sends: int
    contended: bool
    digest: str


def _resolve_auto(point: BatchPoint) -> BatchPoint:
    """Resolve ``family="auto"`` / ``"auto:<workload>"`` points through
    the tuner (restricted to plan-compilable families, since the batch
    tier replays compiled plans); concrete points pass through."""
    from repro.tune.model import auto_workload, select_protocol

    if auto_workload(point.family) is None:
        return point
    family = select_protocol(
        auto_workload(point.family) or "broadcast",
        point.n,
        m=point.m,
        lam=as_time(point.lam),
        policy=point.policy,
        require_plan=True,
    )
    return replace(point, family=family)


def _replay_point(plan: SchedulePlan, point: BatchPoint) -> BatchResult:
    policy = (
        ContentionPolicy.STRICT
        if point.policy == "strict"
        else ContentionPolicy.QUEUED
    )
    system = replay_plan(plan, policy=policy)
    return BatchResult(
        family=plan.family,
        n=plan.n,
        m=plan.m,
        lam=time_repr(plan.lam),
        policy=point.policy,
        completion=time_repr(system.completion_time),
        sends=system.send_count,
        contended=system.queued_contention,
        digest=system.column_digest(),
    )


# ---------------------------------------------------------------- workers

#: Per-process plan cache for pool workers, keyed by shared-segment
#: name (shared transport) or plan cache key (pickle transport) — each
#: worker attaches/deserializes any given plan at most once.
_WORKER_PLANS: dict = {}


def _batch_worker(item) -> BatchResult:
    point, handle, blob = item
    if handle is not None:
        plan = _WORKER_PLANS.get(handle.name)
        if plan is None:
            plan = SchedulePlan.from_shared(handle)
            _WORKER_PLANS[handle.name] = plan
    else:
        key = PlanCache.key(point.family, point.n, point.m, as_time(point.lam))
        plan = _WORKER_PLANS.get(key)
        if plan is None:
            plan = SchedulePlan.from_bytes(blob)
            _WORKER_PLANS[key] = plan
    return _replay_point(plan, point)


# ---------------------------------------------------------------- the API


def run_batch(
    points,
    *,
    backend: str = "replay",
    jobs: int = 1,
    transport: str = "shared",
) -> list[BatchResult]:
    """Replay every :class:`BatchPoint` in *points*; results come back
    in submission order, byte-identical for any ``jobs`` value.

    Args:
        points: an iterable of :class:`BatchPoint`.
        backend: only ``"replay"`` — the batch tier *is* the vectorized
            replay lane (protocol-stepping backends are inherently
            per-point; use :func:`repro.postal.runner.run_protocol`).
        jobs: worker processes (``0`` = one per CPU, as everywhere).
        transport: how plans reach workers — ``"shared"`` maps one
            shared-memory segment per distinct plan (zero-copy),
            ``"pickle"`` ships serialized plan bytes per point (the old
            scheme, kept so the differential suite can pin equality).

    >>> from repro.batch import BatchPoint, run_batch
    >>> [r.sends for r in run_batch([BatchPoint("BCAST", 64, 1, "5/2")])]
    [63]
    """
    if backend != "replay":
        raise InvalidParameterError(
            f"run_batch supports backend='replay' only, got {backend!r}"
        )
    if transport not in _TRANSPORTS:
        raise InvalidParameterError(
            f"transport must be one of {_TRANSPORTS}, got {transport!r}"
        )
    points = [_resolve_auto(p) for p in points]

    # compile or cache-hit each distinct plan exactly once
    keys = []
    plans: dict[tuple, SchedulePlan] = {}
    for point in points:
        lam = as_time(point.lam)
        key = PlanCache.key(point.family, point.n, point.m, lam)
        keys.append(key)
        if key not in plans:
            plans[key] = build_plan(point.family, point.n, point.m, lam)

    jobs = effective_jobs(jobs)
    warn_if_oversubscribed(jobs, what="batch")
    if jobs <= 1 or len(points) <= 1:
        return [_replay_point(plans[k], p) for k, p in zip(keys, points)]

    if transport == "shared":
        from repro.batch.shared import release_shared

        handles = {key: plan.to_shared() for key, plan in plans.items()}
        try:
            work = [(p, handles[k], None) for k, p in zip(keys, points)]
            return parallel_map(_batch_worker, work, jobs=jobs)
        finally:
            for handle in handles.values():
                release_shared(handle)
    blobs = {key: plan.to_bytes() for key, plan in plans.items()}
    work = [(p, None, blobs[k]) for k, p in zip(keys, points)]
    return parallel_map(_batch_worker, work, jobs=jobs)
