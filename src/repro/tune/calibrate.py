"""Deterministic calibration runs for the tuner.

"Measured" here never means a wall clock.  A calibration run executes
the candidate protocol on the turbo lane with auditing and metrics off
and reads two quantities that are **exact, deterministic functions** of
``(family, n, m, lambda, policy)``:

* the completion time — an exact rational, identical to what the
  Fraction event engine would produce (the turbo/exact equivalence is
  pinned by the conformance suite), and
* the total send count.

That is what makes tuning tables byte-reproducible: serial and
``--jobs 4`` derivations, or derivations on different machines, see the
same numbers to the last bit.  Calibration is capped at
:data:`CALIBRATION_MAX_N` — beyond that the closed forms alone decide
(a single turbo run at huge ``n`` costs more than the decision is
worth, and the exact families' formulas *are* their running times).
"""

from __future__ import annotations

from fractions import Fraction

from repro.conformance.oracles import get_oracle
from repro.postal.machine import ContentionPolicy
from repro.types import Time, TimeLike, as_time

__all__ = ["CALIBRATION_MAX_N", "CALIBRATION_MARGIN", "measure"]

#: Queries with ``n`` above this rank by closed forms alone.
CALIBRATION_MAX_N = 4096

#: An upper-bound family whose bound is within this factor of the best
#: prediction is worth measuring — its actual time may still win.
CALIBRATION_MARGIN = Fraction(3, 2)


def measure(
    family: str,
    n: int,
    m: int = 1,
    lam: TimeLike = 1,
    *,
    policy: str = "strict",
) -> "tuple[Time, int]":
    """``(completion_time, sends)`` for one candidate, exactly.

    Runs the family's protocol on the turbo backend (``validate=False``,
    ``collect=False`` — calibration trusts the conformance suite) and
    returns the exact rational completion time and the send count.
    """
    from repro.postal.runner import run_protocol

    lam_t = as_time(lam)
    oracle = get_oracle(family)
    oracle.check_applicable(n, m, lam_t)
    result = run_protocol(
        oracle.protocol(n, m, lam_t),
        policy=ContentionPolicy(policy) if isinstance(policy, str) else policy,
        validate=False,
        collect=False,
        backend="turbo",
    )
    return result.completion_time, result.sends
