"""Tuning-table caching on the two-level ``PlanCache`` machinery.

:class:`TuneCache` is a second concrete
:class:`repro.caching.TwoLevelCache` — the same memory-LRU-plus-
atomic-disk engine that memoizes compiled plans, pointed at derived
:class:`~repro.tune.table.TuningTable` artifacts instead.  The mode
comes from ``$REPRO_TUNE_CACHE`` (``off`` / ``mem`` / ``disk``), the
disk root from ``$REPRO_TUNE_CACHE_DIR`` (default
``~/.cache/repro/tune``), and disk entries are the canonical JSON bytes
themselves — a cache file *is* a valid tuning table, and a tampered one
is discarded (loudly, on the ``repro.tune.cache`` logger) because
:meth:`~repro.tune.table.TuningTable.from_json` authenticates the
embedded content hash.

:func:`cached_table` is the lookup-or-derive entry point the CLI's
query/sweep modes use: deriving the default grid takes seconds, reading
it back takes none.
"""

from __future__ import annotations

import hashlib
import logging
from pathlib import Path

from repro.caching import DEFAULT_CAPACITY, TwoLevelCache
from repro.errors import TuningError
from repro.tune.derive import GRID_ID, TuneQuery, default_queries, derive_table
from repro.tune.table import TABLE_SCHEMA, TuningTable

__all__ = [
    "TuneCache",
    "cached_table",
    "default_tune_cache",
    "configure_tune_cache",
]

_ENV_MODE = "REPRO_TUNE_CACHE"
_ENV_DIR = "REPRO_TUNE_CACHE_DIR"

logger = logging.getLogger("repro.tune.cache")


def _grid_key(grid: str, queries: "tuple[TuneQuery, ...]") -> tuple:
    """Cache key for a derivation: schema, grid id, and a digest of the
    exact query list (so a custom grid never aliases the default)."""
    text = "\x1f".join(
        f"{q.workload}|{q.n}|{q.m}|{q.lam}|{q.policy}" for q in queries
    )
    return (TABLE_SCHEMA, grid, hashlib.sha256(text.encode()).hexdigest())


class TuneCache(TwoLevelCache):
    """Two-level (memory LRU, optional disk) cache of tuning tables.

    Args:
        mode: ``"off"``, ``"mem"``, or ``"disk"``; defaults to
            ``$REPRO_TUNE_CACHE`` or ``"mem"``.
        directory: disk cache root (``disk`` mode only); defaults to
            ``$REPRO_TUNE_CACHE_DIR`` or ``~/.cache/repro/tune``.
        capacity: LRU entry cap for the memory level.
    """

    artifact = "tuning table"
    env_mode = _ENV_MODE
    env_dir = _ENV_DIR
    suffix = ".tune.json"
    logger = logger
    decode_errors = (TuningError,)

    def default_directory(self) -> Path:
        return Path.home() / ".cache" / "repro" / "tune"

    key = staticmethod(_grid_key)

    def content_text(self, key: tuple) -> str:
        schema, grid, digest = key
        return f"{schema}|{grid}|{digest}"

    def encode(self, table: TuningTable) -> bytes:
        return table.to_json().encode()

    def decode(self, data: bytes) -> TuningTable:
        try:
            text = data.decode()
        except UnicodeDecodeError as exc:
            raise TuningError(f"tuning table is not UTF-8: {exc}") from exc
        return TuningTable.from_json(text)

    def check(self, key: tuple, table: TuningTable) -> bool:
        _, grid, _ = key
        if table.grid != grid:
            logger.warning(
                "discarding tuning table cache file %s: content is for "
                "grid %r but the key demands %r (hash collision or "
                "tampered file); the tuning table will be rederived",
                self.path_for(key), table.grid, grid,
            )
            return False
        return True


# ------------------------------------------------------- process-wide cache

_DEFAULT: "TuneCache | None" = None


def default_tune_cache() -> TuneCache:
    """The process-wide cache (created lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TuneCache()
    return _DEFAULT


def configure_tune_cache(
    *,
    mode: "str | None" = None,
    directory: "Path | str | None" = None,
    capacity: int = DEFAULT_CAPACITY,
) -> TuneCache:
    """Replace the process-wide cache (returns the new one)."""
    global _DEFAULT
    _DEFAULT = TuneCache(mode=mode, directory=directory, capacity=capacity)
    return _DEFAULT


def cached_table(
    queries: "tuple[TuneQuery, ...] | None" = None,
    *,
    jobs: int = 1,
    grid: str = GRID_ID,
    cache: "TuneCache | None" = None,
) -> TuningTable:
    """:func:`~repro.tune.derive.derive_table` through a cache.

    A hit returns the cached table (derived earlier in this process, or
    read back from disk in ``disk`` mode — a fresh CI shard skips the
    whole calibration sweep); a miss derives, remembers, and returns.
    """
    if cache is None:
        cache = default_tune_cache()
    qs = tuple(queries) if queries is not None else default_queries()
    key = _grid_key(grid, qs)
    table = cache.lookup(key)
    if table is None:
        table = derive_table(qs, jobs=jobs, grid=grid)
        cache.store(key, table)
    return table
