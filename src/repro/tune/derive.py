"""Table derivation: sweep a query grid, in parallel, reproducibly.

:func:`derive_table` maps :func:`~repro.tune.model.rank` over a grid of
:class:`TuneQuery` points — :func:`default_queries` pins the grid that
ships as ``TUNING_postal.json`` — through
:func:`repro.parallel.parallel_map`, so the sweep uses worker processes
exactly like the bench and conformance sweeps do (order-preserving
merge, serial fallback, :func:`~repro.parallel.warn_if_oversubscribed`
consulted once per process).  Every per-query decision is a pure
function of the query, so the assembled
:class:`~repro.tune.table.TuningTable` is byte-identical regardless of
``jobs``.

:func:`verify_table` is the CI drift check: re-derive the committed
table's grid and compare **bytes**.  A mismatch means the selector, an
oracle closed form, a protocol implementation, or the grid itself
changed without the table being regenerated — exactly the class of
silent drift a committed artifact exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import TuningError
from repro.parallel import effective_jobs, parallel_map, warn_if_oversubscribed
from repro.tune.model import rank
from repro.tune.table import RankedEntry, TableEntry, TuningTable, frac_str
from repro.types import as_time

__all__ = [
    "GRID_ID",
    "TuneQuery",
    "default_queries",
    "derive_entry",
    "derive_table",
    "verify_table",
]

#: Identifier of the grid :func:`default_queries` generates; stamped
#: into (and hashed with) every table derived from it.
GRID_ID = "postal-default/1"


@dataclass(frozen=True)
class TuneQuery:
    """One grid point (picklable: lambda travels as a string)."""

    workload: str
    n: int
    m: int
    lam: str
    policy: str = "strict"


def default_queries() -> "tuple[TuneQuery, ...]":
    """The pinned :data:`GRID_ID` grid behind ``TUNING_postal.json``.

    Broadcast sweeps machine sizes, message counts, and integral plus
    fractional latencies; the collectives sweep a smaller cross since
    each has at most three registered families.
    """
    queries: "list[TuneQuery]" = []
    for n in (4, 16, 64, 256):
        for lam in ("1", "2", "5/2", "4"):
            for m in (1, 4):
                queries.append(TuneQuery("broadcast", n, m, lam))
    for workload in (
        "allgather", "allreduce", "alltoall", "barrier",
        "gather", "reduce", "scatter",
    ):
        for n in (4, 16, 64):
            for lam in ("2", "5/2"):
                queries.append(TuneQuery(workload, n, 1, lam))
    return tuple(queries)


def derive_entry(query: TuneQuery) -> TableEntry:
    """Resolve one query into a table entry (pure; runs in workers)."""
    ranking = rank(
        query.workload, query.n, query.m, query.lam, policy=query.policy
    )
    ranked = tuple(
        RankedEntry(
            family=c.family,
            predicted=frac_str(c.predicted),
            exact=c.exact,
            measured=None if c.measured is None else frac_str(c.measured),
            sends=c.sends,
        )
        for c in ranking
    )
    return TableEntry(
        workload=query.workload,
        n=query.n,
        m=query.m,
        lam=frac_str(as_time(query.lam)),
        policy=query.policy,
        winner=ranked[0].family,
        ranking=ranked,
    )


def derive_table(
    queries: "tuple[TuneQuery, ...] | None" = None,
    *,
    jobs: int = 1,
    grid: str = GRID_ID,
    progress: "Callable[[str], None] | None" = None,
) -> TuningTable:
    """Derive a :class:`~repro.tune.table.TuningTable` over *queries*
    (default: the :data:`GRID_ID` grid) using *jobs* workers.

    The output is independent of *jobs* — entries come back in query
    order and every entry is a pure function of its query.
    """
    if queries is None:
        queries = default_queries()
    warn_if_oversubscribed(effective_jobs(jobs), what="tune calibration")
    if progress is not None:
        progress(
            f"deriving {len(queries)} tuning entries "
            f"(jobs={effective_jobs(jobs)})"
        )
    entries = parallel_map(derive_entry, queries, jobs=jobs)
    return TuningTable(grid=grid, entries=tuple(entries))


def verify_table(
    path: "Path | str",
    *,
    jobs: int = 1,
    progress: "Callable[[str], None] | None" = None,
) -> "tuple[bool, TuningTable, str, str]":
    """Re-derive the committed table at *path* and compare bytes.

    Returns ``(ok, fresh_table, committed_text, fresh_text)``.  The
    committed file must parse and authenticate
    (:meth:`~repro.tune.table.TuningTable.from_json` raises
    :class:`~repro.errors.TuningError` otherwise); drift — any byte
    difference between it and the fresh derivation of the same grid —
    is reported, not raised, so callers can save the fresh table.
    """
    try:
        committed_text = Path(path).read_text()
    except OSError as exc:
        raise TuningError(
            f"cannot read tuning table {path}: {exc}"
        ) from exc
    committed = TuningTable.from_json(committed_text)
    fresh = derive_table(jobs=jobs, grid=committed.grid, progress=progress)
    fresh_text = fresh.to_json()
    return fresh_text == committed_text, fresh, committed_text, fresh_text
