"""The selector: rank applicable families for a query, calibrating ties.

The oracle registry already knows every family's closed-form running
time (exact or upper bound) and applicability predicate, so ranking is
mostly free: evaluate each applicable candidate's formula at the query
point and sort.  Two situations need more than the closed forms:

* **ties** — several exact families predict the same completion time
  (e.g. BCAST and BINOMIAL at integral ``lambda``), and
* **upper bounds** — the DTREE shapes certify only ``<=``, so a bound
  within :data:`~repro.tune.calibrate.CALIBRATION_MARGIN` of the best
  prediction might actually win.

Both are settled by *measured calibration*: running the candidate on the
turbo lane and reading off the **exact** completion time (a Fraction)
and send count.  Nothing here ever consults a wall clock — measured
quantities are deterministic functions of ``(family, n, m, lambda)`` —
so rankings (and the tables built from them,
:mod:`repro.tune.derive`) are byte-reproducible across processes,
job counts, and machines.

:func:`select_protocol` is the one-call API; ``family="auto"`` in
:func:`repro.run_protocol` and :func:`repro.run_batch` routes through
:func:`resolve_family` here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.conformance.oracles import REGISTRY
from repro.errors import InvalidParameterError, TuningError
from repro.tune.calibrate import (
    CALIBRATION_MARGIN,
    CALIBRATION_MAX_N,
    measure,
)
from repro.types import Time, TimeLike, as_time

__all__ = [
    "WORKLOADS",
    "workloads",
    "Candidate",
    "candidate_families",
    "rank",
    "select_protocol",
    "resolve_family",
    "auto_workload",
]

#: Workload name -> oracle ``semantics`` labels it accepts.  The
#: ``allgather`` workload admits the gossip baseline too: a completed
#: gossip leaves every processor holding every rumor, which is exactly
#: the allgather postcondition.
WORKLOADS: "dict[str, tuple[str, ...]]" = {
    "broadcast": ("broadcast",),
    "reduce": ("reduction",),
    "scatter": ("scatter",),
    "gather": ("gather",),
    "alltoall": ("alltoall",),
    "allreduce": ("allreduce",),
    "barrier": ("barrier",),
    "allgather": ("allgather", "gossip"),
}


def workloads() -> "tuple[str, ...]":
    """All tunable workload names, sorted."""
    return tuple(sorted(WORKLOADS))


def _check_workload(workload: str) -> str:
    key = workload.strip().lower()
    if key not in WORKLOADS:
        raise InvalidParameterError(
            f"unknown workload {workload!r} "
            f"(tunable: {', '.join(workloads())})"
        )
    return key


def candidate_families(workload: str) -> "tuple[str, ...]":
    """Registry families eligible for *workload*, sorted (applicability
    at a concrete ``(n, m, lambda)`` is a separate question)."""
    semantics = WORKLOADS[_check_workload(workload)]
    return tuple(
        sorted(f for f, o in REGISTRY.items() if o.semantics in semantics)
    )


@dataclass(frozen=True)
class Candidate:
    """One family's standing at a query point.

    ``measured``/``sends`` are populated only when calibration ran for
    this candidate; :attr:`score` is what the final ranking sorts by.
    """

    family: str
    predicted: Time
    exact: bool
    measured: "Time | None" = None
    sends: "int | None" = None

    @property
    def score(self) -> Time:
        """Measured completion when calibrated, else the prediction."""
        return self.measured if self.measured is not None else self.predicted


def _sort_key(c: Candidate) -> tuple:
    # exact formulas outrank upper bounds at equal score; calibrated
    # send counts break remaining ties; family name makes it total
    return (c.score, not c.exact, c.sends if c.sends is not None else -1,
            c.family)


def rank(
    workload: str,
    n: int,
    m: int = 1,
    lam: TimeLike = 1,
    *,
    policy: str = "strict",
    calibrate: bool = True,
    max_calibrate_n: int = CALIBRATION_MAX_N,
) -> "list[Candidate]":
    """Applicable candidates for a query, best first.

    Ranking is primarily by the oracle closed forms (exact Fractions).
    When *calibrate* is true and ``n <= max_calibrate_n``, candidates
    tied at the best prediction — plus upper-bound families whose bound
    lies within :data:`~repro.tune.calibrate.CALIBRATION_MARGIN` of it —
    are run on the turbo lane and re-ranked by their measured exact
    completion time and send count.

    Raises:
        InvalidParameterError: unknown workload, or ``n < 2``.
        TuningError: no registered family is applicable at the point.
    """
    workload = _check_workload(workload)
    if n < 2:
        raise InvalidParameterError(f"need n >= 2 to tune, got n={n}")
    lam_t = as_time(lam)
    semantics = WORKLOADS[workload]
    candidates = [
        Candidate(fam, oracle.time(n, m, lam_t), oracle.exact)
        for fam, oracle in sorted(REGISTRY.items())
        if oracle.semantics in semantics and oracle.applicable(n, m, lam_t)
    ]
    if not candidates:
        raise TuningError(
            f"no registered family is applicable to workload="
            f"{workload!r} at (n={n}, m={m}, lambda={lam_t}); "
            f"eligible families: {', '.join(candidate_families(workload))}"
        )
    candidates.sort(key=_sort_key)
    if not calibrate or n > max_calibrate_n:
        return candidates
    best = candidates[0].predicted
    contenders = [
        c for c in candidates
        if c.predicted == best
        or (not c.exact and c.predicted <= best * CALIBRATION_MARGIN)
    ]
    if len(contenders) <= 1 and all(c.exact for c in contenders):
        return candidates
    calibrated = {}
    for c in contenders:
        completion, sends = measure(c.family, n, m, lam_t, policy=policy)
        calibrated[c.family] = replace(
            c, measured=completion, sends=sends
        )
    merged = [calibrated.get(c.family, c) for c in candidates]
    merged.sort(key=_sort_key)
    return merged


def _plan_compilable(family: str, n: int, m: int, lam: Time) -> bool:
    from repro.plan.build import canonical_family, plan_m

    try:
        fam = canonical_family(family, n, m, lam)
        plan_m(fam, n, m)
    except InvalidParameterError:
        return False
    return True


def select_protocol(
    workload: str,
    n: int,
    *,
    m: int = 1,
    lam: TimeLike = 1,
    policy: str = "strict",
    calibrate: bool = True,
    require_plan: bool = False,
    table: "object | None" = None,
) -> str:
    """The best family name for a query.

    With *table* (a :class:`~repro.tune.table.TuningTable`), an exact
    query match short-circuits derivation and returns the committed
    winner; otherwise the ranking is derived on the spot via
    :func:`rank`.  *require_plan* restricts the choice to families the
    plan layer can compile (what ``run_batch`` and the replay backend
    need).

    Raises:
        InvalidParameterError: unknown workload, or ``n < 2``.
        TuningError: no applicable (or plan-compilable) family.
    """
    if table is not None:
        entry = table.lookup(workload, n, m, lam, policy)  # type: ignore[attr-defined]
        if entry is not None:
            if not require_plan or _plan_compilable(
                entry.winner, n, m, as_time(lam)
            ):
                return entry.winner
    ranking = rank(
        workload, n, m, lam, policy=policy, calibrate=calibrate
    )
    if require_plan:
        lam_t = as_time(lam)
        ranking = [
            c for c in ranking if _plan_compilable(c.family, n, m, lam_t)
        ]
        if not ranking:
            raise TuningError(
                f"no plan-compilable family is applicable to workload="
                f"{workload!r} at (n={n}, m={m}, lambda={as_time(lam)})"
            )
    return ranking[0].family


def auto_workload(family: str) -> "str | None":
    """Parse an ``"auto"`` family spec: ``"auto"`` means the broadcast
    workload, ``"auto:allgather"`` names one explicitly; any other
    string returns ``None`` (not an auto spec)."""
    spec = family.strip().lower()
    if spec == "auto":
        return "broadcast"
    if spec.startswith("auto:"):
        return _check_workload(spec[len("auto:"):])
    return None


def resolve_family(
    family: str,
    n: int,
    m: int = 1,
    lam: TimeLike = 1,
    *,
    policy: str = "strict",
    require_plan: bool = False,
) -> str:
    """Resolve a (possibly ``"auto"``) family spec to a concrete family
    name; non-auto specs pass through unchanged."""
    workload = auto_workload(family)
    if workload is None:
        return family
    return select_protocol(
        workload, n, m=m, lam=lam, policy=policy, require_plan=require_plan
    )
