"""The :class:`TuningTable` artifact: versioned, content-hashed, and
byte-reproducible.

A table is a flat list of resolved tuning decisions — one
:class:`TableEntry` per ``(workload, n, m, lambda, policy)`` query, each
carrying the winning family plus the full ranked candidate list with the
closed-form prediction and (where calibration ran) the measured exact
completion time and send count.  All times are exact rationals rendered
as ``p/q`` strings, so serialization is a pure function of the decision:
deriving the same grid twice — serially, with ``--jobs 4``, or on
another machine — produces **identical bytes**, which is what lets CI
diff a freshly derived table against the committed one
(``repro tune --verify``).

The JSON layout is canonical: sorted keys, two-space indent, a trailing
newline, and a ``content_hash`` field holding the SHA-256 of the
compact-encoded payload (everything except the hash itself).
:meth:`TuningTable.from_json` refuses payloads whose schema is unknown
or whose recomputed hash disagrees — a tampered or hand-edited table is
an error, not a silent input.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TuningError
from repro.types import TimeLike, as_time

__all__ = [
    "TABLE_SCHEMA",
    "RankedEntry",
    "TableEntry",
    "TuningTable",
]

#: Bump when the payload layout changes; ``from_json`` rejects others.
TABLE_SCHEMA = "repro-tune/1"


def frac_str(t: TimeLike) -> str:
    """Canonical ``p/q`` (or integer ``p``) rendering used in tables."""
    f = as_time(t)
    if f.denominator == 1:
        return str(f.numerator)
    return f"{f.numerator}/{f.denominator}"


@dataclass(frozen=True)
class RankedEntry:
    """One candidate family's standing in a resolved query.

    Attributes:
        family: registry name.
        predicted: the oracle closed form at the query point (``p/q``).
        exact: whether that closed form is exact (vs. an upper bound).
        measured: calibrated exact completion time (``p/q``), or ``None``
            when calibration was not needed for this candidate.
        sends: calibrated total send count, or ``None``.
    """

    family: str
    predicted: str
    exact: bool
    measured: "str | None" = None
    sends: "int | None" = None

    def payload(self) -> dict:
        doc: dict = {
            "family": self.family,
            "predicted": self.predicted,
            "exact": self.exact,
        }
        if self.measured is not None:
            doc["measured"] = self.measured
        if self.sends is not None:
            doc["sends"] = self.sends
        return doc

    @classmethod
    def from_payload(cls, doc: dict) -> "RankedEntry":
        return cls(
            family=doc["family"],
            predicted=doc["predicted"],
            exact=doc["exact"],
            measured=doc.get("measured"),
            sends=doc.get("sends"),
        )


@dataclass(frozen=True)
class TableEntry:
    """One resolved query: the winner plus the full ranking."""

    workload: str
    n: int
    m: int
    lam: str
    policy: str
    winner: str
    ranking: "tuple[RankedEntry, ...]"

    def key(self) -> tuple:
        return (self.workload, self.n, self.m, as_time(self.lam), self.policy)

    def payload(self) -> dict:
        return {
            "workload": self.workload,
            "n": self.n,
            "m": self.m,
            "lam": self.lam,
            "policy": self.policy,
            "winner": self.winner,
            "ranking": [r.payload() for r in self.ranking],
        }

    @classmethod
    def from_payload(cls, doc: dict) -> "TableEntry":
        return cls(
            workload=doc["workload"],
            n=doc["n"],
            m=doc["m"],
            lam=doc["lam"],
            policy=doc["policy"],
            winner=doc["winner"],
            ranking=tuple(
                RankedEntry.from_payload(r) for r in doc["ranking"]
            ),
        )


@dataclass(frozen=True)
class TuningTable:
    """A content-hashed set of tuning decisions for one query grid.

    Attributes:
        grid: the grid identifier the entries were derived from (e.g.
            ``"postal-default/1"``), part of the hashed payload.
        entries: resolved queries in derivation order.
    """

    grid: str
    entries: "tuple[TableEntry, ...]"
    schema: str = TABLE_SCHEMA

    # -------------------------------------------------------- serialization

    def payload(self) -> dict:
        """Everything that is hashed (i.e. all but the hash itself)."""
        return {
            "schema": self.schema,
            "grid": self.grid,
            "entries": [e.payload() for e in self.entries],
        }

    @property
    def content_hash(self) -> str:
        """SHA-256 hex digest of the compact canonical payload."""
        compact = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(compact.encode()).hexdigest()

    def to_json(self) -> str:
        """The canonical byte-reproducible rendering (sorted keys,
        two-space indent, trailing newline, embedded content hash)."""
        doc = self.payload()
        doc["content_hash"] = self.content_hash
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TuningTable":
        """Parse and authenticate a serialized table.

        Raises:
            TuningError: malformed JSON, unknown schema, or a content
                hash that does not match the payload.
        """
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TuningError(f"tuning table is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise TuningError("tuning table must be a JSON object")
        schema = doc.get("schema")
        if schema != TABLE_SCHEMA:
            raise TuningError(
                f"unsupported tuning table schema {schema!r} "
                f"(expected {TABLE_SCHEMA!r})"
            )
        try:
            table = cls(
                grid=doc["grid"],
                entries=tuple(
                    TableEntry.from_payload(e) for e in doc["entries"]
                ),
                schema=schema,
            )
        except (KeyError, TypeError) as exc:
            raise TuningError(f"malformed tuning table: {exc}") from exc
        claimed = doc.get("content_hash")
        if claimed != table.content_hash:
            raise TuningError(
                f"tuning table content hash mismatch: file claims "
                f"{claimed!r} but the payload hashes to "
                f"{table.content_hash!r} (tampered or hand-edited table)"
            )
        return table

    def save(self, path: "Path | str") -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: "Path | str") -> "TuningTable":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise TuningError(f"cannot read tuning table {path}: {exc}") from exc
        return cls.from_json(text)

    # --------------------------------------------------------------- lookup

    def lookup(
        self,
        workload: str,
        n: int,
        m: int = 1,
        lam: TimeLike = 1,
        policy: str = "strict",
    ) -> "TableEntry | None":
        """The entry for an exact query match, or ``None``."""
        want = (workload, n, m, as_time(lam), policy)
        for entry in self.entries:
            if entry.key() == want:
                return entry
        return None

    def __len__(self) -> int:
        return len(self.entries)
