"""``repro.tune`` — the postal autotuner.

The paper's central question is *which* broadcasting algorithm to run
for given postal parameters: this package answers it mechanically.  For
a query ``(workload, n, m, lambda, policy)`` the selector ranks every
applicable oracle family by its closed-form running time, settles ties
(and near-miss upper bounds) with deterministic calibration runs on the
turbo lane, and — over a pinned grid — assembles the decisions into a
content-hashed, byte-reproducible :class:`TuningTable` that CI verifies
against the committed ``TUNING_postal.json``.

Entry points:

* :func:`select_protocol` — one query, one family name;
* ``family="auto"`` / ``"auto:<workload>"`` in
  :func:`repro.run_protocol` and :func:`repro.run_batch`;
* :func:`derive_table` / :func:`verify_table` — build or drift-check a
  table (the ``repro tune`` CLI drives these);
* :func:`cached_table` — lookup-or-derive through the two-level
  :class:`TuneCache` (``$REPRO_TUNE_CACHE``).
"""

from repro.tune.calibrate import CALIBRATION_MARGIN, CALIBRATION_MAX_N, measure
from repro.tune.cache import (
    TuneCache,
    cached_table,
    configure_tune_cache,
    default_tune_cache,
)
from repro.tune.derive import (
    GRID_ID,
    TuneQuery,
    default_queries,
    derive_entry,
    derive_table,
    verify_table,
)
from repro.tune.model import (
    Candidate,
    WORKLOADS,
    auto_workload,
    candidate_families,
    rank,
    resolve_family,
    select_protocol,
    workloads,
)
from repro.tune.table import (
    TABLE_SCHEMA,
    RankedEntry,
    TableEntry,
    TuningTable,
)

__all__ = [
    "CALIBRATION_MARGIN",
    "CALIBRATION_MAX_N",
    "Candidate",
    "GRID_ID",
    "RankedEntry",
    "TABLE_SCHEMA",
    "TableEntry",
    "TuneCache",
    "TuneQuery",
    "TuningTable",
    "WORKLOADS",
    "auto_workload",
    "cached_table",
    "candidate_families",
    "configure_tune_cache",
    "default_queries",
    "default_tune_cache",
    "derive_entry",
    "derive_table",
    "measure",
    "rank",
    "resolve_family",
    "select_protocol",
    "verify_table",
    "workloads",
]
