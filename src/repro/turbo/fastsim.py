"""The turbo execution lane: a flat integer-tick event loop for postal runs.

The exact engine (:mod:`repro.sim.engine`) is general: any generator can
wait on any event, every delay is a :class:`fractions.Fraction`, and every
send spawns two processes (the port occupation and the network delivery).
That generality is exactly what large-``n`` reproductions do not need —
a postal run only ever

* occupies a unit-rate send port (``start = max(now, port_free)``),
* delivers ``latency`` after the send started (strict: at the due instant
  or :class:`~repro.errors.SimultaneousIOError`; queued: FIFO through the
  receive port), and
* hands the message to an inbox / a waiting ``recv``.

This module specializes for that shape:

* **Integer tick keys** — all times are rescaled to plain ``int`` ticks
  by a :class:`~repro.turbo.ticks.TickDomain` (lossless: scale = LCM of
  the run's denominators), so event ordering is C-speed int comparison
  instead of ``Fraction.__lt__``.
* **Calendar queue** — postal events land on a *dense* tick grid, so the
  scheduler is a bucket-per-tick calendar (O(1) push and pop) with a
  bounded look-ahead window, an overflow heap for far-future entries,
  lazy compaction of consumed buckets, and an automatic fallback to a
  classic binary heap when the tick spread turns out sparse (see
  :class:`TurboEnvironment`).
* **Direct delivery callbacks** — a send books its delivery as one queue
  entry ``(tick, seq, fn, args)``; no ``_send_proc`` / ``_deliver_proc``
  generator pair, no :class:`~repro.sim.resources.Resource` handshake.
  Port bookkeeping is two integer arrays (``send_free`` / ``recv_free``).
* **Columnar run log** — the run appends packed integers to a
  :class:`~repro.turbo.runlog.RunLog` (five ``array('q')`` columns, the
  layout of :mod:`repro.plan.columns`) and never touches the
  :class:`~repro.sim.trace.Tracer`; :meth:`TurboSystem.flush_trace`
  materializes real :class:`~repro.sim.trace.TraceRecord` objects *on
  demand* (the validator / metrics path).  A ``validate=False,
  collect=False`` run allocates zero trace records and no per-event
  Python containers.

Protocols run **unchanged**: :class:`TurboSystem` exposes the same
``send`` / ``recv`` / ``env.now`` / ``env.timeout`` surface as
:class:`~repro.postal.machine.PostalSystem`, and
:func:`repro.postal.runner.run_protocol` selects the lane with
``backend="turbo"``.  Off-grid delays (a timeout or pair latency whose
denominator does not divide the tick scale) raise
:class:`~repro.errors.TickDomainError` directing the caller to the exact
backend — turbo is never silently approximate.

Determinism note: within one tick, work runs in scheduling order (a
global sequence number), which reproduces the exact engine's tie-breaking
for every registered protocol family; the differential suite
(``tests/test_turbo_equivalence.py``) pins this equivalence across the
conformance grid, rational latencies included.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Any, Callable, Generator, Optional

from repro.errors import (
    InvalidParameterError,
    ModelError,
    SimulationError,
    SimultaneousIOError,
)
from repro.postal.machine import ContentionPolicy
from repro.postal.message import Message
from repro.sim.trace import Tracer
from repro.types import ProcId, Time, TimeLike, ZERO, as_time, time_repr
from repro.turbo.runlog import (
    CONSUME as _CONSUME,
    DELIVER as _DELIVER,
    SEND as _SEND,
    SEND_RETRANSMIT as _SEND_RT,
    RunLog,
)
from repro.turbo.ticks import TickDomain

__all__ = [
    "TurboEnvironment",
    "TurboEvent",
    "TurboProcess",
    "TurboSystem",
    "build_turbo",
]

_PENDING = object()

#: Calendar look-ahead: pushes more than this many ticks past the cursor
#: go to the overflow heap instead of growing the bucket array.
_SPAN = 1 << 16
#: Consumed-bucket prefix length that triggers lazy compaction.
_COMPACT = 1 << 12
#: Empty-slot scan debt (net of work found) that flips the loop to the
#: classic heap — the tick spread is too sparse for a calendar.
_SPARSE_DEBT = 1 << 12

# Within-tick ordering.  The exact engine breaks same-instant ties by
# *queueing order* (a global sequence number, with process resumptions
# running URGENT — i.e. immediately).  The turbo loop reproduces that
# structurally rather than imitating any particular outcome:
#
# * resumptions are synchronous — an event's callbacks run inline at its
#   heap pop, which is exactly what URGENT preemption achieves;
# * every delivery is booked as a *window hop* pushed at send time (the
#   twin of the exact engine's gap timeout, hence the same FIFO position
#   relative to the sender's completion event), and the hop re-pushes
#   the landing one unit later (the twin of the receive-unit timeout,
#   queued at the window);
# * inbox mutations are synchronous (``Store.put`` / ``Store.get``
#   semantics) but the consume hop (trace + waiter resume) is pushed
#   with a fresh seq, like the exact engine's get-event processing.
#
# With every push mirroring the exact engine's queueing moment, plain
# ``(tick, seq)`` heap order reproduces its tie-breaking for every
# latency — lambda = 1 (a tick's deliveries land after its send
# completions), lambda = 2 (per-sender interleaving), lambda >= 3
# (deliveries land first) — with no case analysis and no priority lanes.


class TurboEvent:
    """A one-shot awaitable on the turbo loop (duck-types
    :class:`~repro.sim.engine.Event` for the protocol-facing surface)."""

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "TurboEnvironment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool | None = None

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "TurboEvent":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._push(env._tick, self._fire)
        return self

    def fail(self, exception: BaseException) -> "TurboEvent":
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._push(env._tick, self._fire)
        return self

    def _fire(self) -> None:
        """Run callbacks (the heap-scheduled half of triggering)."""
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)
        elif self._ok is False:
            # a failure nobody waited for: surface it, like the exact engine
            raise self._value

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.callbacks is None
            else "triggered"
            if self._value is not _PENDING
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class TurboProcess(TurboEvent):
    """A protocol generator driven by the turbo loop.  As an event it
    fires when the generator returns (value = return value)."""

    __slots__ = ("_gen",)

    def __init__(self, env: "TurboEnvironment", generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._gen = generator
        env._push(env._tick, self._bootstrap)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def _bootstrap(self) -> None:
        self._step(True, None)

    def _resume(self, event: TurboEvent) -> None:
        self._step(event._ok, event._value)

    def _step(self, ok: bool, value: Any) -> None:
        gen = self._gen
        env = self.env
        while True:
            try:
                nxt = gen.send(value) if ok else gen.throw(value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._push(env._tick, self._fire)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._push(env._tick, self._fire)
                return
            if not isinstance(nxt, TurboEvent):
                self._ok = False
                self._value = SimulationError(
                    f"process yielded a non-event: {nxt!r}"
                )
                env._push(env._tick, self._fire)
                return
            if nxt.callbacks is None:
                # already processed: resume inline with its value
                ok, value = nxt._ok, nxt._value
                continue
            nxt.callbacks.append(self._resume)
            return


class TurboEnvironment:
    """The integer-tick event loop, scheduled by a calendar queue.

    Postal runs schedule events on a *dense* grid (every tick between
    start and completion tends to carry work), so the scheduler is a
    calendar: ``_buckets[i]`` holds the entries due at tick
    ``_base + i`` as a list of ``(seq, fn, args)``, naturally sorted by
    the global *seq* counter because entries are appended in scheduling
    order.  Push and pop are O(1); the heap's O(log E) sift is gone.

    Three mechanisms keep the calendar honest:

    * **Overflow heap** — a push more than :data:`_SPAN` ticks past the
      cursor goes to a classic ``(tick, seq, fn, args)`` heap instead of
      growing the bucket array; due overflow groups are merged back into
      the calendar (by *seq*, preserving FIFO) before processing.
    * **Lazy compaction** — consumed leading buckets are deleted in
      O(:data:`_COMPACT`) batches, so the array tracks the active window
      instead of the whole run.
    * **Sparse fallback** — a debt counter charges every empty bucket
      scanned and credits every entry executed; sustained sparse spread
      (> :data:`_SPARSE_DEBT` net empties) migrates all pending entries
      to the overflow heap and finishes the run as a plain heap loop, so
      pathological tick spreads never degrade past the old engine.

    FIFO within a tick via *seq* mirrors the exact engine's
    queueing-order tie-breaks (see the ordering note at module top).
    The rational clock is recovered on demand — and cached per tick —
    by :attr:`now`.
    """

    __slots__ = (
        "domain",
        "_tick",
        "_seq",
        "_base",
        "_cursor",
        "_buckets",
        "_overflow",
        "_pending",
        "_heap_mode",
        "_scan_debt",
        "_now_tick",
        "_now_time",
    )

    def __init__(self, domain: TickDomain | None = None):
        self.domain = domain if domain is not None else TickDomain()
        self._tick = 0
        self._seq = 0
        self._base = 0
        self._cursor = 0
        self._buckets: list[list | None] = []
        self._overflow: list[tuple[int, int, Callable, tuple]] = []
        self._pending = 0
        self._heap_mode = False
        self._scan_debt = 0
        self._now_tick = 0
        self._now_time = ZERO

    @property
    def now(self) -> Time:
        """Current simulation time as an exact :class:`~fractions.Fraction`
        (converted once per tick, then served from a one-slot cache —
        protocols poll ``env.now`` inside hot loops)."""
        tick = self._tick
        if tick != self._now_tick:
            self._now_tick = tick
            self._now_time = self.domain.to_time(tick)
        return self._now_time

    # -------------------------------------------------------- construction

    def event(self) -> TurboEvent:
        """A fresh, untriggered event."""
        return TurboEvent(self)

    def timeout(self, delay: TimeLike, value: Any = None) -> TurboEvent:
        """An event firing *delay* from now.

        Raises:
            TickDomainError: *delay* is off this run's tick grid (use the
                exact backend for such protocols).
        """
        ticks = self.domain.to_ticks(delay)
        if ticks < 0:
            raise SimulationError(f"negative timeout delay {as_time(delay)}")
        ev = TurboEvent(self)
        ev._ok = True
        ev._value = value
        self._push(self._tick + ticks, ev._fire)
        return ev

    def process(self, generator: Generator) -> TurboProcess:
        """Start *generator* as a process."""
        return TurboProcess(self, generator)

    # ----------------------------------------------------------- execution

    def _push(self, tick: int, fn: Callable, *args: Any) -> None:
        if tick < self._tick:
            raise SimulationError("event scheduled in the past")
        self._seq += 1
        self._pending += 1
        if self._heap_mode:
            heapq.heappush(self._overflow, (tick, self._seq, fn, args))
            return
        idx = tick - self._base
        buckets = self._buckets
        if idx < len(buckets):
            bucket = buckets[idx]
            if bucket is None:
                buckets[idx] = [(self._seq, fn, args)]
            else:
                bucket.append((self._seq, fn, args))
        elif idx < self._cursor + _SPAN:
            buckets.extend([None] * (idx + 1 - len(buckets)))
            buckets[idx] = [(self._seq, fn, args)]
        else:
            heapq.heappush(self._overflow, (tick, self._seq, fn, args))

    def _next_tick(self) -> int | None:
        """Tick of the next scheduled entry, or ``None`` (no mutation)."""
        if not self._pending:
            return None
        best = self._overflow[0][0] if self._overflow else None
        if not self._heap_mode:
            buckets = self._buckets
            cursor = self._cursor
            nbuckets = len(buckets)
            while cursor < nbuckets:
                if buckets[cursor] is not None:
                    cal = self._base + cursor
                    if best is None or cal < best:
                        best = cal
                    break
                cursor += 1
        return best

    def peek(self) -> Time | None:
        """Time of the next scheduled event, or ``None`` if none remain."""
        tick = self._next_tick()
        return self.domain.to_time(tick) if tick is not None else None

    def _pop_overflow_group(self, tick: int) -> list:
        """Pop every overflow entry due at *tick*, in seq order."""
        heap = self._overflow
        pop = heapq.heappop
        group = []
        while heap and heap[0][0] == tick:
            entry = pop(heap)
            group.append((entry[1], entry[2], entry[3]))
        return group

    def _switch_to_heap(self, cursor: int) -> None:
        """Migrate all calendar entries to the overflow heap and stay
        there — the run's tick spread is too sparse for bucket scans."""
        heap = self._overflow
        base = self._base
        buckets = self._buckets
        for idx in range(cursor, len(buckets)):
            bucket = buckets[idx]
            if bucket:
                tick = base + idx
                for seq, fn, args in bucket:
                    heap.append((tick, seq, fn, args))
        heapq.heapify(heap)
        buckets.clear()
        self._cursor = 0
        self._heap_mode = True

    def _run_heap(self) -> None:
        heap = self._overflow
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            self._tick = entry[0]
            self._pending -= 1
            entry[2](*entry[3])

    def _run_calendar_step(self) -> bool:
        """Process the next due bucket.  Returns ``False`` if the loop
        migrated to heap mode instead (caller must re-dispatch)."""
        buckets = self._buckets
        nbuckets = len(buckets)
        cursor = self._cursor
        while cursor < nbuckets and buckets[cursor] is None:
            cursor += 1
        scanned = cursor - self._cursor
        overflow = self._overflow
        if cursor == nbuckets:
            # calendar drained: rebase onto the earliest overflow group
            otick = overflow[0][0]
            self._base = otick
            cursor = 0
            buckets.clear()
            buckets.append(self._pop_overflow_group(otick))
        elif overflow and overflow[0][0] <= self._base + cursor:
            # an overflow group is due at or before the next bucket:
            # fold it into the calendar (merging by seq keeps FIFO)
            otick = overflow[0][0]
            cursor = otick - self._base
            group = self._pop_overflow_group(otick)
            bucket = buckets[cursor]
            if bucket is not None:
                group = sorted(bucket + group)
            buckets[cursor] = group
        bucket = buckets[cursor]
        self._scan_debt += scanned - (len(bucket) << 3)
        if self._scan_debt < 0:
            self._scan_debt = 0
        elif self._scan_debt > _SPARSE_DEBT:
            self._switch_to_heap(cursor)
            return False
        self._tick = self._base + cursor
        self._cursor = cursor
        # index iteration on purpose: same-tick pushes append to this
        # live bucket and must run within the tick, in seq order
        i = 0
        while i < len(bucket):
            entry = bucket[i]
            i += 1
            entry[1](*entry[2])
        self._pending -= i
        buckets[cursor] = None
        cursor += 1
        if cursor >= _COMPACT:
            del buckets[:cursor]
            self._base += cursor
            cursor = 0
        self._cursor = cursor
        return True

    def run(self, until: Any = None) -> None:
        """Run to quiescence (the only mode postal runs need)."""
        if until is not None:
            raise SimulationError(
                "the turbo engine only runs to quiescence; "
                "use backend='exact' for bounded runs"
            )
        while self._pending:
            if self._heap_mode:
                self._run_heap()
                return
            self._run_calendar_step()


class TurboSystem:
    """``MPS(n, lambda)`` on the turbo loop — same protocol-facing and
    validator-facing surface as :class:`~repro.postal.machine.PostalSystem`,
    none of its per-message process machinery.

    Port bookkeeping is two integer arrays: a send started at tick ``t``
    sets ``send_free[src] = t + one`` (``one`` = ticks per time unit) and
    books the delivery directly on the heap.  The run writes compact
    tuples to an internal log; :meth:`flush_trace` converts them to real
    trace records when (and only when) an auditor or collector asks.

    Pair-dependent latencies are converted to ticks lazily; a pair value
    off the run's grid raises :class:`~repro.errors.TickDomainError`
    (turbo is exact or loud, never approximate).
    """

    __slots__ = (
        "env",
        "domain",
        "_n",
        "_lam",
        "_latency_fn",
        "_policy",
        "tracer",
        "_one",
        "_lam_ticks",
        "_pair_ticks",
        "_strict",
        "_send_free",
        "_recv_free",
        "_inbox_items",
        "_inbox_waiters",
        "_log",
        "_lg_code",
        "_lg_tick",
        "_lg_a",
        "_lg_b",
        "_lg_c",
        "_lg_objs",
        "_completion_tick",
        "_flushed",
        "_send_views",
        "_recv_views",
    )

    def __init__(
        self,
        env: TurboEnvironment,
        n: int,
        lam: TimeLike,
        *,
        policy: ContentionPolicy = ContentionPolicy.STRICT,
        tracer: Tracer | None = None,
        latency: "Callable[[ProcId, ProcId], TimeLike] | None" = None,
    ):
        if n < 1:
            raise InvalidParameterError(f"need n >= 1 processors, got {n}")
        lam = as_time(lam)
        if lam < 1:
            raise InvalidParameterError(
                f"the postal model requires lambda >= 1, got {lam}"
            )
        self.env = env
        self.domain = env.domain
        self._n = n
        self._lam = lam
        self._latency_fn = latency
        self._policy = policy
        self.tracer = tracer if tracer is not None else Tracer()
        one = self.domain.scale
        self._one = one
        self._lam_ticks = self.domain.to_ticks(lam)
        self._pair_ticks: dict[tuple[int, int], int] = {}
        self._strict = policy is ContentionPolicy.STRICT
        self._send_free = [0] * n
        self._recv_free = [0] * n
        self._inbox_items: list[list[Message]] = [[] for _ in range(n)]
        self._inbox_waiters: list[list[TurboEvent]] = [[] for _ in range(n)]
        log = RunLog()
        self._log = log
        # hot-path column appends, bound once (send/_deliver run per event)
        self._lg_code = log.codes.append
        self._lg_tick = log.ticks.append
        self._lg_a = log.a.append
        self._lg_b = log.b.append
        self._lg_c = log.c.append
        self._lg_objs = log.objs
        self._completion_tick = 0
        self._flushed = False
        self._send_views: list["_PortView"] | None = None
        self._recv_views: list["_PortView"] | None = None

    # ------------------------------------------------------------ metadata

    @property
    def n(self) -> int:
        return self._n

    @property
    def lam(self) -> Time:
        return self._lam

    @property
    def policy(self) -> ContentionPolicy:
        return self._policy

    @property
    def uniform_latency(self) -> bool:
        return self._latency_fn is None

    def latency(self, src: ProcId, dst: ProcId) -> Time:
        if self._latency_fn is None:
            return self._lam
        lam = as_time(self._latency_fn(src, dst))
        if lam < 1:
            raise InvalidParameterError(
                f"latency({src}, {dst}) = {lam} violates lambda >= 1"
            )
        return lam

    def _latency_ticks(self, src: ProcId, dst: ProcId) -> int:
        if self._latency_fn is None:
            return self._lam_ticks
        key = (src, dst)
        ticks = self._pair_ticks.get(key)
        if ticks is None:
            # may raise TickDomainError: pair latency off this run's grid
            ticks = self.domain.to_ticks(self.latency(src, dst))
            self._pair_ticks[key] = ticks
        return ticks

    # ---------------------------------------------------------- primitives

    def send(
        self, src: ProcId, dst: ProcId, msg: int, payload: Any = None
    ) -> TurboEvent:
        """Start sending message *msg* from *src* to *dst*.

        Returns an event that fires when the **sender** finishes its
        one-unit send, with the send's start time as its value — the same
        pacing contract as :meth:`PostalSystem.send
        <repro.postal.machine.PostalSystem.send>`.  Delivery is booked as
        a *window hop*: a heap entry at ``start + latency - 1`` (the
        instant the receive window opens) that claims the receive port —
        colliding windows raise
        :class:`~repro.errors.SimultaneousIOError` there under the strict
        policy, or serialize FIFO under the queued policy — and re-pushes
        the landing one unit later.  The two-entry chain shadows the
        exact engine's gap-timeout + receive-unit chain, so same-instant
        ties resolve identically (see the ordering note at module top).
        """
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            raise InvalidParameterError(f"p{src} cannot send to itself")
        env = self.env
        one = self._one
        now = env._tick
        start = self._send_free[src]
        if start < now:
            start = now
        self._send_free[src] = start + one
        self._lg_code(_SEND)
        self._lg_tick(start)
        self._lg_a(src)
        self._lg_b(dst)
        self._lg_c(msg)
        # completion first, window hop second: the exact engine queues the
        # sender's one-unit timeout before the delivery's gap timeout
        done = TurboEvent(env)
        done._ok = True
        done._value = self.domain.to_time(start)
        env._push(start + one, done._fire)
        lat = self._latency_ticks(src, dst)
        book = self._book_strict if self._strict else self._book_queued
        env._push(start + lat - one, book, start, src, dst, msg, payload)
        return done

    def _book_strict(
        self, start: int, src: ProcId, dst: ProcId, msg: int, payload: Any
    ) -> None:
        window = self.env._tick
        free = self._recv_free[dst]
        if free > window:
            to_time = self.domain.to_time
            raise SimultaneousIOError(
                f"p{dst}: a message delivery due at t="
                f"{time_repr(to_time(window))} could not start receiving "
                f"until t={time_repr(to_time(free))} "
                f"(simultaneous-I/O violation)"
            )
        due = window + self._one
        self._recv_free[dst] = due
        self.env._push(due, self._deliver, start, src, dst, msg, payload)

    def _book_queued(
        self, start: int, src: ProcId, dst: ProcId, msg: int, payload: Any
    ) -> None:
        window = self.env._tick
        one = self._one
        free = self._recv_free[dst]
        rstart = window if free <= window else free
        self._recv_free[dst] = rstart + one
        self.env._push(rstart + one, self._deliver, start, src, dst, msg, payload)

    def _deliver(
        self, start: int, src: ProcId, dst: ProcId, msg: int, payload: Any
    ) -> None:
        env = self.env
        arrival = env._tick
        to_time = self.domain.to_time
        record = Message(msg, src, dst, to_time(start), to_time(arrival), payload)
        objs = self._lg_objs
        oid = len(objs)
        objs.append(record)
        self._lg_code(_DELIVER)
        self._lg_tick(arrival)
        self._lg_a(oid)
        self._lg_b(dst)
        self._lg_c(0)
        if arrival > self._completion_tick:
            self._completion_tick = arrival
        # the landing is synchronous (Store.put semantics); only the
        # waiter's consume hop is deferred, behind same-tick deliveries
        waiters = self._inbox_waiters[dst]
        if waiters:
            ev = waiters.pop(0)
            ev._ok = True
            ev._value = record
            env._push(arrival, self._fire_recv, dst, ev)
        else:
            self._inbox_items[dst].append(record)

    def recv(self, dst: ProcId) -> TurboEvent:
        """An event yielding the next :class:`~repro.postal.message.Message`
        from *dst*'s inbox (fires immediately if one is waiting)."""
        self._check_proc(dst)
        env = self.env
        ev = TurboEvent(env)
        items = self._inbox_items[dst]
        if items:
            ev._ok = True
            ev._value = items.pop(0)
            env._push(env._tick, self._fire_recv, dst, ev)
        else:
            self._inbox_waiters[dst].append(ev)
        return ev

    def _fire_recv(self, dst: ProcId, ev: TurboEvent) -> None:
        objs = self._lg_objs
        oid = len(objs)
        objs.append(ev._value)
        self._lg_code(_CONSUME)
        self._lg_tick(self.env._tick)
        self._lg_a(oid)
        self._lg_b(dst)
        self._lg_c(0)
        ev._fire()

    def cancel_recv(self, dst: ProcId, event: TurboEvent) -> None:
        """Withdraw a pending :meth:`recv` so it does not swallow a later
        message."""
        self._check_proc(dst)
        try:
            self._inbox_waiters[dst].remove(event)
        except ValueError:
            raise ValueError(f"{event!r} is not a pending recv of p{dst}") from None

    def inbox_size(self, proc: ProcId) -> int:
        self._check_proc(proc)
        return len(self._inbox_items[proc])

    # ------------------------------------------------------- fast accessors

    @property
    def completion_time(self) -> Time:
        """Arrival of the last delivered message (``0`` if none)."""
        if self._completion_tick == 0:
            return ZERO
        return self.domain.to_time(self._completion_tick)

    @property
    def send_count(self) -> int:
        """Number of sends started (a C-speed column count, retransmit
        rows included)."""
        return self._log.send_count

    def realized_schedule(self, *, m: int = 1, root: int = 0, validate: bool = False):
        """The run's :class:`~repro.core.schedule.Schedule` built straight
        from the compact log (strict uniform runs only) — no trace
        materialization, events pre-sorted by tick so the schedule's sort
        is a linear pass."""
        from repro.core.schedule import Schedule, SendEvent

        if self._policy is not ContentionPolicy.STRICT:
            raise ModelError(
                "schedule reconstruction requires the strict contention policy"
            )
        if not self.uniform_latency:
            raise ModelError(
                "schedule reconstruction requires uniform latency; pair-"
                "dependent runs are audited via audit_ports + delivery records"
            )
        to_time = self.domain.to_time
        sends = [row for row in self._log.rows() if row[0] == _SEND]
        sends.sort(key=itemgetter(1))
        events = [
            SendEvent(to_time(tick), src, msg, dst)
            for _, tick, src, dst, msg in sends
        ]
        return Schedule(
            self._n, self._lam, events, m=m, root=root, validate=validate
        )

    # ------------------------------------------------------ validator views

    def flush_trace(self) -> Tracer:
        """Materialize the compact log into :attr:`tracer` (idempotent).

        Entries are stable-sorted by tick, so the tracer's nondecreasing-
        time guarantee holds and every ``deliver`` precedes its
        ``consume``.  This is the *only* place turbo builds trace records
        — a run that is never flushed allocates none.
        """
        if self._flushed:
            return self.tracer
        self._flushed = True
        emit = self.tracer.emit
        to_time = self.domain.to_time
        log = self._log
        codes, ticks = log.codes, log.ticks
        col_a, col_b, col_c = log.a, log.b, log.c
        objs = log.objs
        for i in log.order_by_tick():
            code = codes[i]
            if code == _SEND:
                emit(
                    to_time(ticks[i]),
                    "send",
                    {"src": col_a[i], "dst": col_b[i], "msg": col_c[i]},
                )
            elif code == _DELIVER:
                record = objs[col_a[i]]
                emit(record.arrived_at, "deliver", record)
            else:  # _CONSUME
                record = objs[col_a[i]]
                now = to_time(ticks[i])
                emit(
                    now,
                    "consume",
                    {
                        "proc": col_b[i],
                        "msg": record.msg,
                        "src": record.src,
                        "waited": now - record.arrived_at,
                    },
                )
        return self.tracer

    def _build_port_views(self) -> None:
        n = self._n
        one = self._one
        send_ticks: list[list[int]] = [[] for _ in range(n)]
        recv_ticks: list[list[int]] = [[] for _ in range(n)]
        for code, tick, a, b, _ in self._log.rows():
            if code == _SEND or code == _SEND_RT:
                send_ticks[a].append(tick)
            elif code == _DELIVER:
                recv_ticks[b].append(tick - one)
        to_time = self.domain.to_time
        self._send_views = [
            _PortView(p, [(to_time(t), to_time(t + one)) for t in sorted(ticks)])
            for p, ticks in enumerate(send_ticks)
        ]
        self._recv_views = [
            _PortView(p, [(to_time(t), to_time(t + one)) for t in sorted(ticks)])
            for p, ticks in enumerate(recv_ticks)
        ]

    def send_port(self, proc: ProcId) -> "_PortView":
        """The send port's busy log, reconstructed from the run log (same
        shape :func:`~repro.postal.validator.audit_ports` reads)."""
        if self._send_views is None:
            self._build_port_views()
        return self._send_views[proc]

    def recv_port(self, proc: ProcId) -> "_PortView":
        """The receive port's busy log (each delivery occupies
        ``[arrival - 1, arrival)``)."""
        if self._recv_views is None:
            self._build_port_views()
        return self._recv_views[proc]

    # ------------------------------------------------------------ internal

    def _check_proc(self, proc: ProcId) -> None:
        if not 0 <= proc < self._n:
            raise InvalidParameterError(
                f"processor p{proc} outside 0..{self._n - 1}"
            )


class _PortView:
    """A finished port's busy log, duck-typing the auditor-facing slice of
    :class:`~repro.postal.ports._Port`."""

    __slots__ = ("proc", "busy_intervals")

    def __init__(self, proc: ProcId, busy_intervals: list[tuple[Time, Time]]):
        self.proc = proc
        self.busy_intervals = busy_intervals


def build_turbo(
    n: int,
    lam: TimeLike,
    *,
    policy: ContentionPolicy = ContentionPolicy.STRICT,
    tracer: Tracer | None = None,
    latency: "Callable[[ProcId, ProcId], TimeLike] | None" = None,
) -> TurboSystem:
    """A :class:`TurboSystem` on a fresh loop whose tick domain is derived
    from ``lam`` (scale = denominator of ``lam``), the turbo analogue of
    ``PostalSystem(Environment(), n, lam)``.

    >>> system = build_turbo(4, "5/2")
    >>> system.env.domain.scale
    2
    """
    domain = TickDomain.for_values([as_time(lam)])
    env = TurboEnvironment(domain)
    return TurboSystem(
        env, n, lam, policy=policy, tracer=tracer, latency=latency
    )
