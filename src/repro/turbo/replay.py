"""Vectorized plan replay — the top tier of the turbo lane.

``backend="turbo"`` already removes the exact engine's ``Fraction``
clock and resource handshakes, but it still *steps protocol generators*
and dispatches one callback chain per event.  A compiled
:class:`~repro.plan.columns.SchedulePlan` makes all of that unnecessary:
the full send list is known up front, and in a plan replay there is no
feedback from deliveries to sends.  :func:`replay_plan` therefore
executes the plan as a handful of batched column passes — no event
queue, no callbacks, no generators:

1. **Send starts** — one pass over the rows in plan order computes
   ``start = max(tick, send_free[sender])`` and advances the sender's
   port cursor (the per-port prefix-max the event loop performs one pop
   at a time).
2. **Window order** — a stable argsort of the realized starts.  Receive
   windows open at ``start + lambda - 1``; since the offset is constant,
   sorting by start *is* sorting by window, and stability reproduces the
   event loop's ``(window tick, seq)`` tie-breaking exactly.
3. **Receive booking** — one pass in window order updates
   ``recv_free[dst]``: the strict policy detects colliding windows with
   the same sorted duplicate scan the event loop performs (first
   violation in window order raises the byte-identical
   :class:`~repro.errors.SimultaneousIOError`); the queued policy
   serializes FIFO, ``arrival = max(window, recv_free) + 1``.
4. **Views on demand** — completion is the arrival maximum; schedules,
   port busy intervals, and trace records are materialized lazily from
   the ``starts`` / ``arrivals`` arrays.

The result is **byte-identical** to running the same plan through
``SchedulePlan.replay()`` on the turbo event loop: the same realized
schedule, completion time, send count, port busy intervals, trace-record
sequence, and the same exception at the same first collision.
``tests/test_replay_equivalence.py`` pins all of that, plus machine-level
equivalence (schedule / completion / sends / ports / metrics) against
full ``exact`` and ``turbo`` protocol runs across every registered
family.

When NumPy is installed (the ``repro[speed]`` extra) the three passes
run as whole-column kernels from :mod:`repro.batch.kernels` over
zero-copy views of the plan columns; ``REPRO_NUMPY=off`` (or an absent
NumPy) takes the pure-Python passes below.  The two implementations are
byte-identical — same arrays, same order, same first-collision
exception — which ``tests/test_batch_differential.py`` pins per family
and policy.
"""

from __future__ import annotations

import hashlib
from array import array
from operator import itemgetter

from repro.batch.kernels import replay_passes

from repro.core.schedule import Schedule, SendEvent
from repro.errors import ModelError, SimultaneousIOError
from repro.postal.machine import ContentionPolicy
from repro.postal.message import Message
from repro.sim.trace import Tracer
from repro.turbo.fastsim import _PortView
from repro.types import ProcId, Time, ZERO, time_repr

__all__ = ["ReplaySystem", "replay_plan"]


def replay_plan(plan, *, policy: ContentionPolicy = ContentionPolicy.STRICT):
    """Execute *plan* with batched column passes (no event loop).

    Args:
        plan: a compiled :class:`~repro.plan.columns.SchedulePlan`.
        policy: receive-port contention policy; the strict policy raises
            :class:`~repro.errors.SimultaneousIOError` on the first
            colliding receive window, exactly like the event loop.

    Returns:
        A finished :class:`ReplaySystem` exposing the validator-facing
        surface of :class:`~repro.turbo.fastsim.TurboSystem`.

    >>> from repro.plan import compile_plan
    >>> system = replay_plan(compile_plan("BCAST", 64, 1, "5/2"))
    >>> system.send_count
    63
    """
    fast = replay_passes(plan, policy)
    if fast is not None:
        starts, order, arrivals, contended = fast
        system = ReplaySystem(plan, policy, starts, arrivals, order)
        if policy is not ContentionPolicy.STRICT:
            system.queued_contention = contended
        return system

    n = plan.n
    one = plan.domain.scale
    lat = plan.lam_ticks
    plan_ticks = plan.ticks
    senders = plan.senders
    receivers = plan.receivers
    E = len(plan_ticks)

    # pass 1: realized starts (per-sender prefix-max in plan row order,
    # which is the event loop's pop order: rows are tick-sorted and the
    # pre-pushed entries break tick ties by row index)
    starts = array("q", plan_ticks)
    send_free = [0] * n
    for i in range(E):
        s = senders[i]
        t = starts[i]
        f = send_free[s]
        if t < f:
            starts[i] = t = f
        send_free[s] = t + one

    # pass 2: window order (stable by start = stable by window)
    order = sorted(range(E), key=starts.__getitem__)

    # pass 3: receive booking in window order
    arrivals = array("q", bytes(8 * E))
    recv_free = [0] * n
    woff = lat - one
    if policy is ContentionPolicy.STRICT:
        to_time = plan.domain.to_time
        for i in order:
            w = starts[i] + woff
            d = receivers[i]
            if recv_free[d] > w:
                raise SimultaneousIOError(
                    f"p{d}: a message delivery due at t="
                    f"{time_repr(to_time(w))} could not start receiving "
                    f"until t={time_repr(to_time(recv_free[d]))} "
                    f"(simultaneous-I/O violation)"
                )
            due = w + one
            recv_free[d] = due
            arrivals[i] = due
    else:
        contended = False
        for i in order:
            w = starts[i] + woff
            d = receivers[i]
            f = recv_free[d]
            if f <= w:
                due = w + one
            else:
                due = f + one
                contended = True
            recv_free[d] = due
            arrivals[i] = due

    system = ReplaySystem(plan, policy, starts, arrivals, order)
    if policy is not ContentionPolicy.STRICT:
        system.queued_contention = contended
    return system


class ReplaySystem:
    """A finished vectorized replay, duck-typing the validator- and
    collector-facing surface of :class:`~repro.turbo.fastsim.TurboSystem`
    (``flush_trace`` / ``realized_schedule`` / port views / counters).

    There are no protocol programs in a replay, so no messages are ever
    consumed — like ``SchedulePlan.replay()`` on the event loop, every
    delivery stays in its inbox and the trace carries ``send`` and
    ``deliver`` records only.
    """

    __slots__ = (
        "plan",
        "queued_contention",
        "tracer",
        "domain",
        "_policy",
        "_one",
        "_starts",
        "_arrivals",
        "_order",
        "_flushed",
        "_send_views",
        "_recv_views",
    )

    def __init__(self, plan, policy, starts, arrivals, order):
        self.plan = plan
        self.tracer = Tracer()
        self.domain = plan.domain
        self._policy = policy
        self._one = plan.domain.scale
        self._starts = starts
        self._arrivals = arrivals
        self._order = order
        self._flushed = False
        self._send_views = None
        self._recv_views = None
        #: Whether the queued booking pass had to delay any receive — a
        #: contended plan's replay is still a faithful ``plan.replay()``
        #: but no longer mirrors the (contention-adaptive) protocol run,
        #: so the ``backend="replay"`` wiring refuses it.
        self.queued_contention = False

    # ------------------------------------------------------------ metadata

    @property
    def n(self) -> int:
        return self.plan.n

    @property
    def lam(self) -> Time:
        return self.plan.lam

    @property
    def policy(self) -> ContentionPolicy:
        return self._policy

    @property
    def uniform_latency(self) -> bool:
        return True  # plans are compiled for uniform lambda only

    def latency(self, src: ProcId, dst: ProcId) -> Time:
        return self.plan.lam

    # ------------------------------------------------------ fast accessors

    @property
    def send_count(self) -> int:
        return len(self._starts)

    @property
    def completion_time(self) -> Time:
        arrivals = self._arrivals
        if not arrivals:
            return ZERO
        return self.domain.to_time(max(arrivals))

    def column_digest(self) -> str:
        """SHA-256 over the realized ``starts`` and ``arrivals`` columns
        (hex).  Two replays with equal digests realized byte-identical
        timings — the equality check the batch tier streams back
        instead of the arrays themselves."""
        h = hashlib.sha256()
        h.update(self._starts.tobytes())
        h.update(self._arrivals.tobytes())
        return h.hexdigest()

    def inbox_size(self, proc: ProcId) -> int:
        """Deliveries parked at *proc* (nothing consumes in a replay)."""
        if not 0 <= proc < self.plan.n:
            raise ModelError(f"processor p{proc} outside 0..{self.plan.n - 1}")
        return sum(1 for r in self.plan.receivers if r == proc)

    def realized_schedule(
        self, *, m: int = 1, root: int = 0, validate: bool = False
    ) -> Schedule:
        """The realized :class:`~repro.core.schedule.Schedule` (strict
        policy only, same refusal as the event loop under queued)."""
        if self._policy is not ContentionPolicy.STRICT:
            raise ModelError(
                "schedule reconstruction requires the strict contention policy"
            )
        plan = self.plan
        to_time = self.domain.to_time
        starts = self._starts
        rows = [
            (starts[i], plan.senders[i], plan.msgs[i], plan.receivers[i])
            for i in range(len(starts))
        ]
        rows.sort(key=itemgetter(0))
        events = [
            SendEvent(to_time(t), s, k, r) for t, s, k, r in rows
        ]
        return Schedule(
            plan.n, plan.lam, events, m=m, root=root, validate=validate
        )

    # ------------------------------------------------------ validator views

    def flush_trace(self) -> Tracer:
        """Materialize the replay into :attr:`tracer` (idempotent), in the
        byte-identical record order the event loop would produce: entries
        appear in execution order (sends at their plan tick before
        deliveries at the same instant), stable-sorted by record time."""
        if self._flushed:
            return self.tracer
        self._flushed = True
        plan = self.plan
        starts = self._starts
        arrivals = self._arrivals
        order = self._order
        # execution order first: sends execute at their *plan* tick in row
        # order (pre-pushed, seq <= E), deliveries at their arrival in
        # window order (seq > E) — sends win exec-time ties
        items = [(plan.ticks[i], 0, i) for i in range(len(starts))]
        items.extend((arrivals[i], 1, pos) for pos, i in enumerate(order))
        items.sort()
        # then stable-sort by the *record* time (a deferred send is logged
        # at its realized start, not at its plan tick)
        items.sort(
            key=lambda item: (
                starts[item[2]] if item[1] == 0 else arrivals[order[item[2]]]
            )
        )
        emit = self.tracer.emit
        to_time = self.domain.to_time
        senders, msgs, receivers = plan.senders, plan.msgs, plan.receivers
        for _, cls, o in items:
            if cls == 0:
                emit(
                    to_time(starts[o]),
                    "send",
                    {"src": senders[o], "dst": receivers[o], "msg": msgs[o]},
                )
            else:
                i = order[o]
                record = Message(
                    msgs[i],
                    senders[i],
                    receivers[i],
                    to_time(starts[i]),
                    to_time(arrivals[i]),
                    None,
                )
                emit(record.arrived_at, "deliver", record)
        return self.tracer

    def _build_port_views(self) -> None:
        plan = self.plan
        n = plan.n
        one = self._one
        send_ticks: list[list[int]] = [[] for _ in range(n)]
        recv_ticks: list[list[int]] = [[] for _ in range(n)]
        starts = self._starts
        arrivals = self._arrivals
        senders, receivers = plan.senders, plan.receivers
        for i in range(len(starts)):
            send_ticks[senders[i]].append(starts[i])
            recv_ticks[receivers[i]].append(arrivals[i] - one)
        to_time = self.domain.to_time
        self._send_views = [
            _PortView(p, [(to_time(t), to_time(t + one)) for t in sorted(ticks)])
            for p, ticks in enumerate(send_ticks)
        ]
        self._recv_views = [
            _PortView(p, [(to_time(t), to_time(t + one)) for t in sorted(ticks)])
            for p, ticks in enumerate(recv_ticks)
        ]

    def send_port(self, proc: ProcId) -> _PortView:
        if self._send_views is None:
            self._build_port_views()
        return self._send_views[proc]

    def recv_port(self, proc: ProcId) -> _PortView:
        if self._recv_views is None:
            self._build_port_views()
        return self._recv_views[proc]
