"""The ``backend="turbo"`` execution lane: lossless integer-tick postal
simulation.

Two pieces:

* :mod:`repro.turbo.ticks` — the :class:`TickDomain` rescaling a run's
  rational times to plain ``int`` ticks (scale = LCM of denominators;
  exact round trip, never a float).
* :mod:`repro.turbo.fastsim` — the flat event loop and
  :class:`TurboSystem`, a drop-in for
  :class:`~repro.postal.machine.PostalSystem` selected via
  ``run_protocol(..., backend="turbo")``.

See ``docs/performance.md`` for the exactness argument and the measured
speedups (``BENCH_turbo.json``).
"""

from repro.turbo.fastsim import (
    TurboEnvironment,
    TurboEvent,
    TurboProcess,
    TurboSystem,
    build_turbo,
)
from repro.turbo.ticks import TickDomain, lcm_denominator

__all__ = [
    "TickDomain",
    "lcm_denominator",
    "TurboEnvironment",
    "TurboEvent",
    "TurboProcess",
    "TurboSystem",
    "build_turbo",
]
