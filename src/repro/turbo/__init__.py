"""The ``backend="turbo"`` execution lane: lossless integer-tick postal
simulation.

Four pieces:

* :mod:`repro.turbo.ticks` — the :class:`TickDomain` rescaling a run's
  rational times to plain ``int`` ticks (scale = LCM of denominators;
  exact round trip, never a float).
* :mod:`repro.turbo.fastsim` — the calendar-queue event loop and
  :class:`TurboSystem`, a drop-in for
  :class:`~repro.postal.machine.PostalSystem` selected via
  ``run_protocol(..., backend="turbo")``.
* :mod:`repro.turbo.runlog` — the columnar :class:`RunLog` the engine
  writes (five ``array('q')`` columns; trace records materialize only on
  demand).
* :mod:`repro.turbo.replay` — the vectorized plan-replay tier
  (``backend="replay"``): batched column passes over a compiled
  :class:`~repro.plan.columns.SchedulePlan`, no event queue at all.

See ``docs/performance.md`` for the exactness argument and the measured
speedups (``BENCH_turbo.json``).
"""

from repro.turbo.fastsim import (
    TurboEnvironment,
    TurboEvent,
    TurboProcess,
    TurboSystem,
    build_turbo,
)
from repro.turbo.replay import ReplaySystem, replay_plan
from repro.turbo.runlog import RunLog
from repro.turbo.ticks import TickDomain, lcm_denominator

__all__ = [
    "TickDomain",
    "lcm_denominator",
    "TurboEnvironment",
    "TurboEvent",
    "TurboProcess",
    "TurboSystem",
    "RunLog",
    "ReplaySystem",
    "build_turbo",
    "replay_plan",
]
