"""Columnar run log for the turbo lane.

The turbo engine used to append one Python tuple per logged event.  At
``n = 10^5`` a broadcast run logs hundreds of thousands of entries, and
each tuple costs an allocation, per-element object headers, and pointer
chasing on every later scan.  This module stores the same information as
five parallel ``array('q')`` columns — the layout
:mod:`repro.plan.columns` already uses for compiled plans — plus one
plain list of :class:`~repro.postal.message.Message` references for the
rows that carry an object.  Appends are C-speed, scans (counts, port
views, the flush sort) run over packed machine integers, and a
``validate=False, collect=False`` run allocates no per-event Python
containers at all.

Row encodings (``code`` selects the meaning of ``a`` / ``b`` / ``c``):

========================  ===========  =====  =====  =====
code                      tick         a      b      c
========================  ===========  =====  =====  =====
:data:`SEND`              start        src    dst    msg
:data:`SEND_RETRANSMIT`   start        src    dst    msg
:data:`DELIVER`           arrival      obj    dst    --
:data:`CONSUME`           consume      obj    dst    --
:data:`DROP_LOSS`         start        src    dst    msg
:data:`DROP_CRASH`        window       src    dst    msg
========================  ===========  =====  =====  =====

``obj`` is an index into :attr:`RunLog.objs` (the delivered
:class:`~repro.postal.message.Message`); the Message is allocated anyway
for inbox delivery, so storing one reference keeps
``flush_trace`` byte-identical to the tuple-log era for free.
"""

from __future__ import annotations

from array import array
from typing import Iterator

__all__ = [
    "RunLog",
    "SEND",
    "DELIVER",
    "CONSUME",
    "DROP_LOSS",
    "DROP_CRASH",
    "SEND_RETRANSMIT",
]

#: A send started (occupies the sender's port for one unit).
SEND = 0
#: A message finished receiving (lands in the inbox / a waiting recv).
DELIVER = 1
#: A message was taken out of an inbox.
CONSUME = 2
#: The network lost the message (lossy extension).
DROP_LOSS = 3
#: The receiver was crashed when the window opened.
DROP_CRASH = 4
#: A retransmission send (fault-tolerant protocols; occupies the port
#: exactly like :data:`SEND`).
SEND_RETRANSMIT = 5


class RunLog:
    """Five parallel integer columns plus an object side table.

    >>> log = RunLog()
    >>> log.append(SEND, 3, 0, 1, 7)
    >>> log.append(DELIVER, 5, 0, 1)
    >>> len(log), log.send_count, log.count(DELIVER)
    (2, 1, 1)
    >>> list(log.rows())
    [(0, 3, 0, 1, 7), (1, 5, 0, 1, 0)]
    """

    __slots__ = ("codes", "ticks", "a", "b", "c", "objs")

    def __init__(self) -> None:
        self.codes = array("q")
        self.ticks = array("q")
        self.a = array("q")
        self.b = array("q")
        self.c = array("q")
        self.objs: list = []

    def __len__(self) -> int:
        return len(self.codes)

    def append(self, code: int, tick: int, a: int = 0, b: int = 0, c: int = 0) -> None:
        """Append one row (cold path — hot emitters cache the column
        ``append`` bound methods directly)."""
        self.codes.append(code)
        self.ticks.append(tick)
        self.a.append(a)
        self.b.append(b)
        self.c.append(c)

    def count(self, *codes: int) -> int:
        """Number of rows whose code is any of *codes* (C-speed scan)."""
        col = self.codes
        return sum(col.count(code) for code in codes)

    @property
    def send_count(self) -> int:
        """Sends started, retransmissions included."""
        col = self.codes
        return col.count(SEND) + col.count(SEND_RETRANSMIT)

    def rows(self) -> Iterator[tuple[int, int, int, int, int]]:
        """Iterate ``(code, tick, a, b, c)`` rows in append order."""
        return zip(self.codes, self.ticks, self.a, self.b, self.c)

    def order_by_tick(self) -> list[int]:
        """Row indices stable-sorted by tick — the flush order (ties keep
        append order, exactly like the old ``sorted(log, key=tick)``)."""
        return sorted(range(len(self.codes)), key=self.ticks.__getitem__)

    @property
    def nbytes(self) -> int:
        """Bytes held by the integer columns (the object side table is
        excluded — those Messages exist independently of the log)."""
        return sum(
            col.buffer_info()[1] * col.itemsize
            for col in (self.codes, self.ticks, self.a, self.b, self.c)
        )
