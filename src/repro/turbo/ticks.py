"""The integer tick domain: lossless rescaling of rational postal time.

Every quantity a postal run manipulates — the latency ``lambda = p/q``,
send starts, receive windows, protocol timeouts — lives on the grid
``{a + b*lambda : a, b in N}``, and therefore in ``(1/q) * Z``.  Fixing a
run's denominators up front lets the whole simulation run on plain
``int`` *ticks* (``tick = time * scale``) instead of
:class:`fractions.Fraction` values: heap keys compare with C-speed
integer comparison, port bookkeeping is integer ``max``/``+``, and the
exact rational times are recovered at the boundary with
:meth:`TickDomain.to_time` — a *lossless* round trip, never a float
approximation.

This is the arithmetic core of the ``backend="turbo"`` execution lane
(:mod:`repro.turbo.fastsim`); :class:`TickDomain` itself is independent
of the simulator and is also usable for tick-sweep schedule validation.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

from repro.errors import TickDomainError
from repro.types import Time, TimeLike, as_time

__all__ = ["TickDomain", "lcm_denominator"]

#: Refuse tick scales beyond this: a pathological mix of denominators
#: (e.g. 1/999983 and 1/999979) would otherwise silently produce huge
#: integers and lose the very speed the tick domain exists to buy.
MAX_SCALE = 1 << 24


def lcm_denominator(values: Iterable[TimeLike], *, limit: int = MAX_SCALE) -> int | None:
    """The least common multiple of the denominators of *values*, or
    ``None`` when it would exceed *limit*.

    >>> lcm_denominator(["5/2", "7/3", 4])
    6
    >>> lcm_denominator([1, 2, 3])
    1
    """
    scale = 1
    for value in values:
        scale = math.lcm(scale, as_time(value).denominator)
        if scale > limit:
            return None
    return scale


class TickDomain:
    """A lossless ``Fraction <-> int`` time rescaling with factor ``scale``.

    ``scale`` is the number of ticks per model time unit; a time ``t`` is
    representable exactly iff ``t * scale`` is an integer.  Construct via
    :meth:`for_values` to derive the scale from a run's rational
    parameters (the LCM of their denominators).

    >>> dom = TickDomain.for_values(["5/2", 1])
    >>> dom.scale
    2
    >>> dom.to_ticks("7/2")
    7
    >>> dom.to_time(7)
    Fraction(7, 2)
    """

    __slots__ = ("scale",)

    def __init__(self, scale: int = 1):
        if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1:
            raise TickDomainError(f"tick scale must be a positive int, got {scale!r}")
        if scale > MAX_SCALE:
            raise TickDomainError(
                f"tick scale {scale} exceeds the supported maximum {MAX_SCALE}"
            )
        self.scale = scale

    @classmethod
    def for_values(cls, values: Iterable[TimeLike]) -> "TickDomain":
        """The coarsest domain representing every value in *values* exactly
        (scale = LCM of the values' denominators).

        Raises:
            TickDomainError: the LCM exceeds :data:`MAX_SCALE`.
        """
        scale = lcm_denominator(values)
        if scale is None:
            raise TickDomainError(
                "the values' common denominator exceeds the supported tick "
                f"scale {MAX_SCALE}; use the exact backend instead"
            )
        return cls(scale)

    # ------------------------------------------------------------ transport

    def to_ticks(self, value: TimeLike) -> int:
        """``value * scale`` as an exact ``int``.

        Raises:
            TickDomainError: *value* does not lie on this domain's grid
                (the conversion would be lossy).
        """
        t = as_time(value)
        num = t.numerator * self.scale
        den = t.denominator
        ticks, rem = divmod(num, den)
        if rem:
            raise TickDomainError(
                f"time {t} is not representable at tick scale {self.scale} "
                f"(off-grid delay or latency; use the exact backend)"
            )
        return ticks

    def to_time(self, ticks: int) -> Time:
        """The exact rational time of *ticks* (inverse of :meth:`to_ticks`)."""
        return Fraction(ticks, self.scale)

    def representable(self, value: TimeLike) -> bool:
        """True when *value* lies on this domain's grid."""
        return (as_time(value).numerator * self.scale) % as_time(value).denominator == 0

    def __repr__(self) -> str:
        return f"TickDomain(scale={self.scale})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TickDomain):
            return NotImplemented
        return self.scale == other.scale

    def __hash__(self) -> int:
        return hash(("TickDomain", self.scale))
