"""Tests for the independent optimality oracles (Lemma 5 / Theorem 6)."""

from fractions import Fraction

import pytest

from repro.core.fibfunc import postal_F, postal_f
from repro.core.optimal import (
    eager_informed_counts,
    max_informed,
    opt_broadcast_time,
)
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS


class TestSplitDP:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_dp_equals_f(self, lam):
        """The split DP — which never touches F_lambda — agrees with
        f_lambda(n) for every n: Theorem 6 cross-validated."""
        for n in range(1, 61):
            assert opt_broadcast_time(n, lam) == postal_f(lam, n), n

    def test_base_cases(self):
        assert opt_broadcast_time(1, 3) == 0
        assert opt_broadcast_time(2, 3) == 3

    def test_paper_example(self):
        assert opt_broadcast_time(14, Fraction(5, 2)) == Fraction(15, 2)

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            opt_broadcast_time(0, 2)
        with pytest.raises(InvalidParameterError):
            opt_broadcast_time(2, Fraction(1, 2))


class TestEagerOracle:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_N_equals_F(self, lam):
        """The constructive eager simulation reproduces F_lambda point for
        point (Lemma 5's N(t) recurrence, validated constructively)."""
        horizon = 3 * lam + 4
        for k in range(0, int(horizon * 4) + 1):
            t = Fraction(k, 4)
            assert max_informed(lam, t) == postal_F(lam, t), t

    def test_step_function_shape(self):
        counts = eager_informed_counts(2, 6)
        assert counts(0) == 1
        assert counts(Fraction(3, 2)) == 1
        assert counts(2) == 2
        assert counts(6) == postal_F(2, 6)

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            eager_informed_counts(Fraction(1, 2), 3)
        with pytest.raises(InvalidParameterError):
            eager_informed_counts(2, -1)


class TestOptimalityOfBcast:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_no_schedule_beats_f(self, lam):
        """Any valid schedule's completion is >= f_lambda(n): check for
        the DTREE family and the binomial baseline."""
        from repro.algorithms.baselines import binomial_schedule, star_schedule
        from repro.core.dtree import dtree_schedule

        for n in (2, 5, 14):
            f = postal_f(lam, n)
            for d in (1, 2, n - 1):
                assert (
                    dtree_schedule(n, 1, lam, d, validate=False).completion_time()
                    >= f
                )
            assert binomial_schedule(n, lam).completion_time() >= f
            assert star_schedule(n, lam).completion_time() >= f

    def test_binomial_matches_bcast_at_lambda1(self):
        """In the telephone model the binomial tree IS optimal."""
        from repro.algorithms.baselines import binomial_schedule

        for n in (2, 3, 8, 16, 33):
            assert binomial_schedule(n, 1).completion_time() == postal_f(1, n)

    def test_binomial_suboptimal_for_lambda_above_1(self):
        from repro.algorithms.baselines import binomial_schedule

        lam = Fraction(5, 2)
        assert binomial_schedule(14, lam).completion_time() > postal_f(lam, 14)
