"""Tests for the seeded differential fuzzer and the failure-artifact
pipeline (repro.conformance.fuzzer / artifacts)."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.conformance import (
    ConformanceConfig,
    FuzzOptions,
    certify_config,
    families,
    run_fuzz,
    sample_config,
    smoke_options,
    write_failure_artifact,
)
from repro.errors import InvalidParameterError
from repro.obs.export import dump_jsonl

REPO_ROOT = Path(__file__).resolve().parents[1]


def _quick(seed=0, **overrides):
    base = dict(
        seed=seed,
        iterations=2 * len(families()),
        max_n=8,
        max_m=3,
        max_lam=4,
        max_denominator=3,
    )
    base.update(overrides)
    return FuzzOptions(**base)


class TestSampling:
    def test_sampled_configs_are_always_applicable(self):
        import random

        from repro.conformance import get_oracle

        rng = random.Random(123)
        opts = _quick()
        for family in families():
            for _ in range(20):
                cfg = sample_config(rng, family, opts)
                oracle = get_oracle(family)
                # raises on an inapplicable draw
                oracle.check_applicable(cfg.n, cfg.m, cfg.lam_time)

    def test_rational_lambdas_are_drawn(self):
        import random

        rng = random.Random(7)
        opts = _quick()
        denominators = {
            sample_config(rng, "REPEAT", opts).lam_time.denominator
            for _ in range(50)
        }
        assert denominators - {1}, "no rational lambda in 50 draws"


class TestFuzz:
    def test_quick_fuzz_certifies_everything(self):
        report = run_fuzz(_quick())
        assert report.ok, [f.violations for f in report.failures]
        assert set(report.stats) == set(families())
        assert report.total_runs == 2 * len(families())
        assert "certified" in report.summary()

    def test_smoke_options_cover_every_family(self):
        opts = smoke_options(seed=1)
        assert opts.iterations >= len(families())

    def test_no_families_raises(self):
        with pytest.raises(InvalidParameterError):
            run_fuzz(FuzzOptions(families=()))

    def test_chaos_corruptions_are_caught(self, tmp_path):
        opts = _quick(
            seed=5,
            iterations=12,
            chaos_rate=1.0,
            artifact_dir=str(tmp_path),
        )
        report = run_fuzz(opts)
        assert report.ok, [f.violations for f in report.failures]
        caught = sum(s.chaos_detected for s in report.stats.values())
        missed = sum(s.chaos_missed for s in report.stats.values())
        assert caught > 0 and missed == 0
        assert len(report.artifacts) == caught


class TestDeterminism:
    """Satellite (a): one seed, one behaviour — byte for byte."""

    def test_same_seed_same_report(self):
        a, b = run_fuzz(_quick(seed=9)), run_fuzz(_quick(seed=9))
        assert a.stats == b.stats

    def test_different_seed_different_grid(self):
        import random

        opts = _quick()
        cfg_a = sample_config(random.Random(1), "REPEAT", opts)
        cfg_b = sample_config(random.Random(2), "REPEAT", opts)
        assert cfg_a != cfg_b  # overwhelmingly likely; pinned seeds

    def test_same_seed_byte_identical_trace_jsonl(self):
        cfg = ConformanceConfig("PACK", 7, 3, "5/2", policy="strict")

        def dump():
            result = certify_config(cfg, keep_system=True)
            assert result.ok, result.violations
            buf = io.StringIO()
            dump_jsonl(result.systems["strict"].tracer, buf)
            return buf.getvalue()

        assert dump() == dump()

    def test_same_seed_identical_artifacts(self, tmp_path):
        dirs = []
        for name in ("a", "b"):
            root = tmp_path / name
            report = run_fuzz(
                _quick(
                    seed=5,
                    iterations=12,
                    chaos_rate=1.0,
                    artifact_dir=str(root),
                )
            )
            assert report.artifacts
            dirs.append(root)
        files_a = sorted(
            p.relative_to(dirs[0]) for p in dirs[0].rglob("*") if p.is_file()
        )
        files_b = sorted(
            p.relative_to(dirs[1]) for p in dirs[1].rglob("*") if p.is_file()
        )
        assert files_a == files_b
        for rel in files_a:
            if rel.name == "reproduce.py":
                continue  # embeds the artifact dir name in its docstring
            assert (dirs[0] / rel).read_bytes() == (
                dirs[1] / rel
            ).read_bytes(), rel


class TestArtifacts:
    def _chaos_result(self):
        cfg = ConformanceConfig("REPEAT", 7, 2, "2", chaos_seed=42)
        result = certify_config(cfg, keep_system=True)
        assert not result.ok
        return result

    def test_artifact_contents(self, tmp_path):
        directory = write_failure_artifact(self._chaos_result(), tmp_path)
        names = {p.name for p in directory.iterdir()}
        assert "config.json" in names
        assert "reproduce.py" in names
        assert "chrome-static.json" in names  # corrupted static schedule
        summary = json.loads((directory / "config.json").read_text())
        assert summary["config"]["chaos_seed"] == 42
        assert summary["violations"]
        assert summary["corruption"]

    def test_simulation_traces_dumped_when_systems_kept(self, tmp_path):
        cfg = ConformanceConfig("BCAST", 6, 1, "2", policy="both")
        result = certify_config(cfg, keep_system=True)
        # force a violation so an artifact is warranted
        result.violations.append("synthetic: test-injected divergence")
        directory = write_failure_artifact(result, tmp_path)
        names = {p.name for p in directory.iterdir()}
        assert {"trace-strict.jsonl", "trace-queued.jsonl"} <= names
        assert {"chrome-strict.json", "chrome-queued.json"} <= names
        first = (directory / "trace-strict.jsonl").read_text().splitlines()
        assert first and all(json.loads(line) for line in first)

    def test_repro_script_reproduces_violation_from_seed(self, tmp_path):
        """Acceptance criterion: the filed repro script re-derives the
        corruption from the recorded seed and exits 1."""
        directory = write_failure_artifact(self._chaos_result(), tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, str(directory / "reproduce.py")],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            timeout=60,
        )
        assert proc.returncode == 1, (proc.stdout, proc.stderr)
        assert "violation" in proc.stdout


class TestCli:
    def test_conformance_smoke_command(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "conformance",
                "--smoke",
                "--seed",
                "2",
                "--iterations",
                "16",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "certified" in out
        assert "family" in out  # the summary table rendered

    def test_conformance_family_subset(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "conformance",
                "--families",
                "BCAST,PIPELINE-2",
                "--iterations",
                "6",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PIPELINE-2" in out


class TestBatchPlanDistribution:
    """``FuzzOptions(batch=True)``: pre-compiled, shared-memory plans
    must be invisible in the report — byte-identical outcomes — and the
    segments must never outlive the run."""

    def _report_signature(self, report):
        return (
            report.ok,
            report.total_runs,
            {
                family: (s.runs, s.certified, s.failed, s.chaos_missed)
                for family, s in sorted(report.stats.items())
            },
        )

    def test_batch_requires_replay_backend(self):
        with pytest.raises(InvalidParameterError, match="replay"):
            run_fuzz(_quick(backend="exact", batch=True))

    def test_batch_report_is_identical_to_plain(self):
        plain = run_fuzz(_quick(seed=11, backend="replay"))
        batch = run_fuzz(_quick(seed=11, backend="replay", batch=True))
        assert plain.ok and batch.ok
        assert self._report_signature(plain) == self._report_signature(batch)

    def test_batch_parallel_is_identical_to_serial(self):
        serial = run_fuzz(_quick(seed=12, backend="replay", batch=True))
        parallel = run_fuzz(
            _quick(seed=12, backend="replay", batch=True), jobs=2
        )
        assert self._report_signature(serial) == self._report_signature(
            parallel
        )

    def test_batch_releases_every_segment(self):
        shm = Path("/dev/shm")
        if not shm.is_dir():
            pytest.skip("no /dev/shm to scan for leaks")
        before = {p.name for p in shm.iterdir()}
        run_fuzz(_quick(seed=13, backend="replay", batch=True), jobs=2)
        assert {p.name for p in shm.iterdir()} <= before

    def test_cli_batch_rejects_non_replay_backend(self, capsys):
        from repro.cli import main

        rc = main(["conformance", "--batch", "--iterations", "4"])
        assert rc == 2
        assert "--backend replay" in capsys.readouterr().out

    def test_cli_batch_smoke(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "conformance",
                "--batch",
                "--backend",
                "replay",
                "--seed",
                "3",
                "--iterations",
                "12",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "shared batch plans" in out
