"""Tests for Resource and Store (repro.sim.resources)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store


class TestResource:
    def test_immediate_grant_under_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_queueing_and_fifo_grant(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            req = res.request()
            yield req
            order.append((tag, env.now))
            yield env.timeout(hold)
            res.release(req)

        env.process(user("a", 2))
        env.process(user("b", 1))
        env.process(user("c", 1))
        env.run()
        assert order == [("a", 0), ("b", 2), ("c", 3)]

    def test_queued_count(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.count == 1
        assert res.queued == 2

    def test_release_unheld_rejected(self):
        env = Environment()
        res = Resource(env)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env)
        held = res.request()
        waiting = res.request()
        waiting.cancel()
        res.release(held)
        assert res.queued == 0
        assert not waiting.triggered  # never granted

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        got = []

        def getter():
            got.append((yield store.get()))

        env.process(getter())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, env.now))

        def putter():
            yield env.timeout(3)
            yield store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [("late", 3)]

    def test_fifo_items(self):
        env = Environment()
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        env.process(getter())
        env.run()
        assert got == ["a", "b", "c"]

    def test_fifo_getters(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(getter("first"))
        env.process(getter("second"))

        def putter():
            yield env.timeout(1)
            yield store.put(1)
            yield store.put(2)

        env.process(putter())
        env.run()
        assert got == [("first", 1), ("second", 2)]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        done = []

        def putter():
            yield store.put("a")
            yield store.put("b")  # blocks until someone takes "a"
            done.append(env.now)

        def getter():
            yield env.timeout(5)
            yield store.get()

        env.process(putter())
        env.process(getter())
        env.run()
        assert done == [5]

    def test_items_snapshot_and_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.items == (1, 2)
        assert len(store) == 2

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Store(Environment(), capacity=0)
