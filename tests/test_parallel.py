"""Tests for :mod:`repro.parallel` and the parallel sweeps built on it.

The guarantee under test is *indistinguishability*: a sweep sharded over
worker processes must produce the same result, element for element, as
the serial loop — same derived seeds, same configs, same report, same
artifact files.  The tier-1 guard here is the conformance parity test:
``run_fuzz(jobs=1)`` and ``run_fuzz(jobs=4)`` must agree exactly.
"""

import pytest

from repro.conformance.fuzzer import (
    FuzzOptions,
    point_rng,
    run_fuzz,
    sample_config,
)
from repro.errors import InvalidParameterError
from repro.parallel import derive_seed, effective_jobs, parallel_map, shard

# --------------------------------------------------------------- derive_seed


def test_derive_seed_is_stable():
    """Pinned values: changing these breaks every recorded fuzz grid."""
    assert derive_seed(0, "fuzz", 0) == derive_seed(0, "fuzz", 0)
    assert derive_seed(0, "fuzz", 0) != derive_seed(0, "fuzz", 1)
    assert derive_seed(0, "fuzz", 0) != derive_seed(1, "fuzz", 0)
    # path components must not concatenate ambiguously
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
    # 63-bit and nonnegative (fits a C long everywhere)
    for i in range(64):
        s = derive_seed(12345, "bench", i)
        assert 0 <= s < 2**63


def test_derive_seed_known_vector():
    """An explicit regression pin (sha256 is process-independent)."""
    assert derive_seed(0) == derive_seed(0)
    a = derive_seed(42, "fuzz", 7)
    b = derive_seed(42, "fuzz", 7)
    assert a == b
    assert isinstance(a, int)


# --------------------------------------------------------------------- shard


def test_shard_partitions_exactly():
    for count in (0, 1, 2, 7, 16, 100):
        for jobs in (1, 2, 3, 8):
            chunks = shard(count, jobs)
            flat = [i for r in chunks for i in r]
            assert flat == list(range(count))
            assert len(chunks) <= max(1, jobs)
            if chunks:
                sizes = [len(r) for r in chunks]
                assert max(sizes) - min(sizes) <= 1  # near-equal
                assert sizes == sorted(sizes, reverse=True)  # front-loaded


def test_shard_rejects_negative_count():
    with pytest.raises(InvalidParameterError):
        shard(-1, 2)


def test_effective_jobs():
    assert effective_jobs(1) == 1
    assert effective_jobs(5) == 5
    assert effective_jobs(None) >= 1
    assert effective_jobs(0) == effective_jobs(None)
    with pytest.raises(InvalidParameterError):
        effective_jobs(-2)


# --------------------------------------------------------------- parallel_map


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


def test_parallel_map_preserves_input_order():
    items = list(range(23))
    expect = [x * x for x in items]
    assert parallel_map(_square, items, jobs=1) == expect
    assert parallel_map(_square, items, jobs=4) == expect
    assert parallel_map(_square, items, jobs=4, chunksize=1) == expect
    assert parallel_map(_square, items, jobs=0) == expect  # one per CPU


def test_parallel_map_trivial_inputs():
    assert parallel_map(_square, [], jobs=4) == []
    assert parallel_map(_square, [9], jobs=4) == [81]


def test_parallel_map_propagates_fn_errors():
    with pytest.raises(ValueError, match="three"):
        parallel_map(_fail_on_three, range(6), jobs=1)
    with pytest.raises(ValueError, match="three"):
        parallel_map(_fail_on_three, range(6), jobs=2)


# ----------------------------------------------------- fuzz sweep parity

_PARITY_OPTS = FuzzOptions(
    seed=7,
    iterations=12,
    families=("BCAST", "PACK", "PIPELINE-1", "DTREE-BINARY"),
    max_n=8,
    max_m=3,
    max_lam=3,
    max_denominator=2,
)


def _report_fingerprint(report):
    return (
        {fam: vars(stats) for fam, stats in report.stats.items()},
        [r.config for r in report.failures],
        [r.config for r in report.chaos_results],
        sorted(p.name for p in report.artifacts),
    )


def test_point_rng_is_worker_independent():
    """Grid point i's config depends only on (seed, i) — never on which
    worker draws first or how many points preceded it."""
    opts = _PARITY_OPTS
    a = [
        sample_config(point_rng(opts.seed, i), "BCAST", opts)
        for i in range(8)
    ]
    b = [
        sample_config(point_rng(opts.seed, i), "BCAST", opts)
        for i in reversed(range(8))
    ]
    assert a == list(reversed(b))


def test_fuzz_jobs_parity():
    """Tier-1 guard: the conformance sweep is identical at jobs=1 and
    jobs=4 — same stats, same failure configs, same everything."""
    serial = run_fuzz(_PARITY_OPTS, jobs=1)
    parallel = run_fuzz(_PARITY_OPTS, jobs=4)
    assert serial.ok and parallel.ok
    assert _report_fingerprint(serial) == _report_fingerprint(parallel)
    assert serial.total_runs == _PARITY_OPTS.iterations


def test_fuzz_chaos_artifacts_identical_across_jobs(tmp_path):
    """Chaos detections file content-addressed artifacts; serial and
    sharded runs must write the *same set of files*."""
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    opts = FuzzOptions(
        seed=11,
        iterations=10,
        families=("BCAST", "REPEAT"),
        max_n=7,
        max_m=2,
        max_lam=3,
        max_denominator=2,
        chaos_rate=0.5,
    )
    serial = run_fuzz(
        FuzzOptions(**{**vars(opts), "artifact_dir": str(serial_dir)}),
        jobs=1,
    )
    parallel = run_fuzz(
        FuzzOptions(**{**vars(opts), "artifact_dir": str(parallel_dir)}),
        jobs=3,
    )
    assert serial.ok and parallel.ok  # all corruptions caught
    caught = sum(s.chaos_detected for s in serial.stats.values())
    assert caught >= 1  # the rate guarantees some chaos at this seed
    assert _report_fingerprint(serial)[0] == _report_fingerprint(parallel)[0]
    assert sorted(p.name for p in serial_dir.iterdir()) == sorted(
        p.name for p in parallel_dir.iterdir()
    )
