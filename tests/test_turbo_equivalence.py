"""Differential equivalence: ``backend="turbo"`` vs ``backend="exact"``.

The turbo lane (:mod:`repro.turbo`) promises *bit-identical* results to
the general engine, not approximately-equal ones.  This suite runs every
conformance family over a grid of sizes, message counts, rational and
integer latencies, and both contention policies, on both backends, and
asserts equality of:

* the realized schedule (sorted ``SendEvent`` tuples), when one exists;
* the completion time ``T_A(n, m, lambda)`` and total send count;
* the full :class:`~repro.obs.metrics.RunMetrics`;
* the trace event multiset ``{(time, kind)}``.

Runs where the model itself raises (e.g. strict-policy collisions) must
raise the *same exception type* on both lanes.  Plus unit tests for the
tick domain itself (lossless round trip, off-grid rejection).
"""

from collections import Counter
from fractions import Fraction

import pytest

from repro.conformance.oracles import families, get_oracle
from repro.errors import SimultaneousIOError, TickDomainError
from repro.postal.machine import ContentionPolicy
from repro.postal.runner import run_protocol
from repro.turbo import TickDomain, lcm_denominator
from repro.types import as_time

#: Latencies: integer, half-integer, and the coarse rationals the issue
#: calls out (5/2 is the paper's running example; 7/3 exercises a
#: denominator that is not a power of two).
LAMBDAS = ["1", "3/2", "2", "5/2", "7/3", "4"]

#: Machine sizes around the jumps of ``F_lambda``.
SIZES = [2, 3, 5, 8, 13]

#: Message counts for the multi-message families (4 keeps PIPELINE-2,
#: which needs ``m >= lambda``, applicable at ``lambda = 4``).
MCOUNTS = [1, 2, 3, 4]


def _fingerprint(oracle, n, m, lam, policy, backend):
    """Everything observable about one run, in comparable form."""
    proto = oracle.protocol(n=n, m=m, lam=lam)  # fresh: protocols hold state
    res = run_protocol(proto, policy=policy, backend=backend)
    system = res.system
    records = (
        system.flush_trace() if backend == "turbo" else system.tracer.records()
    )
    schedule = None
    if res.schedule is not None:
        schedule = sorted(
            (e.send_time, e.sender, e.msg, e.receiver)
            for e in res.schedule.events
        )
    return {
        "completion": res.completion_time,
        "sends": res.sends,
        "metrics": res.metrics,
        "schedule": schedule,
        "trace": Counter((r.time, r.kind) for r in records),
    }


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", families())
def test_backends_agree(family, lam_str):
    """Turbo reproduces the exact backend bit for bit across the grid."""
    oracle = get_oracle(family)
    lam = as_time(lam_str)
    checked = 0
    for n in SIZES:
        for m in MCOUNTS:
            if not oracle.applicable(n, m, lam):
                continue
            policies = [ContentionPolicy.STRICT]
            if oracle.supports_queued:
                policies.append(ContentionPolicy.QUEUED)
            for policy in policies:
                ctx = f"{family} n={n} m={m} lam={lam_str} {policy.value}"
                try:
                    exact = _fingerprint(oracle, n, m, lam, policy, "exact")
                except Exception as exc:
                    with pytest.raises(type(exc)):
                        _fingerprint(oracle, n, m, lam, policy, "turbo")
                    checked += 1
                    continue
                turbo = _fingerprint(oracle, n, m, lam, policy, "turbo")
                for key in ("completion", "sends", "schedule", "trace", "metrics"):
                    assert exact[key] == turbo[key], f"{ctx}: {key} differs"
                checked += 1
    if checked == 0:
        pytest.skip(f"no applicable (n, m) for {family} at lambda={lam_str}")


# --------------------------------------------------- exception parity


class _ColliderProtocol:
    """Two processors send to the same receiver at the same instant —
    an illegal simultaneous receive under the strict policy."""

    name = "COLLIDER"
    semantics = "p2p"

    def __init__(self, lam="2"):
        self.n = 3
        self.m = 1
        self.root = 0
        self.lam = as_time(lam)

    def program(self, proc, system):
        if proc in (0, 1):
            def prog(src=proc):
                yield system.send(src, 2, 0)

            return prog()
        return None


@pytest.mark.parametrize("backend", ["exact", "turbo"])
def test_strict_collision_raises_on_both_backends(backend):
    with pytest.raises(SimultaneousIOError):
        run_protocol(_ColliderProtocol(), backend=backend)


@pytest.mark.parametrize("lam", ["1", "2", "5/2"])
def test_queued_collider_agrees(lam):
    """The same collision is legal under the queued policy; both lanes
    must serialize it identically."""
    results = {}
    for backend in ("exact", "turbo"):
        res = run_protocol(
            _ColliderProtocol(lam),
            policy=ContentionPolicy.QUEUED,
            backend=backend,
        )
        results[backend] = (res.completion_time, res.sends, res.metrics)
    assert results["exact"] == results["turbo"]


def test_off_grid_latency_raises_tick_domain_error():
    """A latency whose denominator exceeds the supported scale cannot be
    represented in ticks; turbo refuses instead of degrading."""
    huge = (1 << 25) + 1  # denominator LCM above MAX_SCALE = 2**24

    class _Proto(_ColliderProtocol):
        def __init__(self):
            super().__init__(lam=Fraction(huge, 1 << 25))

    with pytest.raises(TickDomainError):
        run_protocol(
            _Proto(), policy=ContentionPolicy.QUEUED, backend="turbo"
        )
    # the exact lane handles the same latency fine
    res = run_protocol(
        _Proto(), policy=ContentionPolicy.QUEUED, backend="exact"
    )
    assert res.sends == 2


# ------------------------------------------------------- tick domain


def test_tick_domain_round_trip_is_lossless():
    values = [as_time("5/2"), as_time("7/3"), as_time(4), as_time("1/6")]
    domain = TickDomain.for_values(values)
    for v in values:
        assert domain.to_time(domain.to_ticks(v)) == v


def test_tick_domain_rejects_off_grid_values():
    domain = TickDomain.for_values([as_time(2)])  # scale 1
    with pytest.raises(TickDomainError):
        domain.to_ticks(as_time("1/2"))


def test_lcm_denominator_caps_at_limit():
    assert lcm_denominator([Fraction(1, 3), Fraction(1, 4)]) == 12
    assert lcm_denominator([Fraction(1, (1 << 25))]) is None
