"""Tests for the Schedule IR and its postal-model validation."""

from fractions import Fraction

import pytest

from repro.core.schedule import Schedule, SendEvent, check_intervals_disjoint
from repro.errors import (
    InvalidParameterError,
    ScheduleError,
    SimultaneousIOError,
)
from repro.types import Time


def ev(t, src, dst, msg=0):
    return SendEvent(Time(t), src, msg, dst)


class TestSendEvent:
    def test_arrival(self):
        e = ev(3, 0, 1)
        assert e.arrival_time(Fraction(5, 2)) == Fraction(11, 2)

    def test_ordering_chronological(self):
        events = [ev(5, 0, 1), ev(0, 0, 2), ev(2, 1, 3)]
        assert [e.send_time for e in sorted(events)] == [0, 2, 5]

    def test_str(self):
        assert "p0 --M1--> p1" in str(ev(0, 0, 1))


class TestIntervals:
    def test_disjoint(self):
        assert check_intervals_disjoint([(0, 1), (1, 2), (5, 6)]) is None

    def test_touching_ok(self):
        assert check_intervals_disjoint([(0, 1), (1, 2)]) is None

    def test_overlap_detected(self):
        clash = check_intervals_disjoint([(0, 2), (1, 3)])
        assert clash == (0, 2, 1, 3)

    def test_unsorted_input(self):
        assert check_intervals_disjoint([(5, 6), (0, 1)]) is None
        assert check_intervals_disjoint([(5, 7), (0, 6)]) is not None


class TestValidSchedules:
    def test_trivial(self):
        s = Schedule(1, 2, [])
        assert s.completion_time() == 0
        assert len(s) == 0

    def test_two_processors(self):
        s = Schedule(2, Fraction(5, 2), [ev(0, 0, 1)])
        assert s.completion_time() == Fraction(5, 2)
        assert s.arrival_of(1) == Fraction(5, 2)
        assert s.arrival_of(0) == 0  # root holds from the start

    def test_relay(self):
        # 0 -> 1 at t=0 (arrives 2); 1 -> 2 at t=2 (arrives 4)
        s = Schedule(3, 2, [ev(0, 0, 1), ev(2, 1, 2)])
        assert s.completion_time() == 4

    def test_full_duplex_legal(self):
        # p1 receives during [1,2) and sends during [2,3): fine; even a
        # send overlapping its own receive window is legal simultaneous I/O
        s = Schedule(
            3, 2, [ev(0, 0, 1), ev(1, 0, 2)]
        )  # p0 sends twice back-to-back
        assert s.completion_time() == 3

    def test_informed_count(self):
        s = Schedule(3, 2, [ev(0, 0, 1), ev(2, 1, 2)])
        a = s.informed_count()
        assert a(0) == 1
        assert a(Fraction(3, 2)) == 1
        assert a(2) == 2
        assert a(4) == 3
        assert a(1000) == 3  # saturates

    def test_sends_receives_queries(self):
        s = Schedule(3, 2, [ev(0, 0, 1), ev(2, 1, 2)])
        assert len(s.sends_by(0)) == 1
        assert len(s.sends_by(1)) == 1
        assert s.receives_by(2)[0].sender == 1

    def test_shift(self):
        s = Schedule(2, 2, [ev(0, 0, 1)]).shifted(3)
        assert s.events[0].send_time == 3
        assert s.completion_time() == 5

    def test_negative_shift_guard(self):
        with pytest.raises(InvalidParameterError):
            Schedule(2, 2, [ev(0, 0, 1)]).shifted(-1)

    def test_merge(self):
        a = Schedule(2, 2, [ev(0, 0, 1, msg=0)], m=1, validate=False)
        b = Schedule(2, 2, [ev(1, 0, 1, msg=1)], m=2, validate=False)
        merged = Schedule.merged([a, b])
        assert merged.m == 2
        assert merged.completion_time() == 3  # M2 sent at 1 arrives at 3

    def test_merge_mismatch(self):
        a = Schedule(2, 2, [ev(0, 0, 1)])
        b = Schedule(3, 2, [ev(0, 0, 1), ev(2, 1, 2)])
        with pytest.raises(InvalidParameterError):
            Schedule.merged([a, b])

    def test_equality(self):
        a = Schedule(2, 2, [ev(0, 0, 1)])
        b = Schedule(2, 2, [ev(0, 0, 1)])
        assert a == b and not (a != b)


class TestInvalidSchedules:
    def test_lambda_range(self):
        with pytest.raises(InvalidParameterError):
            Schedule(2, Fraction(1, 2), [ev(0, 0, 1)])

    def test_uninformed_sender(self):
        # p1 sends before it ever receives
        with pytest.raises(ScheduleError):
            Schedule(3, 2, [ev(0, 0, 1), ev(1, 1, 2)])

    def test_sender_too_early(self):
        # p1 receives at 2 but forwards at 3/2
        with pytest.raises(ScheduleError):
            Schedule(3, 2, [ev(0, 0, 1), ev(Fraction(3, 2), 1, 2)])

    def test_duplicate_delivery(self):
        with pytest.raises(ScheduleError):
            Schedule(3, 2, [ev(0, 0, 1), ev(1, 0, 1)])

    def test_incomplete_broadcast(self):
        with pytest.raises(ScheduleError):
            Schedule(3, 2, [ev(0, 0, 1)])

    def test_self_send(self):
        with pytest.raises(ScheduleError):
            Schedule(2, 2, [ev(0, 0, 0), ev(1, 0, 1)])

    def test_processor_out_of_range(self):
        with pytest.raises(ScheduleError):
            Schedule(2, 2, [ev(0, 0, 5)])

    def test_msg_out_of_range(self):
        with pytest.raises(ScheduleError):
            Schedule(2, 2, [ev(0, 0, 1, msg=3)], m=1)

    def test_negative_send_time(self):
        with pytest.raises(ScheduleError):
            Schedule(2, 2, [ev(-1, 0, 1)])

    def test_send_port_conflict(self):
        # two sends by p0 overlapping: [0,1) and [1/2,3/2)
        with pytest.raises(SimultaneousIOError):
            Schedule(
                3, 2, [ev(0, 0, 1), ev(Fraction(1, 2), 0, 2)]
            )

    def test_recv_port_conflict(self):
        # lambda=1, m=2: p2 receives M1 from p1 (busy [1,2)) and M2 from
        # p0 (busy [1,2)) simultaneously -- only the receive ports clash;
        # everything else about this schedule is legal.
        events = [
            ev(0, 0, 1, msg=0),  # p1 gets M1 at 1
            ev(1, 1, 2, msg=0),  # p2 gets M1 at 2, busy [1,2)
            ev(1, 0, 2, msg=1),  # p2 gets M2 at 2, busy [1,2)  -> clash
            ev(2, 0, 1, msg=1),  # p1 gets M2 at 3
        ]
        with pytest.raises(SimultaneousIOError):
            Schedule(3, 1, events, m=2)

    def test_recv_port_partial_overlap(self):
        # fractional overlap: windows [1,2) and [3/2,5/2) at p2
        events = [
            ev(0, 0, 1, msg=0),  # p1 gets M1 at 1
            ev(1, 1, 2, msg=0),  # p2: busy [1,2)
            ev(Fraction(3, 2), 0, 2, msg=1),  # p2: busy [3/2,5/2) -> clash
            ev(Fraction(5, 2), 0, 1, msg=1),
        ]
        with pytest.raises(SimultaneousIOError):
            Schedule(3, 1, events, m=2)

    def test_two_receives_same_instant(self):
        # p1 and p2 both informed, both send M1 copies to p3 arriving
        # at the same time -> duplicate delivery error (caught before
        # port check)
        events = [
            ev(0, 0, 1),
            ev(1, 0, 2),
            ev(2, 1, 3),
            ev(3, 2, 3),
        ]
        with pytest.raises(ScheduleError):
            Schedule(4, 2, events)

    def test_arrival_of_missing(self):
        s = Schedule(2, 2, [ev(0, 0, 1)])
        with pytest.raises(ScheduleError):
            s.arrival_of(1, msg=5)
