"""Error-path tests for the extended run validator
(repro.postal.validator): the queued-policy delivery audit, non-uniform
latency handling, and tampered-record detection."""

from fractions import Fraction

import pytest

from repro.errors import (
    InvalidParameterError,
    ModelError,
    ScheduleError,
    SimultaneousIOError,
)
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.message import Message
from repro.postal.validator import (
    audit_broadcast_coverage,
    audit_deliveries,
    audit_ports,
    schedule_from_trace,
    validate_run,
)
from repro.sim.engine import Environment
from repro.sim.trace import TraceRecord


def _contended_queued_run():
    """p0 and p1 both send to p2 with overlapping receive windows; the
    queued policy serializes them."""
    env = Environment()
    sys_ = PostalSystem(env, 3, 2, policy=ContentionPolicy.QUEUED)

    def p0():
        yield sys_.send(0, 2, 0)

    def p1():
        yield env.timeout(Fraction(1, 2))
        yield sys_.send(1, 2, 1)

    env.process(p0())
    env.process(p1())
    env.run()
    return sys_


def _single_send_run(policy=ContentionPolicy.QUEUED):
    env = Environment()
    sys_ = PostalSystem(env, 2, 2, policy=policy)

    def p0():
        yield sys_.send(0, 1, 0)

    env.process(p0())
    env.run()
    return sys_


class TestQueuedAudit:
    def test_contended_run_passes_the_full_audit(self):
        sys_ = _contended_queued_run()
        audit_ports(sys_)
        audit_deliveries(sys_)  # FIFO replay explains the late arrival

    def test_queued_arrival_is_work_conserving(self):
        sys_ = _contended_queued_run()
        arrivals = sorted(
            rec.data.arrived_at for rec in sys_.tracer.records("deliver")
        )
        # first due at 2 arrives at 2; second due at 5/2 is pushed to 3
        assert arrivals == [Fraction(2), Fraction(3)]

    def test_validate_run_queued_returns_none(self):
        # proper little broadcast: p0 sends M1 to p1 (n=2, m=1)
        sys_ = _single_send_run()
        assert validate_run(sys_, m=1) is None

    def test_schedule_from_trace_rejects_queued(self):
        sys_ = _single_send_run()
        with pytest.raises(ModelError, match="strict"):
            schedule_from_trace(sys_, m=1)

    def test_coverage_flags_contended_run_as_non_broadcast(self):
        sys_ = _contended_queued_run()
        # p1 transmits M2 it never obtained — the coverage audit sees an
        # incomplete broadcast (p1 gets nothing) before anything else
        with pytest.raises(ScheduleError, match="incomplete broadcast"):
            audit_broadcast_coverage(sys_, m=2)

    def test_coverage_flags_premature_send(self):
        """A processor that forwards a message before its own delivery
        completes violates Definition 1 possession."""
        env = Environment()
        sys_ = PostalSystem(env, 3, 2)

        def p0():
            yield sys_.send(0, 1, 0)  # p1 holds M1 from t=2

        def p1():
            yield sys_.send(1, 2, 0)  # ...but forwards it at t=0

        env.process(p0())
        env.process(p1())
        env.run()
        with pytest.raises(ScheduleError, match="only holds it from"):
            audit_broadcast_coverage(sys_, m=1)

    def test_non_work_conserving_arrival_flagged(self):
        """A delivery later than its due time with no contention to blame
        (the port idled) violates the NIC-queue semantics."""
        sys_ = _single_send_run()
        (rec,) = sys_.tracer.records("deliver")
        msg = rec.data
        late = Message(
            msg.msg, msg.src, msg.dst, msg.sent_at, msg.arrived_at + 1
        )
        sys_.tracer._records = [
            r for r in sys_.tracer._records if r.kind != "deliver"
        ] + [TraceRecord(late.arrived_at, "deliver", late)]
        # keep the port log consistent with the (tampered) record so the
        # window check passes and the FIFO replay is what fires
        port = sys_.recv_port(1)
        port._busy_log[:] = [(late.arrived_at - 1, late.arrived_at)]
        with pytest.raises(ModelError, match="work-conserving"):
            audit_deliveries(sys_)


class TestNonUniformLatency:
    def _run(self, policy=ContentionPolicy.STRICT):
        env = Environment()
        sys_ = PostalSystem(
            env,
            3,
            2,
            policy=policy,
            latency=lambda s, d: Fraction(2) if d == 1 else Fraction(4),
        )

        def p0():
            yield sys_.send(0, 1, 0)
            yield sys_.send(0, 2, 0)

        env.process(p0())
        env.run()
        return sys_

    def test_schedule_from_trace_rejects_pair_dependent_latency(self):
        sys_ = self._run()
        with pytest.raises(ModelError, match="uniform latency"):
            schedule_from_trace(sys_, m=1)

    def test_validate_run_falls_back_to_audits(self):
        assert validate_run(self._run(), m=1) is None

    def test_deliveries_respect_the_latency_function(self):
        sys_ = self._run()
        arrivals = {
            rec.data.dst: rec.data.arrived_at
            for rec in sys_.tracer.records("deliver")
        }
        assert arrivals == {1: Fraction(2), 2: Fraction(5)}

    def test_sub_unit_latency_function_rejected(self):
        env = Environment()
        sys_ = PostalSystem(
            env, 2, 2, latency=lambda s, d: Fraction(1, 2)
        )
        with pytest.raises(InvalidParameterError, match="lambda >= 1"):
            sys_.latency(0, 1)


class TestTamperedRecords:
    """The audits catch records that disagree with each other."""

    def test_phantom_busy_interval_fails_port_audit(self):
        sys_ = _single_send_run(ContentionPolicy.STRICT)
        port = sys_.recv_port(1)
        port._busy_log.append((Fraction(10), Fraction(23, 2)))  # 1.5 units
        with pytest.raises(ModelError, match="not one unit"):
            audit_ports(sys_)

    def test_overlapping_busy_intervals_fail_port_audit(self):
        sys_ = _single_send_run(ContentionPolicy.STRICT)
        port = sys_.send_port(0)
        start = port._busy_log[0][0] + Fraction(1, 2)
        port._busy_log.append((start, start + 1))
        with pytest.raises(SimultaneousIOError, match="driven twice"):
            audit_ports(sys_)

    def test_unlogged_receive_window_fails_delivery_audit(self):
        sys_ = _single_send_run(ContentionPolicy.STRICT)
        sys_.recv_port(1)._busy_log.clear()
        with pytest.raises(ModelError, match="busy log"):
            audit_deliveries(sys_)

    def test_early_arrival_fails_delivery_audit(self):
        sys_ = _single_send_run(ContentionPolicy.STRICT)
        (rec,) = sys_.tracer.records("deliver")
        msg = rec.data
        early = Message(
            msg.msg, msg.src, msg.dst, msg.sent_at, msg.arrived_at - 1
        )
        sys_.tracer._records = [
            TraceRecord(early.arrived_at, "deliver", early)
            if r.kind == "deliver"
            else r
            for r in sys_.tracer._records
        ]
        with pytest.raises(ScheduleError, match="before sent_at"):
            audit_deliveries(sys_)

    def test_strict_late_arrival_fails_delivery_audit(self):
        sys_ = _single_send_run(ContentionPolicy.STRICT)
        (rec,) = sys_.tracer.records("deliver")
        msg = rec.data
        late = Message(
            msg.msg, msg.src, msg.dst, msg.sent_at, msg.arrived_at + 1
        )
        sys_.tracer._records = [
            TraceRecord(late.arrived_at, "deliver", late)
            if r.kind == "deliver"
            else r
            for r in sys_.tracer._records
        ]
        with pytest.raises(ScheduleError, match="differs from"):
            audit_deliveries(sys_)


class TestCoverage:
    def test_root_must_not_receive(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 2)

        def p1():
            yield sys_.send(1, 0, 0)

        env.process(p1())
        env.run()
        with pytest.raises(ScheduleError, match="root must not receive"):
            audit_broadcast_coverage(sys_, m=1)

    def test_incomplete_broadcast_flagged(self):
        sys_ = _single_send_run()  # n=2 but m=2: M2 never delivered
        with pytest.raises(ScheduleError, match="incomplete broadcast"):
            audit_broadcast_coverage(sys_, m=2)

    def test_message_index_out_of_range(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 2)

        def p0():
            yield sys_.send(0, 1, 5)  # index 5 with m=1 declared below

        env.process(p0())
        env.run()
        with pytest.raises(ScheduleError, match="outside"):
            audit_broadcast_coverage(sys_, m=1)

    def test_duplicate_delivery_flagged(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 2)

        def p0():
            yield sys_.send(0, 1, 0)
            yield sys_.send(0, 1, 0)  # same message again

        env.process(p0())
        env.run()
        with pytest.raises(ScheduleError, match="more than once"):
            audit_broadcast_coverage(sys_, m=1)
