"""End-to-end verification of every numbered claim reproduced from the
paper — the test-suite counterpart of EXPERIMENTS.md.

Each test class corresponds to one experiment id in DESIGN.md's index.
"""

import math
from fractions import Fraction

import pytest

from repro.algorithms import BcastProtocol, PipelineProtocol, RepeatProtocol
from repro.core.analysis import (
    dtree_upper,
    multi_lower_bound,
    pack_time,
    pipeline_time,
    repeat_time,
)
from repro.core.bcast import bcast_schedule, bcast_tree
from repro.core.bounds import (
    F_lower_exact,
    F_upper_exact,
    f_lower_log,
    f_upper_log,
)
from repro.core.dtree import DTreeShape, dtree_schedule
from repro.core.fibfunc import postal_F, postal_f
from repro.core.optimal import max_informed, opt_broadcast_time
from repro.postal import run_protocol

from tests.grids import LAMBDAS


class TestFIG1:
    """Figure 1: the generalized Fibonacci broadcast tree for
    MPS(14, 2.5) completes at t = 7.5, with p0 -> p9 first."""

    def test_completion(self):
        assert bcast_schedule(14, "5/2").completion_time() == Fraction(15, 2)

    def test_structure(self):
        tree = bcast_tree(14, "5/2")
        assert tree.children_of(0)[0] == 9
        assert tree.node(9).informed_at == Fraction(5, 2)
        assert tree.height() == Fraction(15, 2)

    def test_simulated(self):
        res = run_protocol(BcastProtocol(14, Fraction(5, 2)))
        assert res.completion_time == Fraction(15, 2)


class TestTHM6:
    """Theorem 6: T_B(n, lambda) = f_lambda(n), and no algorithm beats it."""

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_bcast_equals_f(self, lam):
        for n in (1, 2, 3, 5, 14, 64, 257):
            assert bcast_schedule(n, lam, validate=False).completion_time() == postal_f(lam, n)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_brute_force_optimum_matches(self, lam):
        for n in range(1, 41):
            assert opt_broadcast_time(n, lam) == postal_f(lam, n)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_N_of_t_equals_F(self, lam):
        horizon = 2 * lam + 5
        for k in range(int(horizon * 2) + 1):
            t = Fraction(k, 2)
            assert max_informed(lam, t) == postal_F(lam, t)


class TestTHM7:
    """Theorem 7: the four bounds on F_lambda and f_lambda."""

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_parts_1_and_2(self, lam):
        for k in range(0, 61, 3):
            t = Fraction(k, 2)
            F = postal_F(lam, t)
            assert F_lower_exact(lam, t) <= F <= F_upper_exact(lam, t)
        for n in (1, 2, 14, 100, 10**6):
            f = float(postal_f(lam, n))
            assert f_lower_log(lam, n) - 1e-9 <= f <= f_upper_log(lam, n) + 1e-9

    def test_parts_3_and_4_large_lambda(self):
        from repro.core.bounds import F_lower_asymptotic, f_upper_asymptotic

        lam = 512
        for t in (0, 100, 1000, 4000):
            assert postal_F(lam, t) >= F_lower_asymptotic(lam, t) * (1 - 1e-9)
        n = 2**64
        assert float(postal_f(64, n)) <= f_upper_asymptotic(64, n) + 1e-6


class TestLB:
    """Lemma 8 / Corollary 9: multi-message lower bounds."""

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_all_families_above_lemma8(self, lam):
        for n in (2, 14, 40):
            for m in (1, 3, 9):
                lb = multi_lower_bound(n, m, lam)
                assert repeat_time(n, m, lam) >= lb
                assert pack_time(n, m, lam) >= lb
                assert pipeline_time(n, m, lam) >= lb
                for shape in DTreeShape:
                    t = dtree_schedule(
                        n, m, lam, shape, validate=False
                    ).completion_time()
                    assert t >= lb, shape


class TestLemmas10to17:
    """Exact running-time formulas, validated by full event-driven
    simulation (not just the builders)."""

    CASES = [(5, 2), (14, 3), (9, 6)]

    @pytest.mark.parametrize("lam", LAMBDAS[:5], ids=str)
    @pytest.mark.parametrize("n,m", CASES, ids=str)
    def test_lemma10_simulated(self, lam, n, m):
        assert run_protocol(
            RepeatProtocol(n, m, lam)
        ).completion_time == m * postal_f(lam, n) - (m - 1) * (lam - 1)

    @pytest.mark.parametrize("lam", LAMBDAS[:5], ids=str)
    @pytest.mark.parametrize("n,m", CASES, ids=str)
    def test_lemma12_formula(self, lam, n, m):
        assert pack_time(n, m, lam) == m * postal_f(1 + (lam - 1) / m, n)

    @pytest.mark.parametrize("lam", LAMBDAS[:5], ids=str)
    @pytest.mark.parametrize("n,m", CASES, ids=str)
    def test_lemmas14_16_simulated(self, lam, n, m):
        expected = (
            m * postal_f(lam / m, n) + (m - 1)
            if m <= lam
            else lam * postal_f(Fraction(m) / lam, n) + (lam - 1)
        )
        assert run_protocol(PipelineProtocol(n, m, lam)).completion_time == expected


class TestL18:
    """Lemma 18: DTREE's bound, plus the d=1 and d=n-1 exact endpoints."""

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_bound_holds(self, lam):
        for n in (2, 14, 40):
            for m in (1, 4):
                for d in (2, 3, int(math.ceil(lam)) + 1, n - 1):
                    d = max(1, min(d, n - 1))
                    t = dtree_schedule(n, m, lam, d, validate=False).completion_time()
                    assert t <= dtree_upper(n, m, lam, d)

    def test_bound_tight_for_line(self):
        # d = 1 is the one case with an exact closed form:
        # (m-1) + (n-1) * lambda, achieved by the builder
        lam = Fraction(5, 2)
        for n, m in ((6, 1), (6, 4), (13, 3)):
            t = dtree_schedule(n, m, lam, 1, validate=False).completion_time()
            assert t == dtree_upper(n, m, lam, 1)

    def test_bound_slack_is_at_most_one_level(self):
        # for m=1 on an almost-full tree the bound overshoots by at most
        # one level's cost (d-1+lambda), from ceil(log_d n) vs true height
        lam = Fraction(5, 2)
        for n, d in ((13, 3), (9, 3), (14, 2), (40, 3)):
            t = dtree_schedule(n, 1, lam, d, validate=False).completion_time()
            bound = dtree_upper(n, 1, lam, d)
            assert bound - t <= (d - 1 + lam) * 2


class TestS43:
    """Section 4.3's regime claims (see also test_dtree.py)."""

    def test_regime_ordering(self):
        """Line wins the m->inf regime; star wins the lambda->inf regime."""
        def line(n, m, lam):
            return dtree_schedule(
                n, m, lam, 1, validate=False
            ).completion_time()

        def star(n, m, lam):
            return dtree_schedule(
                n, m, lam, n - 1, validate=False
            ).completion_time()

        assert line(6, 400, 2) < star(6, 400, 2)
        assert star(6, 2, 300) < line(6, 2, 300)

    def test_factor7_spotcheck(self):
        """Reference [13]'s claim: a well-chosen d keeps DTREE within 7x
        of the (order-preserving) lower bound; spot-check the best fixed-d
        tree against Lemma 8 over a broad grid."""
        for lam in (1, 2, Fraction(5, 2), 8, 32):
            for n in (4, 16, 64):
                for m in (1, 4, 16, 64):
                    lb = float(multi_lower_bound(n, m, lam))
                    degrees = {1, 2, int(math.ceil(lam)) + 1, n - 1}
                    best = min(
                        float(
                            dtree_schedule(
                                n, m, lam, max(1, min(d, n - 1)), validate=False
                            ).completion_time()
                        )
                        for d in degrees
                    )
                    assert best <= 7 * lb * (1 + 1e-9), (lam, n, m, best / lb)
