"""Disk-level robustness of the plan cache.

A corrupt, truncated, or foreign ``*.plan`` file must never crash a
sweep — the cache treats it as a miss, rebuilds, and overwrites — but it
must also never be *silent*: every discarded file logs a ``WARNING`` on
``repro.plan.cache``, because a quietly self-healing cache is exactly
where real corruption (bad disk, racing writers, tampering) hides.

The fresh-subprocess test pins the end-to-end behavior a CI shard would
see: a new interpreter with a poisoned disk cache exits 0 and surfaces
the discard on stderr (the ``logging`` last-resort handler — no logging
configuration required).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.plan import build_plan
from repro.plan.cache import PlanCache


@pytest.fixture
def disk_cache(tmp_path):
    return PlanCache(mode="disk", directory=tmp_path)


def _poison(cache: PlanCache, key: tuple, data: bytes):
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return path


def test_truncated_file_is_discarded_and_rebuilt(disk_cache, caplog):
    plan = build_plan("BCAST", 12, 1, "2", cache=disk_cache)
    key = disk_cache.key("BCAST", 12, 1, "2")
    path = _poison(disk_cache, key, plan.to_bytes()[:17])
    disk_cache.clear()  # drop the memory level, force the disk read

    with caplog.at_level("WARNING", logger="repro.plan.cache"):
        rebuilt = build_plan("BCAST", 12, 1, "2", cache=disk_cache)
    assert rebuilt == plan
    assert "discarding corrupt plan cache file" in caplog.text
    assert str(path) in caplog.text
    # the rebuild overwrote the poisoned file with a good one
    disk_cache.clear()
    with caplog.at_level("WARNING", logger="repro.plan.cache"):
        caplog.clear()
        again = build_plan("BCAST", 12, 1, "2", cache=disk_cache)
    assert again == plan
    assert caplog.text == ""
    assert disk_cache.disk_hits == 1


def test_garbage_bytes_are_discarded(disk_cache, caplog):
    key = disk_cache.key("STAR", 8, 1, "2")
    _poison(disk_cache, key, b"\x00not a plan at all\xff" * 3)
    with caplog.at_level("WARNING", logger="repro.plan.cache"):
        plan = build_plan("STAR", 8, 1, "2", cache=disk_cache)
    assert plan.family == "STAR"
    assert "discarding corrupt plan cache file" in caplog.text


def test_wrong_content_under_right_hash_is_discarded(disk_cache, caplog):
    """A *well-formed* plan file whose header contradicts the key (hash
    collision, tampering, or a renamed file) is rejected too."""
    impostor = build_plan("STAR", 8, 1, "2", cache=PlanCache(mode="off"))
    key = disk_cache.key("BCAST", 12, 1, "2")
    _poison(disk_cache, key, impostor.to_bytes())
    with caplog.at_level("WARNING", logger="repro.plan.cache"):
        plan = build_plan("BCAST", 12, 1, "2", cache=disk_cache)
    assert (plan.family, plan.n) == ("BCAST", 12)
    assert "hash collision or tampered file" in caplog.text
    assert "STAR" in caplog.text and "BCAST" in caplog.text


def test_empty_file_is_discarded(disk_cache, caplog):
    key = disk_cache.key("BCAST", 6, 1, "3")
    _poison(disk_cache, key, b"")
    with caplog.at_level("WARNING", logger="repro.plan.cache"):
        plan = build_plan("BCAST", 6, 1, "3", cache=disk_cache)
    assert plan.n == 6
    assert "discarding corrupt plan cache file" in caplog.text


def test_fresh_subprocess_recovers_loudly(tmp_path):
    """A brand-new interpreter hitting a poisoned disk cache: exit 0,
    correct plan, and the discard visible on stderr without any logging
    setup (the last-resort handler)."""
    seed_cache = PlanCache(mode="disk", directory=tmp_path)
    plan = build_plan("BCAST", 12, 1, "2", cache=seed_cache)
    key = seed_cache.key("BCAST", 12, 1, "2")
    _poison(seed_cache, key, plan.to_bytes()[:9])

    script = (
        "from repro.plan import build_plan\n"
        "p = build_plan('BCAST', 12, 1, '2')\n"
        "print(p.completion_time())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
        env={
            "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
            "REPRO_PLAN_CACHE": "disk",
            "REPRO_PLAN_CACHE_DIR": str(tmp_path),
            "PATH": "/usr/bin:/bin",
        },
    )
    assert proc.returncode == 0, proc.stderr
    assert "discarding corrupt plan cache file" in proc.stderr
    assert proc.stdout.strip() == str(plan.completion_time())
