"""Tests for the generalized Fibonacci function F_lambda and f_lambda."""

import math
from fractions import Fraction

import pytest

from repro.core.fibfunc import GeneralizedFibonacci, postal_F, postal_f
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS, SIZES

FIB = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610]


class TestSpecialCases:
    """The paper's stated special cases of F_lambda."""

    def test_lambda1_is_powers_of_two(self):
        # F_1(t) = 2 ** floor(t)
        for t in [0, Fraction(1, 2), 1, Fraction(3, 2), 2, 5, 10]:
            assert postal_F(1, t) == 2 ** int(t)

    def test_lambda1_index_is_ceil_log(self):
        # f_1(n) = ceil(log2 n)
        for n in range(1, 300):
            assert postal_f(1, n) == math.ceil(math.log2(n))

    def test_lambda2_is_fibonacci(self):
        # F_2(t) is the Fibonacci number of index floor(t) + 1
        for t in range(len(FIB)):
            assert postal_F(2, t) == FIB[t]

    def test_lambda2_fractional_t(self):
        # right-continuity: constant between integer jumps
        assert postal_F(2, Fraction(7, 2)) == postal_F(2, 3)

    def test_flat_prefix(self, lam):
        # F_lambda(t) = 1 for 0 <= t < lambda
        eps = Fraction(1, 1000)
        assert postal_F(lam, 0) == 1
        assert postal_F(lam, lam - eps) == 1
        assert postal_F(lam, lam) == 2


class TestRecurrence:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_recurrence_on_grid(self, lam):
        # F(t) = F(t-1) + F(t-lambda) for t >= lambda, checked at many
        # grid and off-grid points
        pts = [lam + Fraction(k, 3) for k in range(0, 40)]
        for t in pts:
            assert postal_F(lam, t) == postal_F(lam, t - 1) + postal_F(
                lam, t - lam
            )

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_nondecreasing(self, lam):
        prev = 0
        for k in range(0, 60):
            v = postal_F(lam, Fraction(k, 4))
            assert v >= prev
            prev = v

    def test_paper_example_values(self):
        # hand-computed F_{5/2} values (also visible in Figure 1)
        lam = Fraction(5, 2)
        expected = {
            Fraction(0): 1,
            Fraction(5, 2): 2,
            Fraction(7, 2): 3,
            Fraction(9, 2): 4,
            Fraction(5): 5,
            Fraction(11, 2): 6,
            Fraction(6): 8,
            Fraction(13, 2): 9,
            Fraction(7): 12,
            Fraction(15, 2): 14,
        }
        for t, v in expected.items():
            assert postal_F(lam, t) == v, t


class TestIndexFunction:
    def test_f_of_one_is_zero(self, lam):
        assert postal_f(lam, 1) == 0

    def test_f_of_two_is_lambda(self, lam):
        # the first processor is informed exactly at t = lambda
        assert postal_f(lam, 2) == lam

    def test_paper_example(self):
        # the headline number of Figure 1
        assert postal_f(Fraction(5, 2), 14) == Fraction(15, 2)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", SIZES)
    def test_index_inverse_properties(self, lam, n):
        # Claim 1 parts (3) and (4) for F_lambda specifically
        f = postal_f(lam, n)
        assert postal_F(lam, f) >= n
        eps = Fraction(1, 1000)
        if f - eps >= 0:
            assert postal_F(lam, f - eps) < n

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_index_nondecreasing(self, lam):
        vals = [postal_f(lam, n) for n in range(1, 120)]
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    def test_large_n_fast(self):
        # the doubling strategy keeps huge n cheap
        v = postal_f(3, 10**12)
        assert postal_F(3, v) >= 10**12

    def test_large_lambda(self):
        v = postal_f(500, 10**6)
        assert postal_F(500, v) >= 10**6
        assert postal_F(500, v - Fraction(1, 7)) < 10**6


class TestAPI:
    def test_lambda_below_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            GeneralizedFibonacci(Fraction(1, 2))

    def test_negative_t_rejected(self):
        with pytest.raises(InvalidParameterError):
            postal_F(2, -1)

    def test_n_below_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            postal_f(2, 0)

    def test_float_lambda_matches_fraction(self):
        assert postal_f(2.5, 14) == postal_f(Fraction(5, 2), 14)

    def test_string_lambda(self):
        assert postal_f("5/2", 14) == Fraction(15, 2)

    def test_sequence(self):
        fib = GeneralizedFibonacci(2)
        seq = list(fib.sequence(6))
        # jump points only: t=0 (1), t=2 (2), t=3 (3), t=4 (5), t=5 (8)...
        assert seq[0] == (Fraction(0), 1)
        assert all(v1 < v2 for (_, v1), (_, v2) in zip(seq, seq[1:]))

    def test_sequence_negative_count(self):
        with pytest.raises(InvalidParameterError):
            list(GeneralizedFibonacci(2).sequence(-1))

    def test_jump_times_sorted_unique(self):
        fib = GeneralizedFibonacci(Fraction(5, 2))
        times = list(fib.jump_times(Fraction(10)))
        assert times == sorted(set(times))

    def test_repr(self):
        assert "5/2" in repr(GeneralizedFibonacci(Fraction(5, 2)))

    def test_instance_caching_consistency(self):
        # two separate instances agree (no shared-state corruption)
        a = GeneralizedFibonacci(Fraction(7, 3))
        b = GeneralizedFibonacci(Fraction(7, 3))
        for n in (5, 50, 7):  # interleaved growth orders
            assert a.index(n) == b.index(n)


class TestModuleCache:
    """The LRU-bounded module-level cache behind postal_F / postal_f."""

    def setup_method(self):
        from repro.core import fibfunc

        fibfunc.clear_cache()

    def teardown_method(self):
        from repro.core import fibfunc

        fibfunc.clear_cache()

    def test_cache_hit_reuses_the_instance(self):
        from repro.core import fibfunc

        postal_f(Fraction(5, 2), 10)
        size_after_first, limit = fibfunc.cache_info()
        postal_F(Fraction(5, 2), 7)  # same lambda, other entry point
        assert fibfunc.cache_info() == (size_after_first, limit)
        assert size_after_first == 1

    def test_equivalent_lambdas_share_one_entry(self):
        from repro.core import fibfunc

        postal_f("5/2", 10)
        postal_f(2.5, 10)
        postal_f(Fraction(5, 2), 10)
        assert fibfunc.cache_info()[0] == 1

    def test_cache_size_is_bounded(self, monkeypatch):
        from repro.core import fibfunc

        monkeypatch.setattr(fibfunc, "_CACHE_LIMIT", 8)
        for k in range(30):
            postal_f(Fraction(k + 8, 8), 5)  # 30 distinct lambdas >= 1
        size, _ = fibfunc.cache_info()
        assert size <= 8

    def test_eviction_is_least_recently_used(self, monkeypatch):
        from repro.core import fibfunc

        monkeypatch.setattr(fibfunc, "_CACHE_LIMIT", 2)
        postal_f(1, 5)  # cache: [1]
        postal_f(2, 5)  # cache: [1, 2]
        postal_f(1, 5)  # touch 1 -> cache: [2, 1]
        postal_f(3, 5)  # evicts 2 -> cache: [1, 3]
        assert Fraction(1) in fibfunc._CACHE
        assert Fraction(2) not in fibfunc._CACHE
        assert Fraction(3) in fibfunc._CACHE

    def test_values_survive_eviction(self, monkeypatch):
        """Correctness does not depend on the cache: evicted lambdas
        recompute to identical values."""
        from repro.core import fibfunc

        monkeypatch.setattr(fibfunc, "_CACHE_LIMIT", 1)
        before = postal_f(Fraction(5, 2), 14)
        postal_f(3, 14)  # evicts 5/2
        assert postal_f(Fraction(5, 2), 14) == before
