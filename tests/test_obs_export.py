"""Tests for the trace exporters (repro.obs.export): Chrome trace-event
JSON, CSV, and JSON-lines."""

import io
import json
from fractions import Fraction

import pytest

from repro.algorithms.bcast_protocol import BcastProtocol
from repro.algorithms.pipeline_protocol import PipelineProtocol
from repro.core.bcast import bcast_schedule
from repro.extensions.faulty import LossyPostalSystem
from repro.obs import (
    CSV_FIELDS,
    chrome_trace,
    dump_csv,
    dump_jsonl,
    record_fields,
    schedule_to_chrome,
    write_chrome_trace,
)
from repro.postal.runner import run_protocol
from repro.sim.engine import Environment


def _run_pipeline(n=8, m=2, lam=2):
    return run_protocol(PipelineProtocol(n, m, lam))


def _data_events(doc):
    """Non-metadata trace events, in file order."""
    return [e for e in doc["traceEvents"] if e["ph"] != "M"]


class TestChromeTrace:
    def test_round_trips_through_json(self):
        doc = chrome_trace(_run_pipeline().system)
        text = json.dumps(doc)
        assert json.loads(text) == doc

    def test_ts_monotone_and_nonnegative(self):
        doc = chrome_trace(_run_pipeline(14, 4, "5/2").system)
        last = -1.0
        for event in _data_events(doc):
            assert event["ts"] >= 0.0
            assert event["ts"] >= last
            last = event["ts"]
            if "dur" in event:
                assert event["dur"] >= 0.0

    def test_deterministic(self):
        a = json.dumps(chrome_trace(_run_pipeline().system), sort_keys=True)
        b = json.dumps(chrome_trace(_run_pipeline().system), sort_keys=True)
        assert a == b

    def test_event_census(self):
        result = _run_pipeline(8, 2, 2)
        doc = chrome_trace(result.system)
        events = _data_events(doc)
        sends = [e for e in events if e.get("cat") == "send"]
        recvs = [e for e in events if e.get("cat") == "recv"]
        flows_s = [e for e in events if e["ph"] == "s"]
        flows_f = [e for e in events if e["ph"] == "f"]
        counters = [e for e in events if e["ph"] == "C"]
        metrics = result.metrics
        assert len(sends) == metrics.total_sends
        assert len(recvs) == metrics.total_deliveries
        # strict lossless machine: every flight arrow terminates
        assert len(flows_s) == len(flows_f) == metrics.total_sends
        # one counter step per deliver + one per consume
        assert len(counters) == metrics.total_deliveries + metrics.total_consumed

    def test_every_processor_has_metadata(self):
        doc = chrome_trace(_run_pipeline(8, 2, 2).system)
        named = {
            e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert named == set(range(8))
        thread_names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert (0, 0, "send port") in thread_names
        assert (0, 1, "recv port") in thread_names

    def test_other_data(self):
        doc = chrome_trace(_run_pipeline().system, scale=500)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["n"] == 8
        assert doc["otherData"]["scale_us_per_unit"] == 500

    def test_scale_applies(self):
        system = _run_pipeline().system
        unit = chrome_trace(system, scale=1)
        kilo = chrome_trace(system, scale=1000)
        for a, b in zip(_data_events(unit), _data_events(kilo)):
            assert b["ts"] == pytest.approx(a["ts"] * 1000)

    def test_drops_exported_as_instants(self):
        env = Environment()
        system = LossyPostalSystem(env, 2, 2, loss=0.99, seed=7)

        def prog():
            for k in range(20):
                yield system.send(0, 1, k)

        env.process(prog())
        env.run()
        doc = chrome_trace(system)
        drops = [e for e in _data_events(doc) if e.get("cat") == "drop"]
        assert len(drops) == system.dropped > 0
        assert all(e["ph"] == "i" for e in drops)


class TestScheduleToChrome:
    def test_static_schedule_exports(self):
        s = bcast_schedule(14, "5/2")
        doc = schedule_to_chrome(s)
        events = _data_events(doc)
        sends = [e for e in events if e.get("cat") == "send"]
        assert len(sends) == len(s.events) == 13
        last = -1.0
        for event in events:
            assert event["ts"] >= last >= -1.0
            last = event["ts"]

    def test_matches_simulated_export(self):
        """The static export of the builder schedule and the live export
        of the protocol run paint the same send slices."""
        result = run_protocol(BcastProtocol(14, "5/2"))
        live = chrome_trace(result.system)
        static = schedule_to_chrome(bcast_schedule(14, "5/2"))

        def sends(doc):
            return sorted(
                (e["ts"], e["pid"], e["name"])
                for e in _data_events(doc)
                if e.get("cat") == "send"
            )

        assert sends(live) == sends(static)


class TestWriteChromeTrace:
    def test_writes_system(self, tmp_path):
        path = tmp_path / "run.json"
        write_chrome_trace(str(path), _run_pipeline().system)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_writes_schedule(self, tmp_path):
        path = tmp_path / "static.json"
        write_chrome_trace(str(path), bcast_schedule(5, 2))
        doc = json.loads(path.read_text())
        assert doc["otherData"]["m"] == 1


class TestFlatDumps:
    def test_record_fields_deliver_exploded(self):
        system = _run_pipeline().system
        rec = system.tracer.records("deliver")[0]
        fields = record_fields(rec)
        assert fields["kind"] == "deliver"
        for key in ("msg", "src", "dst", "sent_at", "arrived_at"):
            assert key in fields
        # exact times serialized as strings
        assert isinstance(fields["t"], str)

    def test_record_fields_no_data(self):
        from repro.sim.trace import TraceRecord
        from repro.types import Time

        assert record_fields(TraceRecord(Time(1), "send")) == {
            "t": "1",
            "kind": "send",
        }

    def test_jsonl(self):
        system = _run_pipeline().system
        fh = io.StringIO()
        count = dump_jsonl(system.tracer, fh)
        lines = fh.getvalue().splitlines()
        assert count == len(lines) == len(system.tracer)
        for line in lines:
            obj = json.loads(line)
            assert obj["kind"] in {"send", "deliver", "consume", "drop"}

    def test_csv(self):
        import csv as csv_mod

        system = _run_pipeline().system
        fh = io.StringIO()
        count = dump_csv(system.tracer, fh)
        fh.seek(0)
        rows = list(csv_mod.reader(fh))
        assert tuple(rows[0]) == CSV_FIELDS
        assert len(rows) - 1 == count == len(system.tracer)

    def test_exact_times_survive_round_trip(self):
        system = run_protocol(PipelineProtocol(5, 2, Fraction(5, 2))).system
        fh = io.StringIO()
        dump_jsonl(system.tracer, fh)
        for line in fh.getvalue().splitlines():
            obj = json.loads(line)
            Fraction(obj["t"])  # parses back exactly, never a float
