"""Tests for critical-path extraction and slack analysis (repro.obs.critical).

The headline contract: the zero-slack chain walked backwards from the
completion event has length exactly equal to the schedule's completion
time, which for BCAST/REPEAT/PACK/PIPELINE (and the d=1 line) equals the
paper's closed forms with Fraction equality.
"""

from fractions import Fraction

import pytest

from repro.algorithms.pipeline_protocol import PipelineProtocol
from repro.core.analysis import (
    bcast_time,
    dtree_upper,
    pack_time,
    pipeline_time,
    repeat_time,
)
from repro.core.bcast import bcast_schedule
from repro.core.dtree import dtree_schedule
from repro.core.multi import pack_schedule, pipeline_schedule, repeat_schedule
from repro.obs import critical_path, event_slacks, format_critical_path
from repro.postal.runner import run_protocol
from repro.types import ZERO

NS = [2, 5, 13, 21, 40]
MS = [1, 2, 5]
LAMBDAS = [Fraction(1), Fraction(3, 2), Fraction(5, 2), Fraction(4)]


def _grid():
    for n in NS:
        for m in MS:
            for lam in LAMBDAS:
                yield n, m, lam


GRID = list(_grid())
GRID_IDS = [f"n{n}-m{m}-lam{lam}" for n, m, lam in GRID]


class TestClosedForms:
    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_bcast(self, n, lam):
        s = bcast_schedule(n, lam)
        path = critical_path(s)
        assert path.length == s.completion_time() == bcast_time(n, lam)
        assert path.tight  # BCAST chains anchor at t=0
        assert path.break_time is None

    @pytest.mark.parametrize("n,m,lam", GRID, ids=GRID_IDS)
    def test_repeat(self, n, m, lam):
        s = repeat_schedule(n, m, lam)
        path = critical_path(s)
        assert path.length == s.completion_time() == repeat_time(n, m, lam)

    @pytest.mark.parametrize("n,m,lam", GRID, ids=GRID_IDS)
    def test_pack(self, n, m, lam):
        s = pack_schedule(n, m, lam)
        path = critical_path(s)
        assert path.length == s.completion_time() == pack_time(n, m, lam)

    @pytest.mark.parametrize("n,m,lam", GRID, ids=GRID_IDS)
    def test_pipeline(self, n, m, lam):
        s = pipeline_schedule(n, m, lam)
        path = critical_path(s)
        assert path.length == s.completion_time() == pipeline_time(n, m, lam)
        assert path.tight  # PIPELINE forwards on arrival: always anchored

    @pytest.mark.parametrize("n,m,lam", GRID, ids=GRID_IDS)
    def test_line(self, n, m, lam):
        s = dtree_schedule(n, m, lam, 1)
        path = critical_path(s)
        # d=1 is the one DTREE with an *exact* formula: (m-1) + (n-1)*lam
        assert path.length == s.completion_time() == dtree_upper(n, m, lam, 1)
        assert path.tight

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_dtree_within_lemma_18(self, d):
        s = dtree_schedule(21, 3, Fraction(5, 2), d)
        path = critical_path(s)
        assert path.length == s.completion_time()
        assert path.length <= dtree_upper(21, 3, Fraction(5, 2), d)


class TestSlacks:
    @pytest.mark.parametrize("n,m,lam", GRID, ids=GRID_IDS)
    def test_nonnegative_everywhere(self, n, m, lam):
        s = pipeline_schedule(n, m, lam)
        assert all(v >= 0 for v in event_slacks(s).values())

    def test_pack_forwarders_carry_slack(self):
        # m > 1: a PACK forwarder waits for the whole pack before
        # relaying message 1 — the structural reason PIPELINE <= PACK.
        s = pack_schedule(13, 4, Fraction(5, 2))
        assert not critical_path(s).tight
        assert any(v > 0 for v in event_slacks(s).values())

    def test_pack_tight_at_m_1(self):
        assert critical_path(pack_schedule(13, 1, Fraction(5, 2))).tight

    def test_repeat_breaks_on_plateau(self):
        # n=5, lam=5/2: F_lambda has a plateau, the root finishes each
        # iteration early, and Lemma 10's fixed stride leaves a real gap.
        path = critical_path(repeat_schedule(5, 4, Fraction(5, 2)))
        assert not path.tight
        assert path.break_time is not None and path.break_time > 0

    def test_bcast_slacks_all_zero(self):
        s = bcast_schedule(21, 2)
        assert set(event_slacks(s).values()) == {ZERO}


class TestPathShape:
    def test_chronological_and_connected(self):
        s = pipeline_schedule(14, 4, Fraction(5, 2))
        path = critical_path(s)
        lam = s.lam
        events = path.events
        assert len(events) == len(path)
        for prev, cur in zip(events, events[1:]):
            port_hop = (
                prev.sender == cur.sender
                and prev.send_time + 1 == cur.send_time
            )
            data_hop = (
                prev.receiver == cur.sender
                and prev.arrival_time(lam) == cur.send_time
            )
            assert port_hop or data_hop
        # terminal event achieves the completion time
        assert events[-1].arrival_time(lam) == s.completion_time()

    def test_empty_schedule(self):
        path = critical_path(bcast_schedule(1, 2))
        assert len(path) == 0 and path.length == ZERO and path.tight
        assert "nothing to broadcast" in format_critical_path(path, Fraction(2))

    def test_format_mentions_every_hop(self):
        s = bcast_schedule(5, 2)
        path = critical_path(s)
        text = format_critical_path(path, s.lam)
        assert "tight back to t=0" in text
        assert text.count("-->") == len(path)

    def test_format_reports_break(self):
        s = pack_schedule(13, 4, Fraction(5, 2))
        text = format_critical_path(critical_path(s), s.lam)
        assert "slack appears before" in text


class TestRealizedSchedules:
    """The simulated (protocol) schedule yields the same critical path
    length as the closed form — the measured reproduction check."""

    @pytest.mark.parametrize("n,m,lam", [(14, 4, Fraction(5, 2)), (8, 2, Fraction(2))])
    def test_pipeline_protocol(self, n, m, lam):
        result = run_protocol(PipelineProtocol(n, m, lam))
        assert result.schedule is not None
        path = critical_path(result.schedule)
        assert path.length == pipeline_time(n, m, lam)
        assert path.tight
