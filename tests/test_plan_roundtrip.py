"""Round-trip and cache tests for the columnar plan layer (:mod:`repro.plan`).

The plan layer's contract is *byte identity*: for every family it can
compile, ``compile_plan(...).to_schedule()`` must produce events equal —
as exact ``(Fraction, int, int, int)`` tuples — to the classic
``repro.core`` builder the conformance oracle registry points at.  This
suite pins that across all plan-compatible conformance families and
rational latencies (5/2, 7/3 included), plus:

* the lossless ``SchedulePlan.from_schedule`` inverse,
* turbo replay equivalence (the plan drives the event loop directly),
* the in-place columnar ``audit`` (both that valid plans pass and that
  corrupted columns raise the *right* exception),
* the ``to_bytes``/``from_bytes`` disk format and its corruption modes,
* the :class:`~repro.plan.PlanCache` levels — mem hit identity, LRU
  eviction, disk persistence across a *fresh process*, off mode,
* the recursion-limit guard: builders and compilers stay iterative.
"""

import subprocess
import sys

import pytest

from repro.conformance.oracles import get_oracle
from repro.errors import (
    InvalidParameterError,
    PlanCacheError,
    ScheduleError,
    SimultaneousIOError,
)
from repro.plan import (
    PlanCache,
    SchedulePlan,
    build_plan,
    canonical_family,
    compile_plan,
    plan_families,
)
from repro.turbo import TickDomain
from repro.types import as_time

#: The latencies the issue calls out: integer, the paper's running
#: example 5/2, and 7/3 (denominator not a power of two).
LAMBDAS = ["2", "5/2", "7/3"]

SIZES = [2, 3, 5, 8, 13, 21]
MCOUNTS = [1, 2, 3]


def _grid(family, lam):
    """Applicable ``(n, m)`` pairs for *family* at latency *lam*."""
    oracle = get_oracle(family)
    return [
        (n, m)
        for n in SIZES
        for m in MCOUNTS
        if oracle.applicable(n, m, lam)
    ]


# ------------------------------------------------------------ byte identity


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", plan_families())
def test_plan_events_byte_identical_to_builder(family, lam_str):
    """``compile_plan(...).to_schedule()`` equals the oracle's independent
    static builder, event for event, with exact ``Fraction`` times."""
    oracle = get_oracle(family)
    lam = as_time(lam_str)
    grid = _grid(family, lam)
    if not grid:
        pytest.skip(f"no applicable (n, m) for {family} at lambda={lam_str}")
    for n, m in grid:
        ref = oracle.schedule(n, m, lam)
        plan = compile_plan(family, n, m, lam, validate=True)
        got = plan.to_schedule(validate=True)
        assert got.events == ref.events, f"{family} n={n} m={m} lam={lam_str}"
        assert plan.completion_time() == ref.completion_time()
        assert plan.event_count == len(ref.events)


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", plan_families())
def test_from_schedule_round_trip_is_identity(family, lam_str):
    """plan -> Schedule -> plan reproduces the exact columns and domain."""
    lam = as_time(lam_str)
    grid = _grid(family, lam)
    if not grid:
        pytest.skip(f"no applicable (n, m) for {family} at lambda={lam_str}")
    n, m = grid[-1]
    plan = compile_plan(family, n, m, lam)
    back = SchedulePlan.from_schedule(plan.to_schedule(), family=plan.family)
    assert back == plan


@pytest.mark.parametrize("family", ["BCAST", "REPEAT", "PACK", "PIPELINE-1"])
def test_replay_realizes_the_planned_schedule(family):
    """Feeding the columns straight into the turbo loop realizes the same
    schedule the plan describes."""
    lam = as_time("5/2")
    n, m = (13, 1) if family == "BCAST" else (13, 2)
    plan = compile_plan(family, n, m, lam)
    system = plan.replay()
    realized = system.realized_schedule(m=plan.m)
    assert realized.events == plan.to_schedule().events


def test_pipeline_alias_resolves_by_variant():
    assert canonical_family("PIPELINE", 8, 2, as_time(3)) == "PIPELINE-1"
    assert canonical_family("PIPELINE", 8, 4, as_time(3)) == "PIPELINE-2"
    plan = compile_plan("PIPELINE", 8, 2, "3")
    assert plan.family == "PIPELINE-1"


def test_explicit_dtree_degree_matches_named_shape():
    # DTREE-LATENCY at lambda=2 is the degree-3 tree
    lam = as_time(2)
    named = compile_plan("DTREE-LATENCY", 10, 2, lam)
    explicit = compile_plan("DTREE-3", 10, 2, lam)
    assert named.to_schedule().events == explicit.to_schedule().events


def test_unknown_family_raises():
    with pytest.raises(InvalidParameterError):
        compile_plan("TELEGRAPH", 4, 1, 2)
    with pytest.raises(InvalidParameterError):
        compile_plan("DTREE-XL", 4, 1, 2)
    with pytest.raises(InvalidParameterError):
        compile_plan("BCAST", 4, 2, 2)  # BCAST is single-message


# ------------------------------------------------------------------ audit


def _tampered(plan, **cols):
    """A copy of *plan* with some columns replaced."""
    return SchedulePlan(
        plan.family,
        plan.n,
        plan.m,
        plan.lam,
        plan.domain,
        cols.get("ticks", plan.ticks[:]),
        cols.get("senders", plan.senders[:]),
        cols.get("msgs", plan.msgs[:]),
        cols.get("receivers", plan.receivers[:]),
    )


def test_audit_rejects_duplicate_delivery():
    plan = compile_plan("BCAST", 8, 1, "5/2")
    receivers = plan.receivers[:]
    receivers[1] = receivers[0]  # second event re-delivers to the same proc
    with pytest.raises(ScheduleError, match="more than once"):
        _tampered(plan, receivers=receivers).audit()


def test_audit_rejects_self_send():
    plan = compile_plan("BCAST", 8, 1, 2)
    receivers = plan.receivers[:]
    receivers[0] = plan.senders[0]
    with pytest.raises(ScheduleError, match="self-send"):
        _tampered(plan, receivers=receivers).audit()


def test_audit_rejects_uninformed_sender():
    plan = compile_plan("BCAST", 8, 1, 2)
    senders = plan.senders[:]
    senders[0] = plan.n - 1  # the last-informed processor sends at t = 0
    with pytest.raises(ScheduleError, match="holds it from|never obtains"):
        _tampered(plan, senders=senders).audit()


def test_audit_rejects_unsorted_columns():
    plan = compile_plan("BCAST", 8, 1, 2)
    ticks = plan.ticks[:]
    ticks[0], ticks[-1] = ticks[-1], ticks[0]
    with pytest.raises(ScheduleError, match="not tick-sorted"):
        _tampered(plan, ticks=ticks).audit()


def test_audit_rejects_incomplete_broadcast():
    plan = compile_plan("BCAST", 8, 1, 2)
    short = _tampered(
        plan,
        ticks=plan.ticks[:-1],
        senders=plan.senders[:-1],
        msgs=plan.msgs[:-1],
        receivers=plan.receivers[:-1],
    )
    with pytest.raises(ScheduleError, match="incomplete"):
        short.audit()


def test_audit_rejects_simultaneous_sends():
    # REPEAT with a fabricated zero stride: both iterations' first sends
    # leave the root at the same instant.
    plan = compile_plan("BCAST", 4, 1, 1)
    ticks = plan.ticks[:]
    # root sends at ticks 0, 1, ...; drag its second send onto the first
    ticks[1] = ticks[0]
    with pytest.raises(SimultaneousIOError, match="two sends"):
        _tampered(plan, ticks=ticks).audit()


def test_audit_rejects_simultaneous_receives():
    # n=4, m=2, lambda=2 (scale 1): p3 is sent different messages by two
    # different senders in the same time unit.
    n, m = 4, 2
    lam = as_time(2)
    domain = TickDomain.for_values([lam])

    def key(t, s, k, r):
        return ((t * n + s) * m + k) * n + r

    keys = [key(0, 0, 0, 1), key(2, 0, 1, 3), key(2, 1, 0, 3)]
    plan = SchedulePlan.from_sorted_keys("CUSTOM", n, m, lam, domain, keys)
    with pytest.raises(SimultaneousIOError, match="two receives"):
        plan.audit()


# ------------------------------------------------------------ serialization


def test_bytes_round_trip():
    plan = compile_plan("REPEAT", 13, 3, "7/3")
    clone = SchedulePlan.from_bytes(plan.to_bytes())
    assert clone == plan
    assert clone.domain.scale == plan.domain.scale
    assert clone.to_schedule().events == plan.to_schedule().events


@pytest.mark.parametrize(
    "mangle",
    [
        lambda raw: b"not a plan at all",
        lambda raw: raw[:20],  # truncated header
        lambda raw: raw[:-8],  # truncated payload
        lambda raw: raw + b"trailing junk",  # payload length mismatch
        lambda raw: raw.replace(b'"n": 13', b'"n": oops', 1),  # broken JSON
    ],
)
def test_from_bytes_rejects_corruption(mangle):
    raw = compile_plan("BCAST", 13, 1, "5/2").to_bytes()
    with pytest.raises(PlanCacheError):
        SchedulePlan.from_bytes(mangle(raw))


# ------------------------------------------------------------------- cache


def test_mem_cache_hit_returns_same_object():
    cache = PlanCache(mode="mem")
    a = build_plan("BCAST", 21, 1, "5/2", cache=cache)
    b = build_plan("BCAST", 21, 1, "5/2", cache=cache)
    assert a is b
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_off_mode_always_rebuilds():
    cache = PlanCache(mode="off")
    a = build_plan("BCAST", 21, 1, 2, cache=cache)
    b = build_plan("BCAST", 21, 1, 2, cache=cache)
    assert a is not b
    assert a == b
    assert cache.stats()["hits"] == 0


def test_pipeline_alias_shares_cache_entry():
    cache = PlanCache(mode="mem")
    a = build_plan("PIPELINE", 8, 2, 3, cache=cache)
    b = build_plan("PIPELINE-1", 8, 2, 3, cache=cache)
    assert a is b


def test_lru_evicts_oldest_entry():
    cache = PlanCache(mode="mem", capacity=2)
    a = build_plan("BCAST", 5, 1, 2, cache=cache)
    build_plan("BCAST", 8, 1, 2, cache=cache)
    build_plan("BCAST", 13, 1, 2, cache=cache)  # evicts n=5
    again = build_plan("BCAST", 5, 1, 2, cache=cache)
    assert again is not a
    assert again == a


def test_disk_cache_survives_a_fresh_cache(tmp_path):
    first = PlanCache(mode="disk", directory=tmp_path)
    plan = build_plan("PACK", 13, 2, "5/2", cache=first)
    assert first.path_for(first.key("PACK", 13, 2, "5/2")).exists()

    fresh = PlanCache(mode="disk", directory=tmp_path)  # empty memory level
    loaded = build_plan("PACK", 13, 2, "5/2", cache=fresh)
    assert loaded == plan
    assert fresh.stats()["disk_hits"] == 1


def test_corrupt_disk_file_is_a_miss_not_an_error(tmp_path):
    cache = PlanCache(mode="disk", directory=tmp_path)
    build_plan("BCAST", 8, 1, 2, cache=cache)
    path = cache.path_for(cache.key("BCAST", 8, 1, 2))
    path.write_bytes(b"garbage")
    fresh = PlanCache(mode="disk", directory=tmp_path)
    plan = build_plan("BCAST", 8, 1, 2, cache=fresh)  # silently rebuilt
    plan.audit()
    assert fresh.stats()["disk_hits"] == 0


def test_disk_cache_survives_a_fresh_process(tmp_path):
    """The real satellite claim: a *new process* (CI shard, nightly run)
    skips construction by loading the persisted plan."""
    warm = PlanCache(mode="disk", directory=tmp_path)
    plan = build_plan("BCAST", 21, 1, "5/2", cache=warm)

    code = (
        "from repro.plan import PlanCache, build_plan\n"
        "cache = PlanCache()\n"
        "plan = build_plan('BCAST', 21, 1, '5/2', cache=cache)\n"
        "plan.audit()\n"
        "print(cache.stats()['disk_hits'], plan.event_count)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={
            "REPRO_PLAN_CACHE": "disk",
            "REPRO_PLAN_CACHE_DIR": str(tmp_path),
            "PYTHONPATH": "src",
            "PATH": "/usr/bin:/bin",
        },
        cwd="/root/repo",
        check=True,
    )
    disk_hits, count = proc.stdout.split()
    assert disk_hits == "1"
    assert int(count) == plan.event_count


def test_bad_cache_mode_rejected():
    with pytest.raises(InvalidParameterError):
        PlanCache(mode="ram")


# ------------------------------------------------- recursion-limit guard


@pytest.mark.parametrize(
    "build",
    [
        lambda: compile_plan("BCAST", 3000, 1, "5/2"),
        lambda: compile_plan("PIPELINE", 3000, 3, "5/2"),
        lambda: compile_plan("REPEAT", 3000, 2, 2),
    ],
    ids=["bcast", "pipeline", "repeat"],
)
def test_compilers_are_iterative(build):
    """No compiler touches the recursion limit, at any n (satellite of
    the turbo PR, re-pinned here for the plan layer)."""
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(200)
    try:
        plan = build()
    finally:
        sys.setrecursionlimit(limit)
    assert plan.event_count >= 2999


def test_core_builders_are_iterative_too():
    from repro.core.bcast import bcast_schedule
    from repro.core.multi import pipeline_schedule

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(200)
    try:
        s1 = bcast_schedule(3000, "5/2", validate=False)
        s2 = pipeline_schedule(3000, 3, "5/2", validate=False)
    finally:
        sys.setrecursionlimit(limit)
    assert len(s1.events) == 2999
    assert len(s2.events) == 2999 * 3


def test_large_plan_matches_builder_exactly():
    """One big differential point: n = 20000 at the paper's lambda."""
    from repro.core.bcast import bcast_schedule

    plan = compile_plan("BCAST", 20_000, 1, "5/2")
    ref = bcast_schedule(20_000, "5/2", validate=False)
    assert plan.to_schedule().events == ref.events
