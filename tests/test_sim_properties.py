"""Property-based tests of the discrete-event engine.

Determinism, clock monotonicity, and conservation properties over randomly
generated workloads — the invariants the exactness claims of this library
rest on.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store

from tests.grids import rationals

delays = rationals(0, 10, max_denominator=8)


@given(ds=st.lists(delays, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_timeouts_fire_in_sorted_order(ds):
    env = Environment()
    fired = []

    def proc(d, tag):
        yield env.timeout(d)
        fired.append((env.now, tag))

    for i, d in enumerate(ds):
        env.process(proc(d, i))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert times == sorted(ds)
    # FIFO among equal delays: tags with the same delay keep spawn order
    for d in set(ds):
        tags = [tag for t, tag in fired if t == d]
        assert tags == sorted(tags)


@given(ds=st.lists(delays, min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_deterministic_replay(ds):
    def run():
        env = Environment()
        log = []

        def proc(d, tag):
            yield env.timeout(d)
            log.append((env.now, tag))
            yield env.timeout(d / 2 + Fraction(1, 3))
            log.append((env.now, tag, "second"))

        for i, d in enumerate(ds):
            env.process(proc(d, i))
        env.run()
        return log

    assert run() == run()


@given(ds=st.lists(delays, min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_clock_never_goes_backwards(ds):
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)
        yield env.timeout(d)
        observed.append(env.now)

    for d in ds:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(observed)


@given(
    holds=st.lists(
        rationals(Fraction(1, 4), 3, max_denominator=4),
        min_size=1,
        max_size=15,
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_resource_conservation(holds, capacity):
    """A capacity-c resource: the total busy time is the sum of the hold
    times; at most c users run concurrently, so the makespan is at least
    sum/c and at most sum."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    spans = []

    def user(hold):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(hold)
        res.release(req)
        spans.append((start, env.now))

    for h in holds:
        env.process(user(h))
    env.run()
    total = sum(h for h in holds)
    makespan = max(e for _, e in spans)
    assert total / capacity <= makespan <= total
    # no instant has more than `capacity` overlapping holds
    boundaries = sorted({t for s, e in spans for t in (s, e)})
    for a, b in zip(boundaries, boundaries[1:]):
        mid = (a + b) / 2
        active = sum(1 for s, e in spans if s <= mid < e)
        assert active <= capacity


@given(items=st.lists(st.integers(), min_size=0, max_size=30))
@settings(max_examples=60, deadline=None)
def test_store_fifo_conservation(items):
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in items:
            yield store.put(item)
            yield env.timeout(Fraction(1, 2))

    def consumer():
        for _ in items:
            got.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == items
    assert len(store) == 0
