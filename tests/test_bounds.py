"""Tests for Theorem 7 bounds and the appendix claims (Lemmas 19-26)."""

from fractions import Fraction

import pytest

from repro.core.bounds import (
    F_lower_asymptotic,
    F_lower_exact,
    F_upper_exact,
    alpha,
    claim23_lhs,
    claim24_holds,
    f_lower_log,
    f_upper_asymptotic,
    f_upper_log,
    h_of_lambda,
    theorem7_sandwich_holds,
)
from repro.core.fibfunc import postal_F, postal_f
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS, SIZES


class TestExactBounds:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_part1_sandwich_dense(self, lam):
        for k in range(0, 80):
            t = Fraction(k, 3)
            F = postal_F(lam, t)
            assert F_lower_exact(lam, t) <= F <= F_upper_exact(lam, t)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", SIZES)
    def test_part2_sandwich(self, lam, n):
        f = float(postal_f(lam, n))
        assert f_lower_log(lam, n) - 1e-9 <= f <= f_upper_log(lam, n) + 1e-9

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_combined_checker(self, lam):
        assert theorem7_sandwich_holds(lam, t=Fraction(17, 2), n=137)

    def test_lower_bound_at_zero(self):
        assert F_lower_exact(2, 0) == 1
        assert F_upper_exact(2, 0) == 1

    def test_exact_bounds_are_integers(self):
        assert isinstance(F_lower_exact(Fraction(5, 2), 10), int)
        assert isinstance(F_upper_exact(Fraction(5, 2), 10), int)

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            F_lower_exact(Fraction(1, 2), 1)
        with pytest.raises(InvalidParameterError):
            F_upper_exact(2, -1)
        with pytest.raises(InvalidParameterError):
            f_lower_log(2, 0)


class TestAsymptotics:
    def test_alpha_decreases_to_one(self):
        # alpha(lambda) -> 1 as lambda -> infinity (ln-ln slow)
        vals = [alpha(lam) for lam in (100, 1000, 10**6, 10**9)]
        assert all(a > b for a, b in zip(vals, vals[1:]))
        assert 1 < vals[-1] < 1.3

    def test_alpha_blows_up_near_singularity(self):
        # the denominator touches 0 at lambda = e - 1, so alpha is huge
        # just around it
        assert alpha(2) > 100

    def test_claim23_for_large_lambda(self):
        for lam in (200, 10**4, 10**6):
            assert claim23_lhs(lam) <= 1.0, lam

    def test_claim24_for_large_lambda(self):
        for lam in (200, 10**4, 10**6):
            assert claim24_holds(lam), lam

    def test_part3_lower_bound_large_lambda(self):
        lam = 1000
        for t in (0, 500, 1500, 5000, 20000):
            assert postal_F(lam, t) >= F_lower_asymptotic(lam, t) * (1 - 1e-12)

    def test_part4_upper_bound_large_lambda(self):
        # n >= 2**lambda is astronomically large; verify the *formula*
        # sandwich at a large-but-computable point instead: the asymptotic
        # upper bound must dominate the true f for n >= 2**lambda-ish
        lam = 64
        n = 2**64
        f = float(postal_f(lam, n))
        assert f <= f_upper_asymptotic(lam, n) + 1e-6

    def test_h_tends_to_zero(self):
        hs = [h_of_lambda(lam, 2**lam) for lam in (64, 1024, 2**20)]
        assert all(a > b for a, b in zip(hs, hs[1:]))
        assert hs[-1] < 0.5

    def test_asymptotic_tighter_than_exact_upper(self):
        # Theorem 7(4) beats 7(2) once lambda and n are large enough for
        # 1 + h(lambda) to drop below 2 (pure formula comparison)
        lam = 2**20
        n = 2**lam
        assert f_upper_asymptotic(lam, n) < f_upper_log(lam, n)
