"""Unit tests for the tracing substrate and the Message record."""

from fractions import Fraction

import pytest

from repro.postal.message import Message
from repro.sim.trace import TRACE_KINDS, TraceRecord, Tracer
from repro.types import Time


class TestTracer:
    def test_emit_and_records(self):
        tracer = Tracer()
        tracer.emit(Time(0), "send", {"src": 0})
        tracer.emit(Time(2), "deliver", {"dst": 1})
        assert len(tracer) == 2
        assert [r.kind for r in tracer] == ["send", "deliver"]

    def test_kind_filter(self):
        tracer = Tracer()
        for k in ("a", "b", "a"):
            tracer.emit(Time(1), k)
        assert len(tracer.records("a")) == 2
        assert len(tracer.records("b")) == 1
        assert len(tracer.records()) == 3

    def test_subscription(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        rec = tracer.emit(Time(3), "send")
        assert seen == [rec]

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(Time(0), "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_unsubscribe(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.unsubscribe(seen.append)
        tracer.emit(Time(0), "send")
        assert seen == []
        assert tracer.subscriber_count == 0

    def test_unsubscribe_unknown_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.unsubscribe(lambda rec: None)

    def test_clear_keeps_subscribers_by_default(self):
        # a long-lived collector must survive a between-phases reset
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(Time(0), "send")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.subscriber_count == 1
        tracer.emit(Time(1), "send")
        assert len(seen) == 2  # still receiving after the reset

    def test_clear_subscribers_true_drops_both(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(Time(0), "send")
        tracer.clear(subscribers=True)
        assert len(tracer) == 0
        assert tracer.subscriber_count == 0
        tracer.emit(Time(1), "send")
        assert len(seen) == 1  # only the pre-clear record was observed

    def test_multiple_subscribers_all_invoked(self):
        tracer = Tracer()
        a, b = [], []
        tracer.subscribe(a.append)
        tracer.subscribe(b.append)
        rec = tracer.emit(Time(2), "deliver")
        assert a == b == [rec]

    def test_trace_kinds_registry(self):
        assert set(TRACE_KINDS) == {"send", "deliver", "consume", "drop"}
        for kind, emitter in TRACE_KINDS.items():
            assert isinstance(emitter, str) and emitter

    def test_record_ordering_by_time(self):
        records = [
            TraceRecord(Time(5), "late"),
            TraceRecord(Time(1), "early"),
        ]
        assert sorted(records)[0].kind == "early"

    def test_record_str(self):
        rec = TraceRecord(Fraction(5, 2), "send", {"src": 0})
        assert "[t=2.5] send" in str(rec)


class TestMessage:
    def test_fields_and_str(self):
        msg = Message(0, 3, 7, Fraction(1), Fraction(7, 2), payload="hi")
        assert "M1 p3->p7" in str(msg)
        assert "sent t=1" in str(msg)
        assert "arrived t=3.5" in str(msg)

    def test_frozen(self):
        msg = Message(0, 0, 1, Time(0), Time(2))
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.payload = "new"  # type: ignore[misc]

    def test_equality(self):
        a = Message(0, 0, 1, Time(0), Time(2), payload="x")
        b = Message(0, 0, 1, Time(0), Time(2), payload="x")
        assert a == b
