"""Tests for Algorithm DTREE (Section 4.3, Lemma 18)."""

import math
from fractions import Fraction

import pytest

from repro.core.analysis import (
    bcast_time,
    dtree_factor_binary,
    dtree_factor_latency,
    dtree_upper,
    multi_lower_bound,
)
from repro.core.dtree import (
    DTreeShape,
    dtree_children,
    dtree_height,
    dtree_parent,
    dtree_schedule,
    resolve_degree,
)
from repro.core.orderpres import is_order_preserving
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS, MCOUNTS

NS = [1, 2, 3, 5, 14, 27, 40]
DS = [1, 2, 3, 5]


class TestTreeShape:
    def test_parent_child_inverse(self):
        for d in (1, 2, 3, 7):
            for v in range(50):
                for c in dtree_children(v, d, 200):
                    assert dtree_parent(c, d) == v

    def test_bfs_left_to_right(self):
        # node v's children are d*v+1 .. d*v+d
        assert dtree_children(0, 3, 10) == [1, 2, 3]
        assert dtree_children(1, 3, 10) == [4, 5, 6]
        assert dtree_children(3, 3, 10) == []  # 10..12 don't exist

    def test_height_full_tree(self):
        assert dtree_height(1, 2) == 0
        assert dtree_height(3, 2) == 1
        assert dtree_height(7, 2) == 2
        assert dtree_height(8, 2) == 3

    def test_height_line(self):
        assert dtree_height(5, 1) == 4

    def test_height_vs_log(self):
        for d in (2, 3, 5):
            for n in (2, 10, 100, 1000):
                h = dtree_height(n, d)
                assert h <= math.ceil(math.log(n) / math.log(d) + 1e-9)

    def test_resolve_presets(self):
        assert resolve_degree(DTreeShape.LINE, 10, 2) == 1
        assert resolve_degree(DTreeShape.BINARY, 10, 2) == 2
        assert resolve_degree(DTreeShape.LATENCY, 10, Fraction(5, 2)) == 4
        assert resolve_degree(DTreeShape.STAR, 10, 2) == 9

    def test_resolve_clamps(self):
        assert resolve_degree(100, 5, 2) == 4  # at most n-1
        assert resolve_degree(0, 5, 2) == 1
        assert resolve_degree(DTreeShape.STAR, 1, 2) == 1

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            dtree_parent(0, 2)
        with pytest.raises(InvalidParameterError):
            dtree_children(0, 0, 5)
        with pytest.raises(InvalidParameterError):
            dtree_height(0, 2)


@pytest.mark.parametrize("lam", LAMBDAS, ids=str)
@pytest.mark.parametrize("n", NS)
@pytest.mark.parametrize("m", MCOUNTS)
@pytest.mark.parametrize("d", DS)
class TestLemma18:
    def test_valid_and_bounded(self, lam, n, m, d):
        s = dtree_schedule(n, m, lam, d)  # validates on construction
        d_eff = resolve_degree(d, n, lam)
        assert s.completion_time() <= dtree_upper(n, m, lam, d_eff)

    def test_order_preserving(self, lam, n, m, d):
        assert is_order_preserving(dtree_schedule(n, m, lam, d, validate=False))


class TestExactTimes:
    def test_line_exact(self, lam):
        # d=1: completion is exactly (m-1) + (n-1)*lambda
        for n in (2, 5, 9):
            for m in (1, 4):
                s = dtree_schedule(n, m, lam, 1, validate=False)
                assert s.completion_time() == (m - 1) + (n - 1) * lam

    def test_star_exact(self, lam):
        # d=n-1: root sends m(n-1) messages back to back
        for n in (3, 6):
            for m in (1, 3):
                s = dtree_schedule(n, m, lam, n - 1, validate=False)
                assert s.completion_time() == m * (n - 1) - 1 + lam

    def test_full_binary_one_message(self):
        # full binary tree, m=1: last leaf gets it at (d-1+lam)*height
        lam = Fraction(5, 2)
        s = dtree_schedule(7, 1, lam, 2, validate=False)
        assert s.completion_time() == 2 * (1 + lam)


class TestSection43Claims:
    def test_line_near_optimal_large_m(self):
        """d=1 is near optimal when lambda, n fixed and m -> infinity."""
        n, lam = 6, 2
        for m in (200, 2000):
            t = dtree_schedule(n, m, lam, 1, validate=False).completion_time()
            lb = multi_lower_bound(n, m, lam)
            assert float(t) / float(lb) < 1.1

    def test_star_near_optimal_large_lambda(self):
        """d=n-1 is near optimal when m, n fixed and lambda -> infinity."""
        n, m = 6, 3
        for lam in (100, 1000):
            t = dtree_schedule(n, m, lam, n - 1, validate=False).completion_time()
            lb = multi_lower_bound(n, m, lam)
            assert float(t) / float(lb) < 1.3

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_binary_within_stated_factor(self, lam):
        """d=2 is within max{2, log(ceil(lambda)+1)} of optimal."""
        factor = dtree_factor_binary(lam)
        for n in (2, 14, 40):
            for m in (1, 3, 8):
                t = dtree_schedule(n, m, lam, 2, validate=False).completion_time()
                lb = multi_lower_bound(n, m, lam)
                assert float(t) <= factor * float(lb) * (1 + 1e-9), (n, m)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_latency_degree_within_stated_factor(self, lam):
        """d=ceil(lambda)+1 is within max{2, ceil(lambda)+1} of optimal."""
        factor = dtree_factor_latency(lam)
        for n in (2, 14, 40):
            for m in (1, 3, 8):
                t = dtree_schedule(
                    n, m, lam, DTreeShape.LATENCY, validate=False
                ).completion_time()
                lb = multi_lower_bound(n, m, lam)
                assert float(t) <= factor * float(lb) * (1 + 1e-9), (n, m)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_latency_degree_within_3_for_few_messages(self, lam):
        """For m <= log n / log(ceil(lambda)+1), d=ceil(lambda)+1 is within
        a factor of 3 of optimal, independent of lambda."""
        import math as _m

        for n in (64, 256, 1024):
            mmax = int(_m.log2(n) / _m.log2(_m.ceil(lam) + 1))
            for m in {1, max(1, mmax // 2), max(1, mmax)}:
                if m > mmax:
                    continue
                t = dtree_schedule(
                    n, m, lam, DTreeShape.LATENCY, validate=False
                ).completion_time()
                lb = multi_lower_bound(n, m, lam)
                assert float(t) <= 3 * float(lb) * (1 + 1e-9), (n, m)

    def test_dtree_never_beats_bcast_single_message(self, lam):
        """No fixed-degree tree beats the generalized Fibonacci tree for
        one message (Theorem 6 optimality, cross-family)."""
        for n in (2, 14, 40):
            best = min(
                dtree_schedule(n, 1, lam, d, validate=False).completion_time()
                for d in (1, 2, 3, 4, n - 1)
            )
            assert best >= bcast_time(n, lam)
