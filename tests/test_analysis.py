"""Tests for the closed-form analysis module (lower bounds, pickers)."""

import math
from fractions import Fraction

import pytest

from repro.core.analysis import (
    ALGORITHMS,
    algorithm_times,
    bcast_time,
    best_algorithm,
    dtree_factor_binary,
    dtree_factor_latency,
    dtree_upper,
    multi_lower_bound,
    multi_lower_cor9,
    pipeline_time,
    repeat_time,
)
from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS


class TestLowerBounds:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_lemma8_formula(self, lam):
        for n in (2, 14, 40):
            for m in (1, 5):
                assert multi_lower_bound(n, m, lam) == (m - 1) + postal_f(lam, n)

    def test_lemma8_n1(self):
        assert multi_lower_bound(1, 5, 2) == 0

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_corollary9_below_lemma8(self, lam):
        """Corollary 9's explicit bounds are implied by (hence no stronger
        than) Lemma 8."""
        for n in (2, 14, 100):
            for m in (1, 4):
                lb = float(multi_lower_bound(n, m, lam))
                p1, p2 = multi_lower_cor9(n, m, lam)
                assert p1 <= lb + 1e-9
                assert p2 <= lb + 1e-9 + 1  # part 2 is strict: > m-1+lam

    def test_corollary9_needs_n2(self):
        with pytest.raises(InvalidParameterError):
            multi_lower_cor9(1, 1, 2)


class TestDtreeUpper:
    def test_d1_exact_line(self):
        assert dtree_upper(5, 3, 2, 1) == 2 + 4 * 2

    def test_log_height_integer_safety(self):
        # ceil(log_d n) must be exact even where floats wobble (d^k == n)
        assert dtree_upper(8, 1, 1, 2) == (1 + 1) * 3
        assert dtree_upper(9, 1, 1, 3) == (2 + 1) * 2
        assert dtree_upper(1000, 1, 1, 10) == (9 + 1) * 3

    def test_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            dtree_upper(5, 1, 2, 0)


class TestFactors:
    def test_binary_factor(self):
        assert dtree_factor_binary(1) == 2
        assert dtree_factor_binary(10) == math.log2(11)

    def test_latency_factor(self):
        assert dtree_factor_latency(1) == 2
        assert dtree_factor_latency(Fraction(5, 2)) == 4


class TestPicker:
    def test_algorithm_times_keys(self):
        times = algorithm_times(10, 3, 2)
        assert set(times) == set(ALGORITHMS)

    def test_best_algorithm_is_min(self):
        name, t = best_algorithm(10, 3, 2)
        times = algorithm_times(10, 3, 2)
        assert t == min(times.values())
        assert times[name] == t

    def test_single_message_pipeline_equals_bcast(self):
        """For m=1 PIPELINE == BCAST == optimal, so the winner's time is
        f_lambda(n)."""
        for lam in (1, 2, Fraction(5, 2)):
            _, t = best_algorithm(14, 1, lam)
            assert t == bcast_time(14, lam)

    def test_crossover_large_m_prefers_line_or_pipeline(self):
        name, _ = best_algorithm(6, 400, 2)
        assert name in ("DTREE-LINE", "PIPELINE")

    def test_crossover_huge_lambda_prefers_star_or_pack(self):
        name, _ = best_algorithm(6, 2, 500)
        # DTREE-LATENCY clamps its degree to n-1 here, i.e. it IS the star
        assert name in ("DTREE-STAR", "DTREE-LATENCY", "PACK", "PIPELINE", "REPEAT")

    def test_times_exceed_lower_bound(self):
        for lam in (1, Fraction(5, 2), 6):
            for n, m in ((2, 1), (14, 4), (27, 9)):
                lb = multi_lower_bound(n, m, lam)
                for name, t in algorithm_times(n, m, lam).items():
                    assert t >= lb, name


class TestEdgeParameters:
    def test_n1_zero_times(self):
        assert repeat_time(1, 3, 2) == 0
        assert pipeline_time(1, 3, 2) == 0
        assert bcast_time(1, 7) == 0

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            repeat_time(2, 0, 2)
        with pytest.raises(InvalidParameterError):
            bcast_time(2, Fraction(1, 2))
