"""Tests for composite condition events (all_of / any_of)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.events import Condition, all_of, any_of


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        t1, t2, t3 = env.timeout(1), env.timeout(3), env.timeout(2)
        done = []

        def proc():
            result = yield all_of(env, [t1, t2, t3])
            done.append((env.now, len(result)))

        env.process(proc())
        env.run()
        assert done == [(3, 3)]

    def test_values_collected(self):
        env = Environment()
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        got = []

        def proc():
            result = yield all_of(env, [t1, t2])
            got.append((result[t1], result[t2]))

        env.process(proc())
        env.run()
        assert got == [("a", "b")]

    def test_empty_fires_immediately(self):
        env = Environment()
        cond = all_of(env, [])
        assert cond.triggered

    def test_failure_fails_condition(self):
        env = Environment()
        ev = env.event()
        t = env.timeout(5)
        caught = []

        def proc():
            try:
                yield all_of(env, [ev, t])
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield env.timeout(1)
            ev.fail(RuntimeError("part failed"))

        env.process(proc())
        env.process(failer())
        env.run()
        assert caught == ["part failed"]


class TestAnyOf:
    def test_fires_on_first(self):
        env = Environment()
        slow = env.timeout(10, value="slow")
        fast = env.timeout(2, value="fast")
        got = []

        def proc():
            result = yield any_of(env, [slow, fast])
            got.append((env.now, list(result.values())))

        env.process(proc())
        env.run()
        assert got == [(2, ["fast"])]

    def test_already_fired_member(self):
        env = Environment()
        done = env.timeout(0)

        def proc():
            yield env.timeout(5)
            result = yield any_of(env, [done, env.timeout(100)])
            assert done in result

        env.process(proc())
        env.run(until=6)

    def test_empty_any_fires(self):
        env = Environment()
        assert any_of(env, []).triggered


class TestCondition:
    def test_count_k_of_n(self):
        env = Environment()
        evs = [env.timeout(i) for i in (1, 2, 3, 4)]
        got = []

        def proc():
            yield Condition(env, evs, 2)
            got.append(env.now)

        env.process(proc())
        env.run()
        assert got == [2]

    def test_bad_count(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Condition(env, [env.timeout(1)], 5)

    def test_cross_environment_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            all_of(env1, [env2.timeout(1)])
