"""Shared-memory plan distribution: zero-copy fidelity and crash safety.

Three properties of :mod:`repro.batch.shared` are load-bearing for the
batch engine:

* **fidelity** — a plan rebuilt from a shared segment
  (:meth:`SchedulePlan.from_shared`) is *equal* to the original and
  replays byte-identically (same column digest), even though its
  columns are memoryviews of mapped pages rather than ``array('q')``;
* **ownership** — only the creating process unlinks; attachments (in
  any process) merely close their own mapping, so release order never
  races;
* **crash safety** — segments are unlinked even when workers die hard
  (``os._exit`` mid-batch): distribution is wrapped in ``try/finally``
  in :func:`repro.batch.run_batch`, and POSIX keeps attached mappings
  alive in survivors after the unlink.  No test here may leave a
  segment behind — the leak assertions scan ``/dev/shm`` directly.
"""

import multiprocessing
import os
import pickle
import warnings
from pathlib import Path

import pytest

from repro.batch import run_batch
from repro.batch.runner import BatchPoint
from repro.batch import runner as batch_runner
from repro.batch.shared import (
    SharedPlanSet,
    attach_columns,
    release_shared,
)
from repro.plan import build_plan
from repro.plan.columns import SchedulePlan

FAMILIES = ("BCAST", "PIPELINE-2", "ALLGATHER", "GOSSIP-RING")


def _segments() -> "set[str]":
    """Names of live POSIX shared-memory segments (Linux)."""
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm to scan for leaks")
    return {p.name for p in shm.iterdir()}


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = _segments()
    yield
    assert _segments() <= before, "test leaked a shared-memory segment"


@pytest.mark.parametrize("family", FAMILIES)
def test_roundtrip_equals_original(family):
    plan = build_plan(family, 9, 2 if family == "PIPELINE-2" else 1, "2")
    handle = plan.to_shared()
    try:
        clone = SchedulePlan.from_shared(handle)
        assert clone == plan
        assert clone.family == plan.family
        assert clone.completion_time() == plan.completion_time()
        assert bytes(memoryview(clone.ticks)) == plan.ticks.tobytes()
    finally:
        release_shared(handle)


@pytest.mark.parametrize("family", FAMILIES)
def test_attached_replay_is_byte_identical(family):
    from repro.postal.machine import ContentionPolicy
    from repro.turbo.replay import replay_plan

    plan = build_plan(family, 9, 2 if family == "PIPELINE-2" else 1, "2")
    handle = plan.to_shared()
    try:
        clone = SchedulePlan.from_shared(handle)
        for policy in (ContentionPolicy.STRICT, ContentionPolicy.QUEUED):
            assert (
                replay_plan(clone, policy=policy).column_digest()
                == replay_plan(plan, policy=policy).column_digest()
            )
    finally:
        release_shared(handle)


def test_handle_pickles_small_and_roundtrips():
    plan = build_plan("BCAST", 4096, 1, "7/2")
    handle = plan.to_shared()
    try:
        blob = pickle.dumps(handle)
        # the whole point: the handle is O(1), not O(plan)
        assert len(blob) < 512 < len(plan.to_bytes())
        assert pickle.loads(blob) == handle
        clone = SchedulePlan.from_shared(pickle.loads(blob))
        assert clone == plan
    finally:
        release_shared(handle)


def test_release_unlinks_segment():
    handle = build_plan("BCAST", 8, 1, "2").to_shared()
    columns, attachment = attach_columns(handle)
    release_shared(handle)
    # survivors keep reading their mapping after the unlink...
    assert list(columns[0])  # ticks still readable
    attachment.close()
    # ...but the name is gone: nobody new can attach
    with pytest.raises(FileNotFoundError):
        attach_columns(handle)


def test_release_is_idempotent_and_ignores_foreign_handles():
    handle = build_plan("BCAST", 8, 1, "2").to_shared()
    release_shared(handle)
    release_shared(handle)  # second release: no-op, no raise


def test_attachment_close_is_idempotent():
    handle = build_plan("BCAST", 8, 1, "2").to_shared()
    try:
        _, attachment = attach_columns(handle)
        attachment.close()
        attachment.close()
    finally:
        release_shared(handle)


def test_shared_plan_set_unlinks_on_exit():
    plans = [build_plan(f, 8, 1, "2") for f in ("BCAST", "STAR")]
    with SharedPlanSet(plans) as shared:
        handles = list(shared.handles)
        assert len(handles) == 2
        assert SchedulePlan.from_shared(handles[0]) == plans[0]
    for handle in handles:
        with pytest.raises(FileNotFoundError):
            attach_columns(handle)


def test_shared_plan_set_rejects_non_sequence():
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        SharedPlanSet(build_plan("BCAST", 4, 1, "2"))


def test_child_process_crash_does_not_leak():
    """A worker that attaches and dies hard must not pin the segment:
    the owner's unlink still removes it."""
    handle = build_plan("BCAST", 32, 1, "2").to_shared()

    def victim(h):
        SchedulePlan.from_shared(h)  # map it, never clean up
        os._exit(17)

    proc = multiprocessing.get_context("fork").Process(
        target=victim, args=(handle,)
    )
    proc.start()
    proc.join(timeout=30)
    assert proc.exitcode == 17
    release_shared(handle)
    with pytest.raises(FileNotFoundError):
        attach_columns(handle)


# --------------------------------------------------- run_batch crash path

_MAIN_PID = os.getpid()
_REAL_WORKER = batch_runner._batch_worker


def _crashing_worker(item):
    """Kills every pool worker instantly; behaves normally in-parent so
    the deterministic serial retry still yields correct results."""
    if os.getpid() != _MAIN_PID:
        os._exit(13)
    return _REAL_WORKER(item)


def test_run_batch_survives_worker_crash_without_leaking(monkeypatch):
    """Hard-crash every pool worker mid-batch: run_batch must fall back
    to the serial retry (identical results) and its ``finally`` must
    unlink every plan segment."""
    monkeypatch.setattr(batch_runner, "_batch_worker", _crashing_worker)
    points = [BatchPoint("BCAST", n, 1, "2") for n in (8, 16, 24, 32)]
    before = _segments()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        got = run_batch(points, jobs=2, transport="shared")
    assert _segments() <= before, "run_batch leaked a segment after crash"
    monkeypatch.setattr(batch_runner, "_batch_worker", _REAL_WORKER)
    assert got == run_batch(points, jobs=1)
