"""Tests for tree/Gantt rendering and table formatting."""

from fractions import Fraction

from repro.core.bcast import bcast_schedule, bcast_tree
from repro.report.render import render_gantt, render_tree
from repro.report.tables import format_cell, format_table, markdown_table


class TestRenderTree:
    def test_figure1_contents(self):
        text = render_tree(bcast_tree(14, Fraction(5, 2)))
        assert "p0 @ 0" in text
        assert "p9 @ 2.5" in text
        assert "p13 @ 7.5" in text  # last informed, height 7.5
        assert text.count("p") >= 14

    def test_single_node(self):
        assert render_tree(bcast_tree(1, 2)) == "p0 @ 0"

    def test_every_processor_listed_once(self):
        text = render_tree(bcast_tree(9, 2))
        for p in range(9):
            assert text.count(f"p{p} @") == 1


class TestRenderGantt:
    def test_marks_present(self):
        text = render_gantt(bcast_schedule(5, 2))
        assert "S" in text and "R" in text
        assert text.count("\n") == 5  # header + 5 processors

    def test_empty(self):
        assert "empty" in render_gantt(bcast_schedule(1, 2))

    def test_fractional_boundaries(self):
        text = render_gantt(bcast_schedule(5, Fraction(5, 2)))
        assert "p4" in text

    def test_full_duplex_star(self):
        # simultaneous send+receive renders as '*' when windows collide
        from repro.core.multi import pipeline_schedule

        text = render_gantt(pipeline_schedule(4, 4, 2))
        assert "S" in text and "R" in text


class TestTables:
    def test_cells(self):
        assert format_cell(Fraction(15, 2)) == "7.5"
        assert format_cell(0.123456) == "0.1235"
        assert format_cell("x") == "x"
        assert format_cell(3) == "3"

    def test_fixed_width_alignment(self):
        text = format_table(
            ["n", "time"], [[2, Fraction(5, 2)], [100, Fraction(15, 2)]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_markdown(self):
        text = markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert "---" in text.splitlines()[1]
        assert "| 1 | 2 |" in text
