"""CLI tests for ``python -m repro resilience`` — error paths, the
golden degradation-curve table, single-run output, and exit codes."""

import json

import pytest

from repro.cli import main

from .test_cli import run_cli

pytestmark = pytest.mark.resilience


class TestErrorPaths:
    def test_loss_out_of_range(self, capsys):
        with pytest.raises(SystemExit, match="loss"):
            main(["resilience", "--n", "10", "--lam", "2", "--loss", "1.5"])

    def test_negative_loss(self, capsys):
        with pytest.raises(SystemExit, match="loss"):
            main(["resilience", "--n", "10", "--lam", "2", "--loss", "-0.1"])

    def test_crash_rate_out_of_range(self, capsys):
        with pytest.raises(SystemExit, match="crash"):
            main(["resilience", "--n", "10", "--lam", "2", "--crash", "1.0"])

    def test_crashing_processor_zero(self, capsys):
        with pytest.raises(SystemExit, match="root"):
            main(["resilience", "--n", "10", "--lam", "2", "--crashed", "0"])

    def test_crashed_out_of_range(self, capsys):
        with pytest.raises(SystemExit, match="outside"):
            main(["resilience", "--n", "10", "--lam", "2", "--crashed", "10"])

    def test_crashed_not_an_int(self, capsys):
        with pytest.raises(SystemExit, match="crashed"):
            main(["resilience", "--n", "10", "--lam", "2", "--crashed", "2,x"])

    def test_off_grid_jitter(self, capsys):
        # lambda=2 puts the tick grid at whole units; 1/3 is off-grid
        with pytest.raises(SystemExit, match="tick"):
            main(["resilience", "--n", "10", "--lam", "2", "--jitter", "1/3"])

    def test_on_grid_jitter_accepted(self, capsys):
        # lambda=5/2 runs at tick scale 2, so 1/2 is representable
        code, out = run_cli(
            capsys, "resilience", "--n", "10", "--lam", "5/2",
            "--jitter", "1/2", "--seed", "2",
        )
        assert code == 0
        assert "certificate  : OK" in out

    def test_bad_detector_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["resilience", "--n", "10", "--lam", "2",
                 "--detector", "psychic"]
            )

    def test_rto_must_exceed_lambda(self, capsys):
        with pytest.raises(SystemExit, match="rto"):
            main(["resilience", "--n", "10", "--lam", "2", "--rto", "2"])


class TestGoldenCurveTable:
    def test_golden_table(self, capsys):
        code, out = run_cli(
            capsys, "resilience", "--n", "40", "--lam", "2", "--curve",
            "--losses", "0,0.1", "--crashes", "0,0.1", "--seed", "1",
        )
        assert code == 0
        assert (
            "degradation curve: MPS(n=40, lambda=2), m=1, "
            "detector=timeout, seed 1" in out
        )
        # the full seeded table, byte for byte
        assert (
            " loss  crash  survivors  completion   ratio  drops  retrans  adopted  cert\n"
            " 0.00   0.00      40/40          12   1.33x      0        0        0  ok\n"
            " 0.10   0.00      40/40          17   1.89x     11       16        0  ok\n"
            " 0.00   0.10      37/40         298  33.11x     24       21        3  ok\n"
            " 0.10   0.10      39/40          17   1.89x     11       11        0  ok\n"
        ) in out

    def test_curve_is_replayable(self, capsys):
        argv = (
            "resilience", "--n", "24", "--lam", "2", "--curve",
            "--losses", "0,0.2", "--crashes", "0", "--seed", "7",
        )
        code_a, out_a = run_cli(capsys, *argv)
        code_b, out_b = run_cli(capsys, *argv)
        assert (code_a, out_a) == (code_b, out_b)

    def test_jobs_do_not_change_the_table(self, capsys):
        argv = (
            "resilience", "--n", "24", "--lam", "2", "--curve",
            "--losses", "0,0.2", "--crashes", "0,0.1", "--seed", "7",
        )
        _, serial = run_cli(capsys, *argv, "--jobs", "1")
        _, sharded = run_cli(capsys, *argv, "--jobs", "4")
        assert serial == sharded


class TestSingleRun:
    def test_golden_single_run(self, capsys):
        code, out = run_cli(
            capsys, "resilience", "--n", "20", "--lam", "2",
            "--loss", "0.2", "--seed", "3",
        )
        assert code == 0
        assert "machine      : MPS(n=20, lambda=2), m=1" in out
        assert "faults       : loss=0.2 crash=0 jitter<=0 (seed 3, 0 crashed)" in out
        assert "completion   : 30  (fault-free optimum 7, ratio 4.29x)" in out
        assert "survivors    : 20/20 — all informed" in out
        assert "drops        : 9  (9 loss + 0 crash-suppressed)" in out
        assert "retransmits  : 10" in out
        assert "certificate  : OK" in out

    def test_explicit_crash_reports_recovery(self, capsys):
        code, out = run_cli(
            capsys, "resilience", "--n", "14", "--lam", "2",
            "--crashed", "3,5", "--seed", "0",
        )
        assert code == 0
        assert "12/14" in out
        assert "2 declared dead" in out
        assert "certificate  : OK" in out

    def test_fault_free_matches_oracle(self, capsys):
        code, out = run_cli(
            capsys, "resilience", "--n", "14", "--lam", "2", "--seed", "0",
        )
        assert code == 0
        assert "fault-free optimum 7" in out
        assert "certificate  : OK" in out


class TestBenchIntegration:
    def test_bench_smoke_reports_resilience_gate(self, capsys, tmp_path):
        out_json = tmp_path / "bench.json"
        code, out = run_cli(
            capsys, "bench", "--smoke", "--plan-n", "0",
            "--resilience-n", "60", "--replay-n", "0",
            "--out", str(out_json),
        )
        assert code == 0
        assert "resilience gate: 3 fault cases at n=60" in out
        assert "deterministic=yes, certified=yes" in out
        assert "[PASS]" in out
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro-bench-turbo/7"
        assert doc["resilience"]["gate"]["ok"] is True
        assert len(doc["resilience"]["cases"]) == 3

    def test_bench_resilience_disabled(self, capsys, tmp_path):
        out_json = tmp_path / "bench.json"
        code, out = run_cli(
            capsys, "bench", "--smoke", "--plan-n", "0",
            "--resilience-n", "0", "--replay-n", "0",
            "--out", str(out_json),
        )
        assert code == 0
        assert "resilience gate" not in out
        doc = json.loads(out_json.read_text())
        assert "resilience" not in doc
