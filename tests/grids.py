"""Shared parameter grids and hypothesis strategies (imported by test
modules and conftest)."""

import math
from fractions import Fraction

from hypothesis import strategies as st


def rationals(min_value, max_value, max_denominator=6):
    """A hypothesis strategy for exact rationals in ``[min_value,
    max_value]`` with small denominators — constructive (no filtering, so
    no health-check noise)."""
    lo = Fraction(min_value)
    hi = Fraction(max_value)
    return st.integers(1, max_denominator).flatmap(
        lambda den: st.integers(
            math.ceil(lo * den), math.floor(hi * den)
        ).map(lambda num: Fraction(num, den))
    )

#: Latencies covering the telephone case (1), the Fibonacci case (2), the
#: paper's example (5/2), a coarse rational (7/3), and larger values.
LAMBDAS = [
    Fraction(1),
    Fraction(3, 2),
    Fraction(2),
    Fraction(7, 3),
    Fraction(5, 2),
    Fraction(4),
    Fraction(10),
]

#: System sizes: tiny, around jumps of F_lambda, and moderately large.
SIZES = [1, 2, 3, 4, 5, 8, 13, 14, 21, 40, 100]

#: Message counts for multi-message algorithms.
MCOUNTS = [1, 2, 3, 5, 8]
