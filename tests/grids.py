"""Shared parameter grids and hypothesis strategies (imported by test
modules and conftest)."""

import math
from fractions import Fraction

from hypothesis import strategies as st


def rationals(min_value, max_value, max_denominator=6):
    """A hypothesis strategy for exact rationals in ``[min_value,
    max_value]`` with small denominators — constructive (no filtering, so
    no health-check noise)."""
    lo = Fraction(min_value)
    hi = Fraction(max_value)
    return st.integers(1, max_denominator).flatmap(
        lambda den: st.integers(
            math.ceil(lo * den), math.floor(hi * den)
        ).map(lambda num: Fraction(num, den))
    )

#: Latencies covering the telephone case (1), the Fibonacci case (2), the
#: paper's example (5/2), a coarse rational (7/3), and larger values.
LAMBDAS = [
    Fraction(1),
    Fraction(3, 2),
    Fraction(2),
    Fraction(7, 3),
    Fraction(5, 2),
    Fraction(4),
    Fraction(10),
]

#: System sizes: tiny, around jumps of F_lambda, and moderately large.
SIZES = [1, 2, 3, 4, 5, 8, 13, 14, 21, 40, 100]

#: Message counts for multi-message algorithms.
MCOUNTS = [1, 2, 3, 5, 8]


# ----------------------------------------------------- family strategies
#
# Constructive (n, m, lambda) strategies that satisfy each conformance
# family's applicability predicate *by construction* — no .filter(), so
# hypothesis never sees a rejected draw.


def lambdas(max_int=5, max_denominator=4):
    """Rational latencies ``lambda >= 1`` with small denominators."""
    return rationals(1, max_int, max_denominator=max_denominator)


def _single_message(max_n):
    return st.tuples(
        st.integers(2, max_n), st.just(1), lambdas()
    )


def _any_m(max_n, max_m):
    return st.tuples(
        st.integers(2, max_n), st.integers(1, max_m), lambdas()
    )


def _pipeline1(max_n):
    # m <= lambda: draw lambda first, then m in 1..floor(lambda)
    return lambdas().flatmap(
        lambda lam: st.tuples(
            st.integers(2, max_n),
            st.integers(1, max(1, math.floor(lam))),
            st.just(lam),
        )
    )


def _pipeline2(max_n, max_m):
    # m >= lambda: draw lambda first, then m from ceil(lambda) up
    return lambdas().flatmap(
        lambda lam: st.tuples(
            st.integers(2, max_n),
            st.integers(
                math.ceil(lam), max(math.ceil(lam), max_m)
            ),
            st.just(lam),
        )
    )


def _dtree_latency(max_n):
    # degree ceil(lambda)+1 must not be clamped: n >= ceil(lambda)+2
    return lambdas().flatmap(
        lambda lam: st.tuples(
            st.integers(
                math.ceil(lam) + 2, max(math.ceil(lam) + 2, max_n)
            ),
            st.integers(1, 3),
            st.just(lam),
        )
    )


def family_params(family, max_n=16, max_m=5):
    """A hypothesis strategy of applicable ``(n, m, lambda)`` triples for
    one conformance family (see :mod:`repro.conformance.oracles`)."""
    key = family.upper()
    if key in ("BCAST", "BINOMIAL") or key in (
        "REDUCE",
        "SCATTER",
        "GATHER",
        "ALLTOALL",
        "ALLREDUCE",
        "BARRIER",
    ):
        return _single_message(max_n)
    if key == "PIPELINE-1":
        return _pipeline1(max_n)
    if key == "PIPELINE-2":
        return _pipeline2(max_n, max_m)
    if key == "DTREE-LATENCY":
        return _dtree_latency(max_n)
    # REPEAT, PACK, DTREE-LINE, DTREE-BINARY, STAR
    return _any_m(max_n, max_m)
