"""Integration: event-driven protocols realize EXACTLY the schedules the
static builders produce.

The two code paths share no scheduling logic — builders compute send times
arithmetically; protocols discover them at run time through port contention
and message arrival on the simulated machine — so equality of the realized
schedules is strong evidence both are right.
"""

from fractions import Fraction

import pytest

from repro.algorithms import (
    BcastProtocol,
    DTreeProtocol,
    PackProtocol,
    PipelineProtocol,
    RepeatProtocol,
)
from repro.core.bcast import bcast_schedule
from repro.core.dtree import dtree_schedule
from repro.core.multi import pack_schedule, pipeline_schedule, repeat_schedule
from repro.postal import run_protocol

from tests.grids import LAMBDAS

CASES = [(2, 1), (5, 2), (14, 3), (9, 5), (27, 2)]


@pytest.mark.parametrize("lam", LAMBDAS, ids=str)
@pytest.mark.parametrize("n,m", CASES, ids=lambda c: str(c))
class TestSchedulesIdentical:
    def test_bcast(self, lam, n, m):
        assert run_protocol(BcastProtocol(n, lam)).schedule == bcast_schedule(
            n, lam
        )

    def test_repeat(self, lam, n, m):
        assert run_protocol(
            RepeatProtocol(n, m, lam)
        ).schedule == repeat_schedule(n, m, lam)

    def test_pack(self, lam, n, m):
        assert run_protocol(PackProtocol(n, m, lam)).schedule == pack_schedule(
            n, m, lam
        )

    def test_pipeline(self, lam, n, m):
        assert run_protocol(
            PipelineProtocol(n, m, lam)
        ).schedule == pipeline_schedule(n, m, lam)

    def test_dtree(self, lam, n, m):
        for d in (1, 2, 4):
            assert run_protocol(
                DTreeProtocol(n, m, lam, d)
            ).schedule == dtree_schedule(n, m, lam, d)


class TestTraceIsAudited:
    """run_protocol's strict-mode audit actually exercises the validator:
    the realized schedules pass the full Definitions-1-2 check, and the
    machine's port busy logs agree with the schedule arithmetic."""

    def test_port_logs_match_schedule(self):
        lam = Fraction(5, 2)
        res = run_protocol(BcastProtocol(14, lam))
        sched = res.schedule
        for proc in range(14):
            port_sends = res.system.send_port(proc).busy_intervals
            sched_sends = sorted(
                (e.send_time, e.send_time + 1) for e in sched.sends_by(proc)
            )
            assert sorted(port_sends) == sched_sends
            port_recvs = res.system.recv_port(proc).busy_intervals
            sched_recvs = sorted(
                (e.arrival_time(lam) - 1, e.arrival_time(lam))
                for e in sched.receives_by(proc)
            )
            assert sorted(port_recvs) == sched_recvs
