"""Tests for the message-loss extension (lossy machine + reliable BCAST)."""

from fractions import Fraction

import pytest

from repro.core.bcast import bcast_tree
from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.extensions.faulty import (
    LossyPostalSystem,
    ReliableBcastProtocol,
    default_rto,
    run_reliable_bcast,
)
from repro.sim.engine import Environment

from tests.grids import LAMBDAS


class TestLossyMachine:
    def test_zero_loss_is_transparent(self):
        env = Environment()
        sys_ = LossyPostalSystem(env, 2, 2, loss=0.0)

        def prog():
            yield sys_.send(0, 1, 0)

        env.process(prog())
        env.run()
        assert sys_.dropped == 0
        assert len(sys_.tracer.records("deliver")) == 1

    def test_full_loss_rejected(self):
        with pytest.raises(InvalidParameterError):
            LossyPostalSystem(Environment(), 2, 2, loss=1.0)

    def test_drops_traced_and_counted(self):
        env = Environment()
        sys_ = LossyPostalSystem(env, 2, 2, loss=0.99, seed=1)

        def prog():
            for k in range(20):
                yield sys_.send(0, 1, k)

        env.process(prog())
        env.run()
        assert sys_.dropped > 10
        assert len(sys_.tracer.records("drop")) == sys_.dropped
        assert (
            len(sys_.tracer.records("deliver")) + sys_.dropped == 20
        )

    def test_seed_determinism(self):
        def run(seed):
            env = Environment()
            sys_ = LossyPostalSystem(env, 2, 2, loss=0.5, seed=seed)

            def prog():
                for k in range(30):
                    yield sys_.send(0, 1, k)

            env.process(prog())
            env.run()
            return sys_.dropped

        assert run(3) == run(3)
        # different seeds should (overwhelmingly) differ on 30 coin flips
        assert any(run(3) != run(s) for s in (4, 5, 6))


class TestReliableBcast:
    @pytest.mark.parametrize("lam", LAMBDAS[:5], ids=str)
    def test_lossless_within_f_plus_depth(self, lam):
        for n in (1, 2, 5, 14, 40):
            t, rtx, drops = run_reliable_bcast(n, lam, loss=0.0)
            assert rtx == 0 and drops == 0
            f = postal_f(lam, n)
            tree = bcast_tree(n, lam)
            depth = max(tree.depth_of(p) for p in range(n))
            assert f <= t <= f + depth, (n, lam, t, f)

    def test_everyone_informed_under_heavy_loss(self):
        t, rtx, drops = run_reliable_bcast(14, Fraction(5, 2), loss=0.5, seed=11)
        assert rtx > 0 and drops > 0
        assert t > postal_f(Fraction(5, 2), 14)

    def test_deterministic_replay(self):
        a = run_reliable_bcast(20, 3, loss=0.25, seed=7)
        b = run_reliable_bcast(20, 3, loss=0.25, seed=7)
        assert a == b

    def test_degradation_monotone_in_loss_roughly(self):
        # average over seeds: retransmissions grow with the loss rate
        def avg_rtx(loss):
            total = 0
            for seed in range(8):
                _, rtx, _ = run_reliable_bcast(14, 2, loss=loss, seed=seed)
                total += rtx
            return total / 8

        assert avg_rtx(0.05) < avg_rtx(0.4)

    def test_rto_must_exceed_lambda(self):
        with pytest.raises(InvalidParameterError):
            ReliableBcastProtocol(5, 4, rto=3)

    def test_default_rto(self):
        assert default_rto(Fraction(5, 2)) == 8  # 2*ceil(5/2) + 2

    def test_custom_rto_still_completes(self):
        t, _, _ = run_reliable_bcast(10, 2, loss=0.3, seed=5, rto=20)
        assert t >= postal_f(2, 10)


class TestDocumentedLossZeroClaim:
    """The module docstring claims: with ``loss = 0`` the completion time
    is at most ``f_lambda(n) + depth`` (one ACK unit per tree level).
    Pin it explicitly across the documented rational-lambda grid, for
    both the exact-engine protocol and its turbo-scale successor."""

    GRID = [Fraction(1), Fraction(2), Fraction(5, 2), Fraction(7, 3)]

    @pytest.mark.parametrize("lam", GRID, ids=str)
    @pytest.mark.parametrize("n", [2, 7, 14, 33, 60])
    def test_reliable_bcast_ceiling(self, n, lam):
        t, rtx, drops = run_reliable_bcast(n, lam, loss=0.0)
        assert rtx == 0 and drops == 0
        f = postal_f(lam, n)
        tree = bcast_tree(n, lam)
        depth = max(tree.depth_of(p) for p in range(n))
        assert f <= t <= f + depth, (n, lam, t, f, depth)

    @pytest.mark.parametrize("lam", GRID, ids=str)
    def test_resilient_turbo_meets_the_same_ceiling(self, lam):
        # the turbo-lane successor (repro.resilience) inherits the bound:
        # its fault-free certificate enforces T <= f_lambda(n) + depth
        from repro.resilience import run_resilient

        keep = []
        result = run_resilient(14, lam, keep=keep)
        _, protocol, _ = keep[0]
        f = postal_f(lam, 14)
        assert result.violations == ()
        assert f <= result.completion <= f + protocol.tree_depth

    def test_depth_is_the_exact_price_at_the_chain(self):
        # n=2 is a single edge: data at lambda, so t = lambda = f(2);
        # the ACK unit never delays the data wave itself
        for lam in self.GRID:
            t, _, _ = run_reliable_bcast(2, lam, loss=0.0)
            assert t == postal_f(lam, 2) == lam


class TestExternalRng:
    """Satellite (a): one externally owned seeded stream drives every
    loss draw — campaign-level determinism for the conformance fuzzer."""

    def test_external_rng_replays_identically(self):
        import random

        def run():
            return run_reliable_bcast(
                14, 2, loss=0.3, rng=random.Random(99)
            )

        assert run() == run()

    def test_external_rng_overrides_seed(self):
        import random

        # same rng, contradictory seeds: the rng wins
        a = run_reliable_bcast(10, 2, loss=0.3, seed=1, rng=random.Random(5))
        b = run_reliable_bcast(10, 2, loss=0.3, seed=2, rng=random.Random(5))
        assert a == b

    def test_one_stream_threads_through_consecutive_runs(self):
        import random

        # consuming the stream changes the next run: the draws really
        # come from the shared rng, not a hidden fresh one
        rng = random.Random(3)
        first = run_reliable_bcast(10, 2, loss=0.3, rng=rng)
        run_reliable_bcast(10, 2, loss=0.3, rng=rng)
        fresh = run_reliable_bcast(10, 2, loss=0.3, rng=random.Random(3))
        assert first == fresh
        # the shared stream really advanced across the two runs
        assert rng.getstate() != random.Random(3).getstate()
