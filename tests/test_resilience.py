"""Core tests for repro.resilience: fault plans, the faulty turbo
system, recovery, and the inequality certificates."""

from fractions import Fraction

import pytest

from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError, ModelError, TickDomainError
from repro.resilience import (
    FaultPlan,
    ResilientBcastProtocol,
    build_faulty_turbo,
    certify_resilient,
    run_resilient,
    survivor_bound,
)
from repro.resilience.turbofault import FaultyTurboSystem
from repro.turbo.fastsim import TurboEnvironment
from repro.turbo.ticks import TickDomain

pytestmark = pytest.mark.resilience


class TestFaultPlanCompile:
    def test_validates_loss_range(self):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(InvalidParameterError):
                FaultPlan.compile(4, 2, loss=bad)

    def test_validates_crash_range(self):
        for bad in (-0.1, 1.0):
            with pytest.raises(InvalidParameterError):
                FaultPlan.compile(4, 2, crash=bad)

    def test_root_cannot_crash_explicitly(self):
        with pytest.raises(InvalidParameterError, match="root"):
            FaultPlan.compile(4, 2, crashed=[0])

    def test_sampled_crash_set_excludes_root(self):
        for seed in range(30):
            plan = FaultPlan.compile(20, 2, crash=0.9, seed=seed)
            assert 0 not in plan.crashed
            assert plan.crashed_at(0) is None
            assert 0 in plan.survivors

    def test_crashed_processor_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.compile(4, 2, crashed=[4])

    def test_off_grid_jitter_is_loud(self):
        with pytest.raises(TickDomainError):
            FaultPlan.compile(4, 2, jitter="1/3")

    def test_on_grid_jitter_accepted(self):
        plan = FaultPlan.compile(4, "5/2", jitter="1/2")
        assert plan.jitter == Fraction(1, 2)
        assert plan.jitter_ticks == 1  # scale 2

    def test_negative_jitter_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.compile(4, 2, jitter=-1)

    def test_explicit_and_sampled_crashes_compose(self):
        sampled = FaultPlan.compile(20, 2, crash=0.3, seed=5).crashed
        plan = FaultPlan.compile(20, 2, crash=0.3, seed=5, crashed=[1])
        assert set(plan.crashed) == set(sampled) | {1}

    def test_survivors_partition(self):
        plan = FaultPlan.compile(10, 2, crash=0.4, seed=2)
        assert sorted(plan.crashed + plan.survivors) == list(range(10))
        assert plan.survivor_count == len(plan.survivors)

    def test_inactive_plan(self):
        plan = FaultPlan.compile(5, 2)
        assert not plan.active
        assert plan.crashed == ()
        assert FaultPlan.compile(5, 2, loss=0.1).active
        assert FaultPlan.compile(5, 2, crashed=[3]).active
        assert FaultPlan.compile(5, "5/2", jitter="1/2").active


class TestFaultPlanDraws:
    def test_draws_are_per_edge_deterministic(self):
        a = FaultPlan.compile(4, 2, loss=0.5, seed=9)
        b = FaultPlan.compile(4, 2, loss=0.5, seed=9)
        seq_a = [a.draw(0, 1) for _ in range(20)]
        seq_b = [b.draw(0, 1) for _ in range(20)]
        assert seq_a == seq_b

    def test_edges_have_independent_streams(self):
        # consuming edge (0, 1) must not shift edge (0, 2)
        a = FaultPlan.compile(4, 2, loss=0.5, seed=9)
        b = FaultPlan.compile(4, 2, loss=0.5, seed=9)
        for _ in range(50):
            a.draw(0, 1)
        assert [a.draw(0, 2) for _ in range(10)] == [
            b.draw(0, 2) for _ in range(10)
        ]

    def test_self_accounting(self):
        plan = FaultPlan.compile(4, "5/2", loss=0.5, jitter="1/2", seed=3)
        drops = jitter = 0
        for i in range(60):
            dropped, jt = plan.draw(i % 3, 3)
            drops += dropped
            jitter += jt
            assert jt in (0, 1)
        assert plan.draws == 60
        assert plan.drops_drawn == drops
        assert plan.jitter_ticks_drawn == jitter

    def test_fresh_resets_streams_and_counters(self):
        plan = FaultPlan.compile(8, 2, loss=0.4, crash=0.3, seed=1)
        first = [plan.draw(0, 1) for _ in range(10)]
        clone = plan.fresh()
        assert clone.draws == 0 and clone.drops_drawn == 0
        assert clone.crashed == plan.crashed  # same sampled crash set
        assert [clone.draw(0, 1) for _ in range(10)] == first


class TestFaultyTurboSystem:
    def test_plan_domain_must_match(self):
        # plan on a scale-2 grid, run on the default scale-1 grid
        fine = TickDomain.for_values([Fraction(5, 2)])
        plan = FaultPlan.compile(4, 2, domain=fine)
        env = TurboEnvironment(TickDomain())
        with pytest.raises(ModelError, match="scale"):
            FaultyTurboSystem(env, 4, 2, plan)

    def test_plan_n_must_match(self):
        plan = FaultPlan.compile(4, 2)
        env = TurboEnvironment(plan.domain)
        with pytest.raises(ModelError, match="n="):
            FaultyTurboSystem(env, 5, 2, plan)

    def test_loss_drop_traced_with_reason(self):
        plan = FaultPlan.compile(2, 2, loss=0.99, seed=1)
        system = build_faulty_turbo(plan)

        def prog():
            for k in range(20):
                yield system.send(0, 1, k)

        system.env.process(prog())
        system.env.run()
        assert system.dropped > 10
        tracer = system.flush_trace()
        drops = tracer.records("drop")
        assert len(drops) == system.dropped
        assert all(r.data["reason"] == "loss" for r in drops)
        assert len(tracer.records("deliver")) == 20 - system.dropped

    def test_crashed_receiver_drops_with_crash_reason(self):
        plan = FaultPlan.compile(3, 2, crashed=[2])
        system = build_faulty_turbo(plan)

        def prog():
            yield system.send(0, 1, 0)
            yield system.send(0, 2, 1)

        system.env.process(prog())
        system.env.run()
        assert system.crash_suppressed_deliveries == 1
        drops = system.flush_trace().records("drop")
        assert len(drops) == 1
        assert drops[0].data == {
            "src": 0, "dst": 2, "msg": 1, "reason": "crash",
        }
        # the dead receiver's port was never claimed
        assert system.recv_port(2).busy_intervals == []

    def test_crashed_sender_is_silent_but_drains(self):
        plan = FaultPlan.compile(3, 2, crashed=[1])
        system = build_faulty_turbo(plan)
        done = []

        def prog():
            yield system.send(1, 0, 0)
            done.append(system.env.now)

        system.env.process(prog())
        system.env.run()
        assert done, "suppressed send must still resume the generator"
        assert system.crash_suppressed_sends == 1
        assert system.send_count == 0  # nothing logged
        assert system.send_port(1).busy_intervals == []

    def test_retransmit_flag_on_repeated_triple(self):
        plan = FaultPlan.compile(2, 2)
        system = build_faulty_turbo(plan)

        def prog():
            yield system.send(0, 1, 7)
            yield system.send(0, 1, 7)  # same (src, dst, msg)
            yield system.send(0, 1, 8)  # fresh msg: not a retransmit

        system.env.process(prog())
        system.env.run()
        assert system.retransmissions == 1
        sends = system.flush_trace().records("send")
        assert [s.data.get("retransmit", False) for s in sends] == [
            False, True, False,
        ]

    def test_jitter_stretches_latency_on_grid(self):
        plan = FaultPlan.compile(2, 2, jitter=3, seed=0)
        system = build_faulty_turbo(plan)

        def prog():
            yield system.send(0, 1, 0)

        system.env.process(prog())
        system.env.run()
        (deliver,) = system.flush_trace().records("deliver")
        extra = deliver.data.arrived_at - deliver.data.sent_at - 2
        assert 0 <= extra <= 3
        assert extra == extra.__floor__()  # whole ticks at scale 1

    def test_realized_schedule_refused(self):
        plan = FaultPlan.compile(4, 2)
        system = build_faulty_turbo(plan)
        with pytest.raises(ModelError, match="certify"):
            system.realized_schedule()

    def test_crashed_at_surface(self):
        plan = FaultPlan.compile(4, 2, crashed=[2])
        system = build_faulty_turbo(plan)
        assert system.crashed_at(2) == 0
        assert system.crashed_at(1) is None


class TestRecovery:
    def test_fault_free_matches_reliable_bcast_shape(self):
        result = run_resilient(14, 2)
        f = postal_f(2, 14)
        assert result.certified
        assert f <= result.completion <= f + 4
        assert result.retransmissions == 0
        assert result.adoptions == ()

    def test_loss_recovery_informs_everyone(self):
        result = run_resilient(40, "5/2", loss=0.3, seed=2)
        assert result.certified
        assert result.survivors == 40
        assert result.loss_drops > 0
        assert result.retransmissions > 0

    def test_crash_recovery_timeout_detector(self):
        result = run_resilient(40, 2, crash=0.25, seed=4)
        assert result.certified
        assert result.survivors < 40
        assert result.declared_dead == result.crashed
        # every orphan whose parent died was adopted
        protocol = ResilientBcastProtocol(40, 2)
        orphans = {
            o
            for dead in result.crashed
            for o in protocol.tree.children_of(dead)
            if o not in result.crashed
        }
        adopted = {o for o, _ in result.adoptions if o not in result.crashed}
        assert orphans <= adopted

    def test_crash_recovery_perfect_detector(self):
        result = run_resilient(40, 2, crash=0.25, seed=4, detector="perfect")
        assert result.certified
        # perfect detection adopts at t=0: no RTO stalls, so completion
        # stays near the fault-free optimum instead of detector timeouts
        timeout = run_resilient(40, 2, crash=0.25, seed=4)
        assert result.completion < timeout.completion

    def test_multi_message_order_preserved(self):
        result = run_resilient(14, 2, m=4, loss=0.2, crash=0.2, seed=6)
        assert result.certified  # includes per-survivor order check

    def test_everything_at_once(self):
        result = run_resilient(
            60, "7/3", m=2, loss=0.15, crash=0.15, jitter="2/3", seed=11
        )
        assert result.certified
        assert result.loss_drops > 0 and result.crashed

    def test_mid_run_crash_tick_rejected(self):
        plan = FaultPlan.compile(5, 2)
        plan._crash_ticks[3] = 7  # not constructible via compile
        with pytest.raises(InvalidParameterError, match="initially dead"):
            run_resilient(5, 2, plan=plan)

    def test_detector_validation(self):
        with pytest.raises(InvalidParameterError):
            run_resilient(5, 2, detector="psychic")

    def test_rto_must_exceed_lambda(self):
        with pytest.raises(InvalidParameterError):
            run_resilient(5, 4, rto=3)

    def test_keep_hands_back_live_objects(self):
        keep = []
        result = run_resilient(10, 2, loss=0.1, seed=1, keep=keep)
        (system, protocol, plan), = keep
        assert system.plan is plan
        assert protocol.arrivals
        assert system.dropped == result.loss_drops


class TestCertificates:
    def test_survivor_bound_values(self):
        assert survivor_bound(2, 14) == postal_f(2, 14)
        assert survivor_bound(2, 14, m=3) == 2 + postal_f(2, 14)
        assert survivor_bound(2, 1) == 0
        assert survivor_bound(2, 0) == 0

    def test_certify_flags_missing_coverage(self):
        keep = []
        run_resilient(10, 2, seed=0, keep=keep)
        system, protocol, _ = keep[0]
        del protocol.arrivals[7]  # tamper: survivor 'loses' its message
        violations = certify_resilient(protocol, system)
        assert any("p7" in v and "missing" in v for v in violations)

    def test_certify_flags_order_violation(self):
        keep = []
        run_resilient(10, 2, m=2, seed=0, keep=keep)
        system, protocol, _ = keep[0]
        a = protocol.arrivals[5]
        a[0], a[1] = a[1], a[0]  # tamper: swap first-arrival order
        violations = certify_resilient(protocol, system)
        assert any("order" in v for v in violations)

    def test_certify_flags_accounting_drift(self):
        keep = []
        run_resilient(10, 2, loss=0.2, seed=3, keep=keep)
        system, protocol, _ = keep[0]
        system.plan.drops_drawn += 1  # tamper: phantom draw
        violations = certify_resilient(protocol, system)
        assert any("accounting" in v for v in violations)

    def test_clean_run_has_no_violations(self):
        keep = []
        result = run_resilient(21, "5/2", loss=0.1, crash=0.1, seed=8, keep=keep)
        system, protocol, _ = keep[0]
        assert certify_resilient(protocol, system) == ()
        assert result.violations == ()
        assert result.certified

    def test_bound_reduces_to_fault_free_floor_without_crashes(self):
        result = run_resilient(14, 2, loss=0.3, seed=5)
        assert result.bound == result.fault_free
        assert result.completion >= result.fault_free
