"""Tests for the collective operations (repro.collectives)."""

from fractions import Fraction

import pytest

from repro.collectives.allgather import AllgatherProtocol, allgather_time
from repro.collectives.barrier import BarrierProtocol, barrier_time
from repro.collectives.gossip import (
    GossipRingProtocol,
    gossip_lower_bound,
    gossip_ring_time,
)
from repro.collectives.reduce import (
    ReduceProtocol,
    ReductionSchedule,
    reduce_schedule,
    reduce_time,
)
from repro.collectives.scatter import ScatterProtocol, scatter_time
from repro.core.fibfunc import postal_f
from repro.core.schedule import SendEvent
from repro.errors import ScheduleError, SimultaneousIOError
from repro.postal import ContentionPolicy, run_protocol
from repro.types import Time

from tests.grids import LAMBDAS

NS = [1, 2, 3, 5, 14, 27]


class TestReduce:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS)
    def test_reversed_schedule_optimal(self, lam, n):
        rs = reduce_schedule(n, lam)  # validates
        assert rs.completion_time() == reduce_time(n, lam) == postal_f(lam, n)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS)
    def test_protocol_time_and_value(self, lam, n):
        proto = ReduceProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == reduce_time(n, lam)
        assert proto.result == sum(range(n))

    def test_custom_op_and_values(self):
        proto = ReduceProtocol(
            5, 2, op=max, values=[3, 1, 4, 1, 5]
        )
        run_protocol(proto)
        assert proto.result == 5

    def test_non_commutative_op_applies(self):
        # op need only be associative; order of fold is children order
        proto = ReduceProtocol(
            4, 1, op=lambda a, b: a + b, values=["a", "b", "c", "d"]
        )
        run_protocol(proto)
        assert sorted(proto.result) == ["a", "b", "c", "d"]

    def test_eager_collides_on_plateau(self):
        """lambda=5/2, n=3: the root has two leaf children; eager sends
        collide — exactly the subtlety the paced protocol avoids."""
        with pytest.raises(SimultaneousIOError):
            run_protocol(ReduceProtocol(3, Fraction(5, 2), eager=True))

    def test_eager_works_queued(self):
        proto = ReduceProtocol(3, Fraction(5, 2), eager=True)
        res = run_protocol(proto, policy=ContentionPolicy.QUEUED)
        assert proto.result == 3
        # queued eager is no faster than the paced optimum
        assert res.completion_time >= reduce_time(3, Fraction(5, 2))

    def test_values_length_checked(self):
        with pytest.raises(ValueError):
            ReduceProtocol(3, 2, values=[1])

    def test_reduction_schedule_validation(self):
        # a non-root processor that never sends is invalid
        with pytest.raises(ScheduleError):
            ReductionSchedule(3, 2, [SendEvent(Time(0), 1, 0, 0)])

    def test_reduction_premature_forward(self):
        # p1 forwards at t=0 but its own child p2 arrives at t=2
        events = [
            SendEvent(Time(0), 2, 0, 1),
            SendEvent(Time(0), 1, 0, 0),  # departs before p2's value lands
        ]
        with pytest.raises(ScheduleError):
            ReductionSchedule(3, 2, events)


class TestGossip:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9])
    def test_ring_time_and_completeness(self, lam, n):
        proto = GossipRingProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == gossip_ring_time(n, lam)
        assert all(proto.known[p] == set(range(n)) for p in range(n))

    def test_lower_bound_below_ring(self, lam):
        for n in (2, 5, 9):
            assert gossip_lower_bound(n, lam) <= gossip_ring_time(n, lam)

    def test_ring_far_from_optimal_at_high_lambda(self):
        # the open-problem gap: ring pays (n-1)*lambda vs ~f_lambda(n)
        n, lam = 16, 10
        assert gossip_ring_time(n, lam) > 3 * gossip_lower_bound(n, lam)


class TestScatter:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS)
    def test_time_and_delivery(self, lam, n):
        proto = ScatterProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == scatter_time(n, lam)
        assert proto.received == {i: i for i in range(n)}

    def test_custom_values(self):
        proto = ScatterProtocol(3, 2, values=["root", "x", "y"])
        run_protocol(proto)
        assert proto.received == {0: "root", 1: "x", 2: "y"}

    def test_scatter_cannot_be_beaten_by_relay(self):
        """The root must transmit n-1 distinct atomic messages itself, so
        no algorithm beats (n-2)+lambda; DTREE-style relaying of the same
        payload count only adds latency."""
        for lam in (1, Fraction(5, 2), 4):
            for n in (3, 8):
                assert scatter_time(n, lam) == (n - 2) + lam


class TestAllgather:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 14])
    def test_time_and_completeness(self, lam, n):
        proto = AllgatherProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == allgather_time(n, lam)
        for p in range(n):
            assert proto.known[p] == {k: k for k in range(n)}

    def test_rumor_values_survive(self):
        rumors = ["r0", "r1", "r2", "r3"]
        proto = AllgatherProtocol(4, 2, rumors=rumors)
        run_protocol(proto)
        assert proto.known[3] == dict(enumerate(rumors))

    def test_allgather_vs_ring_crossover(self):
        """At high lambda the tree-based allgather beats the ring; at
        lambda=1 with small n the ring can win."""
        assert allgather_time(16, 10) < gossip_ring_time(16, 10)


class TestBarrier:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS)
    def test_barrier_time(self, lam, n):
        proto = BarrierProtocol(n, lam)
        run_protocol(proto)
        assert max(proto.released.values()) == barrier_time(n, lam)

    def test_everyone_released_after_everyone_arrived(self):
        proto = BarrierProtocol(5, 2, arrivals=[0, 0, 7, 0, 0])
        run_protocol(proto)
        # nobody may be released before the late arrival reached the
        # barrier (plus the time for its token to reach the root and the
        # release to come back: at least lambda each way)
        assert min(proto.released.values()) >= 7 + 2 * 2

    def test_arrivals_length_checked(self):
        with pytest.raises(ValueError):
            BarrierProtocol(3, 2, arrivals=[0])
