"""Tests for the oracle registry (repro.conformance.oracles)."""

from fractions import Fraction

import pytest

from repro.conformance.oracles import (
    REGISTRY,
    Oracle,
    broadcast_families,
    collective_families,
    families,
    get_oracle,
    register,
)
from repro.core.analysis import (
    bcast_time,
    multi_lower_bound,
    pack_time,
    pipeline_time,
    repeat_time,
)
from repro.errors import InvalidParameterError

LAM = Fraction(5, 2)

EXPECTED_FAMILIES = {
    "BCAST",
    "REPEAT",
    "PACK",
    "PIPELINE-1",
    "PIPELINE-2",
    "DTREE-LINE",
    "DTREE-BINARY",
    "DTREE-LATENCY",
    "STAR",
    "BINOMIAL",
    "REDUCE",
    "SCATTER",
    "GATHER",
    "ALLTOALL",
    "ALLREDUCE",
    "BARRIER",
    "ALLGATHER",
    "BRUCK-ALLGATHER",
    "GOSSIP-RING",
}


class TestRegistry:
    def test_every_expected_family_is_registered(self):
        assert set(families()) == EXPECTED_FAMILIES

    def test_lookup_is_case_insensitive(self):
        assert get_oracle("bcast") is get_oracle("BCAST")
        assert get_oracle("pipeline-2").family == "PIPELINE-2"

    def test_unknown_family_raises_with_candidates(self):
        with pytest.raises(InvalidParameterError, match="BCAST"):
            get_oracle("NOPE")

    def test_duplicate_registration_rejected(self):
        clone = REGISTRY["BCAST"]
        with pytest.raises(InvalidParameterError):
            register(clone)

    def test_broadcast_collective_partition(self):
        bc, coll = set(broadcast_families()), set(collective_families())
        assert bc | coll == EXPECTED_FAMILIES
        assert not bc & coll
        assert "REDUCE" in coll and "REPEAT" in bc


class TestClosedForms:
    """The registered formulas are the analysis module's closed forms."""

    @pytest.mark.parametrize(
        "family,expected",
        [
            ("BCAST", lambda n, m, lam: bcast_time(n, lam)),
            ("REPEAT", repeat_time),
            ("PACK", pack_time),
            ("PIPELINE-2", pipeline_time),
        ],
    )
    def test_formula_matches_analysis(self, family, expected):
        oracle = get_oracle(family)
        n, m = 8, (1 if family == "BCAST" else 3)
        assert oracle.time(n, m, LAM) == expected(n, m, LAM)

    def test_lower_bound_is_lemma8_for_broadcast(self):
        oracle = get_oracle("REPEAT")
        assert oracle.lower_bound(8, 3, LAM) == multi_lower_bound(8, 3, LAM)

    def test_lower_bound_none_for_collectives(self):
        assert get_oracle("SCATTER").lower_bound(8, 1, LAM) is None

    def test_exact_formula_never_beats_lower_bound(self):
        for family in broadcast_families():
            oracle = get_oracle(family)
            for n in (2, 5, 9):
                for m in (1, 2, 4):
                    if not oracle.applicable(n, m, LAM):
                        continue
                    lb = oracle.lower_bound(n, m, LAM)
                    assert oracle.time(n, m, LAM) >= lb, (family, n, m)


class TestApplicability:
    def test_pipeline1_requires_m_le_lambda(self):
        oracle = get_oracle("PIPELINE-1")
        oracle.check_applicable(6, 2, LAM)  # 2 <= 5/2
        with pytest.raises(InvalidParameterError, match="not applicable"):
            oracle.check_applicable(6, 3, LAM)

    def test_pipeline2_requires_m_ge_lambda(self):
        oracle = get_oracle("PIPELINE-2")
        oracle.check_applicable(6, 3, LAM)
        with pytest.raises(InvalidParameterError):
            oracle.check_applicable(6, 2, LAM)

    def test_single_message_families(self):
        for family in ("BCAST", "BINOMIAL", "REDUCE", "BARRIER"):
            with pytest.raises(InvalidParameterError):
                get_oracle(family).check_applicable(6, 2, LAM)

    def test_dtree_latency_degree_not_clamped(self):
        oracle = get_oracle("DTREE-LATENCY")
        # degree ceil(5/2)+1 = 4 needs n >= 5
        oracle.check_applicable(5, 2, LAM)
        with pytest.raises(InvalidParameterError):
            oracle.check_applicable(4, 2, LAM)

    def test_oracle_is_frozen(self):
        with pytest.raises(AttributeError):
            get_oracle("BCAST").exact = False  # type: ignore[misc]

    def test_every_oracle_has_citation_and_protocol(self):
        for family in families():
            oracle = get_oracle(family)
            assert isinstance(oracle, Oracle)
            assert oracle.citation
            assert callable(oracle.protocol)
            if oracle.semantics == "broadcast":
                assert oracle.schedule is not None
