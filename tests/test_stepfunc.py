"""Tests for step-function calculus (Claims 1 and 2)."""

from fractions import Fraction

import pytest

from repro.core.stepfunc import (
    TabulatedStepFunction,
    claim1_holds,
    claim2_holds,
)
from repro.errors import InvalidParameterError


def tf(pairs, **kw):
    times, values = zip(*pairs)
    return TabulatedStepFunction(times, values, **kw)


class TestTabulated:
    def test_basic_eval(self):
        g = tf([(0, 1), (2, 3), (5, 7)])
        assert g(0) == 1
        assert g(Fraction(3, 2)) == 1
        assert g(2) == 3  # right-continuous: value jumps AT the point
        assert g(Fraction(9, 2)) == 3
        assert g(5) == 7

    def test_index_basic(self):
        g = tf([(0, 1), (2, 3), (5, 7)])
        assert g.index(1) == 0
        assert g.index(2) == 2
        assert g.index(3) == 2
        assert g.index(4) == 5
        assert g.index(7) == 5

    def test_index_out_of_range(self):
        g = tf([(0, 1), (2, 3)])
        with pytest.raises(InvalidParameterError):
            g.index(4)
        with pytest.raises(InvalidParameterError):
            g.index(0)

    def test_eval_beyond_horizon(self):
        g = tf([(0, 1), (2, 3)])
        with pytest.raises(InvalidParameterError):
            g.value_at(Fraction(10))

    def test_final_extends(self):
        g = tf([(0, 1), (2, 3)], final=True)
        assert g(1000) == 3

    def test_negative_time_rejected(self):
        g = tf([(0, 1)], final=True)
        with pytest.raises(InvalidParameterError):
            g(-1)

    def test_must_start_at_zero(self):
        with pytest.raises(InvalidParameterError):
            tf([(1, 1)])

    def test_times_strictly_increasing(self):
        with pytest.raises(InvalidParameterError):
            tf([(0, 1), (0, 2)])

    def test_values_nondecreasing(self):
        with pytest.raises(InvalidParameterError):
            tf([(0, 2), (1, 1)])

    def test_values_positive(self):
        with pytest.raises(InvalidParameterError):
            tf([(0, 0)])

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            TabulatedStepFunction([0, 1], [1])

    def test_horizon_accessor(self):
        g = tf([(0, 1), (2, 3)], horizon=10)
        assert g.horizon == 10
        assert g(9) == 3

    def test_horizon_before_last_jump_rejected(self):
        with pytest.raises(InvalidParameterError):
            tf([(0, 1), (5, 2)], horizon=3)

    def test_jumps_iteration(self):
        g = tf([(0, 1), (2, 3), (5, 7)])
        assert list(g.jumps(5)) == [
            (Fraction(0), 1),
            (Fraction(2), 3),
            (Fraction(5), 7),
        ]

    def test_equality(self):
        assert tf([(0, 1), (2, 3)]) == tf([(0, 1), (2, 3)])
        assert tf([(0, 1)]) != tf([(0, 2)])


class TestClaims:
    def test_claim1_on_floor_function(self):
        # G(t) = floor(t) + 1 has index I(n) = n - 1
        g = tf([(i, i + 1) for i in range(50)], final=True)
        assert claim1_holds(
            g,
            times=[0, Fraction(1, 2), 3, Fraction(29, 2), 40],
            ns=range(1, 40),
        )

    def test_claim1_detects_bad_index(self):
        class Bad(TabulatedStepFunction):
            def index(self, n):
                return super().index(n) + 1  # violates part (2)/(4)

        g = Bad([0, 2, 5], [1, 3, 7], final=True)
        assert not claim1_holds(g, times=[0, 2, 5], ns=[1, 2, 3])

    def test_claim2_dominance(self):
        g = tf([(0, 1), (3, 2)], final=True)  # slower grower
        h = tf([(0, 1), (1, 2), (2, 4)], final=True)  # faster grower
        assert claim2_holds(g, h, times=[0, 1, 2, 3, 10], ns=[1, 2])

    def test_claim2_precondition_enforced(self):
        g = tf([(0, 5)], final=True)
        h = tf([(0, 1)], final=True)
        with pytest.raises(InvalidParameterError):
            claim2_holds(g, h, times=[0], ns=[1])
