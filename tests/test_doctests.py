"""Execute every doctest embedded in the library's docstrings *and* in
the documentation pages (docs/*.md, README.md).

The docs pages embed ``>>>`` examples in their fenced code blocks;
running them here is what keeps the documentation from drifting away
from the code silently.
"""

import doctest
import pathlib

import pytest

import repro.mpi.comm
import repro.types

MODULES = [repro.mpi.comm, repro.types]

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_PAGES = sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md"]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    # modules without examples are fine; examples that exist must pass
    assert result.failed == 0


@pytest.mark.parametrize(
    "page", DOC_PAGES, ids=lambda p: str(p.relative_to(ROOT))
)
def test_docs_page_doctests(page):
    """Run the ``>>>`` examples embedded in one documentation page."""
    text = page.read_text()
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        text, globs={}, name=page.name, filename=str(page), lineno=0
    )
    runner = doctest.DocTestRunner(verbose=False)
    runner.run(test)
    # pages without examples are fine; examples that exist must pass
    assert runner.failures == 0, f"doctest failures in {page}"
    # ... and must actually run: a SKIP directive (or an example the
    # parser collected but the runner never tried) would let a stale
    # example rot invisibly.
    assert runner.tries == len(test.examples), (
        f"{page}: {len(test.examples) - runner.tries} doctest example(s) "
        "were skipped — remove the SKIP directive or fix the example"
    )


def test_observability_page_has_examples():
    """The observability page's examples are load-bearing (they pin the
    metric values); make sure they are actually being collected."""
    text = (ROOT / "docs" / "observability.md").read_text()
    parser = doctest.DocTestParser()
    examples = parser.get_examples(text)
    assert len(examples) >= 10
