"""Execute every doctest embedded in the library's docstrings."""

import doctest

import pytest

import repro.mpi.comm
import repro.types

MODULES = [repro.mpi.comm, repro.types]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    # modules without examples are fine; examples that exist must pass
    assert result.failed == 0
