"""Tests for order-preservation checking."""

from fractions import Fraction

import pytest

from repro.core.orderpres import (
    arrival_sequences,
    check_order_preserving,
    is_order_preserving,
)
from repro.core.schedule import Schedule, SendEvent
from repro.errors import OrderViolationError
from repro.types import Time


def ev(t, src, dst, msg=0):
    return SendEvent(Time(t) if not isinstance(t, Fraction) else t, src, msg, dst)


class TestOrderPreservation:
    def test_in_order(self):
        s = Schedule(
            2, 2, [ev(0, 0, 1, msg=0), ev(1, 0, 1, msg=1)], m=2
        )
        assert is_order_preserving(s)
        check_order_preserving(s)  # no raise

    def test_out_of_order_detected(self):
        s = Schedule(
            2, 2, [ev(0, 0, 1, msg=1), ev(1, 0, 1, msg=0)], m=2
        )
        assert not is_order_preserving(s)
        with pytest.raises(OrderViolationError):
            check_order_preserving(s)

    def test_single_message_trivially_ordered(self):
        s = Schedule(2, 2, [ev(0, 0, 1)])
        assert is_order_preserving(s)

    def test_sequences_sorted_by_msg(self):
        s = Schedule(
            2, 2, [ev(0, 0, 1, msg=0), ev(1, 0, 1, msg=1)], m=2
        )
        seqs = arrival_sequences(s)
        assert list(seqs.keys()) == [1]
        assert [msg for _, msg in seqs[1]] == [0, 1]

    def test_root_excluded(self):
        s = Schedule(2, 2, [ev(0, 0, 1)])
        assert 0 not in arrival_sequences(s)

    def test_violation_message_contents(self):
        s = Schedule(
            2, 2, [ev(0, 0, 1, msg=1), ev(1, 0, 1, msg=0)], m=2
        )
        with pytest.raises(OrderViolationError, match="p1 receives M2"):
            check_order_preserving(s)

    def test_all_paper_algorithms_preserve_order(self):
        """Blanket check over every multi-message family (the paper's
        headline property: 'all the algorithms described are practical
        event-driven algorithms that preserve the order of messages')."""
        from repro.core.dtree import dtree_schedule
        from repro.core.multi import (
            pack_schedule,
            pipeline_schedule,
            repeat_schedule,
        )

        lam = Fraction(7, 3)
        for n in (2, 9, 20):
            for m in (2, 5):
                assert is_order_preserving(repeat_schedule(n, m, lam, validate=False))
                assert is_order_preserving(pack_schedule(n, m, lam, validate=False))
                assert is_order_preserving(pipeline_schedule(n, m, lam, validate=False))
                for d in (1, 2, 4):
                    assert is_order_preserving(
                        dtree_schedule(n, m, lam, d, validate=False)
                    )
