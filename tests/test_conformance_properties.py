"""Hypothesis property tests: the observability metrics and the realized
runs agree with the oracle closed forms on randomly drawn applicable
grid points (satellite of the conformance subsystem).

The quick versions run in tier-1; the ``slow``-marked sweeps widen the
grids for the nightly job (``pytest -m slow``).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.conformance import certify_config, ConformanceConfig, get_oracle
from repro.postal.runner import run_protocol
from tests.grids import family_params

QUICK = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
DEEP = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The exact multi-message algorithms of Section 4 — the paper's core.
CORE_FAMILIES = ("BCAST", "REPEAT", "PACK", "PIPELINE-1", "PIPELINE-2")


def _metrics_agree_with_oracle(family, params):
    n, m, lam = params
    oracle = get_oracle(family)
    predicted = oracle.time(n, m, lam)
    result = run_protocol(oracle.protocol(n, m, lam))
    metrics = result.metrics
    assert metrics is not None

    # makespan: the metric, the runner, and the closed form all agree
    assert result.completion_time == predicted
    assert metrics.makespan == predicted

    # a broadcast delivers each of the m messages to each non-root
    # processor exactly once; sends mirror deliveries one to one
    assert metrics.total_deliveries == (n - 1) * m
    assert metrics.total_sends == (n - 1) * m
    assert metrics.receives[0] == 0  # the root receives nothing

    # uniform latency: the histogram has a single bucket at lambda
    assert [latency for latency, _ in metrics.latency_histogram] == [lam]

    # the Lemma 8 lower bound holds for the realized run too
    lb = oracle.lower_bound(n, m, lam)
    assert predicted >= lb


class TestMetricsVsOracle:
    @pytest.mark.parametrize("family", CORE_FAMILIES)
    def test_quick(self, family):
        @QUICK
        @given(family_params(family, max_n=12, max_m=4))
        def run(params):
            _metrics_agree_with_oracle(family, params)

        run()

    @pytest.mark.slow
    @pytest.mark.parametrize("family", CORE_FAMILIES)
    def test_deep(self, family):
        @DEEP
        @given(family_params(family, max_n=34, max_m=7))
        def run(params):
            _metrics_agree_with_oracle(family, params)

        run()


class TestCertifierProperty:
    """certify_config never reports a violation on an applicable point —
    over a wider, randomly drawn grid than the example-based tests."""

    @pytest.mark.parametrize(
        "family", ("REPEAT", "PACK", "DTREE-BINARY", "STAR")
    )
    def test_quick(self, family):
        @QUICK
        @given(family_params(family, max_n=10, max_m=3))
        def run(params):
            n, m, lam = params
            cfg = ConformanceConfig(family, n, m, str(lam), policy="both")
            result = certify_config(cfg)
            assert result.ok, result.violations

        run()

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "family",
        (
            "BCAST",
            "REPEAT",
            "PACK",
            "PIPELINE-1",
            "PIPELINE-2",
            "DTREE-LINE",
            "DTREE-BINARY",
            "DTREE-LATENCY",
            "STAR",
            "BINOMIAL",
        ),
    )
    def test_deep(self, family):
        @DEEP
        @given(family_params(family, max_n=26, max_m=5))
        def run(params):
            n, m, lam = params
            cfg = ConformanceConfig(family, n, m, str(lam), policy="both")
            result = certify_config(cfg)
            assert result.ok, result.violations

        run()
