"""Tests for the personalized collectives (gather, alltoall) and
allreduce."""

from fractions import Fraction

import pytest

from repro.collectives.allreduce import (
    AllreduceProtocol,
    allreduce_lower_bound,
    allreduce_time,
)
from repro.collectives.alltoall import (
    AllToAllProtocol,
    alltoall_schedule,
    alltoall_time,
)
from repro.collectives.gather import GatherProtocol, gather_schedule, gather_time
from repro.collectives.scatter import scatter_time
from repro.core.fibfunc import postal_f
from repro.core.schedule import check_intervals_disjoint
from repro.postal import run_protocol

from tests.grids import LAMBDAS

NS = [1, 2, 3, 5, 9, 14]


class TestGather:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS)
    def test_time_and_contents(self, lam, n):
        proto = GatherProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == gather_time(n, lam)
        assert proto.collected == {i: i for i in range(n)}

    def test_custom_values(self):
        proto = GatherProtocol(3, 2, values=["a", "b", "c"])
        run_protocol(proto)
        assert proto.collected == {0: "a", 1: "b", 2: "c"}

    def test_mirror_of_scatter(self, lam):
        for n in (2, 8, 14):
            assert gather_time(n, lam) == scatter_time(n, lam)

    def test_schedule_root_port_serializes(self):
        lam = Fraction(5, 2)
        events = gather_schedule(9, lam)
        windows = [
            (e.arrival_time(lam) - 1, e.arrival_time(lam)) for e in events
        ]
        assert check_intervals_disjoint(windows) is None
        # back to back: no idle gap at the root either
        arrivals = sorted(e.arrival_time(lam) for e in events)
        assert all(b - a == 1 for a, b in zip(arrivals, arrivals[1:]))

    def test_values_length_checked(self):
        with pytest.raises(ValueError):
            GatherProtocol(3, 2, values=[1])


class TestAllToAll:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS)
    def test_time_and_transpose(self, lam, n):
        proto = AllToAllProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == alltoall_time(n, lam)
        for j in range(n):
            expected = {i: f"{i}->{j}" for i in range(n) if i != j}
            expected[j] = f"{j}->{j}"
            assert proto.received[j] == expected

    def test_rotation_schedule_is_permutation_rounds(self):
        n = 7
        events = alltoall_schedule(n, 2)
        by_round: dict[int, list] = {}
        for e in events:
            by_round.setdefault(int(e.send_time), []).append(e)
        for r, evs in by_round.items():
            senders = [e.sender for e in evs]
            receivers = [e.receiver for e in evs]
            assert sorted(senders) == list(range(n))
            assert sorted(receivers) == list(range(n))
            assert all(e.sender != e.receiver for e in evs)

    def test_send_count(self):
        proto = AllToAllProtocol(6, 2)
        res = run_protocol(proto)
        assert res.sends == 6 * 5

    def test_matrix_shape_checked(self):
        with pytest.raises(ValueError):
            AllToAllProtocol(3, 2, values=[[1, 2, 3]])

    def test_optimality_argument(self, lam):
        # each port must move n-1 units: the rotation meets the port bound
        for n in (2, 8):
            assert alltoall_time(n, lam) == (n - 2) + lam


class TestAllreduce:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", [2, 3, 5, 9, 14])
    def test_time_and_result(self, lam, n):
        proto = AllreduceProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == allreduce_time(n, lam) == 2 * postal_f(lam, n)
        assert all(v == sum(range(n)) for v in proto.results.values())
        assert len(proto.results) == n

    def test_single_processor(self):
        proto = AllreduceProtocol(1, 2, values=[42])
        run_protocol(proto)
        assert proto.results == {0: 42}

    def test_custom_op(self):
        proto = AllreduceProtocol(6, 2, op=max, values=[3, 9, 1, 7, 2, 5])
        run_protocol(proto)
        assert all(v == 9 for v in proto.results.values())

    def test_lower_bound_relation(self, lam):
        for n in (2, 8, 14):
            lb = allreduce_lower_bound(n, lam)
            t = allreduce_time(n, lam)
            assert lb <= t <= 2 * lb  # within factor 2 of the combine LB

    def test_values_length_checked(self):
        with pytest.raises(ValueError):
            AllreduceProtocol(3, 2, values=[1])


class TestSimCommIntegration:
    def test_new_collectives_via_facade(self):
        from repro.mpi import SimComm

        comm = SimComm(6, Fraction(5, 2))
        out = comm.gather(list("abcdef"))
        assert out.values == list("abcdef")
        assert out.time == gather_time(6, Fraction(5, 2))

        matrix = [[f"{i}{j}" for j in range(6)] for i in range(6)]
        out = comm.alltoall(matrix)
        assert out.values[2][4] == "42"  # rank 4's message for rank 2
        assert out.time == alltoall_time(6, Fraction(5, 2))

        out = comm.allreduce([1, 2, 3, 4, 5, 6])
        assert out.values == [21] * 6
        assert out.time == allreduce_time(6, Fraction(5, 2))
