"""Tests for the observability metrics layer (repro.obs.metrics).

Covers: exact-Fraction metric values against closed forms, determinism of
repeated runs, the consume/drop trace kinds, collector lifecycle, and the
docs <-> code schema-sync contract (every kind in TRACE_KINDS is both
documented in docs/observability.md and exercised by a run).
"""

import pathlib
from fractions import Fraction

import pytest

from repro.algorithms.bcast_protocol import BcastProtocol
from repro.algorithms.pack_protocol import PackProtocol
from repro.algorithms.pipeline_protocol import PipelineProtocol
from repro.algorithms.repeat_protocol import RepeatProtocol
from repro.core.analysis import bcast_time, pipeline_time
from repro.extensions.faulty import LossyPostalSystem
from repro.obs import MetricsCollector, collect_metrics
from repro.postal.runner import run_protocol
from repro.sim.engine import Environment
from repro.sim.trace import TRACE_KINDS, Tracer
from repro.types import Time

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


class TestRunMetricsValues:
    def test_bcast_makespan_is_theorem_6(self):
        result = run_protocol(BcastProtocol(14, "5/2"))
        metrics = result.metrics
        assert metrics is not None
        assert metrics.makespan == bcast_time(14, "5/2") == Fraction(15, 2)
        assert metrics.total_sends == 13  # one send per non-root processor
        assert metrics.total_deliveries == 13

    def test_pipeline_closed_form_and_histogram(self):
        result = run_protocol(PipelineProtocol(14, 4, "5/2"))
        metrics = result.metrics
        assert metrics.makespan == pipeline_time(14, 4, "5/2")
        # strict policy, uniform latency: exactly one histogram bucket at lam
        assert metrics.latency_histogram == (
            (Fraction(5, 2), metrics.total_deliveries),
        )
        assert metrics.min_latency == metrics.max_latency == Fraction(5, 2)
        assert metrics.mean_latency == Fraction(5, 2)

    def test_busy_time_equals_event_count(self):
        metrics = run_protocol(PipelineProtocol(8, 2, 2)).metrics
        for p in range(metrics.n):
            assert metrics.send_busy[p] == Time(metrics.sends[p])
            assert metrics.recv_busy[p] == Time(metrics.receives[p])

    def test_utilization_bounded_by_one(self):
        metrics = run_protocol(RepeatProtocol(13, 3, 2)).metrics
        for p in range(metrics.n):
            assert 0 <= metrics.send_utilization[p] <= 1
            assert 0 <= metrics.recv_utilization[p] <= 1

    def test_root_sends_receives_nothing(self):
        metrics = run_protocol(BcastProtocol(21, 2)).metrics
        assert metrics.receives[0] == 0
        assert metrics.sends[0] > 0
        assert metrics.busiest_sender() == 0

    def test_conservation_under_strict(self):
        metrics = run_protocol(PackProtocol(13, 3, "5/2")).metrics
        # lossless machine: every send is delivered
        assert metrics.total_deliveries == metrics.total_sends
        assert metrics.total_drops == 0

    def test_inbox_accounting(self):
        metrics = run_protocol(PipelineProtocol(8, 3, 2)).metrics
        for p in range(metrics.n):
            assert metrics.inbox_high_water[p] >= metrics.inbox_residual[p]
            assert metrics.inbox_high_water[p] <= metrics.receives[p]
        # residual = delivered but never consumed
        assert sum(metrics.inbox_residual) == (
            metrics.total_deliveries - metrics.total_consumed
        )

    def test_to_dict_is_json_safe(self):
        import json

        metrics = run_protocol(BcastProtocol(5, "3/2")).metrics
        text = json.dumps(metrics.to_dict())
        data = json.loads(text)
        assert data["n"] == 5
        assert data["makespan"] == str(metrics.makespan)

    def test_str(self):
        metrics = run_protocol(BcastProtocol(5, 2)).metrics
        assert "n=5" in str(metrics) and "lambda=2" in str(metrics)


class TestDeterminism:
    @pytest.mark.parametrize(
        "proto",
        [
            lambda: BcastProtocol(14, "5/2"),
            lambda: PipelineProtocol(14, 4, "5/2"),
            lambda: RepeatProtocol(8, 3, 2),
        ],
        ids=["bcast", "pipeline", "repeat"],
    )
    def test_repeated_runs_equal(self, proto):
        a = run_protocol(proto()).metrics
        b = run_protocol(proto()).metrics
        assert a == b  # RunMetrics is a frozen dataclass: field equality

    def test_post_hoc_replay_matches_live(self):
        result = run_protocol(PipelineProtocol(14, 4, "5/2"))
        replayed = collect_metrics(result.system)
        assert replayed == result.metrics

    def test_collect_false_skips(self):
        result = run_protocol(BcastProtocol(5, 2), collect=False)
        assert result.metrics is None


class TestCollectorLifecycle:
    def test_double_attach_rejected(self):
        collector = MetricsCollector()
        collector.attach(Tracer())
        with pytest.raises(ValueError):
            collector.attach(Tracer())

    def test_detach_without_attach_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().detach()

    def test_attach_replay_folds_existing_records(self):
        tracer = Tracer()
        tracer.emit(Time(0), "send", {"src": 0, "dst": 1, "msg": 0})
        collector = MetricsCollector().attach(tracer)
        metrics = collector.finalize(n=2)
        assert metrics.total_sends == 1
        assert collector.attached
        collector.detach()
        assert not collector.attached

    def test_attach_no_replay(self):
        tracer = Tracer()
        tracer.emit(Time(0), "send", {"src": 0, "dst": 1, "msg": 0})
        collector = MetricsCollector()
        collector.attach(tracer, replay=False)
        assert collector.finalize(n=2).total_sends == 0

    def test_unknown_kind_ignored(self):
        collector = MetricsCollector()
        collector.on_record(
            Tracer().emit(Time(1), "future-extension", {"x": 1})
        )
        assert collector.finalize(n=1).total_sends == 0

    def test_reset_zeroes_counters(self):
        tracer = Tracer()
        collector = MetricsCollector().attach(tracer)
        tracer.emit(Time(0), "send", {"src": 0, "dst": 1, "msg": 0})
        collector.reset()
        assert collector.finalize(n=2).total_sends == 0


class TestTraceKinds:
    """Every documented kind is emitted by a real run."""

    def test_consume_records_emitted(self):
        result = run_protocol(PipelineProtocol(8, 2, 2))
        consumes = result.system.tracer.records("consume")
        assert consumes, "protocol runs must emit consume records"
        for rec in consumes:
            assert set(rec.data) == {"proc", "msg", "src", "waited"}
            assert rec.data["waited"] >= 0

    def test_consume_counted(self):
        metrics = run_protocol(PipelineProtocol(8, 2, 2)).metrics
        assert metrics.total_consumed > 0
        assert metrics.max_inbox_wait is not None
        assert metrics.max_inbox_wait >= 0

    def test_drop_records_counted(self):
        env = Environment()
        system = LossyPostalSystem(env, 2, 2, loss=0.99, seed=7)

        def prog():
            for k in range(30):
                yield system.send(0, 1, k)

        env.process(prog())
        env.run()
        metrics = collect_metrics(system)
        assert metrics.total_drops == system.dropped > 0
        assert metrics.total_deliveries == 30 - metrics.total_drops

    def test_all_kinds_exercised(self):
        seen = set()
        result = run_protocol(PipelineProtocol(8, 2, 2))
        seen.update(r.kind for r in result.system.tracer)
        env = Environment()
        lossy = LossyPostalSystem(env, 2, 2, loss=0.99, seed=7)

        def prog():
            for k in range(30):
                yield lossy.send(0, 1, k)

        env.process(prog())
        env.run()
        seen.update(r.kind for r in lossy.tracer)
        assert seen == set(TRACE_KINDS)

    def test_docs_schema_in_sync(self):
        """docs/observability.md documents exactly the kinds in
        TRACE_KINDS (the satellite's doc <-> code sync contract)."""
        text = (DOCS / "observability.md").read_text()
        for kind in TRACE_KINDS:
            assert f"| `{kind}` |" in text, (
                f"trace kind {kind!r} missing from the schema table in "
                "docs/observability.md"
            )
