"""Tests for the command-line interface (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestFib:
    def test_both_values(self, capsys):
        code, out = run_cli(capsys, "fib", "--lam", "5/2", "--t", "7.5", "--n", "14")
        assert code == 0
        assert "F_2.5(7.5) = 14" in out
        assert "f_2.5(14) = 7.5" in out

    def test_requires_t_or_n(self, capsys):
        with pytest.raises(SystemExit):
            main(["fib", "--lam", "2"])


class TestTree:
    def test_ascii(self, capsys):
        code, out = run_cli(capsys, "tree", "--n", "14", "--lam", "5/2")
        assert code == 0
        assert "p9 @ 2.5" in out
        assert "height (completion time): 7.5" in out

    def test_json(self, capsys):
        code, out = run_cli(capsys, "tree", "--n", "14", "--lam", "5/2", "--json")
        data = json.loads(out)
        assert data["format"] == "repro.tree.v1"
        assert data["nodes"]["0"]["children"][0] == 9


class TestGantt:
    def test_bcast(self, capsys):
        code, out = run_cli(capsys, "gantt", "--n", "5", "--lam", "2")
        assert code == 0
        assert "S" in out and "R" in out
        assert "completion:" in out

    def test_multi_algorithm(self, capsys):
        code, out = run_cli(
            capsys, "gantt", "--n", "5", "--lam", "2", "--m", "3",
            "--algorithm", "pipeline",
        )
        assert code == 0


class TestSimulate:
    def test_bcast(self, capsys):
        code, out = run_cli(capsys, "simulate", "--n", "14", "--lam", "5/2")
        assert code == 0
        assert "completion: 7.5" in out
        assert "sends     : 13" in out
        assert "ratio 1.000" in out

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "sched.json"
        code, out = run_cli(
            capsys, "simulate", "--n", "8", "--lam", "2",
            "--export", str(target),
        )
        assert code == 0
        from repro.core.serialize import loads_schedule

        sched = loads_schedule(target.read_text())
        assert sched.n == 8

    def test_all_algorithms(self, capsys):
        for algo in ("repeat", "pack", "pipeline", "dtree-2", "star"):
            code, out = run_cli(
                capsys, "simulate", "--n", "6", "--lam", "2", "--m", "2",
                "--algorithm", algo,
            )
            assert code == 0, algo

    def test_binomial(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--n", "8", "--lam", "2",
            "--algorithm", "binomial",
        )
        assert code == 0

    def test_unknown_algorithm(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--n", "4", "--lam", "2", "--algorithm", "magic"])


class TestCompare:
    def test_table_and_winner(self, capsys):
        code, out = run_cli(capsys, "compare", "--n", "14", "--lam", "5/2", "--m", "4")
        assert code == 0
        for name in ("REPEAT", "PACK", "PIPELINE", "DTREE-LINE"):
            assert name in out
        assert "winner:" in out
        assert "lower bound" in out


class TestBounds:
    def test_both(self, capsys):
        code, out = run_cli(
            capsys, "bounds", "--lam", "5/2", "--t", "10", "--n", "100"
        )
        assert code == 0
        assert "Theorem 7(1)" in out and "Theorem 7(2)" in out

    def test_requires_t_or_n(self):
        with pytest.raises(SystemExit):
            main(["bounds", "--lam", "2"])


class TestCollectives:
    def test_table(self, capsys):
        code, out = run_cli(capsys, "collectives", "--n", "14", "--lam", "5/2")
        assert code == 0
        for word in ("broadcast", "reduce", "scatter", "gather", "alltoall",
                     "allreduce", "barrier"):
            assert word in out


class TestReliable:
    def test_lossless(self, capsys):
        code, out = run_cli(
            capsys, "reliable", "--n", "8", "--lam", "2", "--loss", "0",
        )
        assert code == 0
        assert "drops       : 0" in out
        assert "retransmits : 0" in out

    def test_lossy_deterministic(self, capsys):
        _, out1 = run_cli(
            capsys, "reliable", "--n", "12", "--lam", "5/2",
            "--loss", "0.3", "--seed", "5",
        )
        _, out2 = run_cli(
            capsys, "reliable", "--n", "12", "--lam", "5/2",
            "--loss", "0.3", "--seed", "5",
        )
        assert out1 == out2
        assert "retransmits" in out1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fib", "--lam", "2", "--n", "8"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "f_2(8) = 5" in proc.stdout


class TestTrace:
    def test_bcast_defaults(self, capsys):
        code, out = run_cli(capsys, "trace", "-n", "14", "--lam", "5/2")
        assert code == 0
        assert "algorithm : BCAST" in out
        assert "completion: 7.5" in out
        assert "critical path:" in out and "tight to t=0" in out
        assert "matches the exact formula" in out

    def test_acceptance_command(self, capsys, tmp_path):
        """The issue's acceptance check: pipeline n=64 m=8 lam=3 with
        --chrome and --summary yields a Perfetto-loadable JSON, the
        utilization table, and a critical path equal to Lemma 14/16."""
        from repro.core.analysis import pipeline_time
        from repro.types import time_repr

        chrome = tmp_path / "out.json"
        code, out = run_cli(
            capsys, "trace", "--algorithm", "pipeline", "-n", "64",
            "-m", "8", "--lam", "3", "--chrome", str(chrome), "--summary",
        )
        assert code == 0
        expected = pipeline_time(64, 8, 3)
        assert f"completion: {time_repr(expected)}" in out
        assert f"length {time_repr(expected)}" in out
        assert "matches the exact formula" in out
        assert "per-port utilization" in out
        assert "inbox hwm" in out  # the table header
        assert "latency histogram" in out
        doc = json.loads(chrome.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert events
        last = -1.0
        for event in events:
            assert event["ts"] >= 0.0 and event["ts"] >= last
            last = event["ts"]

    def test_critical_path_listing(self, capsys):
        code, out = run_cli(
            capsys, "trace", "-n", "8", "--lam", "2", "-m", "2",
            "--algorithm", "pipeline", "--critical-path",
        )
        assert code == 0
        assert "tight back to t=0" in out
        assert "-->" in out

    def test_pack_reports_slack(self, capsys):
        code, out = run_cli(
            capsys, "trace", "-n", "13", "--lam", "5/2", "-m", "4",
            "--algorithm", "pack",
        )
        assert code == 0
        assert "has upstream slack" in out
        assert "matches the exact formula" in out

    def test_csv_and_jsonl(self, capsys, tmp_path):
        csv_path = tmp_path / "run.csv"
        jsonl_path = tmp_path / "run.jsonl"
        code, out = run_cli(
            capsys, "trace", "-n", "5", "--lam", "2",
            "--csv", str(csv_path), "--jsonl", str(jsonl_path),
        )
        assert code == 0
        rows = csv_path.read_text().splitlines()
        lines = jsonl_path.read_text().splitlines()
        assert rows[0].startswith("t,kind,")
        assert len(rows) - 1 == len(lines)
        for line in lines:
            json.loads(line)

    def test_profile(self, capsys):
        code, out = run_cli(
            capsys, "trace", "-n", "8", "--lam", "2", "--profile",
        )
        assert code == 0
        assert "engine    :" in out

    def test_binomial_has_no_closed_form_line(self, capsys):
        code, out = run_cli(
            capsys, "trace", "-n", "8", "--lam", "2",
            "--algorithm", "binomial",
        )
        assert code == 0
        assert "critical path:" in out
        assert "exact formula" not in out
