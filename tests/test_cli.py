"""Tests for the command-line interface (python -m repro ...)."""

import json
from fractions import Fraction

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestFib:
    def test_both_values(self, capsys):
        code, out = run_cli(capsys, "fib", "--lam", "5/2", "--t", "7.5", "--n", "14")
        assert code == 0
        assert "F_2.5(7.5) = 14" in out
        assert "f_2.5(14) = 7.5" in out

    def test_requires_t_or_n(self, capsys):
        with pytest.raises(SystemExit):
            main(["fib", "--lam", "2"])


class TestTree:
    def test_ascii(self, capsys):
        code, out = run_cli(capsys, "tree", "--n", "14", "--lam", "5/2")
        assert code == 0
        assert "p9 @ 2.5" in out
        assert "height (completion time): 7.5" in out

    def test_json(self, capsys):
        code, out = run_cli(capsys, "tree", "--n", "14", "--lam", "5/2", "--json")
        data = json.loads(out)
        assert data["format"] == "repro.tree.v1"
        assert data["nodes"]["0"]["children"][0] == 9


class TestGantt:
    def test_bcast(self, capsys):
        code, out = run_cli(capsys, "gantt", "--n", "5", "--lam", "2")
        assert code == 0
        assert "S" in out and "R" in out
        assert "completion:" in out

    def test_multi_algorithm(self, capsys):
        code, out = run_cli(
            capsys, "gantt", "--n", "5", "--lam", "2", "--m", "3",
            "--algorithm", "pipeline",
        )
        assert code == 0


class TestSimulate:
    def test_bcast(self, capsys):
        code, out = run_cli(capsys, "simulate", "--n", "14", "--lam", "5/2")
        assert code == 0
        assert "completion: 7.5" in out
        assert "sends     : 13" in out
        assert "ratio 1.000" in out

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "sched.json"
        code, out = run_cli(
            capsys, "simulate", "--n", "8", "--lam", "2",
            "--export", str(target),
        )
        assert code == 0
        from repro.core.serialize import loads_schedule

        sched = loads_schedule(target.read_text())
        assert sched.n == 8

    def test_all_algorithms(self, capsys):
        for algo in ("repeat", "pack", "pipeline", "dtree-2", "star"):
            code, out = run_cli(
                capsys, "simulate", "--n", "6", "--lam", "2", "--m", "2",
                "--algorithm", algo,
            )
            assert code == 0, algo

    def test_binomial(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--n", "8", "--lam", "2",
            "--algorithm", "binomial",
        )
        assert code == 0

    def test_unknown_algorithm(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--n", "4", "--lam", "2", "--algorithm", "magic"])


class TestCompare:
    def test_table_and_winner(self, capsys):
        code, out = run_cli(capsys, "compare", "--n", "14", "--lam", "5/2", "--m", "4")
        assert code == 0
        for name in ("REPEAT", "PACK", "PIPELINE", "DTREE-LINE"):
            assert name in out
        assert "winner:" in out
        assert "lower bound" in out


class TestBounds:
    def test_both(self, capsys):
        code, out = run_cli(
            capsys, "bounds", "--lam", "5/2", "--t", "10", "--n", "100"
        )
        assert code == 0
        assert "Theorem 7(1)" in out and "Theorem 7(2)" in out

    def test_requires_t_or_n(self):
        with pytest.raises(SystemExit):
            main(["bounds", "--lam", "2"])


class TestCollectives:
    def test_table(self, capsys):
        code, out = run_cli(capsys, "collectives", "--n", "14", "--lam", "5/2")
        assert code == 0
        for word in ("broadcast", "reduce", "scatter", "gather", "alltoall",
                     "allreduce", "barrier"):
            assert word in out


class TestReliable:
    def test_lossless(self, capsys):
        code, out = run_cli(
            capsys, "reliable", "--n", "8", "--lam", "2", "--loss", "0",
        )
        assert code == 0
        assert "drops       : 0" in out
        assert "retransmits : 0" in out

    def test_lossy_deterministic(self, capsys):
        _, out1 = run_cli(
            capsys, "reliable", "--n", "12", "--lam", "5/2",
            "--loss", "0.3", "--seed", "5",
        )
        _, out2 = run_cli(
            capsys, "reliable", "--n", "12", "--lam", "5/2",
            "--loss", "0.3", "--seed", "5",
        )
        assert out1 == out2
        assert "retransmits" in out1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fib", "--lam", "2", "--n", "8"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "f_2(8) = 5" in proc.stdout
