"""Tests for Algorithm BCAST and the generalized Fibonacci tree (Section 3)."""

from fractions import Fraction

import pytest

from repro.core.bcast import (
    BroadcastTree,
    bcast_events,
    bcast_schedule,
    bcast_tree,
)
from repro.core.fibfunc import postal_F, postal_f
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS, SIZES


class TestSchedule:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", SIZES)
    def test_valid_and_optimal(self, lam, n):
        """The schedule validates against the postal model and finishes at
        exactly f_lambda(n) (Theorem 6)."""
        s = bcast_schedule(n, lam)  # validates on construction
        assert s.completion_time() == postal_f(lam, n)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", SIZES)
    def test_send_count(self, lam, n):
        # a broadcast to n processors needs exactly n-1 sends
        assert len(bcast_schedule(n, lam, validate=False)) == n - 1

    def test_start_offset(self):
        s = bcast_schedule(14, "5/2", start=3)
        assert s.completion_time() == 3 + Fraction(15, 2)

    def test_n1_empty(self):
        assert len(bcast_schedule(1, 2)) == 0

    def test_bad_n(self):
        with pytest.raises(InvalidParameterError):
            bcast_events(0, 2)

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_informed_count_bounded_by_F(self, lam):
        """Lemma 5 instantiated: the schedule's informed-count function
        never exceeds F_lambda(t) — and meets it at the end."""
        n = 40
        s = bcast_schedule(n, lam, validate=False)
        a = s.informed_count()
        for k in range(0, 4 * int(s.completion_time()) + 1):
            t = Fraction(k, 4)
            assert a(t) <= postal_F(lam, t)

    def test_root_sends_every_unit(self, lam):
        """The root sends at consecutive integer times 0,1,2,... with no
        idling — the optimal strategy of Section 3."""
        s = bcast_schedule(40, lam, validate=False)
        times = [e.send_time for e in s.sends_by(0)]
        assert times == list(range(len(times)))

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_every_processor_sends_immediately(self, lam):
        """Every non-leaf processor's first send happens exactly when it
        is informed (no idle gap)."""
        s = bcast_schedule(64, lam, validate=False)
        arrivals = s.arrivals()
        for proc in range(64):
            sends = s.sends_by(proc)
            if sends:
                assert sends[0].send_time == arrivals[(proc, 0)]


class TestFigure1:
    """The paper's Figure 1: MPS(14, 2.5)."""

    def setup_method(self):
        self.tree = bcast_tree(14, Fraction(5, 2))

    def test_height(self):
        assert self.tree.height() == Fraction(15, 2)

    def test_root_first_child_is_p9(self):
        # t=0: j = F(f(14) - 1) = F(6.5) = 9
        assert self.tree.children_of(0)[0] == 9

    def test_p9_covers_upper_range(self):
        # p9 broadcasts to p9..p13 (5 processors)
        covered = set()
        stack = [9]
        while stack:
            p = stack.pop()
            covered.add(p)
            stack.extend(self.tree.children_of(p))
        assert covered == {9, 10, 11, 12, 13}

    def test_p9_informed_at_5_halves(self):
        assert self.tree.node(9).informed_at == Fraction(5, 2)

    def test_degrees_decrease_toward_leaves(self):
        # nodes close to the root have higher degree
        assert len(self.tree.children_of(0)) == max(
            len(self.tree.children_of(p)) for p in range(14)
        )

    def test_all_fourteen_nodes(self):
        assert len(self.tree) == 14
        assert all(p in self.tree for p in range(14))


class TestTreeStructure:
    def test_lambda1_is_binomial(self):
        """For lambda = 1 the tree is the binomial tree: the root of a
        2^k-node tree has k children with subtree sizes 2^{k-1}, ..., 1."""
        tree = bcast_tree(16, 1)

        def subtree_size(p):
            return 1 + sum(subtree_size(c) for c in tree.children_of(p))

        sizes = sorted(
            (subtree_size(c) for c in tree.children_of(0)), reverse=True
        )
        assert sizes == [8, 4, 2, 1]

    def test_lambda2_is_fibonacci_tree(self):
        """For lambda = 2, subtree sizes of the root's children follow
        Fibonacci numbers."""
        tree = bcast_tree(13, 2)  # 13 = Fib(7)

        def subtree_size(p):
            return 1 + sum(subtree_size(c) for c in tree.children_of(p))

        sizes = [subtree_size(c) for c in tree.children_of(0)]
        # root sends to nodes covering 5, 3, 2, 1, 1 (13 = 1+5+3+2+1+1)
        assert sum(sizes) == 12
        assert sizes[0] == 5

    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_parents_consistent(self, lam):
        tree = bcast_tree(30, lam)
        for p in range(30):
            for c in tree.children_of(p):
                assert tree.parent_of(c) == p
        assert tree.parent_of(tree.root) is None

    def test_depth_and_preorder(self):
        tree = bcast_tree(14, Fraction(5, 2))
        assert tree.depth_of(0) == 0
        assert tree.depth_of(9) == 1
        order = tree.preorder()
        assert order[0] == 0
        assert sorted(order) == list(range(14))

    def test_tree_of_multimessage_schedule(self):
        from repro.core.multi import repeat_schedule

        s = repeat_schedule(8, 3, 2)
        t0 = BroadcastTree.of(s, msg=0)
        t2 = BroadcastTree.of(s, msg=2)
        # REPEAT uses the same tree for every message
        for p in range(8):
            assert t0.children_of(p) == t2.children_of(p)
