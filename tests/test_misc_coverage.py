"""Focused tests for smaller helpers not covered elsewhere."""

from fractions import Fraction

from repro.algorithms.base import InboxBuffer
from repro.core.bcast import bcast_schedule
from repro.core.multi import repeat_schedule
from repro.postal import PostalSystem
from repro.sim.engine import Environment


class TestInboxBuffer:
    def _system(self):
        env = Environment()
        return env, PostalSystem(env, 3, 2)

    def test_get_specific_index_out_of_order(self):
        env, sys_ = self._system()
        got = []

        def sender():
            yield sys_.send(0, 2, 1)  # index 1 arrives first
            yield sys_.send(0, 2, 0)

        def receiver():
            inbox = InboxBuffer(sys_, 2)
            msg0 = yield from inbox.get(0)
            got.append(msg0.msg)
            assert 1 in inbox  # buffered while waiting for 0
            msg1 = yield from inbox.get(1)
            got.append(msg1.msg)

        env.process(sender())
        env.process(receiver())
        env.run()
        assert got == [0, 1]

    def test_next_returns_any(self):
        env, sys_ = self._system()
        seen = []

        def sender():
            yield sys_.send(0, 1, 5)

        def receiver():
            inbox = InboxBuffer(sys_, 1)
            message = yield from inbox.next()
            seen.append(message.msg)

        env.process(sender())
        env.process(receiver())
        env.run()
        assert seen == [5]


class TestInformedCountMultiMessage:
    def test_per_message_counts(self):
        sched = repeat_schedule(5, 3, 2, validate=False)
        for k in range(3):
            counts = sched.informed_count(msg=k)
            assert counts(0) == 1  # root holds every message at t=0
            assert counts(sched.completion_time()) == 5

    def test_later_messages_spread_later(self):
        sched = repeat_schedule(5, 2, 2, validate=False)
        c0 = sched.informed_count(msg=0)
        c1 = sched.informed_count(msg=1)
        horizon = sched.completion_time()
        t = Fraction(0)
        while t <= horizon:
            assert c1.value_at(t) <= c0.value_at(t)
            t += Fraction(1, 2)


class TestGanttMultiMessage:
    def test_star_overlap_marker(self):
        # in PIPELINE-2 some processor sends while receiving: expect '*'
        from repro.core.multi import pipeline_schedule
        from repro.report.render import render_gantt

        sched = pipeline_schedule(6, 6, 2, validate=False)
        text = render_gantt(sched)
        assert "*" in text

    def test_custom_cell_size(self):
        from repro.report.render import render_gantt

        text = render_gantt(bcast_schedule(4, 2), cell=Fraction(1, 2))
        assert "p3" in text


class TestPostalSystemEdges:
    def test_recv_before_send_blocks_until_delivery(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 3)
        times = []

        def receiver():
            message = yield sys_.recv(1)
            times.append((env.now, message.msg))

        def sender():
            yield env.timeout(5)
            yield sys_.send(0, 1, 9)

        env.process(receiver())
        env.process(sender())
        env.run()
        assert times == [(8, 9)]  # 5 + lambda

    def test_nominal_latency_accessor(self):
        sys_ = PostalSystem(Environment(), 2, Fraction(5, 2))
        assert sys_.lam == Fraction(5, 2)
