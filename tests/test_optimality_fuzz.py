"""Optimality fuzzing: no randomized broadcast strategy beats f_lambda(n).

We generate random *valid-by-construction* broadcast schedules — every
informed processor keeps sending, but targets and per-send idling are
randomized — validate them against the postal model, and assert none
finishes before ``f_lambda(n)`` (Theorem 6's lower bound, attacked from
below rather than proved from above).
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fibfunc import postal_f
from repro.core.schedule import Schedule, SendEvent

from tests.grids import rationals

lams = rationals(1, 5, max_denominator=4)


def random_broadcast_schedule(n, lam, rng):
    """A random valid single-message broadcast: at every integer step each
    informed processor may (with probability 3/4) send to a random
    uninformed target."""
    informed = {0: Fraction(0)}
    uninformed = set(range(1, n))
    events = []
    t = Fraction(0)
    while uninformed:
        for proc, since in sorted(informed.items()):
            if not uninformed or since > t:
                continue
            if rng.random() < 0.75:
                target = rng.choice(sorted(uninformed))
                uninformed.discard(target)
                events.append(SendEvent(t, proc, 0, target))
                informed[target] = t + lam
        t += 1
    return Schedule(n, lam, events, m=1)


@given(
    lam=lams,
    n=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=150, deadline=None)
def test_no_random_strategy_beats_f(lam, n, seed):
    rng = random.Random(seed)
    sched = random_broadcast_schedule(n, lam, rng)  # validates on build
    assert sched.completion_time() >= postal_f(lam, n)


@given(
    lam=lams,
    n=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_random_schedules_satisfy_lemma5(lam, n, seed):
    """The informed count of any random valid strategy stays below
    F_lambda(t)."""
    from repro.core.fibfunc import postal_F

    rng = random.Random(seed)
    sched = random_broadcast_schedule(n, lam, rng)
    counts = sched.informed_count()
    horizon = sched.completion_time()
    t = Fraction(0)
    while t <= horizon:
        assert counts.value_at(t) <= postal_F(lam, t)
        t += Fraction(1, 2)


def test_greedy_random_strategy_is_sometimes_optimal():
    """Sanity: when the random strategy happens to pick BCAST's splits it
    meets f; over many seeds the minimum observed completion equals f."""
    lam, n = Fraction(2), 8
    best = None
    for seed in range(300):
        sched = random_broadcast_schedule(n, lam, random.Random(seed))
        t = sched.completion_time()
        best = t if best is None else min(best, t)
    assert best == postal_f(lam, n)
