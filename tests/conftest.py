"""Shared fixtures for the test suite.

The parameter grids live in :mod:`tests.grids` so test modules can import
them directly; they deliberately mix integer, half-integer, and awkward
rational latencies (the paper's running example is ``lambda = 2.5``), plus
sizes around Fibonacci boundaries where off-by-one bugs in the index
function would show.
"""

import pytest

from tests.grids import LAMBDAS, SIZES


@pytest.fixture(params=LAMBDAS, ids=lambda l: f"lam={l}")
def lam(request):
    return request.param


@pytest.fixture(params=[n for n in SIZES if n <= 40], ids=lambda n: f"n={n}")
def n_small(request):
    return request.param
