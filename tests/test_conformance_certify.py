"""Tests for end-to-end certification (repro.conformance.certify) and the
seeded chaos self-test (repro.conformance.chaos)."""

import random
from fractions import Fraction

import pytest

from repro.conformance import (
    CertResult,
    ConformanceConfig,
    MUTATIONS,
    certify_config,
    corrupt_schedule,
    families,
    get_oracle,
)
from repro.errors import InvalidParameterError


def _small_config(family, lam="5/2", policy="both"):
    """One applicable grid point per family at latency *lam*."""
    import math

    from repro.types import as_time

    oracle = get_oracle(family)
    lam_t = as_time(lam)
    n = 7
    if family == "DTREE-LATENCY":
        n = max(7, math.ceil(lam_t) + 2)
    for m in (2, 3, 1):
        if oracle.applicable(n, m, lam_t):
            return ConformanceConfig(family, n, m, lam, policy=policy)
    raise AssertionError(f"no applicable point for {family}")


class TestConfig:
    def test_round_trips_through_dict(self):
        cfg = ConformanceConfig("PACK", 9, 3, "7/3", policy="both", chaos_seed=5)
        assert ConformanceConfig.from_dict(cfg.to_dict()) == cfg

    def test_rational_lambda_survives_serialization(self):
        cfg = ConformanceConfig("BCAST", 5, 1, "5/2")
        assert cfg.lam_time == Fraction(5, 2)
        again = ConformanceConfig.from_dict(cfg.to_dict())
        assert again.lam_time == Fraction(5, 2)

    def test_invalid_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            ConformanceConfig("BCAST", 5, 1, "2", policy="loose")

    def test_garbage_lambda_rejected(self):
        with pytest.raises(Exception):
            ConformanceConfig("BCAST", 5, 1, "not-a-time")


class TestCertifyAllFamilies:
    @pytest.mark.parametrize("family", families())
    @pytest.mark.parametrize("lam", ["2", "5/2"])
    def test_family_certifies_clean(self, family, lam):
        oracle = get_oracle(family)
        try:
            cfg = _small_config(family, lam=lam)
        except AssertionError:
            pytest.skip(f"{family} has no point at lambda={lam}")
        from repro.types import as_time

        if not oracle.applicable(cfg.n, cfg.m, as_time(lam)):
            pytest.skip(f"{family} inapplicable at lambda={lam}")
        result = certify_config(cfg)
        assert isinstance(result, CertResult)
        assert result.ok, result.violations
        assert result.predicted is not None
        assert "certified" in result.summary()
        # both policies ran for queued-capable families
        if oracle.supports_queued:
            assert set(result.sim_times) == {"strict", "queued"}

    def test_keep_system_retains_machines(self):
        cfg = ConformanceConfig("BCAST", 6, 1, "2", policy="both")
        result = certify_config(cfg, keep_system=True)
        assert result.ok
        assert set(result.systems) == {"strict", "queued"}


class TestChaos:
    """The self-test: a corrupted schedule MUST produce violations."""

    def _exact_builder_families(self):
        return [
            f
            for f in families()
            if get_oracle(f).exact and get_oracle(f).schedule is not None
        ]

    @pytest.mark.parametrize("seed", range(8))
    def test_corruption_always_detected(self, seed):
        for family in self._exact_builder_families():
            cfg = _small_config(family, lam="2", policy="strict")
            cfg = ConformanceConfig(
                cfg.family, cfg.n, cfg.m, cfg.lam, chaos_seed=seed
            )
            result = certify_config(cfg)
            assert result.corruption, (family, seed)
            assert not result.ok, (
                f"{family} seed={seed}: corruption "
                f"{result.corruption!r} went undetected"
            )

    def test_same_seed_same_corruption(self):
        cfg = ConformanceConfig("REPEAT", 7, 2, "2", chaos_seed=42)
        a, b = certify_config(cfg), certify_config(cfg)
        assert a.corruption == b.corruption
        assert a.violations == b.violations

    def test_chaos_without_builder_raises(self):
        cfg = ConformanceConfig("REDUCE", 7, 1, "2", chaos_seed=1)
        with pytest.raises(InvalidParameterError, match="static builder"):
            certify_config(cfg)

    def test_all_mutations_reachable(self):
        from repro.core.bcast import bcast_schedule

        sched = bcast_schedule(9, 2)
        seen = set()
        for seed in range(64):
            _, description = corrupt_schedule(sched, random.Random(seed))
            seen.add(description.split(":")[0])
        assert seen == set(MUTATIONS)

    def test_corrupt_empty_schedule_rejected(self):
        from repro.core.schedule import Schedule

        empty = Schedule(1, 2, [], m=1, validate=False)
        with pytest.raises(InvalidParameterError):
            corrupt_schedule(empty, random.Random(0))

    def test_corruption_breaks_a_certified_property(self):
        """Every mutation either violates a postal axiom or shifts the
        makespan off the closed form — there are no no-op corruptions."""
        from repro.core.bcast import bcast_schedule
        from repro.errors import ReproError

        sched = bcast_schedule(9, 2)
        pristine_time = sched.completion_time()
        for seed in range(16):
            corrupted, description = corrupt_schedule(
                sched, random.Random(seed)
            )
            try:
                corrupted.validate()
            except ReproError:
                continue  # axiom violation — the certifier will see it
            # "delay" keeps the schedule postal-valid; the makespan
            # must then diverge from the exact prediction
            assert corrupted.completion_time() != pristine_time, description
