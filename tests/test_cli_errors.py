"""CLI error paths exit non-zero with a one-line message, never a
traceback: unknown backend, off-grid / out-of-model lambda, a bad
``--jobs`` count, and a ``repro tune`` query no family can serve.

Central handling lives in :func:`repro.cli.main`: any
:class:`~repro.errors.ReproError` escaping a subcommand prints
``error: <message>`` on stderr and returns exit code 2 (matching
argparse's own usage-error code); argparse-level rejections keep their
native ``SystemExit``.
"""

import pytest

from repro.cli import main


def run_cli_err(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestUnknownBackend:
    def test_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--n", "14", "--lam", "2",
                  "--backend", "warp"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'warp'" in err


class TestBadLambda:
    def test_below_model_floor(self, capsys):
        # the postal model needs lambda >= 1; the turbo lane must not
        # even be entered
        code, out, err = run_cli_err(
            capsys, "simulate", "--n", "10", "--lam", "1/3",
            "--backend", "turbo",
        )
        assert code == 2
        assert err == "error: the postal model requires lambda >= 1, got 1/3\n"
        assert "Traceback" not in err

    def test_unparseable(self, capsys):
        code, _, err = run_cli_err(
            capsys, "tune", "--workload", "broadcast", "--n", "8",
            "--lam", "fast",
        )
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestBadJobs:
    def test_negative_jobs(self, capsys):
        code, _, err = run_cli_err(
            capsys, "bench", "--smoke", "--jobs", "-3",
            "--plan-n", "0", "--resilience-n", "0", "--replay-n", "0",
        )
        assert code == 2
        assert err == "error: need jobs >= 0, got -3\n"

    def test_negative_jobs_on_tune(self, capsys):
        code, _, err = run_cli_err(
            capsys, "tune", "--sweep", "--jobs", "-1",
        )
        assert code == 2
        assert err == "error: need jobs >= 0, got -1\n"


class TestInapplicableTuneQuery:
    def test_multi_message_allgather(self, capsys):
        # the allgather families are single-message only, so no family
        # can serve (workload=allgather, m=2)
        code, _, err = run_cli_err(
            capsys, "tune", "--workload", "allgather",
            "--n", "16", "--m", "2", "--lam", "2",
        )
        assert code == 2
        assert err == (
            "error: no registered family is applicable to "
            "workload='allgather' at (n=16, m=2, lambda=2); eligible "
            "families: ALLGATHER, BRUCK-ALLGATHER, GOSSIP-RING\n"
        )

    def test_unknown_workload(self, capsys):
        code, _, err = run_cli_err(
            capsys, "tune", "--workload", "multicast", "--n", "8",
        )
        assert code == 2
        assert err.startswith("error: unknown workload 'multicast'")
        assert "Traceback" not in err

    def test_tiny_n(self, capsys):
        code, _, err = run_cli_err(
            capsys, "tune", "--workload", "broadcast", "--n", "1",
        )
        assert code == 2
        assert err == "error: need n >= 2 to tune, got n=1\n"
