"""Property-based tests over randomly parameterized schedules.

Rather than generating raw event lists (almost all of which are invalid),
we generate random *parameters* and assert the paper's invariants hold for
every builder's output — and that random mutations of valid schedules are
caught by the validator.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcast import bcast_schedule
from repro.core.dtree import dtree_schedule
from repro.core.fibfunc import postal_F
from repro.core.multi import pack_schedule, pipeline_schedule, repeat_schedule
from repro.core.orderpres import is_order_preserving
from repro.core.schedule import Schedule, SendEvent
from repro.errors import ModelError, ScheduleError

from tests.grids import rationals

lams = rationals(1, 6, max_denominator=4)
ns = st.integers(min_value=1, max_value=40)
ms = st.integers(min_value=1, max_value=6)
builders = st.sampled_from(
    [
        lambda n, m, lam: repeat_schedule(n, m, lam, validate=False),
        lambda n, m, lam: pack_schedule(n, m, lam, validate=False),
        lambda n, m, lam: pipeline_schedule(n, m, lam, validate=False),
        lambda n, m, lam: dtree_schedule(n, m, lam, 2, validate=False),
        lambda n, m, lam: dtree_schedule(n, m, lam, 1, validate=False),
    ]
)


@given(lam=lams, n=ns, m=ms, build=builders)
@settings(max_examples=120, deadline=None)
def test_every_builder_output_validates(lam, n, m, build):
    sched = build(n, m, lam)
    sched.validate()  # full Definitions 1-2 conformance


@given(lam=lams, n=ns, m=ms, build=builders)
@settings(max_examples=120, deadline=None)
def test_every_builder_is_order_preserving(lam, n, m, build):
    assert is_order_preserving(build(n, m, lam))


@given(lam=lams, n=ns, m=ms, build=builders)
@settings(max_examples=80, deadline=None)
def test_send_count_invariant(lam, n, m, build):
    # every (processor, message) pair is delivered exactly once
    assert len(build(n, m, lam)) == (n - 1) * m


@given(lam=lams, n=ns)
@settings(max_examples=80, deadline=None)
def test_informed_count_dominated_by_F(lam, n):
    """Lemma 5's invariant as a property: no valid broadcast informs more
    processors than F_lambda(t) at any time."""
    sched = bcast_schedule(n, lam, validate=False)
    counts = sched.informed_count()
    horizon = sched.completion_time()
    k = Fraction(0)
    while k <= horizon:
        assert counts.value_at(k) <= postal_F(lam, k)
        k += Fraction(1, 2)


@given(lam=lams, n=st.integers(min_value=2, max_value=25), data=st.data())
@settings(max_examples=100, deadline=None)
def test_mutated_schedules_rejected(lam, n, data):
    """Corrupting one event of a valid BCAST schedule — moving a send
    earlier than the sender can hold the message — is always caught."""
    base = bcast_schedule(n, lam, validate=False)
    events = list(base.events)
    idx = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
    victim = events[idx]
    if victim.sender == 0:
        # root holds the message from t=0; corrupt a non-root sender if
        # one exists, else shift the root send negative
        non_root = [i for i, e in enumerate(events) if e.sender != 0]
        if not non_root:
            return
        idx = non_root[0]
        victim = events[idx]
    # move the send one quarter-unit before the sender was informed
    informed = base.arrivals()[(victim.sender, victim.msg)]
    events[idx] = SendEvent(
        informed - Fraction(1, 4), victim.sender, victim.msg, victim.receiver
    )
    with pytest.raises(ModelError):
        Schedule(n, lam, events, m=1)


@given(lam=lams, n=st.integers(min_value=2, max_value=25))
@settings(max_examples=60, deadline=None)
def test_dropping_an_event_rejected(lam, n):
    base = bcast_schedule(n, lam, validate=False)
    events = list(base.events)[:-1]
    with pytest.raises(ScheduleError):
        Schedule(n, lam, events, m=1)


@given(lam=lams, n=ns, m=ms)
@settings(max_examples=60, deadline=None)
def test_completion_monotone_in_m(lam, n, m):
    """More messages never finish sooner (per family)."""
    for build in (repeat_schedule, pack_schedule, pipeline_schedule):
        t1 = build(n, m, lam, validate=False).completion_time()
        t2 = build(n, m + 1, lam, validate=False).completion_time()
        assert t2 >= t1, build.__name__
