"""Tests for the MPI-style facade (repro.mpi)."""

from fractions import Fraction

import pytest

from repro.collectives.allgather import allgather_time
from repro.collectives.barrier import barrier_time
from repro.collectives.scatter import scatter_time
from repro.core.analysis import pipeline_time, repeat_time
from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.mpi import SimComm


@pytest.fixture
def comm():
    return SimComm(14, Fraction(5, 2))


class TestBcast:
    def test_default_optimal(self, comm):
        out = comm.bcast("payload")
        assert out.time == postal_f(Fraction(5, 2), 14) == Fraction(15, 2)
        assert out.values == ["payload"] * 14
        assert out.sends == 13
        assert out.algorithm == "BCAST"

    def test_dtree_variant(self, comm):
        out = comm.bcast("x", algorithm="dtree-2")
        assert out.algorithm == "DTREE"
        assert out.time >= Fraction(15, 2)  # BCAST is optimal

    def test_star_variant(self, comm):
        out = comm.bcast("x", algorithm="star")
        assert out.time == 12 + Fraction(5, 2)

    def test_unknown_rejected(self, comm):
        with pytest.raises(InvalidParameterError):
            comm.bcast("x", algorithm="magic")


class TestBcastMany:
    def test_pipeline_default(self, comm):
        out = comm.bcast_many(list("abcd"))
        assert out.time == pipeline_time(14, 4, Fraction(5, 2))
        assert out.values[13] == list("abcd")

    def test_repeat(self, comm):
        out = comm.bcast_many([1, 2], algorithm="repeat")
        assert out.time == repeat_time(14, 2, Fraction(5, 2))

    def test_pack_and_dtree(self, comm):
        assert comm.bcast_many([1, 2], algorithm="pack").time > 0
        assert comm.bcast_many([1, 2], algorithm="dtree-3").time > 0

    def test_empty_rejected(self, comm):
        with pytest.raises(InvalidParameterError):
            comm.bcast_many([])


class TestOtherCollectives:
    def test_reduce(self, comm):
        out = comm.reduce(list(range(14)))
        assert out.values == sum(range(14))
        assert out.time == postal_f(Fraction(5, 2), 14)

    def test_reduce_custom_op(self, comm):
        out = comm.reduce(list(range(14)), op=max)
        assert out.values == 13

    def test_scatter(self, comm):
        data = [f"v{i}" for i in range(14)]
        out = comm.scatter(data)
        assert out.values == data
        assert out.time == scatter_time(14, Fraction(5, 2))

    def test_allgather(self, comm):
        out = comm.allgather(list(range(14)))
        assert out.time == allgather_time(14, Fraction(5, 2))
        assert all(v == list(range(14)) for v in out.values)

    def test_barrier(self, comm):
        out = comm.barrier()
        assert out.time == barrier_time(14, Fraction(5, 2))

    def test_length_validation(self, comm):
        with pytest.raises(InvalidParameterError):
            comm.reduce([1, 2])
        with pytest.raises(InvalidParameterError):
            comm.scatter([1])
        with pytest.raises(InvalidParameterError):
            comm.allgather([1])


class TestAPI:
    def test_size(self, comm):
        assert comm.Get_size() == 14

    def test_bad_n(self):
        with pytest.raises(InvalidParameterError):
            SimComm(0, 2)

    def test_single_rank_degenerate(self):
        c = SimComm(1, 3)
        assert c.bcast("x").time == 0
        assert c.reduce([7]).values == 7
        assert c.barrier().time == 0
