"""Tests for exact time arithmetic (repro.types)."""

from decimal import Decimal
from fractions import Fraction

import pytest

from repro.types import ONE, ZERO, as_time, is_integral, time_repr


class TestAsTime:
    def test_int(self):
        assert as_time(3) == Fraction(3)

    def test_float_exact(self):
        # binary floats convert exactly
        assert as_time(2.5) == Fraction(5, 2)
        assert as_time(0.75) == Fraction(3, 4)

    def test_fraction_passthrough(self):
        f = Fraction(7, 3)
        assert as_time(f) is f

    def test_string_decimal(self):
        assert as_time("2.5") == Fraction(5, 2)

    def test_string_ratio(self):
        assert as_time("7/3") == Fraction(7, 3)

    def test_decimal(self):
        assert as_time(Decimal("1.25")) == Fraction(5, 4)

    def test_negative_ok(self):
        # as_time itself is sign-agnostic; model classes check ranges
        assert as_time(-2) == Fraction(-2)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_time(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_time(float("inf"))

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_time(True)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_time(object())

    def test_bad_string_rejected(self):
        with pytest.raises(ValueError):
            as_time("not-a-number")


class TestHelpers:
    def test_constants(self):
        assert ZERO == 0 and ONE == 1

    def test_is_integral(self):
        assert is_integral(Fraction(4))
        assert not is_integral(Fraction(5, 2))

    def test_repr_integer(self):
        assert time_repr(Fraction(7)) == "7"

    def test_repr_decimal(self):
        assert time_repr(Fraction(15, 2)) == "7.5"
        assert time_repr(Fraction(1, 4)) == "0.25"

    def test_repr_ratio(self):
        assert time_repr(Fraction(7, 3)) == "7/3"

    def test_repr_roundtrip(self):
        for t in [Fraction(0), Fraction(5, 2), Fraction(22, 7), Fraction(9)]:
            assert as_time(time_repr(t)) == t
