"""Property-based tests (hypothesis) for the generalized Fibonacci core."""

import math
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import F_lower_exact, F_upper_exact
from repro.core.fibfunc import GeneralizedFibonacci, postal_F, postal_f

# latencies as small rationals >= 1
from tests.grids import rationals

lams = rationals(1, 8, max_denominator=6)
times = rationals(0, 25, max_denominator=6)
sizes = st.integers(min_value=1, max_value=2000)


@given(lam=lams, t=times)
@settings(max_examples=150, deadline=None)
def test_recurrence_everywhere(lam, t):
    """F(t) = 1 below lambda; F(t) = F(t-1) + F(t-lambda) above."""
    if t < lam:
        assert postal_F(lam, t) == 1
    else:
        assert postal_F(lam, t) == postal_F(lam, t - 1) + postal_F(lam, t - lam)


@given(lam=lams, t1=times, t2=times)
@settings(max_examples=150, deadline=None)
def test_monotone(lam, t1, t2):
    if t1 > t2:
        t1, t2 = t2, t1
    assert postal_F(lam, t1) <= postal_F(lam, t2)


@given(lam=lams, n=sizes)
@settings(max_examples=150, deadline=None)
def test_index_is_exact_inverse(lam, n):
    """f(n) is the *least* t with F(t) >= n (Claim 1 parts 3-4)."""
    f = postal_f(lam, n)
    assert postal_F(lam, f) >= n
    eps = Fraction(1, 720)  # finer than any denominator in play
    if f > 0:
        assert postal_F(lam, f - eps) < n


@given(lam=lams, n=sizes)
@settings(max_examples=100, deadline=None)
def test_index_lands_on_grid(lam, n):
    """f(n) = a + b*lambda for nonnegative integers a, b."""
    f = postal_f(lam, n)
    found = False
    b = 0
    while b * lam <= f:
        rest = f - b * lam
        if rest.denominator == 1 and rest >= 0:
            found = True
            break
        b += 1
    assert found, f"f={f} not on the grid of lambda={lam}"


@given(lam=lams, t=times)
@settings(max_examples=150, deadline=None)
def test_theorem7_part1_sandwich(lam, t):
    F = postal_F(lam, t)
    assert F_lower_exact(lam, t) <= F <= F_upper_exact(lam, t)


@given(lam=lams, n=sizes)
@settings(max_examples=100, deadline=None)
def test_lambda_monotonicity_of_index(lam, n):
    """Larger latency never helps: f_lambda(n) nondecreasing in lambda
    (checked against lambda + 1/2)."""
    assert postal_f(lam, n) <= postal_f(lam + Fraction(1, 2), n)


@given(n=sizes)
@settings(max_examples=60, deadline=None)
def test_telephone_closed_form(n):
    assert postal_f(1, n) == math.ceil(math.log2(n))


@given(lam=lams)
@settings(max_examples=60, deadline=None)
def test_fresh_instance_matches_cached(lam):
    fresh = GeneralizedFibonacci(lam)
    for n in (2, 17, 5):
        assert fresh.index(n) == postal_f(lam, n)
